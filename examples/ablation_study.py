"""Ablation study: what each TensorSSA ingredient is worth.

Disables the paper's §4.2 optimizations one at a time — and degrades the
conversion itself to data-flow-only (what tracing compilers achieve) —
to show where the speedup comes from on an RNN and a parallel-loop
workload.

Run:  python examples/ablation_study.py
"""

import repro.runtime as rt
from repro.eval.harness import clone_args
from repro.eval.platforms import DATACENTER
from repro.models import get_workload
from repro.pipelines import TensorSSAPipeline

VARIANTS = [
    ("full TensorSSA", dict()),
    ("- horizontal parallelization", dict(horizontal=False)),
    ("- vertical fusion", dict(vertical=False)),
    ("- revert-to-mutable", dict(revert_unfused=False)),
    ("data-flow-only (intra-block)", dict(intra_block_only=True)),
]


def measure(workload_name: str, **pipeline_kwargs):
    wl = get_workload(workload_name)
    pipe = TensorSSAPipeline(name="ablation", **pipeline_kwargs)
    args = wl.make_inputs(batch_size=1, seq_len=32)
    compiled = pipe.compile(wl.model_fn)
    with rt.profile() as prof:
        compiled(*clone_args(args))
    return (DATACENTER.latency_us(prof, pipe.host_profile),
            prof.num_launches)


def main() -> None:
    for workload in ("lstm", "attention", "ssd"):
        print(f"=== {workload} (modeled latency, RTX 3090 platform)")
        base_latency = None
        for label, kwargs in VARIANTS:
            latency, launches = measure(workload, **kwargs)
            if base_latency is None:
                base_latency = latency
            print(f"  {label:32s} {latency:9.1f}us "
                  f"{launches:5d} launches "
                  f"({latency / base_latency:5.2f}x of full)")
        print()
    print("Reading: the row that hurts most is the ingredient doing the "
          "work for\nthat workload — horizontal for parallel loops "
          "(attention, ssd), the full\nholistic conversion everywhere "
          "(the intra-block row).")


if __name__ == "__main__":
    main()
