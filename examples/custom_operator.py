"""Bring your own operator: optimizing *new* imperative code.

The library is not tied to the paper's eight workloads.  This example
writes a fresh domain-specific operator — exponential-moving-average
smoothing with per-channel clamping, the kind of post-processing a
tracking model might do — imperatively, then compiles it with the
public pipeline API.

Run:  python examples/custom_operator.py
"""

import numpy as np

import repro.runtime as rt
from repro.eval.platforms import DATACENTER
from repro.pipelines import TensorSSAPipeline, TorchScriptNNCPipeline


def ema_smooth(track, detections, alpha: float, n: int):
    """Blend ``n`` detection frames into a running track buffer.

    track: (K, 4) box state, mutated in place (callers keep a handle!).
    detections: (n, K, 4) per-frame boxes.
    """
    for t in range(n):
        frame = detections[t]
        blended = track * (1.0 - alpha) + frame * alpha
        track[:, 0:2] = blended[:, 0:2]
        track[:, 2:4] = blended[:, 2:4].clamp(0.0, 1.0)
    return track.sum(1)


def main() -> None:
    k, n = 64, 12
    track = rt.rand((k, 4), seed=1)
    detections = rt.rand((n, k, 4), seed=2)

    expected = ema_smooth(track.clone(), detections, 0.3, n)

    results = {}
    for pipeline in (TorchScriptNNCPipeline(), TensorSSAPipeline()):
        compiled = pipeline.compile(ema_smooth)
        with rt.profile() as prof:
            got = compiled(track.clone(), detections, 0.3, n)
        np.testing.assert_allclose(got.numpy(), expected.numpy(),
                                   rtol=1e-5)
        results[pipeline.name] = (
            prof.num_launches,
            DATACENTER.latency_us(prof, pipeline.host_profile))
        print(f"{pipeline.name:12s} launches={prof.num_launches:4d} "
              f"modeled latency={results[pipeline.name][1]:8.1f}us "
              f"stats={compiled.stats.get('pass_results', {})}")

    ts, ours = results["ts_nnc"], results["tensorssa"]
    print(f"\nTensorSSA vs TorchScript+NNC on your operator: "
          f"{ts[1] / ours[1]:.2f}x faster, "
          f"{ts[0] / max(ours[0], 1):.1f}x fewer launches")

    # In-place semantics survive compilation: the caller's track buffer
    # is updated by the compiled function exactly as in eager mode.
    compiled = TensorSSAPipeline().compile(ema_smooth)
    mine = track.clone()
    compiled(mine, detections, 0.3, n)
    reference = track.clone()
    ema_smooth(reference, detections, 0.3, n)
    np.testing.assert_allclose(mine.numpy(), reference.numpy(), rtol=1e-5)
    print("caller-visible buffer mutation preserved ✓")


if __name__ == "__main__":
    main()
