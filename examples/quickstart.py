"""Quickstart: functionalize and optimize an imperative tensor program.

Reproduces the paper's running example (Figure 4): a loop that mutates
a tensor row by row through views.  We script it, show the IR before
and after TensorSSA conversion, optimize, and compare kernel launches.

Run:  python examples/quickstart.py
"""

import repro.runtime as rt
from repro.frontend import script
from repro.ir import clone_graph, print_graph
from repro.passes import FuserConfig, dce, fuse, parallelize_loops
from repro.tensorssa import convert_to_tensorssa
from repro.backend import run_graph


def increment_rows(b, n: int):
    """The paper's Figure 4(a): partial mutation inside a loop."""
    b = b.clone()
    for i in range(n):
        b[i] = b[i] + 1.0
    return b


def main() -> None:
    scripted = script(increment_rows)
    print("=== Graph-level IR (TorchScript-style, mutation intact) ===")
    print(print_graph(scripted.graph))

    graph = clone_graph(scripted.graph)
    report = convert_to_tensorssa(graph)
    dce(graph)
    print("\n=== After TensorSSA conversion (paper Algorithm 1) ===")
    print(print_graph(graph))
    print(f"\nfunctionalized mutations: {report.rewritten}")

    n_parallel = parallelize_loops(graph)
    n_groups = fuse(graph, FuserConfig(name="demo", fuse_views=True))
    print(f"horizontal loops: {n_parallel}, fusion groups: {n_groups}")

    x = rt.tensor([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
    with rt.profile() as eager_prof:
        expected = increment_rows(x, 3)
    with rt.profile() as opt_prof:
        got = run_graph(graph, [x, 3])[0]

    assert (got.numpy() == expected.numpy()).all()
    print(f"\neager launches:     {eager_prof.num_launches}")
    print(f"optimized launches: {opt_prof.num_launches}")
    print(f"result:\n{got.numpy()}")


if __name__ == "__main__":
    main()
