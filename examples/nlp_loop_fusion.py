"""NLP recurrent loops: where holistic functionalization shines.

LSTM inference writes each step's hidden state into an output buffer —
a mutation *through a view, inside a loop*.  Baseline compilers treat it
as a fusion barrier; TensorSSA converts it (crossing the loop boundary
via block propagation) and fuses the whole cell body.

Run:  python examples/nlp_loop_fusion.py
"""

from repro.eval.harness import run_workload

SEQ_LENS = (16, 32, 64, 128)
PIPELINES = ("eager", "ts_nnc", "dynamo_inductor", "tensorssa")


def main() -> None:
    print("LSTM inference latency (modeled, RTX 3090 platform), ms")
    header = "seq_len " + "".join(f"{p:>17s}" for p in PIPELINES)
    print(header)
    print("-" * len(header))
    for seq_len in SEQ_LENS:
        cells = []
        for pipe in PIPELINES:
            res = run_workload("lstm", pipe, seq_len=seq_len)
            cells.append(f"{res.latency_ms:17.3f}")
        print(f"{seq_len:7d} " + "".join(cells))

    print("\nkernel launches at seq_len=64:")
    for pipe in PIPELINES:
        res = run_workload("lstm", pipe, seq_len=64)
        print(f"  {pipe:16s} {res.kernel_launches:5d} launches "
              f"({res.fused_ops} logical ops executed)")

    print("\nNote the tracing baseline (dynamo_inductor) matching ours "
          "at short lengths\n(it unrolls the loop) and degrading past "
          "its unroll budget — the paper's\nFigure 8 crossover.")


if __name__ == "__main__":
    main()
