"""CV post-processing: compare all five pipelines on SSD decode + NMS.

The scenario the paper's intro motivates: a detection model's backbone
runs through a vendor engine (TensorRT), but the imperative decode /
filter / suppress code dominates end-to-end latency in eager mode.

Run:  python examples/cv_postprocess.py
"""

import repro.runtime as rt
from repro.eval.harness import clone_args, run_workload
from repro.eval.platforms import DATACENTER
from repro.models import get_workload
from repro.pipelines import default_pipelines

PIPELINE_ORDER = ["eager", "dynamo_inductor", "ts_nvfuser", "ts_nnc",
                  "tensorssa"]


def main() -> None:
    workload = get_workload("ssd")
    args = workload.make_inputs(batch_size=4)

    print(f"SSD post-processing on {DATACENTER.label}")
    print(f"{'pipeline':18s} {'latency(us)':>12s} {'launches':>9s} "
          f"{'speedup':>8s}")

    eager_latency = None
    for pipe in default_pipelines():
        res = run_workload("ssd", pipe.name, batch_size=4, check=True)
        if pipe.name == "eager":
            eager_latency = res.latency_us
        speedup = eager_latency / res.latency_us
        print(f"{pipe.name:18s} {res.latency_us:12.1f} "
              f"{res.kernel_launches:9d} {speedup:7.2f}x")

    # Show that the compiled pipeline preserves *mutation semantics* —
    # callers relying on in-place updates of their buffers still see them.
    compiled = [p for p in default_pipelines()
                if p.name == "tensorssa"][0].compile(workload.model_fn)
    eager_args = clone_args(args)
    opt_args = clone_args(args)
    workload.model_fn(*eager_args)
    compiled(*opt_args)
    for i, (a, b) in enumerate(zip(eager_args, opt_args)):
        if isinstance(a, rt.Tensor):
            assert (a.numpy() == b.numpy()).all(), f"input {i} diverged"
    print("\ninput mutation semantics preserved across compilation ✓")


if __name__ == "__main__":
    main()
