"""Legacy shim so `pip install -e .` works offline without wheel/PEP 660."""
from setuptools import setup

setup()
