"""DType system and Storage bookkeeping edge cases."""

import numpy as np
import pytest

import repro.runtime as rt
from repro.runtime.dtype import DType, promote
from repro.runtime.storage import Storage


class TestDType:
    def test_singletons(self):
        assert DType.from_numpy(np.float32) is rt.float32
        assert DType.from_numpy("int64") is rt.int64
        assert DType.from_numpy(np.dtype(bool)) is rt.bool_

    def test_unsupported_dtype(self):
        with pytest.raises(TypeError):
            DType.from_numpy(np.complex64)

    def test_scalar_inference(self):
        assert DType.of(True) is rt.bool_
        assert DType.of(3) is rt.int64
        assert DType.of(3.5) is rt.float32
        with pytest.raises(TypeError):
            DType.of("nope")

    def test_predicates(self):
        assert rt.float32.is_float and not rt.float32.is_int
        assert rt.int64.is_int and not rt.int64.is_bool
        assert rt.bool_.is_bool

    def test_itemsize(self):
        assert rt.float32.itemsize == 4
        assert rt.float64.itemsize == 8
        assert rt.int32.itemsize == 4

    def test_promote(self):
        assert promote(rt.float32, rt.int64) is rt.float64
        assert promote(rt.int32, rt.int64) is rt.int64
        assert promote(rt.float32, rt.float32) is rt.float32

    def test_repr(self):
        assert repr(rt.float32) == "repro.float32"


class TestStorage:
    def test_ids_are_unique(self):
        a, b = rt.zeros((2,)), rt.zeros((2,))
        assert a.storage.id != b.storage.id

    def test_views_share_storage_object(self):
        a = rt.zeros((4,))
        v = a.slice(0, 1, 3)
        assert v.storage is a.storage
        assert a.shares_storage_with(v)

    def test_version_counts_each_mutation(self):
        a = rt.zeros((4,))
        start = a.version
        a.add_(1)
        a.select(0, 0).fill_(2)
        a[1:3] = 7.0
        assert a.version == start + 3

    def test_pure_ops_do_not_bump_version(self):
        a = rt.ones((4,))
        start = a.version
        _ = (a + 1).sigmoid().sum()
        _ = a.slice(0, 0, 2)
        assert a.version == start

    def test_nbytes(self):
        a = rt.zeros((3, 4))
        assert a.storage.nbytes == 48
        assert a.nbytes == 48
        assert a.slice(1, 0, 2).nbytes == 24

    def test_repr(self):
        s = Storage(np.zeros(4, np.float32))
        assert "nbytes=16" in repr(s)


class TestTensorMisc:
    def test_len_and_iterability_guard(self):
        a = rt.zeros((3, 2))
        assert len(a) == 3
        with pytest.raises(TypeError):
            len(a.select(0, 0).select(0, 0))

    def test_int_float_casts(self):
        assert int(rt.tensor([3.9])) == 3
        assert float(rt.tensor([2])) == 2.0

    def test_repr_contains_shape(self):
        assert "shape=(2, 2)" in repr(rt.zeros((2, 2)))

    def test_scalar_sync_recorded_for_item_and_bool(self):
        t = rt.tensor([1.0])
        with rt.profile() as prof:
            t.item()
            bool(t > 0)
        kinds = [e.kind for e in prof.python_events]
        assert kinds.count("scalar_sync") == 2

    def test_as_tensor_float64_list_downcast(self):
        t = rt.as_tensor([1.5, 2.5])
        assert t.dtype is rt.float32

    def test_tolist(self):
        assert rt.tensor([[1, 2], [3, 4]]).tolist() == [[1, 2], [3, 4]]
