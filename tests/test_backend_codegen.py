"""Kernel codegen and the fusion runtime."""

import numpy as np
import pytest

import repro.runtime as rt
from repro.backend import CodegenError, compile_block, run_graph
from repro.backend.fusion_runtime import execute_group
from repro.frontend import script
from repro.ir import Graph, clone_graph
from repro.ir import types as T
from repro.passes import FuserConfig, dce, fuse, parallelize_loops
from repro.tensorssa import convert_to_tensorssa


def _make_group(fn, config=None):
    g = clone_graph(script(fn).graph)
    fuse(g, config or FuserConfig(name="t", fuse_views=True))
    groups = g.nodes_of("prim::FusionGroup")
    assert groups, "no fusion group formed"
    return g, groups[0]


class TestCompileBlock:
    def test_elementwise_kernel(self):
        def f(x, y):
            return (x + y) * 2.0
        _, group = _make_group(f)
        kernel = compile_block(group.blocks[0])
        out, = kernel([np.ones(3, np.float32), np.ones(3, np.float32)])
        assert out.tolist() == [4.0, 4.0, 4.0]

    def test_generated_source_is_attached(self):
        def f(x):
            return x.sigmoid() + 1.0
        _, group = _make_group(f)
        kernel = compile_block(group.blocks[0])
        assert "def _kernel" in kernel.__source__
        assert "aten::sigmoid" in kernel.__source__

    def test_scalar_and_constant_inlining(self):
        def f(x, k: int):
            return x * float(k) + 0.5
        _, group = _make_group(f)
        kernel = compile_block(group.blocks[0])
        args = [3] if len(group.blocks[0].params) == 1 else None
        # params order mirrors group inputs; execute via the runtime
        # path to avoid caring about arity here
        assert kernel is not None

    def test_immut_assign_kernel(self):
        def f(x):
            y = x.clone()
            y[0] = y[1] * 3.0
            return y
        g = clone_graph(script(f).graph)
        convert_to_tensorssa(g)
        dce(g)
        fuse(g, FuserConfig(name="t", fuse_views=True))
        x = rt.tensor([1.0, 2.0])
        got = run_graph(g, [x.clone()])[0]
        expected = f(x.clone())
        np.testing.assert_allclose(got.numpy(), expected.numpy())

    def test_uncompilable_op_raises(self):
        g = Graph()
        node = g.create("aten::topk", [], [], [])
        block = node.add_block()
        inner = g.create("aten::matmul", [
            block.add_param("a", T.TensorType()),
            block.add_param("b", T.TensorType())], ["o"], [T.TensorType()])
        block.append(inner)
        block.add_return(inner.output())
        with pytest.raises(CodegenError):
            compile_block(block)

    def test_float32_preserved_in_kernels(self):
        def f(x):
            return x * 2.5 + 0.25
        g, group = _make_group(f)
        out = run_graph(g, [rt.rand((4,), seed=1)])[0]
        assert out.dtype is rt.float32


class TestExecuteGroup:
    def test_single_launch_and_fused_ops(self):
        def f(x):
            return (x + 1.0) * (x - 1.0)
        g, group = _make_group(f)
        x = rt.rand((8,), seed=2)
        with rt.profile() as prof:
            outs = execute_group(group, [x])
        assert prof.num_launches == 1
        assert prof.events[0].fused_ops == group.attrs["num_member_ops"]
        assert isinstance(outs[0], rt.Tensor)

    def test_kernel_cached_on_node(self):
        def f(x):
            return x + x
        def g2(x):
            return x + x + x
        g, group = _make_group(g2)
        execute_group(group, [rt.rand((4,), seed=3)])
        first = group.attrs["kernel"]
        execute_group(group, [rt.rand((4,), seed=4)])
        assert group.attrs["kernel"] is first

    def test_outputs_own_storage(self):
        def f(x):
            return x.select(0, 0) + 0.0
        g, group = _make_group(f)
        x = rt.ones((2, 3))
        outs = execute_group(group, [x])
        x.fill_(5.0)
        assert outs[0].numpy().tolist() == [1.0, 1.0, 1.0]


class TestHorizontalRuntime:
    def _prep(self, fn):
        g = clone_graph(script(fn).graph)
        convert_to_tensorssa(g)
        dce(g)
        n = parallelize_loops(g)
        return g, n

    def test_masking_loop_single_launch(self):
        def f(x, n: int):
            y = x.clone()
            for i in range(n):
                y[i] = y[i] * 2.0
            return y
        g, n = self._prep(f)
        assert n == 1
        x = rt.rand((4, 2), seed=5)
        with rt.profile() as prof:
            got = run_graph(g, [x.clone(), 4])[0]
        expected = f(x.clone(), 4)
        np.testing.assert_allclose(got.numpy(), expected.numpy())
        loop_events = [e for e in prof.events if e.op == "parallel_loop"]
        assert len(loop_events) == 1

    def test_sequential_dependency_still_correct(self):
        # carried-state loops execute sequentially inside one launch —
        # horizontal marking never changes values
        def f(x, n: int):
            acc = rt.zeros((3,))
            for i in range(n):
                acc = (acc + x) * 0.9
            return acc
        g, n = self._prep(f)
        x = rt.rand((3,), seed=6)
        got = run_graph(g, [x.clone(), 5])[0]
        expected = f(x.clone(), 5)
        np.testing.assert_allclose(got.numpy(), expected.numpy(),
                                   rtol=1e-5)

    def test_loop_with_matmul_not_horizontal(self):
        def f(x, w, n: int):
            y = x.clone()
            for i in range(n):
                y = y @ w
            return y
        g, n = self._prep(f)
        assert n == 0

    def test_zero_trip_horizontal(self):
        def f(x, n: int):
            y = x.clone()
            for i in range(n):
                y = y + 100.0
            return y
        g, n = self._prep(f)
        got = run_graph(g, [rt.ones((2,)), 0])[0]
        assert got.numpy().tolist() == [1.0, 1.0]
