"""Compute operators vs the numpy oracle."""

import numpy as np
import pytest

import repro.runtime as rt
from conftest import assert_tensor_equal


@pytest.fixture
def x(rng):
    return rt.from_numpy(rng.standard_normal((3, 4)).astype(np.float32))


@pytest.fixture
def y(rng):
    return rt.from_numpy(rng.standard_normal((3, 4)).astype(np.float32) + 2)


class TestElementwise:
    @pytest.mark.parametrize("op,ref", [
        (rt.add, np.add), (rt.sub, np.subtract), (rt.mul, np.multiply),
        (rt.div, np.true_divide), (rt.maximum, np.maximum),
        (rt.minimum, np.minimum),
    ])
    def test_binary(self, op, ref, x, y):
        assert_tensor_equal(op(x, y), ref(x.numpy(), y.numpy()))

    @pytest.mark.parametrize("op,ref", [
        (rt.neg, np.negative), (rt.exp, np.exp), (rt.tanh, np.tanh),
        (rt.sqrt, lambda a: np.sqrt(np.abs(a))),
    ])
    def test_unary(self, op, ref, x):
        inp = x if op is not rt.sqrt else x.abs()
        assert_tensor_equal(op(inp), ref(inp.numpy()), rtol=1e-5)

    def test_sigmoid(self, x):
        ref = 1 / (1 + np.exp(-x.numpy()))
        assert_tensor_equal(rt.sigmoid(x), ref)

    def test_relu(self, x):
        assert_tensor_equal(rt.relu(x), np.maximum(x.numpy(), 0))

    def test_clamp(self, x):
        assert_tensor_equal(rt.clamp(x, -0.5, 0.5),
                            np.clip(x.numpy(), -0.5, 0.5))
        assert_tensor_equal(rt.clamp(x, min_val=0.0),
                            np.clip(x.numpy(), 0.0, np.inf))

    def test_where(self, x, y):
        cond = x > 0
        assert_tensor_equal(rt.where(cond, x, y),
                            np.where(x.numpy() > 0, x.numpy(), y.numpy()))

    def test_clone_detaches(self, x):
        c = x.clone()
        c.fill_(0)
        assert x.numpy().any()

    def test_broadcasting(self):
        a = rt.ones((3, 1))
        b = rt.tensor([1.0, 2.0, 3.0])
        assert rt.add(a, b).shape == (3, 3)

    def test_to_dtype(self):
        a = rt.tensor([1.9, -1.9])
        assert a.to(rt.int64).tolist() == [1, -1]
        assert a.to(rt.bool_).tolist() == [True, True]


class TestReductions:
    def test_sum_all_and_dim(self, x):
        assert rt.sum(x).item() == pytest.approx(x.numpy().sum(), rel=1e-5)
        assert_tensor_equal(rt.sum(x, dim=1), x.numpy().sum(axis=1))
        assert rt.sum(x, dim=0, keepdim=True).shape == (1, 4)

    def test_mean_max_min(self, x):
        assert rt.mean(x).item() == pytest.approx(x.numpy().mean(), rel=1e-5)
        assert_tensor_equal(rt.max(x, dim=0), x.numpy().max(axis=0))
        assert_tensor_equal(rt.min(x, dim=1), x.numpy().min(axis=1))

    def test_argmax(self, x):
        assert_tensor_equal(rt.argmax(x, dim=1),
                            np.argmax(x.numpy(), axis=1))
        assert rt.argmax(x).item() == np.argmax(x.numpy())

    def test_cumsum(self, x):
        assert_tensor_equal(rt.cumsum(x, 1), np.cumsum(x.numpy(), axis=1))

    def test_softmax_rows_sum_to_one(self, x):
        s = rt.softmax(x, dim=1)
        assert_tensor_equal(rt.sum(s, dim=1), np.ones(3))

    def test_softmax_is_stable_for_large_values(self):
        s = rt.softmax(rt.tensor([1000.0, 1000.0]), dim=0)
        assert s.tolist() == [0.5, 0.5]


class TestLinalg:
    def test_matmul(self, rng):
        a = rng.standard_normal((4, 5)).astype(np.float32)
        b = rng.standard_normal((5, 3)).astype(np.float32)
        assert_tensor_equal(rt.matmul(rt.from_numpy(a), rt.from_numpy(b)),
                            a @ b, rtol=1e-4)

    def test_bmm(self, rng):
        a = rng.standard_normal((2, 3, 4)).astype(np.float32)
        b = rng.standard_normal((2, 4, 5)).astype(np.float32)
        assert_tensor_equal(rt.bmm(rt.from_numpy(a), rt.from_numpy(b)),
                            a @ b, rtol=1e-4)
        with pytest.raises(ValueError):
            rt.bmm(rt.zeros((3, 4)), rt.zeros((4, 5)))

    def test_linear(self, rng):
        x = rng.standard_normal((2, 4)).astype(np.float32)
        w = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((3,)).astype(np.float32)
        got = rt.linear(rt.from_numpy(x), rt.from_numpy(w), rt.from_numpy(b))
        assert_tensor_equal(got, x @ w.T + b, rtol=1e-4)


class TestShapeOps:
    def test_cat_stack(self):
        a, b = rt.ones((2, 2)), rt.zeros((2, 2))
        assert rt.cat([a, b], 0).shape == (4, 2)
        assert rt.cat([a, b], 1).shape == (2, 4)
        assert rt.stack([a, b], 0).shape == (2, 2, 2)

    def test_index_select_gather(self):
        a = rt.tensor([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        sel = rt.index_select(a, 0, rt.tensor([2, 0]))
        assert sel.numpy()[0].tolist() == [5.0, 6.0]
        g = rt.gather(a, 1, rt.tensor([[0], [1], [0]]))
        assert g.numpy().ravel().tolist() == [1.0, 4.0, 5.0]

    def test_topk(self):
        vals, idx = rt.topk(rt.tensor([1.0, 9.0, 3.0, 7.0]), 2)
        assert vals.tolist() == [9.0, 7.0]
        assert idx.tolist() == [1, 3]
        vals, idx = rt.topk(rt.tensor([1.0, 9.0, 3.0]), 2, largest=False)
        assert vals.tolist() == [1.0, 3.0]

    def test_sort(self):
        vals, idx = rt.sort(rt.tensor([3.0, 1.0, 2.0]), descending=True)
        assert vals.tolist() == [3.0, 2.0, 1.0]
        assert idx.tolist() == [0, 2, 1]

    def test_nonzero(self):
        nz = rt.nonzero(rt.tensor([0.0, 1.0, 0.0, 2.0]))
        assert nz.numpy().ravel().tolist() == [1, 3]
        assert rt.nonzero(rt.zeros((3,))).shape[0] == 0

    def test_masked_fill_pure_vs_inplace(self):
        a = rt.tensor([1.0, 2.0, 3.0])
        mask = a > 1.5
        pure = rt.masked_fill(a, mask, 0.0)
        assert a.tolist() == [1.0, 2.0, 3.0]  # untouched
        a.masked_fill_(mask, 0.0)
        assert a.tolist() == pure.tolist() == [1.0, 0.0, 0.0]

    def test_index_put_pure_vs_inplace(self):
        a = rt.zeros((4,))
        idx = rt.tensor([0, 2])
        src = rt.tensor([5.0, 6.0])
        pure = rt.index_put(a, idx, src)
        assert a.numpy().sum() == 0
        a.index_put_(idx, src)
        assert a.tolist() == pure.tolist()

    def test_chunk_views(self):
        a = rt.arange(6)
        c0, c1, c2 = rt.chunk(a, 3)
        assert c1.tolist() == [2, 3]
        c1.fill_(0)
        assert a.tolist() == [0, 1, 0, 0, 4, 5]

    def test_embedding(self):
        w = rt.tensor([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        e = rt.embedding(w, rt.tensor([2, 1]))
        assert e.numpy()[0].tolist() == [2.0, 2.0]
