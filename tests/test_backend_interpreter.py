"""Reference interpreter: control flow, containers, error paths."""

import numpy as np
import pytest

import repro.runtime as rt
from repro.backend import InterpreterError, run_graph
from repro.ir import Graph, parse_graph
from repro.ir import types as T


class TestBasics:
    def test_arity_mismatch(self):
        g = parse_graph("graph g(%x.0 : Tensor):\n  return (%x.0)")
        with pytest.raises(InterpreterError, match="expects 1 args"):
            run_graph(g, [])

    def test_constant_payload_passthrough(self):
        g = parse_graph("""
graph g(%x.0 : Tensor):
  %c.0 = prim::Constant[value=2.5]()
  %o.0 = aten::mul(%x.0, %c.0)
  return (%o.0)
""")
        assert run_graph(g, [rt.tensor([2.0])])[0].item() == 5.0

    def test_update_node_rejected(self):
        g = Graph()
        x = g.add_input("x", T.TensorType())
        upd = g.create("tssa::update", [x, x])
        g.block.append(upd)
        g.add_output(x)
        with pytest.raises(InterpreterError, match="tssa::update"):
            run_graph(g, [rt.ones((2,))])

    def test_multiple_outputs(self):
        g = parse_graph("""
graph g(%x.0 : Tensor):
  %v.0, %i.0 = aten::topk(%x.0, %x.0)
  return (%v.0, %i.0)
""")
        # topk(x, k) needs an int k; feed via a constant instead
        g2 = parse_graph("""
graph g(%x.0 : Tensor):
  %k.0 = prim::Constant[value=2]()
  %v.0, %i.0 = aten::topk(%x.0, %k.0)
  return (%v.0, %i.0)
""")
        vals, idx = run_graph(g2, [rt.tensor([1.0, 5.0, 3.0])])
        assert vals.tolist() == [5.0, 3.0]
        assert idx.tolist() == [1, 2]


class TestControlFlow:
    LOOP = """
graph g(%n.0 : Int, %x.0 : Tensor):
  %t.0 = prim::Constant[value=True]()
  %o.0 = prim::Loop(%n.0, %t.0, %x.0)
    block0(%i.0 : Int, %acc.0 : Tensor):
      %c.0 = prim::Constant[value=2.0]()
      %nx.0 = aten::mul(%acc.0, %c.0)
      -> (%t.0, %nx.0)
  return (%o.0)
"""

    def test_loop_trip_count(self):
        g = parse_graph(self.LOOP)
        assert run_graph(g, [3, rt.tensor([1.0])])[0].item() == 8.0
        assert run_graph(g, [0, rt.tensor([1.0])])[0].item() == 1.0

    def test_loop_condition_stops_early(self):
        g = parse_graph("""
graph g(%x.0 : Tensor):
  %big.0 = prim::Constant[value=1000]()
  %t.0 = prim::Constant[value=True]()
  %c.0 = prim::Constant[value=0]()
  %o.0, %k.0 = prim::Loop(%big.0, %t.0, %x.0, %c.0)
    block0(%i.0 : Int, %acc.0 : Tensor, %k.1 : Int):
      %one.0 = prim::Constant[value=1.0]()
      %nx.0 = aten::add(%acc.0, %one.0)
      %ione.0 = prim::Constant[value=1]()
      %k.2 = prim::add(%k.1, %ione.0)
      %lim.0 = prim::Constant[value=5]()
      %cond.0 = prim::lt(%k.2, %lim.0)
      -> (%cond.0, %nx.0, %k.2)
  return (%o.0, %k.0)
""")
        out, k = run_graph(g, [rt.tensor([0.0])])
        assert k == 5
        assert out.item() == 5.0

    def test_python_events_recorded(self):
        g = parse_graph(self.LOOP)
        with rt.profile() as prof:
            run_graph(g, [4, rt.tensor([1.0])])
        kinds = [e.kind for e in prof.python_events]
        assert kinds.count("loop_iter") == 4
        assert "interp_op" in kinds

    def test_branch_events(self):
        g = parse_graph("""
graph g(%f.0 : Bool, %x.0 : Tensor):
  %o.0 = prim::If(%f.0)
    block0():
      -> (%x.0)
    block1():
      %c.0 = prim::Constant[value=-1.0]()
      %n.0 = aten::mul(%x.0, %c.0)
      -> (%n.0)
  return (%o.0)
""")
        with rt.profile() as prof:
            out = run_graph(g, [False, rt.tensor([2.0])])
        assert out[0].item() == -2.0
        assert any(e.kind == "branch" for e in prof.python_events)


class TestContainers:
    def test_list_construct_and_index(self):
        g = parse_graph("""
graph g(%x.0 : Tensor, %y.0 : Tensor):
  %l.0 = prim::ListConstruct(%x.0, %y.0)
  %i.0 = prim::Constant[value=1]()
  %o.0 = prim::ListIndex(%l.0, %i.0)
  return (%o.0)
""")
        out = run_graph(g, [rt.tensor([1.0]), rt.tensor([2.0])])[0]
        assert out.item() == 2.0

    def test_tuple_unpack(self):
        g = parse_graph("""
graph g(%x.0 : Tensor, %y.0 : Tensor):
  %t.0 = prim::TupleConstruct(%x.0, %y.0)
  %a.0, %b.0 = prim::TupleUnpack(%t.0)
  %o.0 = aten::add(%a.0, %b.0)
  return (%o.0)
""")
        out = run_graph(g, [rt.tensor([1.0]), rt.tensor([2.0])])[0]
        assert out.item() == 3.0

    def test_cat_over_constructed_list(self):
        g = parse_graph("""
graph g(%x.0 : Tensor):
  %l.0 = prim::ListConstruct(%x.0, %x.0)
  %d.0 = prim::Constant[value=0]()
  %o.0 = aten::cat(%l.0, %d.0)
  return (%o.0)
""")
        out = run_graph(g, [rt.tensor([1.0, 2.0])])[0]
        assert out.tolist() == [1.0, 2.0, 1.0, 2.0]
