"""Unit tests for the mutation-conventions verifier.

``verify_mutations`` is the post-pipeline check the fuzzing oracle runs
on every compiled graph; here each rule is exercised in isolation with
hand-built violating graphs.
"""

import pytest

from repro.ir import types as T
from repro.ir import verify_mutations
from repro.ir.graph import Graph, Node
from repro.ir.verifier import VerificationError
from repro.ops import registry as ops
from repro.ops.schema import OpKind, OpSchema


def _graph_with_input(name="x"):
    g = Graph("t")
    x = g.add_input(name, T.TensorType())
    return g, x


class TestAlwaysEnforced:
    def test_clean_graph_passes_both_modes(self):
        g, x = _graph_with_input()
        relu = g.create("aten::relu", [x], ["y"], [T.TensorType()])
        g.block.append(relu)
        g.add_output(relu.output())
        verify_mutations(g)
        verify_mutations(g, strict=True)

    def test_surviving_tssa_update_rejected(self):
        g, x = _graph_with_input()
        clone = g.create("aten::clone", [x], ["y"], [T.TensorType()])
        g.block.append(clone)
        upd = g.create("tssa::update", [clone.output(), x], [], [])
        g.block.append(upd)
        with pytest.raises(VerificationError, match="tssa::update"):
            verify_mutations(g)

    def test_unregistered_immut_op_rejected(self):
        g, x = _graph_with_input()
        # Graph.create validates against the registry, so a bogus op has
        # to be assembled by hand — exactly what a broken pass would do.
        node = Node("immut::bogus_access", g)
        node.add_input(x)
        node.add_output("y", T.TensorType())
        g.block.append(node)
        with pytest.raises(VerificationError, match="unregistered"):
            verify_mutations(g)

    def test_immut_op_with_aliasing_kind_rejected(self):
        name = "immut::bogus_assign"
        ops.register(OpSchema(name, OpKind.MUTATING, fn=lambda t: t))
        try:
            g, x = _graph_with_input()
            node = g.create(name, [x], ["y"], [T.TensorType()])
            g.block.append(node)
            with pytest.raises(VerificationError, match="must be pure"):
                verify_mutations(g)
        finally:
            del ops.REGISTRY[name]

    def test_mutation_of_constant_buffer_rejected(self):
        g, x = _graph_with_input()
        c = g.constant(1.0)
        g.block.append(c)
        store = g.create("aten::copy_", [c.output(), x], ["w"],
                         [T.TensorType()])
        g.block.append(store)
        with pytest.raises(VerificationError, match="constant"):
            verify_mutations(g)

    def test_mutation_through_view_of_constant_rejected(self):
        """The alias root is followed through VIEW producers."""
        g, x = _graph_with_input()
        c = g.constant(1.0)
        g.block.append(c)
        dim = g.constant(0, name="d")
        g.block.append(dim)
        view = g.create("aten::select",
                        [c.output(), dim.output(), dim.output()],
                        ["v"], [T.TensorType()])
        g.block.append(view)
        store = g.create("aten::copy_", [view.output(), x], ["w"],
                         [T.TensorType()])
        g.block.append(store)
        with pytest.raises(VerificationError, match="constant"):
            verify_mutations(g)


class TestStrictMode:
    def test_input_mutation_passes_lenient_fails_strict(self):
        g, x = _graph_with_input()
        y = g.add_input("y", T.TensorType())
        store = g.create("aten::copy_", [x, y], ["w"], [T.TensorType()])
        g.block.append(store)
        verify_mutations(g)  # lenient: partial functionalization is fine
        with pytest.raises(VerificationError, match="locally-owned"):
            verify_mutations(g, strict=True)

    def test_mutation_through_view_of_input_fails_strict(self):
        g, x = _graph_with_input()
        dim = g.constant(0, name="d")
        g.block.append(dim)
        view = g.create("aten::select", [x, dim.output(), dim.output()],
                        ["v"], [T.TensorType()])
        g.block.append(view)
        store = g.create("aten::copy_", [view.output(), x], ["w"],
                         [T.TensorType()])
        g.block.append(store)
        with pytest.raises(VerificationError, match="locally-owned"):
            verify_mutations(g, strict=True)

    def test_revert_style_mutation_passes_strict(self):
        """clone + copy_ in one block is the exact shape the revert pass
        introduces — strict mode must keep accepting it."""
        g, x = _graph_with_input()
        clone = g.create("aten::clone", [x], ["y"], [T.TensorType()])
        g.block.append(clone)
        store = g.create("aten::copy_", [clone.output(), x], ["w"],
                         [T.TensorType()])
        g.block.append(store)
        g.add_output(clone.output())
        verify_mutations(g, strict=True)

    def test_cross_block_mutation_fails_strict(self):
        """A nested block mutating a buffer owned by the enclosing block
        is not revert-style: the revert pass proves locality within one
        block only."""
        g, x = _graph_with_input()
        flag = g.add_input("flag", T.BoolType())
        clone = g.create("aten::clone", [x], ["y"], [T.TensorType()])
        g.block.append(clone)
        cond = g.create("prim::If", [flag], [], [])
        then_block = cond.add_block()
        cond.add_block()
        store = g.create("aten::copy_", [clone.output(), x], ["w"],
                         [T.TensorType()])
        then_block.append(store)
        g.block.append(cond)
        verify_mutations(g)  # lenient is satisfied
        with pytest.raises(VerificationError, match="locally-owned"):
            verify_mutations(g, strict=True)


class TestPipelineIntegration:
    def test_fully_functionalized_graph_survives_strict(self):
        from repro.pipelines.registry import get_pipeline
        import repro.runtime as rt
        import numpy as np

        def f(x):
            y = x.clone()
            y.add_(1.0)
            y[0] = y[1] * 2.0
            return y

        pipe = get_pipeline("tensorssa")
        compiled = pipe.compile(
            f, example_args=(rt.from_numpy(
                np.ones((4, 6), dtype=np.float32)),))
        stats = getattr(compiled, "stats", {}) or {}
        strict = stats.get("skipped_mutations", 0) == 0
        verify_mutations(compiled.graph, strict=strict)
