"""Property-based tests: runtime semantics against the numpy oracle."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

import repro.runtime as rt

f32_arrays = hnp.arrays(
    dtype=np.float32,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1,
                           max_side=5),
    elements=st.floats(-100, 100, width=32))


@st.composite
def array_pair(draw):
    a = draw(f32_arrays)
    b = draw(hnp.arrays(np.float32, a.shape,
                        elements=st.floats(-100, 100, width=32)))
    return a, b


class TestElementwiseOracle:
    @settings(max_examples=40, deadline=None)
    @given(pair=array_pair())
    def test_binary_ops(self, pair):
        a, b = pair
        ta, tb = rt.from_numpy(a), rt.from_numpy(b)
        np.testing.assert_allclose(rt.add(ta, tb).numpy(), a + b,
                                   rtol=1e-6)
        np.testing.assert_allclose(rt.mul(ta, tb).numpy(), a * b,
                                   rtol=1e-6)
        np.testing.assert_array_equal(rt.maximum(ta, tb).numpy(),
                                      np.maximum(a, b))

    @settings(max_examples=40, deadline=None)
    @given(a=f32_arrays)
    def test_unary_ops(self, a):
        t = rt.from_numpy(a)
        np.testing.assert_allclose(rt.tanh(t).numpy(), np.tanh(a),
                                   rtol=1e-5, atol=1e-6)
        np.testing.assert_array_equal(rt.relu(t).numpy(),
                                      np.maximum(a, 0))
        np.testing.assert_allclose(
            rt.sigmoid(t).numpy(), 1 / (1 + np.exp(-a.astype(np.float64))),
            rtol=1e-4, atol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(a=f32_arrays)
    def test_dtype_stability(self, a):
        t = rt.from_numpy(a)
        for out in (t + 1, t * 0.5, t.relu(), rt.clamp(t, -1.0, 1.0)):
            assert out.dtype is rt.float32

    @settings(max_examples=40, deadline=None)
    @given(a=f32_arrays)
    def test_reductions(self, a):
        t = rt.from_numpy(a)
        np.testing.assert_allclose(rt.sum(t).item(),
                                   a.astype(np.float64).sum(),
                                   rtol=1e-3, atol=1e-3)
        assert rt.max(t).item() == a.max()
        assert rt.argmax(t).item() == int(np.argmax(a))


class TestViewMutationOracle:
    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_random_view_chain_mutation(self, data):
        """Build a random view chain, mutate through it, and verify the
        write lands exactly where numpy says it should."""
        base = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        t = rt.from_numpy(base)
        ref = base.copy()

        view_t, view_ref = t, ref
        for _ in range(data.draw(st.integers(1, 3))):
            if view_ref.ndim == 0:
                break
            dim = data.draw(st.integers(0, view_ref.ndim - 1))
            size = view_ref.shape[dim]
            if data.draw(st.booleans()):
                idx = data.draw(st.integers(0, size - 1))
                view_t = view_t.select(dim, idx)
                # slice-then-squeeze keeps the numpy reference a view
                # even when it becomes 0-d (int indexing would return a
                # detached scalar)
                view_ref = view_ref[
                    (slice(None),) * dim + (slice(idx, idx + 1),)
                ].squeeze(dim)
            else:
                a = data.draw(st.integers(0, size - 1))
                b = data.draw(st.integers(a + 1, size))
                view_t = view_t.slice(dim, a, b)
                view_ref = view_ref[(slice(None),) * dim + (slice(a, b),)]

        value = data.draw(st.floats(-10, 10, width=32))
        view_t.fill_(value)
        view_ref[...] = value
        np.testing.assert_array_equal(t.numpy(), ref)

    @settings(max_examples=30, deadline=None)
    @given(a=f32_arrays, s=st.floats(-5, 5, width=32))
    def test_inplace_equals_out_of_place(self, a, s):
        t1 = rt.from_numpy(a)
        t2 = rt.from_numpy(a)
        t1.add_(s)
        out = rt.add(t2, s)
        np.testing.assert_allclose(t1.numpy(), out.numpy(), rtol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(a=f32_arrays)
    def test_clone_isolates(self, a):
        t = rt.from_numpy(a)
        c = t.clone()
        c.mul_(0.0)
        np.testing.assert_array_equal(t.numpy(), a)


class TestFusedKernelOracle:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_random_expression_fused_equals_eager(self, data):
        """Random elementwise expression trees: fused == unfused."""
        import linecache
        import itertools
        ops = ["+", "-", "*"]
        unary = [".sigmoid()", ".tanh()", ".relu()", ".exp()"]
        expr = "x"
        for _ in range(data.draw(st.integers(1, 5))):
            if data.draw(st.booleans()):
                expr = f"({expr} {data.draw(st.sampled_from(ops))} "\
                       f"{round(data.draw(st.floats(-2, 2)), 3)})"
            else:
                expr = f"({expr}){data.draw(st.sampled_from(unary))}"
        src = f"def f(x):\n    return {expr}\n"
        filename = f"<hypo_expr_{id(expr)}>"
        linecache.cache[filename] = (len(src), None,
                                     src.splitlines(True), filename)
        ns = {}
        exec(compile(src, filename, "exec"), ns)  # noqa: S102
        fn = ns["f"]

        from repro.pipelines import TensorSSAPipeline
        compiled = TensorSSAPipeline().compile(fn)
        x = rt.from_numpy(
            data.draw(hnp.arrays(np.float32, (5,),
                                 elements=st.floats(-3, 3, width=32))))
        got = compiled(x.clone())
        expected = fn(x.clone())
        np.testing.assert_allclose(got.numpy(), expected.numpy(),
                                   rtol=1e-5, atol=1e-6)
