"""Dominance on block-structured IR."""

from repro.analysis import node_dominates, value_dominates
from repro.ir import Graph
from repro.ir import types as T


def build_nested():
    """graph { a; loop { b; if { c }{ d }; e }; f }"""
    g = Graph("dom")
    x = g.add_input("x", T.TensorType())
    n = g.add_input("n", T.IntType())
    a = g.create("aten::neg", [x], ["a"], [T.TensorType()])
    g.block.append(a)
    true = g.constant(True)
    g.block.append(true)
    loop = g.create("prim::Loop", [n, true.output()])
    g.block.append(loop)
    body = loop.add_block()
    body.add_param("i", T.IntType())
    b = g.create("aten::neg", [a.output()], ["b"], [T.TensorType()])
    body.append(b)
    cond = g.create("aten::Bool", [b.output()], ["c"], [T.BoolType()])
    body.append(cond)
    branch = g.create("prim::If", [cond.output()])
    body.append(branch)
    then_b, else_b = branch.add_block(), branch.add_block()
    c = g.create("aten::neg", [b.output()], ["c"], [T.TensorType()])
    then_b.append(c)
    d = g.create("aten::neg", [b.output()], ["d"], [T.TensorType()])
    else_b.append(d)
    then_b.add_return(c.output())
    else_b.add_return(d.output())
    branch.add_output("o", T.TensorType())
    e = g.create("aten::neg", [branch.output()], ["e"], [T.TensorType()])
    body.append(e)
    body.add_return(true.output())
    f = g.create("aten::neg", [a.output()], ["f"], [T.TensorType()])
    g.block.append(f)
    g.add_output(f.output())
    return g, dict(a=a, loop=loop, b=b, branch=branch, c=c, d=d, e=e, f=f,
                   x=x)


class TestNodeDominance:
    def test_same_block_order(self):
        g, n = build_nested()
        assert node_dominates(n["a"], n["loop"])
        assert not node_dominates(n["loop"], n["a"])

    def test_outer_dominates_inner(self):
        g, n = build_nested()
        assert node_dominates(n["a"], n["b"])
        assert node_dominates(n["a"], n["c"])

    def test_inner_does_not_dominate_outer(self):
        g, n = build_nested()
        assert not node_dominates(n["b"], n["f"])
        assert not node_dominates(n["c"], n["f"])

    def test_siblings_do_not_dominate(self):
        g, n = build_nested()
        assert not node_dominates(n["c"], n["d"])
        assert not node_dominates(n["d"], n["c"])

    def test_within_loop_body(self):
        g, n = build_nested()
        assert node_dominates(n["b"], n["e"])
        assert node_dominates(n["b"], n["c"])
        assert not node_dominates(n["e"], n["b"])

    def test_branch_does_not_dominate_after(self):
        g, n = build_nested()
        # c is inside one branch; e comes after the If
        assert not node_dominates(n["c"], n["e"])

    def test_containment_counts(self):
        g, n = build_nested()
        assert node_dominates(n["loop"], n["b"])
        assert node_dominates(n["branch"], n["c"])

    def test_self(self):
        g, n = build_nested()
        assert node_dominates(n["a"], n["a"])


class TestValueDominance:
    def test_graph_input_dominates_everything(self):
        g, n = build_nested()
        for key in ("a", "b", "c", "e", "f"):
            assert value_dominates(n["x"], n[key])

    def test_node_output_dominates_later_uses(self):
        g, n = build_nested()
        assert value_dominates(n["a"].output(), n["b"])
        assert not value_dominates(n["e"].output(), n["b"])

    def test_loop_param_scope(self):
        g, n = build_nested()
        i_param = n["loop"].blocks[0].params[0]
        assert value_dominates(i_param, n["b"])
        assert value_dominates(i_param, n["c"])
        assert not value_dominates(i_param, n["f"])
