"""Loop unrolling and shape specialization (tracing-pipeline passes)."""

import numpy as np

import repro.runtime as rt
from repro.backend import run_graph
from repro.frontend import script
from repro.ir import clone_graph, verify
from repro.passes import constant_fold, cse, dce, specialize_shapes, unroll_loops


def scripted(fn):
    return clone_graph(script(fn).graph)


def check_equal(graph, fn, *args):
    expected = fn(*[a.clone() if isinstance(a, rt.Tensor) else a
                    for a in args])
    got = run_graph(graph, [a.clone() if isinstance(a, rt.Tensor) else a
                            for a in args])
    exp = list(expected) if isinstance(expected, tuple) else [expected]
    for g, e in zip(got, exp):
        ga = g.numpy() if isinstance(g, rt.Tensor) else np.asarray(g)
        ea = e.numpy() if isinstance(e, rt.Tensor) else np.asarray(e)
        np.testing.assert_allclose(ga.astype(float), ea.astype(float),
                                   rtol=1e-5)


def const_loop(x):
    y = x.clone()
    for i in range(4):
        y = y + float(i)
    return y


def loop_with_mutation(x):
    y = x.clone()
    for i in range(3):
        y[i] = float(i)
    return y


def nested_const_loops(x):
    y = x.clone()
    for i in range(2):
        for j in range(3):
            y[i, j] = float(i * 3 + j)
    return y


def dynamic_loop(x, n: int):
    y = x.clone()
    for i in range(n):
        y = y + 1.0
    return y


def shape_driven_loop(x):
    y = x.clone()
    for i in range(x.shape[0]):
        y[i] = y[i] * 2.0
    return y


class TestUnroll:
    def test_constant_trip_unrolls(self):
        g = scripted(const_loop)
        assert unroll_loops(g) == 1
        assert not g.nodes_of("prim::Loop")
        verify(g)
        check_equal(g, const_loop, rt.rand((3,), seed=1))

    def test_unrolled_mutations_survive(self):
        g = scripted(loop_with_mutation)
        unroll_loops(g)
        verify(g)
        assert len(g.nodes_of("aten::fill_")) == 3
        check_equal(g, loop_with_mutation, rt.rand((4,), seed=2))

    def test_nested_loops_unroll_inner_first(self):
        g = scripted(nested_const_loops)
        assert unroll_loops(g) == 2
        assert not g.nodes_of("prim::Loop")
        check_equal(g, nested_const_loops, rt.rand((2, 3), seed=3))

    def test_dynamic_trip_left_alone(self):
        g = scripted(dynamic_loop)
        assert unroll_loops(g) == 0
        assert g.nodes_of("prim::Loop")
        check_equal(g, dynamic_loop, rt.rand((2,), seed=4), 5)

    def test_budget_respected(self):
        g = scripted(const_loop)
        assert unroll_loops(g, max_trip=3) == 0
        assert g.nodes_of("prim::Loop")

    def test_zero_trip_unrolls_to_nothing(self):
        def f(x):
            y = x.clone()
            for i in range(0):
                y = y + 100.0
            return y
        g = scripted(f)
        unroll_loops(g)
        dce(g)
        assert not g.nodes_of("prim::Loop")
        check_equal(g, f, rt.rand((2,), seed=5))

    def test_while_loop_never_unrolls(self):
        def f(n: int):
            i = 0
            while i < n:
                i += 1
            return i
        g = scripted(f)
        assert unroll_loops(g) == 0


class TestSpecialize:
    def test_folds_input_shape_queries(self):
        g = scripted(shape_driven_loop)
        x = rt.rand((4, 2), seed=6)
        folded = specialize_shapes(g, [x])
        assert folded >= 1
        assert not g.nodes_of("aten::size")
        verify(g)

    def test_specialize_then_unroll(self):
        g = scripted(shape_driven_loop)
        x = rt.rand((4, 2), seed=7)
        specialize_shapes(g, [x])
        constant_fold(g)
        cse(g)
        assert unroll_loops(g) == 1
        check_equal(g, shape_driven_loop, x)

    def test_scalar_inputs_specialize(self):
        g = scripted(dynamic_loop)
        x = rt.rand((2,), seed=8)
        specialize_shapes(g, [x, 5])
        constant_fold(g)
        assert unroll_loops(g) == 1
        check_equal(g, dynamic_loop, x, 5)

    def test_specialized_graph_is_shape_specific(self):
        # this is exactly why tracing pipelines must recompile per shape
        g = scripted(shape_driven_loop)
        specialize_shapes(g, [rt.rand((2, 2), seed=9)])
        constant_fold(g)
        unroll_loops(g)
        bigger = rt.rand((4, 2), seed=10)
        got = run_graph(g, [bigger.clone()])[0]
        expected = shape_driven_loop(bigger.clone())
        assert not np.allclose(got.numpy(), expected.numpy())
