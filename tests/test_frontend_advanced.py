"""Scripting frontend: advanced features and diagnostics."""

import numpy as np
import pytest

import repro.runtime as rt
from repro.frontend import ScriptError, script
from test_frontend_basic import check

H = 4  # module-level constant captured by scripted code
WEIGHT = rt.ones((H,))


def closure_scalar(x):
    return x * float(H)


def closure_tensor(x):
    return x + WEIGHT


def closure_tensor_method(x):
    return x + WEIGHT.sum()


def dtype_constant(x):
    return x.to(rt.int64).to(rt.float32)


def shape_sugar(x):
    r = x.shape[0]
    c = x.shape[1]
    return rt.zeros((c, r)) + float(r * 10 + c)


def nested_helpers(x):
    return _outer_helper(x) * 2.0


def _inner_helper(v):
    return v + 1.0


def _outer_helper(v):
    return _inner_helper(v) * _inner_helper(v)


def helper_with_defaults(x):
    return _scaled(x) + _scaled(x, 3.0)


def _scaled(v, k: float = 2.0):
    return v * k


def bool_ops(a: int, b: int):
    flag = a > 0 and b > 0 or a == b
    if not flag:
        out = 0
    else:
        out = 1
    return out


def chained_subscript(x):
    y = x.clone()
    y[0][1] = 9.0
    return y


def negative_indices(x):
    return x[-1] + x[:, -1].sum()


def unsqueeze_via_none(x):
    return x[None] * 2.0


def min_max_builtins(a: int, b: int, x):
    lo = min(a, b)
    hi = max(a, b, 10)
    return x * float(hi - lo)


def abs_builtin(a: int, x):
    return x * float(abs(a))


def while_with_break_condition(x):
    total = x.clone()
    steps = 0
    while steps < 3:
        total += 1.0
        steps += 1
    return total, steps


class TestAdvanced:
    def test_closure_scalar(self):
        check(closure_scalar, rt.rand((3,), seed=1))

    def test_closure_tensor(self):
        check(closure_tensor, rt.rand((H,), seed=2))

    def test_closure_tensor_method(self):
        check(closure_tensor_method, rt.rand((H,), seed=3))

    def test_dtype_constants(self):
        check(dtype_constant, rt.tensor([1.7, -2.3]))

    def test_shape_sugar(self):
        check(shape_sugar, rt.rand((3, 5), seed=4))

    def test_nested_helper_inlining(self):
        check(nested_helpers, rt.rand((2,), seed=5))

    def test_helper_default_args(self):
        check(helper_with_defaults, rt.rand((2,), seed=6))

    def test_scalar_bool_ops(self):
        for a, b in ((1, 2), (-1, 2), (0, 0)):
            check(bool_ops, a, b)

    def test_chained_subscript_store(self):
        check(chained_subscript, rt.rand((2, 3), seed=7))

    def test_negative_indices(self):
        check(negative_indices, rt.rand((3, 4), seed=8))

    def test_none_unsqueeze(self):
        check(unsqueeze_via_none, rt.rand((3,), seed=9))

    def test_min_max_builtins(self):
        check(min_max_builtins, 3, 7, rt.rand((2,), seed=10))

    def test_abs_builtin(self):
        check(abs_builtin, -4, rt.rand((2,), seed=11))
        check(abs_builtin, 4, rt.rand((2,), seed=11))

    def test_while_counting(self):
        check(while_with_break_condition, rt.rand((2,), seed=12))


class TestDiagnostics:
    def _expect(self, fn, fragment):
        with pytest.raises(ScriptError) as err:
            script(fn)
        assert fragment in str(err.value), str(err.value)

    def test_unknown_method(self):
        def f(x):
            return x.definitely_not_a_method()
        self._expect(f, "unknown tensor method")

    def test_dict_literal(self):
        def f(x):
            d = {"a": x}
            return d["a"]
        self._expect(f, "unsupported")

    def test_for_over_list(self):
        def f(x):
            parts = [x, x]
            total = x * 0.0
            for p in parts:
                total = total + p
            return total
        self._expect(f, "range")

    def test_list_item_store(self):
        def f(x):
            parts = [x]
            parts[0] = x * 2.0
            return parts[0]
        self._expect(f, "list item assignment")

    def test_inline_recursion_guard(self):
        def loop_a(x):
            return loop_b(x)

        def loop_b(x):
            return loop_a(x)

        def f(x):
            return loop_a(x)
        self._expect(f, "too deep")

    def test_error_carries_line_number(self):
        def f(x):
            y = x + 1.0
            return {"bad": y}
        with pytest.raises(ScriptError) as err:
            script(f)
        assert "(f:" in str(err.value)

    def test_kwargs_call_rejected(self):
        def f(x):
            return _kw(**{"v": x})

        def _kw(v):
            return v
        self._expect(f, "**kwargs")


class TestGraphHygiene:
    def test_constants_deduped_per_block(self):
        def f(x):
            return x + 1.0 + 1.0 + 1.0
        g = script(f).graph
        ones = [n for n in g.block.nodes if n.op == "prim::Constant"
                and n.attrs.get("value") == 1.0]
        assert len(ones) == 1

    def test_scripted_callable_wraps_metadata(self):
        s = script(closure_scalar)
        assert s.__name__ == "closure_scalar"
        assert "graph" in repr(s)

    def test_scripting_a_scripted_fn_inlines(self):
        inner = script(_inner_helper)

        def f(x):
            return inner(x) * 2.0
        out = script(f)(rt.tensor([1.0]))
        assert out.item() == 4.0
