"""Reverse-mode autodiff over functional TensorSSA (``repro.grad``).

Covers the VJP registry metadata contract, per-op adjoint rules
(elementwise, matmul, reductions, softmax, views/indexing, cat/stack),
control-flow adjoints (``prim::If`` both arms, ``prim::Loop`` incl.
zero-trip and data-dependent while loops), gradient flow through
functionalized mutations (grad-of-view aliasing), end-to-end grad-checks
of the lstm/attention workloads against the 1e-4 acceptance gate,
bit-exactness of the optimized backward vs the interpreted one, the
harness/serve integration (``grad=True`` caching, family keying, obs
spans), and the typed :class:`~repro.errors.GradError` taxonomy.

Every analytic gradient is validated against central finite differences
at float64 through :func:`repro.grad.check.gradcheck`.
"""

import time

import numpy as np
import pytest

import repro.runtime as rt
from repro.backend.interpreter import run_graph
from repro.errors import GradError
from repro.eval.harness import (CompileCache, compile_cached_family,
                                compile_cached_status, run_workload)
from repro.grad import build_backward, grad
from repro.grad.check import (GradCheckConfig, check_workload_grad,
                              gradcheck)
from repro.models import get_workload
from repro.obs import coverage_fraction, tracing
from repro.ops import registry as op_registry
from repro.ops.schema import OpKind
from repro.pipelines.registry import get_pipeline
from repro.runtime.creation import promoting_f32_to
from repro.runtime.dtype import float64


def _randn(*shape, seed=0):
    """Deterministic float64 test tensor (well away from kinks)."""
    rng = np.random.default_rng(seed)
    return rt.from_numpy(rng.uniform(-1.5, 1.5, size=shape))


def _grads(fn, *args, wrt=None, out=None):
    """Build the backward graph and interpret it at float64."""
    _, bwd = build_backward(fn, wrt=wrt, out=out)
    with promoting_f32_to(float64):
        g = run_graph(bwd, args)
    return tuple(g) if isinstance(g, (tuple, list)) else (g,)


def _fd_check(fn, args, grads, wrt=None, samples=8, seed=0):
    """Grad-check ``grads`` of ``fn``'s summed outputs via central FD."""
    def loss(*a):
        cloned = [x.clone() if isinstance(x, rt.Tensor) else x for x in a]
        with promoting_f32_to(float64):
            outs = fn(*cloned)
        outs = outs if isinstance(outs, tuple) else (outs,)
        return sum(float(o.sum()) for o in outs if isinstance(o, rt.Tensor))

    result = gradcheck(loss, args, list(grads), wrt=wrt,
                       config=GradCheckConfig(samples_per_input=samples,
                                              seed=seed))
    assert result.ok, "\n".join(result.failures)
    assert result.checked > 0, "grad-check skipped every sampled element"
    return result


def _assert_grad_matches_fd(fn, *args, wrt=None, samples=8):
    """End-to-end: analytic gradients of ``fn`` agree with central FD."""
    grads = _grads(fn, *args)
    tensor_idx = [i for i, a in enumerate(args) if isinstance(a, rt.Tensor)]
    _fd_check(fn, args, grads, wrt=wrt if wrt is not None else tensor_idx,
              samples=samples)


# -- VJP registry metadata ---------------------------------------------------

class TestVJPRegistry:
    """The three-valued ``differentiable`` contract on OpSchema."""

    def test_differentiable_ops_all_have_vjps(self):
        missing = [s.name for s in op_registry.all_ops()
                   if s.differentiable is True and s.vjp is None]
        assert not missing, f"differentiable=True without a VJP: {missing}"

    def test_vjp_implies_differentiable_true(self):
        wrong = [s.name for s in op_registry.all_ops()
                 if s.vjp is not None and s.differentiable is not True]
        assert not wrong, f"VJP attached but not marked True: {wrong}"

    def test_mutating_ops_are_never_differentiable(self):
        bad = [s.name for s in op_registry.all_ops()
               if s.kind is OpKind.MUTATING and s.differentiable is not False]
        assert not bad, f"mutating ops must be differentiable=False: {bad}"

    def test_core_training_ops_are_covered(self):
        for name in ("aten::add", "aten::mul", "aten::div", "aten::matmul",
                     "aten::bmm", "aten::linear", "aten::sum", "aten::mean",
                     "aten::softmax", "aten::sigmoid", "aten::tanh",
                     "aten::relu", "aten::reshape", "aten::transpose",
                     "aten::select", "aten::slice", "aten::cat",
                     "aten::stack", "aten::where", "aten::expand"):
            schema = op_registry.get(name)
            assert schema.differentiable is True, f"{name} lacks a VJP"
            assert schema.vjp is not None

    def test_intentionally_nondiff_raises_typed_error(self):
        def predicate(x):
            return x > 0.0

        with pytest.raises(GradError, match="not differentiable"):
            build_backward(predicate)

    def test_unclassified_op_raises_no_vjp_registered(self, monkeypatch):
        schema = op_registry.get("aten::tanh")
        monkeypatch.setattr(schema, "differentiable", None)
        monkeypatch.setattr(schema, "vjp", None)

        def uses_tanh(x):
            return x.tanh().sum()

        with pytest.raises(GradError, match="no VJP registered"):
            build_backward(uses_tanh)

    def test_graderror_is_a_typed_compile_error(self):
        from repro.errors import CompileError
        assert issubclass(GradError, CompileError)
        assert GradError.retryable is False

    def test_eager_pipeline_refuses_grad(self):
        def f(x):
            return x.tanh().sum()

        with pytest.raises(GradError, match="tensorssa"):
            get_pipeline("eager").compile_grad(f)


# -- per-op adjoint rules ----------------------------------------------------

class TestElementwiseVJPs:
    """Numeric checks of the arithmetic/activation adjoint rules."""

    def test_broadcast_arithmetic(self):
        def f(x, y):
            return (x * y + x / (y.abs() + 2.0) - y).sum()

        _assert_grad_matches_fd(f, _randn(3, 4, seed=1), _randn(4, seed=2))

    def test_unary_chain(self):
        def f(x):
            return ((x.exp() + 1.0).log().sqrt().sigmoid().tanh()).sum()

        _assert_grad_matches_fd(f, _randn(3, 4, seed=3))

    def test_pow_with_scalar_exponent(self):
        def f(x):
            return ((x.abs() + 0.5) ** 3).sum()

        _assert_grad_matches_fd(f, _randn(3, 4, seed=4))

    def test_relu_and_where_masks(self):
        def f(x, y):
            z = rt.where(x > 0.0, x * y, y.exp())
            return (z.relu() + rt.maximum(x, y)).sum()

        # relu/maximum kinks at ties are skipped by design; inputs from
        # different seeds make exact ties measure-zero
        _assert_grad_matches_fd(f, _randn(3, 4, seed=5), _randn(3, 4, seed=6))

    def test_reductions(self):
        def f(x):
            return x.sum(1).tanh().sum() + x.mean(0).exp().sum() + x.max()

        _assert_grad_matches_fd(f, _randn(3, 4, seed=7))

    def test_softmax_and_log_softmax(self):
        def f(x):
            return (rt.softmax(x, 1) * rt.log_softmax(x, 1)).sum()

        _assert_grad_matches_fd(f, _randn(3, 4, seed=8))

    def test_matmul_and_bmm(self):
        def f(x, y, z):
            return ((x @ y).tanh() @ z).sum()

        _assert_grad_matches_fd(f, _randn(3, 4, seed=9),
                                _randn(4, 5, seed=10), _randn(5, 2, seed=11))

    def test_wrt_and_out_selection(self):
        def f(x, y):
            return (x * y).sum(), (x + y).sum()

        x, y = _randn(3, seed=12), _randn(3, seed=13)
        (gx,) = _grads(f, x, y, wrt=[0], out=0)
        np.testing.assert_allclose(gx.numpy(), y.numpy(), rtol=1e-12)


class TestViewAliasing:
    """Gradients through views, indexing, and functionalized writes."""

    def test_select_and_slice_reads(self):
        def f(x):
            return (x[0] * x[2:4].sum(0)).sum() + x[1].tanh().sum()

        _assert_grad_matches_fd(f, _randn(5, 4, seed=20))

    def test_write_through_view_aliases_source(self):
        def f(x):
            y = x.clone()
            y[0] = x[1] * 2.0
            y[2:4] *= 0.5
            return (y * y).sum()

        _assert_grad_matches_fd(f, _randn(5, 4, seed=21))

    def test_cat_and_stack_route_grads_per_element(self):
        def f(x, y):
            z = rt.cat([x * 2.0, y.tanh()], 0)
            w = rt.stack([x.sum(0), y.sum(0)], 0)
            return (z * z).sum() + w.exp().sum()

        _assert_grad_matches_fd(f, _randn(2, 3, seed=22), _randn(4, 3, seed=23))

    def test_reshape_transpose_expand(self):
        def f(x, y):
            a = x.reshape((4, 3)).transpose(0, 1)
            return (a * y.expand((3, 4))).sum()

        _assert_grad_matches_fd(f, _randn(2, 6, seed=24), _randn(1, 4, seed=25))

    def test_view_grad_does_not_leak_across_alias(self):
        """After ``y[0] = c``, the overwritten window of x's clone gets
        zero gradient — the write severs the adjoint path."""
        def f(x):
            y = x.clone()
            y[0] = 0.0
            return (y * y).sum()

        x = _randn(3, 4, seed=26)
        (gx,) = _grads(f, x)
        expect = 2.0 * x.numpy()
        expect[0] = 0.0
        np.testing.assert_allclose(gx.numpy(), expect, rtol=1e-12)


# -- control-flow adjoints ---------------------------------------------------

class TestIfAdjoint:
    """Differentiating both arms of ``prim::If``."""

    @pytest.mark.parametrize("flag", [True, False])
    def test_both_arms_match_fd(self, flag):
        def f(x, flag: bool):
            y = x.clone()
            if flag:
                y = y * x.sigmoid()
            else:
                y = y + x.exp()
            return (y * y).sum()

        _assert_grad_matches_fd(f, _randn(3, 4, seed=30), flag, wrt=[0])

    @pytest.mark.parametrize("flag", [True, False])
    def test_multi_output_branches(self, flag):
        def f(x, flag: bool):
            if flag:
                a = x.tanh()
                b = x * 2.0
            else:
                a = x.exp()
                b = x - 1.0
            return (a * b).sum()

        _assert_grad_matches_fd(f, _randn(3, 4, seed=31), flag, wrt=[0])

    @pytest.mark.parametrize("flag", [True, False])
    def test_branch_with_window_writes(self, flag):
        def f(x, flag: bool):
            y = x.clone()
            z = x.tanh()
            if flag:
                y[0] = z[1] * 2.0
            else:
                y[1:3] *= z[0:2]
            return (y * y).sum()

        _assert_grad_matches_fd(f, _randn(4, 4, seed=32), flag, wrt=[0])

    def test_untouched_capture_gets_zero_grad(self):
        def f(x, y, flag: bool):
            if flag:
                z = x * 2.0
            else:
                z = y * 3.0
            return (z * z).sum()

        x, y = _randn(3, seed=33), _randn(3, seed=34)
        gx, gy = _grads(f, x, y, True)
        np.testing.assert_allclose(gx.numpy(), 8.0 * x.numpy(), rtol=1e-12)
        np.testing.assert_allclose(gy.numpy(), np.zeros(3), atol=0.0)


class TestLoopAdjoint:
    """The tape-free count/replay-stash/reverse scan over prim::Loop."""

    def test_for_loop_matches_fd(self):
        def f(x, n: int):
            y = x.clone()
            for i in range(n):
                y = y * x.sigmoid() + y.tanh()
            return (y * y).sum()

        _assert_grad_matches_fd(f, _randn(3, 4, seed=40), 3, wrt=[0])

    def test_zero_trip_loop_passes_seed_through(self):
        def f(x, n: int):
            y = x.clone()
            for i in range(n):
                y = y * 0.5
            return (y * y).sum()

        x = _randn(3, 4, seed=41)
        (gx,) = _grads(f, x, 0)
        np.testing.assert_allclose(gx.numpy(), 2.0 * x.numpy(), rtol=1e-12)
        _assert_grad_matches_fd(f, x, 0, wrt=[0])

    def test_capture_adjoints_accumulate_across_iterations(self):
        """x enters the loop body every iteration; its adjoint is the
        sum of all per-iteration contributions."""
        def f(x, n: int):
            y = x.clone()
            for i in range(n):
                y = y + x.exp() * float(i + 1)
            return y.sum()

        x = _randn(3, seed=42)
        (gx,) = _grads(f, x, 4)
        expect = 1.0 + (1 + 2 + 3 + 4) * np.exp(x.numpy())
        np.testing.assert_allclose(gx.numpy(), expect, rtol=1e-10)

    def test_while_loop_with_datadep_trip_count(self):
        def f(x, n: int):
            y = x.clone()
            s = y.sum()
            while bool(s < float(n)):
                y = y + y.sigmoid()
                s = y.sum()
            return (y * y).sum()

        _assert_grad_matches_fd(f, _randn(3, 4, seed=43), 5, wrt=[0])

    def test_loop_with_mutation_in_body(self):
        """A local clone mutated inside the body functionalizes, so its
        adjoint flows through select_assign like straight-line code."""
        def f(x, n: int):
            y = x.clone()
            for i in range(n):
                z = y.clone()
                z[0] = x[1] * 2.0
                y = z * x.sigmoid()
            return (y * y).sum()

        _assert_grad_matches_fd(f, _randn(3, 4, seed=44), 2, wrt=[0])

    def test_carried_mutation_refused_with_typed_error(self):
        """Writes to a loop-carried tensor are skipped by the converter
        (residual ``aten::copy_``); grad() must refuse with a typed
        GradError rather than differentiate imperative state."""
        def f(x, n: int):
            y = x.clone()
            for i in range(n):
                y[0] = x[1] * 2.0
                y = y * x.sigmoid()
            return (y * y).sum()

        with pytest.raises(GradError, match="mutation"):
            build_backward(f)

    def test_nested_loop_and_branch(self):
        def f(x, flag: bool, n: int):
            y = x.clone()
            for i in range(n):
                if flag:
                    y = y * x.sigmoid()
                else:
                    y = y + x.tanh()
            return (y * y).sum()

        _assert_grad_matches_fd(f, _randn(3, 4, seed=45), True, 2, wrt=[0])
        _assert_grad_matches_fd(f, _randn(3, 4, seed=46), False, 2, wrt=[0])


# -- end-to-end: workloads, optimization, harness ----------------------------

class TestEndToEnd:
    """The acceptance gates: real models, optimized backward, caching."""

    @pytest.mark.parametrize("workload", ["lstm", "attention"])
    def test_workload_gradcheck_within_gate(self, workload):
        result = check_workload_grad(workload, batch_size=1, seq_len=4,
                                     samples_per_input=4)
        assert result.ok, "\n".join(result.failures)
        assert result.max_rel_err < 1e-4
        assert result.checked > 0

    @pytest.mark.parametrize("workload", ["lstm", "attention"])
    def test_optimized_backward_bit_exact_vs_interpreted(self, workload):
        wl = get_workload(workload)
        args = wl.make_inputs(batch_size=2, seq_len=6, seed=0)
        compiled = get_pipeline("tensorssa").compile_grad(wl.model_fn)
        fused = compiled(*args)
        ref = compiled.stats["grad_reference"](*args)
        fused = fused if isinstance(fused, tuple) else (fused,)
        ref = ref if isinstance(ref, tuple) else (ref,)
        assert len(fused) == len(ref)
        for a, b in zip(fused, ref):
            assert np.array_equal(a.numpy(), b.numpy()), \
                "optimized backward is not bit-exact"

    def test_backward_graph_is_fused(self):
        wl = get_workload("lstm")
        compiled = get_pipeline("tensorssa").compile_grad(wl.model_fn)
        assert compiled.stats.get("fusion_groups", 0) > 0

    def test_run_workload_grad_checks_against_interpreted(self):
        result = run_workload("lstm", "tensorssa", batch_size=2, seq_len=6,
                              grad=True, check=True, cache=CompileCache())
        assert result.latency_us > 0

    def test_grad_compile_is_cached_and_keyed_separately(self):
        wl = get_workload("attention")
        pipe = get_pipeline("tensorssa")
        args = wl.make_inputs(batch_size=2, seq_len=6, seed=0)
        cache = CompileCache()
        _, hit1 = compile_cached_status(pipe, wl, args, cache=cache,
                                        grad=True)
        _, hit2 = compile_cached_status(pipe, wl, args, cache=cache,
                                        grad=True)
        _, hit_fwd = compile_cached_status(pipe, wl, args, cache=cache)
        assert (hit1, hit2) == (False, True)
        assert hit_fwd is False, "forward must not reuse the backward key"

    def test_double_compile_through_family_cache_is_idempotent(self):
        wl = get_workload("attention")
        pipe = get_pipeline("tensorssa")
        cache = CompileCache()
        a1 = wl.make_inputs(batch_size=2, seq_len=6, seed=0)
        c1, hit1, fam1, out1 = compile_cached_family(pipe, wl, a1,
                                                     cache=cache, grad=True)
        a2 = wl.make_inputs(batch_size=3, seq_len=6, seed=1)
        c2, hit2, fam2, out2 = compile_cached_family(pipe, wl, a2,
                                                     cache=cache, grad=True)
        assert (hit1, out1) == (False, "new")
        assert (hit2, out2) == (True, "hit")
        assert fam1.family_id == fam2.family_id
        assert c1 is c2, "one family, one backward artifact"
        g1 = c1(*a1)
        g2 = c2(*a2)  # different batch size through the same artifact
        g1 = g1 if isinstance(g1, tuple) else (g1,)
        g2 = g2 if isinstance(g2, tuple) else (g2,)
        assert g1[0].shape[0] == 2 and g2[0].shape[0] == 3


class TestObsIntegration:
    """The backward path is visible to the tracing layer."""

    def test_grad_spans_and_coverage(self):
        with tracing(seed=0) as tr:
            t0 = time.perf_counter()
            run_workload("lstm", "tensorssa", batch_size=2, seq_len=6,
                         grad=True, cache=CompileCache())
            t1 = time.perf_counter()
        names = {s.name for s in tr.spans}
        assert "pass:grad" in names
        assert "harness:backward" in names
        assert "harness:compile" in names
        assert coverage_fraction(tr, (t0, t1)) >= 0.95

    def test_backward_span_nests_inside_execute(self):
        with tracing(seed=0) as tr:
            run_workload("attention", "tensorssa", batch_size=2, seq_len=6,
                         grad=True, cache=CompileCache())
        bwd = [s for s in tr.spans if s.name == "harness:backward"]
        assert bwd, "no harness:backward span emitted"
        execs = [s for s in tr.spans if s.name == "harness:execute"]
        assert any(e.start_s <= b.start_s and b.end_s <= e.end_s
                   for b in bwd for e in execs), \
            "harness:backward must nest inside harness:execute"


class TestGradCheckHarness:
    """The FD harness itself: kink skipping and failure reporting."""

    def test_kinks_are_skipped_not_failed(self):
        x = rt.from_numpy(np.array([0.0, 1.0, -1.0]))

        def loss(t):
            return float(t.abs().sum())

        analytic = rt.from_numpy(np.array([0.0, 1.0, -1.0]))
        result = gradcheck(loss, (x,), [analytic],
                           config=GradCheckConfig(samples_per_input=3))
        assert result.ok
        assert result.skipped >= 1, "|x| at 0 must be detected as a kink"
        assert result.checked == 3 - result.skipped

    def test_wrong_gradient_is_reported(self):
        x = rt.from_numpy(np.array([0.5, -0.75, 1.25]))

        def loss(t):
            return float((t * t).sum())

        wrong = rt.from_numpy(np.zeros(3))
        result = gradcheck(loss, (x,), [wrong],
                           config=GradCheckConfig(samples_per_input=3))
        assert not result.ok
        assert result.failures and result.max_rel_err > 0.1
