"""Graceful degradation: breaker state machine, retry backoff bounds,
fallback-chain ordering, resilient harness runs, server ladder, and the
shutdown-drain contract (``repro.degrade`` + consumers)."""

import random

import numpy as np
import pytest

from repro.degrade import (BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN,
                           BreakerRegistry, CircuitBreaker, DEFAULT_LADDER,
                           RetryPolicy, fallback_chain)
from repro.errors import KernelError, ServerShutdown
from repro.eval.harness import (CompileCache, run_workload,
                                run_workload_resilient)
from repro.faults import (FaultPlan, FaultRule, SITE_BATCH_EXEC,
                          SITE_KERNEL_LAUNCH, SITE_PASS, fault_scope,
                          global_fault_scope)
from repro.serve import (STATUS_CANCELLED, STATUS_ERROR, ServePolicy,
                         Server)


def _bit_equal(a, b):
    a = a if isinstance(a, tuple) else (a,)
    b = b if isinstance(b, tuple) else (b,)
    assert len(a) == len(b)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x.numpy(), y.numpy())


# -- fallback chain ------------------------------------------------------


def test_fallback_chain_full_ladder_from_top():
    assert fallback_chain("tensorssa") == DEFAULT_LADDER


def test_fallback_chain_slices_from_requested_rung():
    assert fallback_chain("tensorssa_noplan") == \
        ("tensorssa_noplan", "ts_nnc", "eager")
    assert fallback_chain("ts_nnc") == ("ts_nnc", "eager")


def test_fallback_chain_eager_is_its_own_floor():
    assert fallback_chain("eager") == ("eager",)


def test_fallback_chain_off_ladder_pipeline_gets_eager_floor():
    assert fallback_chain("dynamo_inductor") == ("dynamo_inductor", "eager")


def test_fallback_chain_custom_ladder_always_ends_eager():
    assert fallback_chain("ts_nnc", ladder=("ts_nnc",)) == \
        ("ts_nnc", "eager")


# -- circuit breaker -----------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def test_breaker_opens_at_failure_rate():
    clk = FakeClock()
    b = CircuitBreaker(failure_rate=0.5, window=8, min_calls=4,
                       reset_timeout_s=1.0, clock=clk)
    assert b.state == BREAKER_CLOSED
    b.record_failure()
    b.record_failure()
    b.record_failure()
    assert b.state == BREAKER_CLOSED  # below min_calls
    b.record_failure()
    assert b.state == BREAKER_OPEN
    assert b.transitions == {"closed->open": 1}
    assert not b.allow()


def test_breaker_stays_closed_below_rate():
    b = CircuitBreaker(failure_rate=0.5, window=8, min_calls=4,
                       clock=FakeClock())
    for _ in range(6):
        b.record_success()
    b.record_failure()
    b.record_failure()
    assert b.state == BREAKER_CLOSED  # 2/8 failures < 0.5


def test_breaker_half_open_probe_success_closes():
    clk = FakeClock()
    b = CircuitBreaker(min_calls=1, failure_rate=1.0, reset_timeout_s=1.0,
                       clock=clk)
    b.record_failure()
    assert b.state == BREAKER_OPEN
    assert not b.allow()            # cooldown not elapsed
    clk.advance(1.5)
    assert b.allow()                # the single half-open probe
    assert b.state == BREAKER_HALF_OPEN
    assert not b.allow()            # only one probe outstanding
    b.record_success()
    assert b.state == BREAKER_CLOSED
    assert b.allow()
    assert b.transitions == {"closed->open": 1, "open->half_open": 1,
                             "half_open->closed": 1}


def test_breaker_half_open_probe_failure_reopens():
    clk = FakeClock()
    b = CircuitBreaker(min_calls=1, failure_rate=1.0, reset_timeout_s=1.0,
                       clock=clk)
    b.record_failure()
    clk.advance(1.5)
    assert b.allow()
    b.record_failure()
    assert b.state == BREAKER_OPEN
    assert not b.allow()  # cooldown restarts from the probe failure
    clk.advance(1.5)
    assert b.allow()


def test_breaker_registry_aggregates_transitions():
    reg = BreakerRegistry(min_calls=1, failure_rate=1.0,
                          reset_timeout_s=99.0, clock=FakeClock())
    reg.breaker("lstm", "tensorssa").record_failure()
    reg.breaker("attention", "ts_nnc").record_failure()
    assert reg.breaker("lstm", "tensorssa") is \
        reg.breaker("lstm", "tensorssa")
    assert reg.transitions() == {"closed->open": 2}
    assert reg.states() == {"lstm/tensorssa": BREAKER_OPEN,
                            "attention/ts_nnc": BREAKER_OPEN}


# -- retry backoff -------------------------------------------------------


def test_retry_delay_within_jitter_bounds():
    policy = RetryPolicy(max_retries=5, base_delay_s=0.01,
                         max_delay_s=0.05, jitter=0.5)
    rng = random.Random(0)
    for k in range(6):
        expected = min(0.01 * 2 ** k, 0.05)
        for _ in range(20):
            d = policy.delay_s(k, rng)
            assert expected <= d <= expected * 1.5 + 1e-12


def test_retry_delay_caps_at_max():
    policy = RetryPolicy(base_delay_s=0.01, max_delay_s=0.03, jitter=0.0)
    rng = random.Random(0)
    assert policy.delay_s(10, rng) == pytest.approx(0.03)


# -- resilient harness runs ----------------------------------------------


def test_resilient_faultless_is_bit_exact_at_depth_zero():
    cache = CompileCache()
    plain = run_workload("lstm", "tensorssa", seq_len=8, cache=cache)
    res = run_workload_resilient("lstm", "tensorssa", seq_len=8,
                                 cache=CompileCache(),
                                 breakers=BreakerRegistry())
    assert res.served_by == "tensorssa"
    assert res.fallback_depth == 0
    assert not res.degraded
    assert res.attempts == 1
    _bit_equal(res.outputs, plain.outputs)


def test_resilient_descends_to_eager_under_persistent_compile_fault():
    """A pass failure is non-retryable: every compiled rung dies at
    compile time and eager serves — still bit-exact with eager."""
    ref = run_workload("lstm", "eager", seq_len=8, cache=CompileCache())
    plan = FaultPlan([FaultRule(site=SITE_PASS, probability=1.0,
                                times=None)])
    with fault_scope(plan):
        res = run_workload_resilient(
            "lstm", "tensorssa", seq_len=8, cache=CompileCache(),
            breakers=BreakerRegistry(),
            retry=RetryPolicy(max_retries=1, base_delay_s=0.0001,
                              max_delay_s=0.001))
    assert res.served_by == "eager"
    assert res.degraded
    assert res.fallback_depth == len(DEFAULT_LADDER) - 1
    _bit_equal(res.outputs, ref.outputs)


def test_resilient_retries_transient_retryable_fault_in_rung():
    """One transient kernel fault is absorbed by an in-rung retry: the
    request is still served at depth 0."""
    plan = FaultPlan([FaultRule(site=SITE_KERNEL_LAUNCH, nth=0, times=1)])
    with fault_scope(plan):
        res = run_workload_resilient(
            "lstm", "tensorssa", seq_len=8, cache=CompileCache(),
            breakers=BreakerRegistry(),
            retry=RetryPolicy(max_retries=1, base_delay_s=0.0001,
                              max_delay_s=0.001))
    assert plan.num_fired == 1
    assert res.served_by == "tensorssa"
    assert res.fallback_depth == 0
    assert res.attempts == 2


def test_resilient_raises_typed_error_when_all_rungs_fail():
    plan = FaultPlan([FaultRule(site=SITE_KERNEL_LAUNCH, probability=1.0,
                                times=None)])
    with fault_scope(plan):
        with pytest.raises(KernelError):
            run_workload_resilient(
                "lstm", "tensorssa", seq_len=8, cache=CompileCache(),
                breakers=BreakerRegistry(),
                retry=RetryPolicy(max_retries=0, base_delay_s=0.0001))


# -- server ladder -------------------------------------------------------


def _ladder_policy(**kw):
    base = dict(workers=2, max_batch_size=4, batch_wait_s=0.001,
                verify="batch", ladder_enabled=True, max_retries=1,
                retry_base_delay_s=0.0001, retry_max_delay_s=0.001,
                breaker_reset_s=0.02)
    base.update(kw)
    return ServePolicy(**base)


def test_server_ladder_serves_bit_exact_through_fallback():
    """Persistent batch failures on both tensorssa rungs: requests are
    served by a lower rung, verified bit-exact against eager."""
    plan = FaultPlan([FaultRule(site=SITE_BATCH_EXEC, match="tensorssa",
                                probability=1.0, times=None)])
    with Server(_ladder_policy()) as srv:
        with global_fault_scope(plan):
            resps = [f.result(timeout=30)
                     for f in [srv.submit("lstm", seq_len=8, seed=s)
                               for s in range(4)]]
        stats = srv.stats
    for resp in resps:
        assert resp.ok
        assert resp.served_by not in ("tensorssa", "tensorssa_noplan")
        assert resp.degraded and resp.fallback_depth >= 2
        assert resp.verified is not False  # batch oracle: bit-exact
    assert stats.degraded >= 4
    assert sum(k >= 2 for k in stats.fallback_depth_hist) >= 1


def test_server_ladder_disabled_faultless_unchanged():
    """With the ladder off and no faults, responses look exactly like
    the pre-ladder serving layer: depth 0, not degraded, verified."""
    policy = ServePolicy(workers=2, max_batch_size=4, batch_wait_s=0.001,
                         verify="batch", ladder_enabled=False)
    with Server(policy) as srv:
        resps = [f.result(timeout=30)
                 for f in [srv.submit("attention", seq_len=8, seed=s)
                           for s in range(4)]]
    for resp in resps:
        assert resp.ok
        assert resp.served_by == "tensorssa"
        assert resp.fallback_depth == 0
        assert not resp.degraded
        assert resp.verified is True


def test_server_ladder_faultless_depth_zero():
    with Server(_ladder_policy()) as srv:
        resp = srv.submit("lstm", seq_len=8).result(timeout=30)
    assert resp.ok and resp.served_by == "tensorssa"
    assert resp.fallback_depth == 0 and not resp.degraded


# -- shutdown contract (satellite regression) ----------------------------


def test_shutdown_no_drain_cancels_queued_with_typed_error():
    # classic flush-once scheduler: requests sit *queued* (unclaimed)
    # for batch_wait_s, so a no-drain shutdown must cancel them.  Under
    # continuous batching an idle worker claims them immediately and
    # in-flight work completes instead (see test_serve.py).
    policy = ServePolicy(workers=1, max_batch_size=64, batch_wait_s=5.0,
                         request_timeout_s=60.0, continuous_batching=False)
    srv = Server(policy)
    futs = [srv.submit("lstm", seq_len=8, seed=s) for s in range(3)]
    srv.shutdown(drain=False, timeout=10.0)
    for fut in futs:
        resp = fut.result(timeout=5)  # resolved, not hanging
        assert resp.status == STATUS_CANCELLED
        assert resp.error


def test_submit_after_shutdown_raises_server_shutdown():
    srv = Server(ServePolicy(workers=1))
    srv.shutdown()
    with pytest.raises(ServerShutdown):
        srv.submit("lstm", seq_len=8)
    # backward compat: ServerShutdown still reads as a RuntimeError
    with pytest.raises(RuntimeError):
        srv.submit("lstm", seq_len=8)


def test_worker_survives_executor_crash_and_scatters_errors():
    """An exception escaping the executor must not kill the worker or
    leave futures unresolved."""
    policy = ServePolicy(workers=1, max_batch_size=2, batch_wait_s=0.001)
    srv = Server(policy)
    boom = {"n": 0}

    def exploding_execute(batch):
        boom["n"] += 1
        raise ValueError("synthetic executor bug")

    srv.executor.execute = exploding_execute
    try:
        futs = [srv.submit("lstm", seq_len=8, seed=s) for s in range(4)]
        resps = [f.result(timeout=10) for f in futs]
    finally:
        srv.shutdown(drain=False, timeout=5.0)
    assert boom["n"] >= 1
    for resp in resps:
        assert resp.status == STATUS_ERROR
        assert "executor crashed" in resp.error


def test_shutdown_drain_serves_everything_queued():
    policy = ServePolicy(workers=1, max_batch_size=4, batch_wait_s=0.05)
    srv = Server(policy)
    futs = [srv.submit("lstm", seq_len=8, seed=s) for s in range(4)]
    srv.shutdown(drain=True, timeout=30.0)
    for fut in futs:
        assert fut.result(timeout=5).ok
