"""Symbolic shape families: symbols, guards, families, bucketing,
family-keyed compilation, and dynamic-shape serving."""

import numpy as np
import pytest

import repro.runtime as rt
from repro.eval.harness import (CompileCache, compile_cached_family,
                                family_key, run_workload)
from repro.memplan.planner import plans_built
from repro.models import get_workload
from repro.pipelines import get_pipeline
from repro.serve import ServePolicy, Server
from repro.serve.batching import group_key
from repro.serve.request import Request
from repro.symshape import (DEGENERATE_EXTENTS, FamilyTable, Guard,
                            GuardSet, PadSpec, ShapeFamily,
                            SizeVarAllocator, SymInt, bucket_extent,
                            compiling_family, evaluate_dim,
                            get_pad_spec, guard_eq, guard_ge,
                            guard_mod, pad_args,
                            record_specialization_guard, sym_max,
                            symbolize_signature, unpad_outputs)


# -- symbols -------------------------------------------------------------

class TestSymInt:
    def test_arithmetic_evaluates(self):
        s = SymInt.sym("s0")
        expr = (s * 4 + 2) // 3 % 5
        assert expr.evaluate({"s0": 7}) == ((7 * 4 + 2) // 3) % 5

    def test_constant_folding(self):
        assert (SymInt.const(6) * SymInt.const(7)).value == 42

    def test_identity_simplification(self):
        s = SymInt.sym("s0")
        assert s + 0 == s
        assert s * 1 == s
        assert s - s == SymInt.const(0)
        assert s // 1 == s
        assert s % 1 == SymInt.const(0)
        assert sym_max(s, s) == s

    def test_value_equality_and_hash(self):
        a = SymInt.sym("s0") + 1
        b = SymInt.sym("s0") + 1
        assert a == b and hash(a) == hash(b)
        assert a != SymInt.sym("s1") + 1

    def test_evaluate_dim_accepts_plain_ints(self):
        assert evaluate_dim(5, {}) == 5
        assert evaluate_dim(SymInt.sym("s0"), {"s0": 9}) == 9


class TestSizeVarAllocator:
    def test_duck_shaping_shares_symbols(self):
        alloc = SizeVarAllocator()
        dims = alloc.symbolize_shape((16, 4, 16))
        assert dims[0] is dims[2] or dims[0] == dims[2]
        assert dims[0] != dims[1]
        assert alloc[16] == dims[0]

    def test_degenerate_extents_stay_constant(self):
        alloc = SizeVarAllocator()
        for extent in sorted(DEGENERATE_EXTENTS):
            dim = alloc[extent]
            assert dim.is_const and dim.value == extent
        assert alloc[2].is_symbol

    def test_bindings_round_trip(self):
        alloc = SizeVarAllocator()
        alloc.symbolize_shape((8, 3))
        env = alloc.bindings()
        assert sorted(env.values()) == [3, 8]


# -- guards --------------------------------------------------------------

class TestGuards:
    def test_kinds_evaluate(self):
        s = SymInt.sym("s0")
        assert guard_eq(s, 16).holds({"s0": 16})
        assert not guard_eq(s, 16).holds({"s0": 17})
        assert guard_ge(s, 2).holds({"s0": 2})
        assert not guard_ge(s, 2).holds({"s0": 1})
        assert guard_mod(s, 8).holds({"s0": 24})
        assert not guard_mod(s, 8).holds({"s0": 20})

    def test_unbound_symbol_fails_closed(self):
        assert not guard_ge(SymInt.sym("s0"), 2).holds({})

    def test_guardset_dedups_and_reports_first_failure(self):
        s = SymInt.sym("s0")
        gs = GuardSet()
        assert gs.add(guard_mod(s, 8))
        assert not gs.add(guard_mod(s, 8))
        gs.add(guard_eq(s, 24))
        assert gs.check({"s0": 24}) is None
        failing = gs.check({"s0": 16})
        assert failing == guard_eq(s, 24)

    def test_vacuous_and_unsatisfiable_constants(self):
        gs = GuardSet()
        assert not gs.add(guard_ge(SymInt.const(4), 2))  # always true
        with pytest.raises(ValueError):
            gs.add(guard_eq(SymInt.const(4), 5))

    def test_repr_reads_like_a_predicate(self):
        assert "s0 % 8 == 0" in repr(guard_mod(SymInt.sym("s0"), 8))


# -- families ------------------------------------------------------------

class TestShapeFamily:
    def _mint(self, signature, mod_hints=()):
        table = FamilyTable()
        family, outcome = table.resolve(("p", "w"), signature,
                                        mod_hints=mod_hints)
        family.seal()
        return table, family, outcome

    def test_signature_symbolization_splits_on_bools(self):
        sym_sig, env = symbolize_signature(((4, 6), True, 3))
        assert sym_sig[1] is True
        assert isinstance(sym_sig[2], SymInt) and sym_sig[2].is_symbol
        assert set(env.values()) == {4, 6, 3}

    def test_same_family_serves_new_extents(self):
        table, family, outcome = self._mint(((4, 6),))
        assert outcome == "new"
        again, outcome2 = table.resolve(("p", "w"), ((32, 6),))
        assert outcome2 == "hit" and again is family

    def test_distinct_symbols_may_bind_equal_extents(self):
        table, family, _ = self._mint(((4, 6),))
        _, outcome = table.resolve(("p", "w"), ((6, 6),))
        assert outcome == "hit"

    def test_duck_equality_is_enforced(self):
        # seed (16, 16) duck-shares one symbol: unequal extents split
        table, family, _ = self._mint(((16, 16),))
        sibling, outcome = table.resolve(("p", "w"), ((16, 32),))
        assert outcome == "new" and sibling is not family

    def test_degenerate_extent_specializes(self):
        table, family, _ = self._mint(((4, 6),))
        # batch 1 was traced generically (>= 2): it must NOT reuse the
        # artifact — size-1 dims broadcast
        sibling, outcome = table.resolve(("p", "w"), ((1, 6),))
        assert sibling is not family
        assert outcome == "new"
        sibling.seal()
        # ... but further size-1 requests reuse the specialized sibling
        _, outcome2 = table.resolve(("p", "w"), ((1, 6),))
        assert outcome2 == "hit"

    def test_guard_miss_mints_sibling_and_counts(self):
        table, family, _ = self._mint(((4, 6),))
        family.record_guard(guard_eq(family.symbol_at(0, 0), 4))
        sibling, outcome = table.resolve(("p", "w"), ((8, 6),))
        assert outcome == "guard_miss" and sibling is not family
        snap = table.snapshot()
        assert snap.guard_misses == 1 and snap.news == 1
        assert snap.families == 2

    def test_mod_hint_becomes_guard(self):
        table, family, _ = self._mint(((8, 6),),
                                      mod_hints=((0, 0, 8),))
        _, outcome = table.resolve(("p", "w"), ((16, 6),))
        assert outcome == "hit"
        _, outcome2 = table.resolve(("p", "w"), ((12, 6),))
        assert outcome2 == "guard_miss"

    def test_pending_family_admits_only_its_seed(self):
        table = FamilyTable()
        family, _ = table.resolve(("p", "w"), ((4, 6),))
        assert family.pending
        other, outcome = table.resolve(("p", "w"), ((8, 6),))
        assert other is not family  # mid-compile: guards still growing
        family.seal()
        _, outcome2 = table.resolve(("p", "w"), ((32, 6),))
        assert outcome2 == "hit"

    def test_peek_never_mints_or_counts(self):
        table, family, _ = self._mint(((4, 6),))
        before = table.snapshot()
        assert table.peek(("p", "w"), ((64, 6),)) is family
        assert table.peek(("p", "w"), ((4, 6, 8),)) is None
        after = table.snapshot()
        assert after.hits == before.hits
        assert after.families == before.families

    def test_observe_tracks_max_extents(self):
        table, family, _ = self._mint(((4, 6),))
        table.resolve(("p", "w"), ((32, 6),))
        assert 32 in family.extent_bounds().values()

    def test_record_specialization_guard_via_context(self):
        table, family, _ = self._mint(((4, 6), 3))
        with compiling_family(family):
            assert record_specialization_guard(1, None, 3)
            # constant dims need no guard: the fold is family-wide
            assert not record_specialization_guard(9, None, 3)
        assert record_specialization_guard(0, 0, 4) is False  # no scope


# -- bucketing -----------------------------------------------------------

class TestBucketing:
    def test_bucket_extent_powers_of_two(self):
        assert bucket_extent(3, bucket_min=8) == 8
        assert bucket_extent(8, bucket_min=8) == 8
        assert bucket_extent(9, bucket_min=8) == 16
        assert bucket_extent(33, bucket_min=8) == 64

    def test_pad_round_trip_is_exact(self):
        spec = get_pad_spec("attention")
        assert spec is not None
        wl = get_workload("attention")
        args = wl.make_inputs(batch_size=2, seq_len=11, seed=3)
        padded = pad_args(args, spec, target=16)
        for orig, pad, axis in zip(args, padded, spec.arg_axes):
            if axis is None:
                continue
            assert pad.shape[axis] == 16
            sl = [slice(None)] * pad.numpy().ndim
            sl[axis] = slice(0, 11)
            np.testing.assert_array_equal(pad.numpy()[tuple(sl)],
                                          orig.numpy())
        round_trip = PadSpec(
            arg_axes=spec.arg_axes,
            out_axes=tuple((a,) if a is not None else None
                           for a in spec.arg_axes))
        outs = unpad_outputs(padded, round_trip, extent=11)
        for out, orig in zip(outs, args):
            np.testing.assert_array_equal(out.numpy(), orig.numpy())

    def test_pad_down_raises(self):
        spec = get_pad_spec("lstm")
        wl = get_workload("lstm")
        args = wl.make_inputs(batch_size=1, seq_len=16, seed=0)
        with pytest.raises(ValueError):
            pad_args(args, spec, target=8)

    def test_group_key_buckets_pad_axis(self):
        from repro.serve.batching import get_batch_spec
        wl = get_workload("lstm")
        spec = get_batch_spec("lstm")
        base = wl.make_inputs(batch_size=1, seq_len=48, seed=0)

        def req(seq_len):
            fresh = wl.make_inputs(batch_size=1, seq_len=seq_len, seed=0)
            args = tuple(fresh[k] if axis is not None else base[k]
                         for k, axis in enumerate(spec.arg_axes))
            return Request(workload=wl, pipeline="tensorssa",
                           platform="datacenter", args=args,
                           batch_rows=1)

        k10 = group_key(req(10), bucket_min=8)
        k14 = group_key(req(14), bucket_min=8)
        k20 = group_key(req(20), bucket_min=8)
        assert k10 == k14            # both pad to bucket 16
        assert k10 != k20            # bucket 32
        assert group_key(req(10)) != group_key(req(14))  # concrete keys


# -- family-keyed compilation -------------------------------------------

class TestFamilyCompile:
    def test_warm_family_zero_compiles_zero_plans(self):
        cache = CompileCache()
        pipe = get_pipeline("tensorssa")
        wl = get_workload("lstm")
        cold_args = wl.make_inputs(batch_size=2, seq_len=16, seed=0)
        compiled, hit, family, outcome = compile_cached_family(
            pipe, wl, cold_args, cache=cache)
        assert outcome == "new" and not hit

        warm_args = wl.make_inputs(batch_size=3, seq_len=24, seed=1)
        plans_before = plans_built()
        snap_before = cache.snapshot()
        compiled2, hit2, family2, outcome2 = compile_cached_family(
            pipe, wl, warm_args, cache=cache)
        snap_after = cache.snapshot()

        assert outcome2 == "hit" and hit2
        assert family2 is family
        assert compiled2 is compiled
        assert snap_after.misses == snap_before.misses          # 0 compiles
        assert snap_after.guard_misses == snap_before.guard_misses
        assert plans_built() == plans_before                    # 0 memplans
        got = compiled2(*[rt.from_numpy(a.numpy()) for a in warm_args])
        want = wl.model_fn(*[rt.from_numpy(a.numpy())
                             for a in warm_args])
        got = got if isinstance(got, tuple) else (got,)
        want = want if isinstance(want, tuple) else (want,)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.numpy(), w.numpy())

    def test_cache_key_is_family_id(self):
        cache = CompileCache()
        pipe = get_pipeline("tensorssa")
        wl = get_workload("attention")
        args = wl.make_inputs(batch_size=2, seq_len=16, seed=0)
        _, _, family, _ = compile_cached_family(pipe, wl, args,
                                                cache=cache)
        assert family_key(pipe, wl, family) in cache

    def test_specializing_pipeline_guard_misses(self):
        cache = CompileCache()
        pipe = get_pipeline("dynamo_inductor")
        wl = get_workload("attention")
        a16 = wl.make_inputs(batch_size=2, seq_len=16, seed=0)
        a24 = wl.make_inputs(batch_size=2, seq_len=24, seed=0)
        _, _, fam16, out16 = compile_cached_family(pipe, wl, a16,
                                                   cache=cache)
        assert out16 == "new"
        assert len(fam16.guards) > 0  # specialize folded sizes
        _, _, fam24, out24 = compile_cached_family(pipe, wl, a24,
                                                   cache=cache)
        assert out24 == "guard_miss" and fam24 is not fam16
        snap = cache.snapshot()
        assert snap.guard_misses == 1 and snap.misses == 1
        # replaying the first length stays a hit on its own family
        _, hit, fam, outcome = compile_cached_family(pipe, wl, a16,
                                                     cache=cache)
        assert outcome == "hit" and hit and fam is fam16

    def test_run_workload_surfaces_family_fields(self):
        cache = CompileCache()
        r1 = run_workload("lstm", "tensorssa", batch_size=2, seq_len=16,
                          cache=cache, dynamic_shapes=True)
        r2 = run_workload("lstm", "tensorssa", batch_size=2, seq_len=24,
                          cache=cache, dynamic_shapes=True)
        assert r1.family_outcome == "new"
        assert r2.family_outcome == "hit"
        assert r1.family_id == r2.family_id != ""
        assert r2.cache_guard_misses == 0


# -- serving -------------------------------------------------------------

class TestDynamicServing:
    def test_policy_rejects_solo_verify(self):
        with pytest.raises(ValueError):
            ServePolicy(dynamic_shapes=True, verify="solo")

    def test_mixed_lengths_bit_exact_one_family_per_bucket_guard(self):
        policy = ServePolicy(workers=2, max_batch_size=4,
                             batch_wait_s=0.02, dynamic_shapes=True,
                             verify="batch")
        lengths = [9, 12, 16, 14, 10, 24, 30, 13]
        with Server(policy) as srv:
            futs = [srv.submit("attention", pipeline="tensorssa",
                               batch_size=1, seq_len=length, seed=i)
                    for i, length in enumerate(lengths)]
            resps = [f.result(timeout=120) for f in futs]
        assert all(r.ok for r in resps)
        assert all(r.verified for r in resps)
        assert srv.stats.diverged == 0
        snap = srv.cache.snapshot()
        # every novel length re-used the one bucketed family artifact
        assert snap.misses <= 2
        assert srv.stats.bucket_padded_units >= \
            srv.stats.bucket_real_units > 0
        assert 0.0 < srv.stats.bucket_pad_efficiency <= 1.0
        fams = srv.cache.families.all_families()
        assert any(any(g.kind == "mod" for g in f.guards)
                   for f in fams)

    def test_stats_dict_carries_bucket_and_guard_metrics(self):
        policy = ServePolicy(workers=1, max_batch_size=2,
                             batch_wait_s=0.01, dynamic_shapes=True,
                             verify="batch")
        with Server(policy) as srv:
            futs = [srv.submit("lstm", pipeline="tensorssa",
                               batch_size=1, seq_len=sl, seed=sl)
                    for sl in (10, 18)]
            for f in futs:
                assert f.result(timeout=120).ok
        d = srv.stats.to_dict()
        assert "bucket_pad_efficiency" in d
        assert "guard_misses" in d["compile_cache"]
