"""Operator registry consistency: the cross-module contracts.

These meta-tests pin the invariants the compiler relies on: every view
op must have a registered Access (and, unless explicitly impossible, an
Assign) counterpart; every mutator needs a functional equivalent or
special handling; everything the fuser may admit must be compilable by
the kernel codegen.
"""

import inspect

import pytest

from repro.backend.kernels import OP_IMPLS
from repro.ops import OpKind, all_ops, get, has
from repro.ops.schema import OpSchema


VIEWS = [s for s in all_ops() if s.kind is OpKind.VIEW]
MUTATORS = [s for s in all_ops() if s.kind is OpKind.MUTATING]
FUSABLE = [s for s in all_ops() if s.fusable]


class TestViewContracts:
    @pytest.mark.parametrize("schema", VIEWS, ids=lambda s: s.name)
    def test_access_op_registered(self, schema):
        assert schema.access_op is not None
        assert has(schema.access_op), schema.access_op

    @pytest.mark.parametrize("schema", VIEWS, ids=lambda s: s.name)
    def test_assign_op_registered_or_expand(self, schema):
        if schema.name == "aten::expand":
            assert schema.assign_op is None  # writes through broadcast
            return
        assert schema.assign_op is not None
        assert has(schema.assign_op), schema.assign_op

    @pytest.mark.parametrize("schema", VIEWS, ids=lambda s: s.name)
    def test_access_signature_matches_view(self, schema):
        """Access ops take the identical operand list as their view."""
        view_params = list(inspect.signature(schema.fn).parameters)
        access_params = list(inspect.signature(
            get(schema.access_op).fn).parameters)
        assert len(view_params) == len(access_params), schema.name

    @pytest.mark.parametrize("schema", VIEWS, ids=lambda s: s.name)
    def test_assign_signature_is_base_src_params(self, schema):
        if schema.assign_op is None:
            return
        view_params = list(inspect.signature(schema.fn).parameters)
        assign_params = list(inspect.signature(
            get(schema.assign_op).fn).parameters)
        # (base, src, *view_params[1:])
        assert len(assign_params) == len(view_params) + 1, schema.name


class TestMutatorContracts:
    @pytest.mark.parametrize("schema", MUTATORS, ids=lambda s: s.name)
    def test_functional_equivalent(self, schema):
        if schema.name in ("aten::copy_", "aten::append"):
            return  # handled specially by the converter / containers
        assert schema.functional_op is not None, schema.name
        assert has(schema.functional_op)

    @pytest.mark.parametrize("schema", MUTATORS, ids=lambda s: s.name)
    def test_functional_signature_compatible(self, schema):
        """The converter feeds the mutator's operands verbatim into its
        functional op — arities must admit that."""
        if schema.functional_op is None:
            return
        mut_arity = len(inspect.signature(schema.fn).parameters)
        fop = get(schema.functional_op).fn
        params = inspect.signature(fop).parameters
        required = sum(1 for p in params.values()
                       if p.default is inspect.Parameter.empty
                       and p.kind is not inspect.Parameter.VAR_POSITIONAL)
        assert required <= mut_arity <= len(params), schema.name


class TestCodegenCoverage:
    @pytest.mark.parametrize("schema", FUSABLE, ids=lambda s: s.name)
    def test_every_fusable_op_is_compilable(self, schema):
        """If the fuser may admit it, the kernel codegen must know it —
        otherwise fusion groups fail at first execution."""
        assert schema.name in OP_IMPLS, schema.name

    def test_immut_ops_all_compilable(self):
        missing = [s.name for s in all_ops()
                   if s.name.startswith("immut::")
                   and s.name not in OP_IMPLS]
        assert not missing, missing

    def test_views_all_compilable(self):
        missing = [s.name for s in VIEWS if s.name not in OP_IMPLS]
        assert not missing, missing


class TestSchemaBasics:
    def test_all_names_namespaced(self):
        for schema in all_ops():
            assert "::" in schema.name

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            OpSchema("unnamespaced", OpKind.PURE)

    def test_unknown_lookup_message(self):
        with pytest.raises(KeyError, match="unknown operator"):
            get("aten::not_a_thing")

    def test_kind_predicates(self):
        assert get("aten::select").is_view
        assert get("aten::copy_").is_mutating
        assert get("aten::copy_").has_side_effects
        assert not get("aten::add").has_side_effects

    def test_registry_is_frozen_against_duplicates(self):
        from repro.ops import register
        with pytest.raises(ValueError):
            register(OpSchema("aten::add", OpKind.PURE))
