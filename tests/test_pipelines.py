"""Pipeline behaviour: compilation, stats, semantics, caching."""

import numpy as np
import pytest

import repro.runtime as rt
from repro.pipelines import (DynamoInductorPipeline, EagerPipeline,
                             TensorSSAPipeline, TorchScriptNNCPipeline,
                             TorchScriptNvFuserPipeline, default_pipelines,
                             get_pipeline, pipelines_by_name)


def toy_model(x, n: int):
    y = x.clone()
    for i in range(n):
        y[i] = y[i].sigmoid() * 2.0
    return y, y.sum()


ARGS = lambda: (rt.rand((4, 3), seed=7), 4)  # noqa: E731


class TestRegistry:
    def test_default_lineup(self):
        names = [p.name for p in default_pipelines()]
        assert names == ["eager", "dynamo_inductor", "ts_nvfuser",
                         "ts_nnc", "tensorssa"]

    def test_get_pipeline(self):
        assert get_pipeline("tensorssa").name == "tensorssa"
        with pytest.raises(KeyError):
            get_pipeline("nope")

    def test_labels_match_paper_legend(self):
        by_name = pipelines_by_name()
        assert "TorchScript + NNC" == by_name["ts_nnc"].label
        assert "nvFuser" in by_name["ts_nvfuser"].label
        assert "TorchDynamo" in by_name["dynamo_inductor"].label
        assert "ours" in by_name["tensorssa"].label


class TestSemantics:
    @pytest.mark.parametrize("pipeline_cls", [
        EagerPipeline, TorchScriptNNCPipeline, TorchScriptNvFuserPipeline,
        DynamoInductorPipeline, TensorSSAPipeline])
    def test_pipeline_matches_eager(self, pipeline_cls):
        pipe = pipeline_cls()
        args = ARGS()
        compiled = pipe.compile(toy_model, example_args=args)
        expected = toy_model(args[0].clone(), args[1])
        got = compiled(args[0].clone(), args[1])
        for g, e in zip(got, expected):
            np.testing.assert_allclose(g.numpy(), e.numpy(), rtol=1e-5)

    def test_tensorssa_removes_all_inner_mutation(self):
        compiled = TensorSSAPipeline().compile(toy_model)
        assert compiled.stats["mutating_ops"] == 0

    def test_tensorssa_does_not_mutate_inputs_storage(self):
        def pure_of_inputs(x):
            y = x.clone()
            y[0] = 1.0
            return y
        compiled = TensorSSAPipeline().compile(pure_of_inputs)
        x = rt.rand((3,), seed=1)
        v0 = x.version
        compiled(x)
        assert x.version == v0  # no write ever touched the input

    def test_launch_ordering(self):
        args = ARGS()
        launches = {}
        for pipe in default_pipelines():
            compiled = pipe.compile(toy_model, example_args=args)
            with rt.profile() as prof:
                compiled(args[0].clone(), args[1])
            launches[pipe.name] = prof.num_launches
        assert launches["tensorssa"] <= launches["ts_nnc"] \
            <= launches["eager"]
        assert launches["dynamo_inductor"] <= launches["eager"]


class TestStats:
    def test_stats_fields(self):
        compiled = TensorSSAPipeline().compile(toy_model)
        for key in ("nodes", "fusion_groups", "horizontal_loops",
                    "functionalized"):
            assert key in compiled.stats

    def test_ablation_flags(self):
        no_h = TensorSSAPipeline(horizontal=False, name="nh")
        compiled = no_h.compile(toy_model)
        assert compiled.stats["horizontal_loops"] == 0
        full = TensorSSAPipeline()
        assert full.compile(toy_model).stats["horizontal_loops"] == 1

    def test_dynamo_unrolls_specialized_loops(self):
        args = ARGS()
        compiled = DynamoInductorPipeline().compile(toy_model,
                                                    example_args=args)
        # trip count (4) was specialized from the int arg and unrolled
        loops = [n for n in compiled.graph.walk() if n.op == "prim::Loop"]
        assert not loops

    def test_dynamo_without_examples_keeps_loops(self):
        compiled = DynamoInductorPipeline().compile(toy_model)
        loops = [n for n in compiled.graph.walk() if n.op == "prim::Loop"]
        assert loops


class TestHarnessCache:
    def test_cache_keys_on_shape_signature(self):
        from repro.eval.harness import (clear_compile_cache, compile_cached)
        from repro.models import get_workload
        clear_compile_cache()
        wl = get_workload("lstm")
        pipe = get_pipeline("tensorssa")
        a = compile_cached(pipe, wl, wl.make_inputs(seq_len=16))
        b = compile_cached(pipe, wl, wl.make_inputs(seq_len=16))
        c = compile_cached(pipe, wl, wl.make_inputs(seq_len=64))
        # same shapes replay the artifact; new shapes get their own
        # entry (compiled graphs carry shape-derived state such as the
        # cached memory plan and specialized kernels)
        assert a is b
        assert a is not c

    def test_dynamo_recompiles_per_shape(self):
        from repro.eval.harness import (clear_compile_cache, compile_cached)
        from repro.models import get_workload
        clear_compile_cache()
        wl = get_workload("lstm")
        pipe = get_pipeline("dynamo_inductor")
        a = compile_cached(pipe, wl, wl.make_inputs(seq_len=16))
        b = compile_cached(pipe, wl, wl.make_inputs(seq_len=16))
        c = compile_cached(pipe, wl, wl.make_inputs(seq_len=24))
        assert a is b
        assert a is not c
