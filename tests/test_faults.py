"""Fault-injection subsystem: deterministic scheduling, every site
fires, and recovery leaves no torn state (``repro.faults``)."""

import random
import time

import pytest

from repro.errors import (CompileError, KernelError, OOMError, ReproError,
                          TornStateError)
from repro.eval.harness import CompileCache, run_workload
from repro.faults import (ALL_SITES, Fault, FaultPlan, FaultRule,
                          KIND_LATENCY, SITE_ALLOC, SITE_BATCH_EXEC,
                          SITE_FUSION_COMPILE, SITE_HEARTBEAT_STALL,
                          SITE_KERNEL_LAUNCH, SITE_PASS,
                          SITE_PROCESS_KILL, StateAuditor, active_plan,
                          fault_scope, global_fault_scope, maybe_inject)
from repro.runtime import profiler, storage
from repro.serve import ServePolicy, Server


def _one_shot(site, **kw):
    return FaultPlan([FaultRule(site=site, **kw)])


# -- rule and plan semantics ---------------------------------------------


def test_unknown_site_rejected():
    with pytest.raises(ValueError):
        FaultRule(site="flux_capacitor")


def test_nth_window_scheduling():
    """A deterministic rule fires exactly on hits [nth, nth + times)."""
    plan = _one_shot(SITE_KERNEL_LAUNCH, nth=2, times=2)
    outcomes = []
    with fault_scope(plan):
        for _ in range(6):
            try:
                maybe_inject(SITE_KERNEL_LAUNCH, "matmul")
                outcomes.append("ok")
            except KernelError:
                outcomes.append("fault")
    assert outcomes == ["ok", "ok", "fault", "fault", "ok", "ok"]
    assert plan.num_fired == 2
    assert [r.hit_index for r in plan.log] == [2, 3]


def test_match_substring_filters_details():
    plan = _one_shot(SITE_KERNEL_LAUNCH, match="matmul", nth=0)
    with fault_scope(plan):
        maybe_inject(SITE_KERNEL_LAUNCH, "add")  # no match, no hit
        with pytest.raises(KernelError):
            maybe_inject(SITE_KERNEL_LAUNCH, "batched_matmul")
    assert plan.log[0].detail == "batched_matmul"
    assert plan.log[0].hit_index == 0  # 'add' never advanced the counter


def test_injected_errors_are_typed_and_marked():
    plan = _one_shot(SITE_ALLOC, nth=0)
    with fault_scope(plan):
        with pytest.raises(OOMError) as exc_info:
            maybe_inject(SITE_ALLOC, "1024")
    assert exc_info.value.injected is True
    assert isinstance(exc_info.value, ReproError)


def test_latency_fault_sleeps_instead_of_raising():
    plan = _one_shot(SITE_KERNEL_LAUNCH, nth=0,
                     fault=Fault(kind=KIND_LATENCY, latency_s=0.02))
    with fault_scope(plan):
        start = time.perf_counter()
        maybe_inject(SITE_KERNEL_LAUNCH, "matmul")  # must not raise
        assert time.perf_counter() - start >= 0.02
    assert plan.log[0].kind == KIND_LATENCY


def test_probabilistic_mode_is_seed_deterministic():
    def run(seed):
        plan = FaultPlan([FaultRule(site=SITE_PASS, probability=0.3,
                                    times=None)], seed=seed)
        fired = []
        with fault_scope(plan):
            for i in range(50):
                try:
                    maybe_inject(SITE_PASS, f"pass{i}")
                except CompileError:
                    fired.append(i)
        return fired

    assert run(7) == run(7)  # same seed, same fault sequence
    assert run(7) != run(8)  # the seed actually matters
    assert 0 < len(run(7)) < 50


def test_probabilistic_mode_bounded_by_times():
    plan = FaultPlan([FaultRule(site=SITE_PASS, probability=1.0, times=2)])
    fired = 0
    with fault_scope(plan):
        for _ in range(10):
            try:
                maybe_inject(SITE_PASS, "fuse")
            except CompileError:
                fired += 1
    assert fired == 2


def test_no_plan_is_a_no_op():
    assert active_plan() is None
    maybe_inject(SITE_KERNEL_LAUNCH, "matmul")  # must not raise


def test_context_plan_wins_over_global_and_nesting_rejected():
    ctx = FaultPlan()
    glob = FaultPlan()
    with global_fault_scope(glob):
        assert active_plan() is glob
        with fault_scope(ctx):
            assert active_plan() is ctx
        with pytest.raises(RuntimeError):
            with global_fault_scope(FaultPlan()):
                pass  # pragma: no cover
    assert active_plan() is None


# -- every injection site fires through the real stack -------------------


def _fault_run(site, workload="lstm", **rule_kw):
    """Run tensorssa cold (fresh cache) under a one-shot fault at
    ``site``; returns (raised exception or None, audit violations)."""
    cache = CompileCache()
    auditor = StateAuditor(cache=cache)
    plan = _one_shot(site, **rule_kw)
    raised = None
    with fault_scope(plan):
        try:
            run_workload(workload, "tensorssa", seq_len=8, cache=cache)
        except ReproError as exc:
            raised = exc
    assert plan.num_fired >= 1, f"site {site} never fired"
    return raised, auditor.audit()


@pytest.mark.parametrize("site,err", [
    (SITE_KERNEL_LAUNCH, KernelError),
    (SITE_ALLOC, OOMError),
    (SITE_FUSION_COMPILE, CompileError),
    (SITE_PASS, CompileError),
])
def test_harness_sites_fire_typed_and_clean(site, err):
    raised, violations = _fault_run(site)
    assert isinstance(raised, err)
    assert raised.injected is True
    assert violations == []


def test_kernel_launch_fault_mid_run_cleans_up():
    """A launch failure deep inside a profiled, pooled run must unwind
    without leaking profile frames, pool scopes, or pool bytes."""
    raised, violations = _fault_run(SITE_KERNEL_LAUNCH, nth=10)
    assert isinstance(raised, KernelError)
    assert violations == []


def test_batch_exec_site_fires_in_server():
    """The serving-only site: a persistent batch_exec fault fails every
    compiled rung, and requests land on the eager floor (which bypasses
    batch execution by design) — degraded but served."""
    plan = FaultPlan([FaultRule(site=SITE_BATCH_EXEC, probability=1.0,
                                times=None)])
    policy = ServePolicy(workers=1, max_batch_size=2, batch_wait_s=0.001,
                         ladder_enabled=True, max_retries=0,
                         retry_base_delay_s=0.0001, breaker_reset_s=5.0)
    with Server(policy) as srv:
        auditor = StateAuditor(cache=srv.cache)
        with global_fault_scope(plan):
            resps = [f.result(timeout=30)
                     for f in [srv.submit("lstm", seq_len=8, seed=s)
                               for s in range(3)]]
    assert plan.fired_by_site().get(SITE_BATCH_EXEC, 0) >= 1
    for resp in resps:
        assert resp.ok
        assert resp.served_by == "eager"
        assert resp.degraded and resp.fallback_depth > 0
    assert auditor.audit() == []


def test_server_answers_typed_errors_when_every_rung_fails():
    """batch_exec + kernel_launch faults together take out the eager
    floor too: every response must still resolve with a clean typed
    reason — no hang, no silent drop."""
    plan = FaultPlan([
        FaultRule(site=SITE_BATCH_EXEC, probability=1.0, times=None),
        FaultRule(site=SITE_KERNEL_LAUNCH, probability=1.0, times=None),
    ])
    policy = ServePolicy(workers=1, max_batch_size=2, batch_wait_s=0.001,
                         ladder_enabled=True, max_retries=0,
                         retry_base_delay_s=0.0001, breaker_reset_s=5.0)
    with Server(policy) as srv:
        auditor = StateAuditor(cache=srv.cache)
        with global_fault_scope(plan):
            resps = [f.result(timeout=30)
                     for f in [srv.submit("lstm", seq_len=8, seed=s)
                               for s in range(3)]]
    for resp in resps:
        assert not resp.ok
        assert resp.error  # a clean typed reason, never a silent drop
    assert auditor.audit() == []


def test_same_plan_same_run_identical_fault_log():
    """End-to-end determinism: the property the chaos harness builds
    on — one plan, one single-threaded execution, one fault sequence."""
    def one(seed):
        cache = CompileCache()
        plan = FaultPlan([
            FaultRule(site=SITE_KERNEL_LAUNCH, probability=0.05,
                      times=None),
            FaultRule(site=SITE_ALLOC, nth=5, times=1),
        ], seed=seed)
        with fault_scope(plan):
            for s in range(3):
                try:
                    run_workload("lstm", "tensorssa", seq_len=8, seed=s,
                                 cache=cache)
                except ReproError:
                    pass
        return list(plan.log)

    assert one(3) == one(3)
    assert len(one(3)) >= 1


# -- fault sites leave module state consistent ---------------------------


def test_oom_leaves_pool_accounting_intact():
    pool = storage.MemoryPool()
    pool.allocate(256)
    before = pool.in_use_bytes
    plan = _one_shot(SITE_ALLOC, nth=0)
    with fault_scope(plan):
        with pytest.raises(OOMError):
            pool.allocate(512)
    assert pool.in_use_bytes == before  # failed alloc never accounted
    assert pool.allocate(512) in (True, False)  # pool still serviceable


def test_auditor_catches_leaked_profile_frame():
    auditor = StateAuditor()
    prof = profiler.Profile()
    profiler.push_profile(prof)
    try:
        violations = auditor.audit()
        assert any("profiler stack" in v for v in violations)
        with pytest.raises(TornStateError):
            auditor.assert_clean()
    finally:
        profiler.pop_profile()
    assert auditor.audit() == []


def test_all_sites_enumerated():
    assert set(ALL_SITES) == {SITE_KERNEL_LAUNCH, SITE_ALLOC,
                              SITE_FUSION_COMPILE, SITE_PASS,
                              SITE_BATCH_EXEC, SITE_PROCESS_KILL,
                              SITE_HEARTBEAT_STALL}
