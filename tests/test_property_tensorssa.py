"""Property-based differential testing of the whole compiler.

Hypothesis generates random imperative tensor programs — view chains,
in-place mutations, snapshots, loops, branches — and every pipeline must
produce results identical to eager execution, including the caller-
visible mutation of inputs.  This is the strongest correctness evidence
in the suite: any unsound functionalization, fusion move, or renaming
bug shows up as a value mismatch.
"""

import linecache
import itertools

import numpy as np
from hypothesis import given, settings, strategies as st

import repro.runtime as rt
from repro.pipelines import DynamoInductorPipeline, TensorSSAPipeline

_counter = itertools.count()

SIZE = 6  # all generated programs operate on float32 vectors of size 6


def _span(draw):
    a = draw(st.integers(0, SIZE - 1))
    b = draw(st.integers(a + 1, SIZE))
    return a, b


def _scalar(draw):
    return draw(st.floats(-2.0, 2.0).map(lambda f: round(f, 3)))


@st.composite
def imperative_program(draw):
    """Source code of a function f(x, flag, n) mutating a clone of x."""
    lines = ["def f(x, flag: bool, n: int):",
             "    y = x.clone()",
             "    acc = y * 0.0"]
    n_stmts = draw(st.integers(2, 7))
    view_count = 0
    for _ in range(n_stmts):
        kind = draw(st.integers(0, 7))
        if kind == 0:
            i = draw(st.integers(0, SIZE - 1))
            lines.append(f"    y[{i}] = {_scalar(draw)}")
        elif kind == 1:
            a, b = _span(draw)
            lines.append(f"    y[{a}:{b}] = {_scalar(draw)}")
        elif kind == 2:
            a, b = _span(draw)
            width = b - a
            c = draw(st.integers(0, SIZE - width))
            lines.append(
                f"    y[{a}:{b}] = y[{c}:{c + width}] * {_scalar(draw)}")
        elif kind == 3:
            op = draw(st.sampled_from(["add_", "mul_", "sigmoid_",
                                       "relu_"]))
            arg = "" if op in ("sigmoid_", "relu_") else f"{_scalar(draw)}"
            lines.append(f"    y.{op}({arg})")
        elif kind == 4:
            a, b = _span(draw)
            name = f"v{view_count}"
            view_count += 1
            lines.append(f"    {name} = y[{a}:{b}]")
            lines.append(f"    {name}.add_({_scalar(draw)})")
        elif kind == 5:
            trip = draw(st.integers(1, 3))
            lines.append(f"    for i in range({trip}):")
            lines.append(f"        y[i] = y[i] + {_scalar(draw)}")
        elif kind == 6:
            i = draw(st.integers(0, SIZE - 1))
            j = draw(st.integers(0, SIZE - 1))
            lines.append("    if flag:")
            lines.append(f"        y[{i}] = {_scalar(draw)}")
            lines.append("    else:")
            lines.append(f"        y[{j}] = {_scalar(draw)}")
        elif kind == 7:
            # snapshot: later mutations must NOT retroactively change it
            lines.append(f"    acc = acc + y * {_scalar(draw)}")
    lines.append("    return y, acc, acc.sum()")
    return "\n".join(lines) + "\n"


def _materialize(source: str):
    filename = f"<hypo_prog_{next(_counter)}>"
    linecache.cache[filename] = (len(source), None,
                                 source.splitlines(True), filename)
    namespace = {"rt": rt}
    exec(compile(source, filename, "exec"), namespace)  # noqa: S102
    return namespace["f"]


def _run_and_compare(source: str, pipeline, flag: bool) -> None:
    fn = _materialize(source)
    x_data = np.linspace(-1.0, 1.0, SIZE).astype(np.float32)

    eager_x = rt.from_numpy(x_data)
    expected = fn(eager_x, flag, 2)

    compiled = pipeline.compile(fn, example_args=(rt.from_numpy(x_data),
                                                  flag, 2))
    opt_x = rt.from_numpy(x_data)
    got = compiled(opt_x, flag, 2)

    for i, (g, e) in enumerate(zip(got, expected)):
        ga = g.numpy() if isinstance(g, rt.Tensor) else np.float64(g)
        ea = e.numpy() if isinstance(e, rt.Tensor) else np.float64(e)
        np.testing.assert_allclose(
            ga, ea, rtol=1e-5, atol=1e-6,
            err_msg=f"output {i} diverged for program:\n{source}")
    np.testing.assert_allclose(
        opt_x.numpy(), eager_x.numpy(), rtol=1e-5,
        err_msg=f"input mutation semantics diverged:\n{source}")


@settings(max_examples=60, deadline=None)
@given(source=imperative_program(), flag=st.booleans())
def test_tensorssa_matches_eager(source, flag):
    _run_and_compare(source, TensorSSAPipeline(), flag)


@settings(max_examples=25, deadline=None)
@given(source=imperative_program(), flag=st.booleans())
def test_tensorssa_ablations_match_eager(source, flag):
    _run_and_compare(
        source, TensorSSAPipeline(horizontal=False, name="nh"), flag)
    _run_and_compare(
        source, TensorSSAPipeline(vertical=False, name="nv"), flag)


@settings(max_examples=25, deadline=None)
@given(source=imperative_program(), flag=st.booleans())
def test_dynamo_pipeline_matches_eager(source, flag):
    _run_and_compare(source, DynamoInductorPipeline(), flag)


@settings(max_examples=25, deadline=None)
@given(source=imperative_program(), flag=st.booleans())
def test_no_mutation_survives_conversion(source, flag):
    fn = _materialize(source)
    # revert_unfused deliberately reintroduces (proven-local) mutation;
    # this property checks the conversion itself, so switch it off
    compiled = TensorSSAPipeline(revert_unfused=False,
                                 name="tssa_pure").compile(fn)
    graph = compiled.graph
    for node in graph.walk():
        if node.schema.is_mutating:
            # only the input copy-back epilogue may remain
            assert node.op == "aten::copy_"
            assert node.owning_block is graph.block
            assert node.input(0).is_param
