"""Figure-data export artifacts."""

import json
import os

from repro.eval.export import summarize, write_artifacts


class TestExport:
    def test_write_artifacts(self, tmp_path):
        data = {"fig6": {"lstm": {"eager": 100, "tensorssa": 10}},
                "summary": {"max_speedup_vs_best_baseline": 2.0}}
        written = write_artifacts(str(tmp_path), data)
        assert len(written) == 2
        loaded = json.load(open(os.path.join(tmp_path, "fig6.json")))
        assert loaded["lstm"]["tensorssa"] == 10

    def test_summarize(self):
        data = {
            "fig5": {
                "datacenter": {
                    "lstm": {"ts_nnc": 2.0, "dynamo_inductor": 3.0,
                             "ts_nvfuser": 2.0, "tensorssa": 6.0},
                    "ssd": {"ts_nnc": 2.0, "dynamo_inductor": 1.0,
                            "ts_nvfuser": 1.5, "tensorssa": 3.0},
                },
            },
            "intro_fraction": {"lstm": 0.95},
        }
        s = summarize(data)
        assert s["max_speedup_vs_best_baseline"] == 2.0
        assert s["workload_platform_cells"] == 2
        assert s["max_imperative_fraction"] == 0.95

    def test_nested_tuples_jsonable(self, tmp_path):
        data = {"x": {"a": (1, 2), "b": [3, (4, 5)]}}
        write_artifacts(str(tmp_path), data)
        loaded = json.load(open(os.path.join(tmp_path, "x.json")))
        assert loaded["a"] == [1, 2]
