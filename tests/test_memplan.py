"""Memory planner: liveness, pool, plan, and planned-execution equivalence."""

import numpy as np
import pytest

import repro.runtime as rt
from repro.backend.interpreter import run_graph
from repro.frontend import script
from repro.memplan import (compute_liveness, format_plan, get_or_build_plan,
                           plan_graph)
from repro.models import registry as models
from repro.pipelines.registry import get_pipeline
from repro.runtime import profiler
from repro.runtime.storage import MemoryPool, _bucket

from conftest import assert_outputs_equal


# -- MemoryPool -------------------------------------------------------------

class TestMemoryPool:
    def test_bucket_is_pow2_min_256(self):
        assert _bucket(1) == 256
        assert _bucket(256) == 256
        assert _bucket(257) == 512
        assert _bucket(4096) == 4096
        assert _bucket(4097) == 8192

    def test_fresh_allocations_grow_arena(self):
        pool = MemoryPool()
        assert pool.allocate(1024) is False
        assert pool.allocate(2048) is False
        assert pool.peak_bytes == 3072
        assert pool.num_allocs == 2 and pool.num_reuses == 0

    def test_release_then_reuse(self):
        pool = MemoryPool()
        pool.allocate(1024)
        pool.release(1024)
        assert pool.allocate(1024) is True
        assert pool.peak_bytes == 1024
        assert pool.bytes_reused == 1024

    def test_best_fit_prefers_smallest_fitting_block(self):
        pool = MemoryPool()
        pool.allocate(8192)
        pool.allocate(2048)
        pool.release(8192)
        pool.release(2048)
        assert pool.allocate(2000) is True
        # the 2048 block served the request; 8192 must still be free
        assert pool.allocate(8192) is True
        assert pool.peak_bytes == 8192 + 2048

    def test_split_returns_remainder_to_free_list(self):
        pool = MemoryPool()
        pool.allocate(4096)
        pool.release(4096)
        assert pool.allocate(1024) is True
        # the 3072-byte remainder is reusable without arena growth
        assert pool.allocate(3072) is True
        assert pool.peak_bytes == 4096

    def test_search_span_bounds_fragmentation(self):
        pool = MemoryPool()
        pool.allocate(1 << 20)
        pool.release(1 << 20)
        # far smaller than the free block / 2**SPAN: allocate fresh
        assert pool.allocate(256) is False

    def test_storage_routes_through_active_pool(self):
        from repro.runtime.storage import pool_scope
        pool = MemoryPool()
        with pool_scope(pool):
            t = rt.zeros((16, 16))
        assert pool.arena_bytes >= t.nbytes

    def test_storage_outside_pool_records_plain_alloc(self):
        with profiler.profile() as prof:
            t = rt.zeros((8, 8))
        assert prof.bytes_allocated >= t.nbytes
        assert prof.bytes_reused == 0


# -- liveness ---------------------------------------------------------------

def _graph(fn):
    return script(fn).graph


class TestLiveness:
    def test_view_alias_merges_lifetime(self):
        def f(x):
            a = rt.add(x, 1.0)
            b = a.select(0, 0)
            return rt.mul(b, 2.0)

        live = compute_liveness(_graph(f))
        by_name = {c.origin.name: c for c in live.classes}
        cls = by_name["v.0"]
        assert [v.name for v in cls.values] == ["v.0", "v.1"]
        # the class dies at the view's last use (the mul), not at the
        # view's creation: the interval must span both
        assert cls.plannable
        assert cls.release_node is not None
        assert cls.release_node.op == "aten::mul"
        assert cls.release_before  # donation: mul reads it once

    def test_graph_inputs_and_outputs_stay_resident(self):
        def f(x):
            return rt.add(x, 1.0)

        live = compute_liveness(_graph(f))
        reasons = {c.origin.name: c.reason for c in live.classes
                   if not c.plannable}
        assert "graph input" in reasons["x.0"]
        assert "graph output" in reasons["v.0"]

    def test_value_used_inside_loop_lives_through_it(self):
        def f(x, n: int):
            a = rt.add(x, 1.0)
            h = x.clone()
            for i in range(n):
                h = rt.add(rt.tanh(h), a)
            return h

        graph = _graph(f)
        live = compute_liveness(graph)
        by_name = {c.origin.name: c for c in live.classes}
        cls = by_name["v.0"]  # `a`, captured by the loop body
        assert cls.plannable
        assert cls.release_node.op == "prim::Loop"
        # a loop body may re-read the capture every iteration, so the
        # release must come after the loop, never as a donation into it
        assert not cls.release_before

    def test_loop_back_edge_marks_rotating_slot(self):
        def f(x, n: int):
            h = x.clone()
            for i in range(n):
                h = rt.tanh(h)
            return h

        graph = _graph(f)
        live = compute_liveness(graph)
        assert list(live.rotating_slots.values()) == [[0]]
        # the body-produced generation escapes through the body return:
        # it is recycled by rotation, not by in-block release
        ret_cls = next(c for c in live.classes if c.origin.name == "v.1")
        assert not ret_cls.plannable

    def test_loop_passthrough_slot_does_not_rotate(self):
        def f(x, n: int):
            h = x.clone()
            acc = x.clone()
            for i in range(n):
                h = rt.tanh(h)
                acc = acc  # carried through unchanged
            return rt.add(h, acc)

        graph = _graph(f)
        live = compute_liveness(graph)
        loop = next(n for n in graph.walk() if n.op == "prim::Loop")
        body = loop.blocks[0]
        slots = live.rotating_slots[id(loop)]
        # only the tanh-producing slot may rotate; the passthrough slot
        # rebinds the same outer storage every iteration
        for k, ret in enumerate(body.returns[1:]):
            if ret.is_param:
                assert k not in slots
            elif ret.node is not None and ret.node.op == "aten::tanh":
                assert k in slots

    def test_donation_scheduled_before_last_user(self):
        def f(x):
            a = rt.add(x, 1.0)
            b = rt.mul(a, 2.0)
            return b

        graph = _graph(f)
        live = compute_liveness(graph)
        cls = next(c for c in live.classes if c.origin.name == "v.0")
        assert cls.plannable and cls.release_before
        assert id(cls.release_node) in live.release_before


# -- planner ----------------------------------------------------------------

class TestPlanner:
    def test_non_overlapping_classes_share_a_slot(self):
        def f(x):
            a = rt.add(x, 1.0)
            b = rt.mul(a, 2.0)   # a dies here
            c = rt.add(b, 3.0)   # b dies here
            return rt.mul(c, 4.0)

        plan = plan_graph(_graph(f))
        planned = [c for c in plan.liveness.classes if c.plannable]
        assert len(planned) == 3
        # chain of immediately-dying temporaries: fewer slots than classes
        assert len(plan.slots) < len(planned)
        assert plan.static_peak_slots <= 2

    def test_plan_cached_per_graph(self):
        def f(x):
            return rt.mul(rt.add(x, 1.0), 2.0)

        graph = _graph(f)
        assert get_or_build_plan(graph) is get_or_build_plan(graph)

    def test_format_plan_mentions_slots_and_peak(self):
        wl = models.get_workload("lstm")
        args = wl.make_inputs(2, 8, 0)
        compiled = get_pipeline("tensorssa").compile(wl.model_fn, args)
        text = format_plan(get_or_build_plan(compiled.graph))
        assert "slot table" in text
        assert "rotating loop slots" in text
        assert "reuse edges" in text

    def test_summary_counts(self):
        def f(x):
            return rt.mul(rt.add(x, 1.0), 2.0)

        summary = plan_graph(_graph(f)).summary()
        assert summary["mem_total_classes"] >= summary["mem_planned_classes"]
        assert summary["mem_planned_classes"] == 1


# -- planned execution ------------------------------------------------------

def _as_tuple(x):
    return x if isinstance(x, tuple) else (x,)


class TestPlannedExecution:
    @pytest.mark.parametrize("name", models.workload_names())
    def test_planned_matches_unplanned_bit_exact(self, name):
        """Property: planning changes accounting, never values."""
        wl = models.get_workload(name)
        args = wl.make_inputs(2, 8, 0)
        planned = get_pipeline("tensorssa").compile(wl.model_fn, args)
        unplanned = get_pipeline("tensorssa_noplan").compile(
            wl.model_fn, args)
        expected = _as_tuple(unplanned(*args))
        got = _as_tuple(planned(*args))
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            ga = g.numpy() if isinstance(g, rt.Tensor) else np.asarray(g)
            ea = e.numpy() if isinstance(e, rt.Tensor) else np.asarray(e)
            assert np.array_equal(ga, ea), f"{name}: outputs diverge"

    @pytest.mark.parametrize("name", ["lstm", "nasrnn", "attention"])
    def test_peak_reduction_at_least_30_percent(self, name):
        wl = models.get_workload(name)
        b, s = (4, 64) if name == "attention" else (4, 16)
        args = wl.make_inputs(b, s, 0)
        planned = get_pipeline("tensorssa").compile(wl.model_fn, args)
        unplanned = get_pipeline("tensorssa_noplan").compile(
            wl.model_fn, args)
        with profiler.profile() as base:
            unplanned(*args)
        with profiler.profile() as opt:
            planned(*args)
        assert opt.peak_bytes <= 0.7 * base.peak_bytes, \
            f"{name}: {opt.peak_bytes} vs {base.peak_bytes}"
        assert opt.bytes_reused > 0

    def test_planned_run_is_repeatable(self):
        """Env eviction must not leak state between runs of one plan."""
        wl = models.get_workload("lstm")
        args = wl.make_inputs(2, 8, 0)
        compiled = get_pipeline("tensorssa").compile(wl.model_fn, args)
        first = _as_tuple(compiled(*args))
        second = _as_tuple(compiled(*args))
        assert_outputs_equal(second, first)

    def test_zero_trip_loop_passthrough_survives_release(self):
        def f(x, n: int):
            h = x.clone()
            for i in range(n):
                h = rt.tanh(h)
            return rt.add(h, 1.0)

        graph = _graph(f)
        plan = get_or_build_plan(graph)
        x = rt.ones((4, 4))
        # n=0: the loop output IS the carried-in clone; the release of
        # the clone's class after the loop must not break the output
        outs = run_graph(graph, (x, 0), plan=plan)
        np.testing.assert_allclose(outs[0].numpy(), 2.0 * np.ones((4, 4)))
        outs2 = run_graph(graph, (x, 3), plan=plan)
        expected = np.tanh(np.tanh(np.tanh(np.ones((4, 4))))) + 1.0
        np.testing.assert_allclose(outs2[0].numpy(), expected, rtol=1e-6)

    def test_rotation_reclaims_loop_generations(self):
        def f(x, n: int):
            h = x.clone()
            for i in range(n):
                h = rt.tanh(h)
            return rt.add(h, 1.0)

        graph = _graph(f)
        plan = get_or_build_plan(graph)
        x = rt.ones((64, 64))
        with profiler.profile() as prof:
            run_graph(graph, (x, 10), plan=plan)
        # 10 generations, but rotation keeps only ~2 resident: the peak
        # must stay far below the 10x an unplanned run materializes
        with profiler.profile() as base:
            run_graph(graph, (x, 10))
        assert prof.peak_bytes < 0.5 * base.peak_bytes

    def test_peak_surfaces_in_run_result(self):
        from repro.eval.harness import clear_compile_cache, run_workload
        clear_compile_cache()
        try:
            res = run_workload("lstm", "tensorssa", seq_len=8)
            assert res.peak_bytes > 0
            assert res.bytes_reused > 0
            noplan = run_workload("lstm", "tensorssa_noplan", seq_len=8)
            assert noplan.peak_bytes > res.peak_bytes
            assert noplan.bytes_reused == 0
        finally:
            clear_compile_cache()
