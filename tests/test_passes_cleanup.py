"""DCE, CSE, and constant folding."""

import numpy as np

import repro.runtime as rt
from repro.backend import run_graph
from repro.frontend import script
from repro.ir import Graph, clone_graph, verify
from repro.ir import types as T
from repro.passes import constant_fold, cse, dce


class TestDCE:
    def test_removes_unused_pure_node(self):
        g = Graph()
        x = g.add_input("x", T.TensorType())
        dead = g.create("aten::neg", [x], ["d"], [T.TensorType()])
        g.block.append(dead)
        live = g.create("aten::exp", [x], ["l"], [T.TensorType()])
        g.block.append(live)
        g.add_output(live.output())
        assert dce(g)
        assert [n.op for n in g.block.nodes] == ["aten::exp"]
        verify(g)

    def test_removes_dead_chains(self):
        g = Graph()
        x = g.add_input("x", T.TensorType())
        a = g.create("aten::neg", [x], ["a"], [T.TensorType()])
        g.block.append(a)
        b = g.create("aten::exp", [a.output()], ["b"], [T.TensorType()])
        g.block.append(b)
        g.add_output(x)
        dce(g)
        assert not g.block.nodes
        verify(g)

    def test_keeps_mutating_nodes(self):
        def f(x):
            x[0] = 1.0  # result unused, but effect visible to caller
            return 0
        g = clone_graph(script(f).graph)
        dce(g)
        assert any(n.schema.is_mutating for n in g.walk())

    def test_prunes_dead_loop_carry(self):
        def f(x, n: int):
            unused = x * 1.0
            keep = x * 2.0
            for i in range(n):
                unused = unused + 1.0
                keep = keep + 1.0
            return keep
        g = clone_graph(script(f).graph)
        loop = g.nodes_of("prim::Loop")[0]
        carried_before = len(loop.inputs) - 2
        dce(g)
        loop = g.nodes_of("prim::Loop")[0]
        assert len(loop.inputs) - 2 < carried_before
        verify(g)
        out = run_graph(g, [rt.tensor([1.0]), 3])[0]
        assert out.item() == 5.0

    def test_prunes_dead_if_output(self):
        def f(x, flag: bool):
            if flag:
                a, b = x + 1.0, x + 2.0
            else:
                a, b = x - 1.0, x - 2.0
            return a
        g = clone_graph(script(f).graph)
        dce(g)
        branch = g.nodes_of("prim::If")[0]
        assert len(branch.outputs) == 1
        verify(g)
        assert run_graph(g, [rt.tensor([1.0]), True])[0].item() == 2.0


class TestCSE:
    def test_dedupes_identical_pure_ops(self):
        def f(x):
            a = x * 2.0
            b = x * 2.0
            return a + b
        g = clone_graph(script(f).graph)
        before = len(g.nodes_of("aten::mul"))
        cse(g)
        assert len(g.nodes_of("aten::mul")) < before
        verify(g)
        assert run_graph(g, [rt.tensor([3.0])])[0].item() == 12.0

    def test_dedupes_constants(self):
        g = Graph()
        x = g.add_input("x", T.TensorType())
        c1, c2 = g.constant(5), g.constant(5)
        g.block.append(c1)
        g.block.append(c2)
        a = g.create("aten::add", [x, c1.output()], ["a"], [T.TensorType()])
        g.block.append(a)
        b = g.create("aten::add", [x, c2.output()], ["b"], [T.TensorType()])
        g.block.append(b)
        g.add_output(a.output())
        g.add_output(b.output())
        cse(g)
        dce(g)
        consts = g.nodes_of("prim::Constant")
        assert len(consts) == 1
        verify(g)

    def test_does_not_merge_across_payload_types(self):
        g = Graph()
        c1, c2 = g.constant(1), g.constant(True)
        g.block.append(c1)
        g.block.append(c2)
        lst = g.create("prim::ListConstruct",
                       [c1.output(), c2.output()], ["l"], [T.ListType()])
        g.block.append(lst)
        g.add_output(lst.output())
        cse(g)
        assert len(g.nodes_of("prim::Constant")) == 2

    def test_never_dedupes_mutating_ops(self):
        def f(x):
            x.add_(1.0)
            x.add_(1.0)
            return x
        g = clone_graph(script(f).graph)
        cse(g)
        assert len(g.nodes_of("aten::add_")) == 2


class TestConstantFold:
    def test_folds_scalar_arithmetic(self):
        def f(x):
            k = 3 * 4 + 2
            return x * float(k)
        g = clone_graph(script(f).graph)
        constant_fold(g)
        dce(g)
        assert not g.nodes_of("prim::mul", "prim::add")
        assert run_graph(g, [rt.tensor([1.0])])[0].item() == 14.0

    def test_folds_comparisons(self):
        def f(x, n: int):
            if 3 > 2:
                y = x + 1.0
            else:
                y = x - 1.0
            return y
        g = clone_graph(script(f).graph)
        folded = constant_fold(g)
        assert folded
        verify(g)

    def test_leaves_dynamic_ops(self):
        def f(x, n: int):
            return x * float(n + 1)
        g = clone_graph(script(f).graph)
        constant_fold(g)
        assert g.nodes_of("prim::add")  # n is dynamic

    def test_fold_division_by_zero_is_left_alone(self):
        g = Graph()
        c0 = g.constant(0)
        c1 = g.constant(1)
        g.block.append(c0)
        g.block.append(c1)
        div = g.create("prim::floordiv", [c1.output(), c0.output()],
                       ["d"], [T.IntType()])
        g.block.append(div)
        g.add_output(div.output())
        constant_fold(g)  # must not raise
        assert g.nodes_of("prim::floordiv")


class TestCSESoundness:
    def test_no_merge_across_mutation(self):
        """Regression (found by hypothesis): identical reads straddling
        a mutation of their storage must stay distinct."""
        def f(x):
            y = x.clone()
            a = y * 1.0      # reads pre-mutation data
            y[0] = 0.0
            b = y * 1.0      # reads post-mutation data
            return a, b
        g = clone_graph(script(f).graph)
        cse(g)
        x = rt.tensor([5.0, 6.0])
        a, b = run_graph(g, [x])
        assert a.numpy()[0] == 5.0
        assert b.numpy()[0] == 0.0

    def test_view_dedup_across_mutation_is_fine(self):
        def f(x):
            y = x.clone()
            v1 = y.select(0, 0)
            y.add_(1.0)
            v2 = y.select(0, 0)  # aliases the same storage: mergeable
            return v1 + v2
        g = clone_graph(script(f).graph)
        cse(g)
        got = run_graph(g, [rt.tensor([1.0, 2.0])])[0]
        expected = f(rt.tensor([1.0, 2.0]))
        np.testing.assert_allclose(got.numpy(), expected.numpy())

    def test_scalar_entries_survive_mutation(self):
        def f(x, n: int):
            a = n * 2
            x.add_(1.0)
            b = n * 2
            return x * float(a + b)
        g = clone_graph(script(f).graph)
        cse(g)
        assert len(g.nodes_of("prim::mul")) == 1
