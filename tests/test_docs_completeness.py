"""Documentation hygiene: every public module and callable is documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    names = ["repro"]
    for pkg in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(pkg.name)
    return names


MODULES = _walk_modules()


@pytest.mark.parametrize("name", MODULES)
def test_module_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), \
        f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", MODULES)
def test_public_functions_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for attr_name in dir(module):
        if attr_name.startswith("_"):
            continue
        obj = getattr(module, attr_name)
        if inspect.isfunction(obj) and obj.__module__ == name:
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(attr_name)
    assert not undocumented, f"{name}: undocumented {undocumented}"


def test_public_classes_documented():
    undocumented = []
    for name in MODULES:
        module = importlib.import_module(name)
        for attr_name in dir(module):
            if attr_name.startswith("_"):
                continue
            obj = getattr(module, attr_name)
            if inspect.isclass(obj) and obj.__module__ == name:
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, undocumented
