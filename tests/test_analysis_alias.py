"""Alias analysis: graph construction, T-sets, eligibility (paper §2.3)."""

import pytest

import repro.runtime as rt
from repro.analysis import AliasGraph
from repro.frontend import script


def build(fn):
    scripted = script(fn)
    return scripted.graph, AliasGraph(scripted.graph)


# -- scriptable programs used as fixtures -----------------------------------

def straight_views(x):
    a = x.select(0, 0)
    b = a.slice(0, 0, 2)
    b.fill_(1.0)
    return x.sum()


def two_origins(x, y):
    x[0] = 1.0
    y[0] = 2.0
    return x.sum() + y.sum()


def whole_and_partial(x):
    y = x.clone()
    y += 1.0          # whole mutation
    y[0] = 5.0        # partial mutation
    return y


def list_escape_before_mutation(x):
    y = x.clone()
    parts = [y]
    y[0] = 1.0
    return rt.cat(parts, 0)


def list_escape_after_mutation(x):
    y = x.clone()
    y[0] = 1.0
    parts = [y, y]
    return rt.cat(parts, 0)


def expand_mutation_chain(x):
    y = x.clone()
    v = y.unsqueeze(0).expand((4, 3))
    return v.sum()


def loop_carried_escape(x, n: int):
    y = x.clone()
    acc = y  # alias kept across the loop
    for i in range(n):
        y = y + 1.0
    y2 = y.clone()
    y2[0] = 0.0
    return acc.sum() + y2.sum()


class TestAliasGraphStructure:
    def test_view_chain_root(self):
        graph, alias = build(straight_views)
        fill = graph.nodes_of("aten::fill_")[0]
        target = fill.input(0)
        root = alias.view_root(target)
        assert root is graph.inputs[0]

    def test_view_closure_collects_chain(self):
        graph, alias = build(straight_views)
        closure = alias.view_closure(graph.inputs[0])
        # select, slice, and the fill_ output (identity alias)
        assert len(closure) == 3

    def test_must_alias_within_chain(self):
        graph, alias = build(straight_views)
        select_out = graph.nodes_of("aten::select")[0].output()
        slice_out = graph.nodes_of("aten::slice")[0].output()
        assert alias.must_alias(select_out, slice_out)
        assert alias.must_alias(select_out, graph.inputs[0])

    def test_distinct_origins_do_not_alias(self):
        graph, alias = build(two_origins)
        x, y = graph.inputs
        assert not alias.must_alias(x, y)
        assert not alias.may_alias(x, y)

    def test_mutations_recorded_in_program_order(self):
        graph, alias = build(two_origins)
        assert [m.node.op for m in alias.mutations] == \
            ["aten::copy_", "aten::copy_"] or \
            [m.node.op for m in alias.mutations] == \
            ["aten::fill_", "aten::fill_"]

    def test_storage_set_of_view(self):
        graph, alias = build(straight_views)
        slice_out = graph.nodes_of("aten::slice")[0].output()
        sset = alias.storage_set(slice_out)
        assert id(graph.inputs[0]) in sset
        assert len(sset) == 1

    def test_storage_set_through_list(self):
        graph, alias = build(list_escape_after_mutation)
        clone_out = graph.nodes_of("aten::clone")[0].output()
        cat_in_list = graph.nodes_of("prim::ListConstruct")[0].output()
        # the container's contents are not the container's own aliases,
        # but ListIndex-style extraction would reach the clone
        assert id(clone_out) in alias.storage_set(clone_out)
        assert cat_in_list is not None


class TestTSets:
    def test_tset_shape(self):
        graph, alias = build(straight_views)
        tsets = alias.tsets()
        assert len(tsets) == 1
        tset = tsets[0]
        assert tset.origin is graph.inputs[0]
        assert len(tset.mutations) == 1
        assert tset.eligible

    def test_two_origins_two_tsets(self):
        _, alias = build(two_origins)
        tsets = alias.tsets()
        assert len(tsets) == 2
        assert all(t.eligible for t in tsets)

    def test_whole_and_partial_same_tset(self):
        _, alias = build(whole_and_partial)
        tsets = alias.tsets()
        assert len(tsets) == 1
        assert len(tsets[0].mutations) == 2
        assert tsets[0].eligible


class TestEligibility:
    def test_container_escape_before_mutation_is_ineligible(self):
        _, alias = build(list_escape_before_mutation)
        tset = alias.tsets()[0]
        assert not tset.eligible
        assert "container" in tset.reason

    def test_container_escape_after_mutation_is_fine(self):
        _, alias = build(list_escape_after_mutation)
        tset = alias.tsets()[0]
        assert tset.eligible, tset.reason

    def test_mutation_through_expand_is_ineligible(self):
        def f(x):
            y = x.clone()
            v = y.unsqueeze(0).expand((2, 3))
            v.masked_fill_(v > 0, 0.0)
            return y
        # our runtime rejects writes through broadcast views, so this
        # is only checkable at the analysis level
        alias = AliasGraph(script(f).graph)
        tset = alias.tsets()[0]
        assert not tset.eligible
        assert "expand" in tset.reason or "Assign inverse" in tset.reason

    def test_constant_origin_is_ineligible(self):
        weight = rt.ones((3,))

        def f(x):
            weight.fill_(0.0)
            return x + weight
        _, alias = build(f)
        tset = alias.tsets()[0]
        assert not tset.eligible
        assert "constant" in tset.reason

    def test_loop_alias_cross_contamination_detected(self):
        _, alias = build(loop_carried_escape)
        tsets = alias.tsets()
        # y2's mutation is fine (fresh clone); nothing may silently
        # functionalize storage that `acc` still观察es through the loop
        for tset in tsets:
            if tset.origin.name.startswith("y2") or tset.eligible:
                continue
            assert tset.reason

    def test_accumulator_param_is_eligible(self):
        def f(x, n: int):
            acc = rt.zeros((4,))
            for i in range(n):
                acc += x
            return acc
        _, alias = build(f)
        tsets = alias.tsets()
        assert len(tsets) == 1
        assert tsets[0].eligible, tsets[0].reason
        assert tsets[0].origin.is_param  # the loop-carried slot

    def test_accumulator_with_shared_init_is_ineligible(self):
        def f(x, n: int):
            acc = rt.zeros((4,))
            keep = acc.select(0, 0)  # second handle on the init storage
            for i in range(n):
                acc += x
            return acc, keep
        _, alias = build(f)
        tset = alias.tsets()[0]
        assert not tset.eligible
