"""Shared test helpers."""

from __future__ import annotations

import numpy as np
import pytest

import repro.runtime as rt


def assert_tensor_equal(a, b, rtol=1e-5, atol=1e-6, msg=""):
    """Compare two runtime Tensors (or Tensor vs ndarray)."""
    arr_a = a.numpy() if isinstance(a, rt.Tensor) else np.asarray(a)
    arr_b = b.numpy() if isinstance(b, rt.Tensor) else np.asarray(b)
    assert arr_a.shape == arr_b.shape, \
        f"shape mismatch {arr_a.shape} vs {arr_b.shape} {msg}"
    np.testing.assert_allclose(arr_a, arr_b, rtol=rtol, atol=atol,
                               err_msg=msg)


def assert_outputs_equal(got, expected, msg=""):
    """Compare pipeline outputs: tensors, scalars, or (nested) tuples."""
    if isinstance(expected, (tuple, list)):
        assert isinstance(got, (tuple, list)), f"expected a tuple {msg}"
        assert len(got) == len(expected), \
            f"arity mismatch: {len(got)} vs {len(expected)} {msg}"
        for i, (g, e) in enumerate(zip(got, expected)):
            assert_outputs_equal(g, e, msg=f"{msg}[{i}]")
    elif isinstance(expected, rt.Tensor):
        assert_tensor_equal(got, expected, msg=msg)
    else:
        assert got == pytest.approx(expected), msg


@pytest.fixture
def rng():
    return np.random.default_rng(0)
