"""Canonicalization: algebraic identities and control-flow folding."""

import numpy as np

import repro.runtime as rt
from repro.backend import run_graph
from repro.frontend import script
from repro.ir import clone_graph, parse_graph, verify
from repro.passes import constant_fold, dce
from repro.passes.canonicalize import canonicalize


def scripted(fn):
    return clone_graph(script(fn).graph)


def check_equal(graph, fn, *args):
    expected = fn(*[a.clone() if isinstance(a, rt.Tensor) else a
                    for a in args])
    got = run_graph(graph, [a.clone() if isinstance(a, rt.Tensor) else a
                            for a in args])
    exp = list(expected) if isinstance(expected, tuple) else [expected]
    for g, e in zip(got, exp):
        np.testing.assert_allclose(np.asarray(g.numpy(), dtype=float),
                                   np.asarray(e.numpy(), dtype=float),
                                   rtol=1e-6)


class TestAlgebraic:
    def test_add_zero_mul_one(self):
        def f(x):
            return ((x + 0.0) * 1.0 - 0.0) / 1.0
        g = scripted(f)
        assert canonicalize(g)
        dce(g)
        assert not g.nodes_of("aten::add", "aten::mul", "aten::sub",
                              "aten::div")
        check_equal(g, f, rt.rand((3,), seed=1))

    def test_double_neg(self):
        def f(x):
            return -(-x)
        g = scripted(f)
        canonicalize(g)
        dce(g)
        assert len(g.nodes_of("aten::neg")) == 0
        check_equal(g, f, rt.rand((3,), seed=2))

    def test_relu_of_sigmoid(self):
        def f(x):
            return x.sigmoid().relu()
        g = scripted(f)
        canonicalize(g)
        dce(g)
        assert not g.nodes_of("aten::relu")
        check_equal(g, f, rt.randn((4,), seed=3))

    def test_transpose_transpose(self):
        def f(x):
            return x.transpose(0, 1).transpose(0, 1) + 1.0
        g = scripted(f)
        canonicalize(g)
        dce(g)
        assert not g.nodes_of("aten::transpose")
        check_equal(g, f, rt.rand((2, 3), seed=4))

    def test_clamp_merge(self):
        def f(x):
            return x.clamp(-1.0, 1.0).clamp(-0.5, 2.0)
        g = scripted(f)
        canonicalize(g)
        dce(g)
        assert len(g.nodes_of("aten::clamp")) == 1
        check_equal(g, f, rt.randn((6,), seed=5))

    def test_identities_skipped_when_graph_mutates(self):
        """`y = x + 0.0` must NOT become an alias of x when y is later
        mutated — the identity is only applied to pure graphs."""
        def f(x):
            y = x + 0.0
            y.add_(5.0)
            return x.sum(), y
        g = scripted(f)
        canonicalize(g)
        assert g.nodes_of("aten::add")  # identity not applied
        check_equal(g, f, rt.rand((3,), seed=6))


class TestControlFlowFolding:
    def test_constant_true_if_splices_then(self):
        def f(x):
            if 2 > 1:
                y = x * 3.0
            else:
                y = x * 100.0
            return y
        g = scripted(f)
        constant_fold(g)
        canonicalize(g)
        dce(g)
        assert not g.nodes_of("prim::If")
        check_equal(g, f, rt.rand((2,), seed=7))

    def test_zero_trip_loop_forwards_inits(self):
        g = parse_graph("""
graph g(%x.0 : Tensor):
  %z.0 = prim::Constant[value=0]()
  %t.0 = prim::Constant[value=True]()
  %o.0 = prim::Loop(%z.0, %t.0, %x.0)
    block0(%i.0 : Int, %a.0 : Tensor):
      %c.0 = prim::Constant[value=9.0]()
      %n.0 = aten::add(%a.0, %c.0)
      -> (%t.0, %n.0)
  return (%o.0)
""")
        canonicalize(g)
        dce(g)
        verify(g)
        assert not g.nodes_of("prim::Loop")
        assert run_graph(g, [rt.tensor([1.0])])[0].item() == 1.0

    def test_false_condition_loop_removed(self):
        g = parse_graph("""
graph g(%x.0 : Tensor, %n.0 : Int):
  %f.0 = prim::Constant[value=False]()
  %o.0 = prim::Loop(%n.0, %f.0, %x.0)
    block0(%i.0 : Int, %a.0 : Tensor):
      %c.0 = prim::Constant[value=9.0]()
      %m.0 = aten::add(%a.0, %c.0)
      -> (%f.0, %m.0)
  return (%o.0)
""")
        canonicalize(g)
        dce(g)
        assert not g.nodes_of("prim::Loop")
        assert run_graph(g, [rt.tensor([2.0]), 7])[0].item() == 2.0

    def test_dynamic_structures_untouched(self):
        def f(x, flag: bool, n: int):
            y = x * 1.0
            if flag:
                y = y + 1.0
            for i in range(n):
                y = y * 2.0
            return y
        g = scripted(f)
        canonicalize(g)
        assert g.nodes_of("prim::If")
        assert g.nodes_of("prim::Loop")
        check_equal(g, f, rt.rand((2,), seed=8), True, 3)
