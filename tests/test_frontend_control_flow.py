"""Scripting frontend: control flow (loops, branches, nesting)."""

import pytest

import repro.runtime as rt
from repro.frontend import ScriptError, script
from test_frontend_basic import check


def simple_if(x, flag: bool):
    if flag:
        y = x + 1.0
    else:
        y = x - 1.0
    return y


def if_no_else(x, flag: bool):
    y = x * 1.0
    if flag:
        y = y + 10.0
    return y


def if_scalar_cond(x, n: int):
    if n >= 0:
        out = x * 2.0
    else:
        out = x * -1.0
    return out


def if_mutation_both_branches(a, b, idx: int):
    # Paper Figure 2's running example.
    if idx >= 0:
        a += 1.0
        b[0] = a[0]
    else:
        a -= 1.0
        b[1] = a[1]
    return a, b


def nested_if(x, n: int):
    if n > 0:
        if n > 10:
            y = x + 100.0
        else:
            y = x + 10.0
    else:
        y = x * 0.0
    return y


def for_accumulate(x, n: int):
    acc = x * 0.0
    for i in range(n):
        acc = acc + x * float(i)
    return acc


def for_mutate_rows(x, n: int):
    y = x.clone()
    for i in range(n):
        y[i] = y[i] + 1.0
    return y


def for_with_start(n: int):
    total = 0
    for i in range(2, n):
        total += i
    return total


def for_scalar_carried(n: int):
    a = 0
    b = 1
    for _ in range(n):
        a, b = b, a + b
    return a


def while_loop(n: int):
    i = 0
    total = 0
    while i < n:
        total += i * i
        i += 1
    return total


def while_tensor_cond(x):
    y = x.clone()
    count = 0
    while float(y.sum()) < 100.0 and count < 64:
        y += 1.0
        count += 1
    return y, count


def loop_in_if(x, flag: bool, n: int):
    y = x.clone()
    if flag:
        for i in range(n):
            y += 1.0
    else:
        y -= 1.0
    return y


def if_in_loop(x, n: int):
    y = x.clone()
    for i in range(n):
        if i - (i // 2) * 2 == 0:
            y[0] += 1.0
        else:
            y[1] += 2.0
    return y


def running_lstm_style(x, h0, n: int):
    h = h0.clone()
    out = rt.zeros((n, h0.shape[0]))
    for t in range(n):
        h = (h * 0.5 + x[t]).tanh()
        out[t] = h
    return out, h


def zero_trip_loop(x, n: int):
    y = x.clone()
    for i in range(n):
        y += 100.0
    return y


class TestIf:
    def test_simple_if(self):
        check(simple_if, rt.rand((3,), seed=1), True)
        check(simple_if, rt.rand((3,), seed=1), False)

    def test_if_no_else(self):
        check(if_no_else, rt.rand((3,), seed=2), True)
        check(if_no_else, rt.rand((3,), seed=2), False)

    def test_if_scalar_cond(self):
        check(if_scalar_cond, rt.rand((3,), seed=3), 5)
        check(if_scalar_cond, rt.rand((3,), seed=3), -5)

    def test_paper_figure2(self):
        for idx in (3, -3):
            check(if_mutation_both_branches, rt.rand((4,), seed=4),
                  rt.rand((4,), seed=5), idx)

    def test_nested_if(self):
        for n in (20, 5, -1):
            check(nested_if, rt.rand((2,), seed=6), n)

    def test_branch_local_name_not_visible_after(self):
        def f(x, flag: bool):
            if flag:
                tmp = x + 1.0
            y = tmp  # noqa: F821 - only defined on one path
            return y
        with pytest.raises(ScriptError):
            script(f)


class TestLoops:
    def test_for_accumulate(self):
        check(for_accumulate, rt.rand((3,), seed=7), 5)

    def test_for_mutate_rows(self):
        check(for_mutate_rows, rt.rand((4, 2), seed=8), 4)

    def test_for_with_start(self):
        check(for_with_start, 7)

    def test_scalar_swap_carried(self):
        assert check(for_scalar_carried, 10)(10) == 55

    def test_while(self):
        check(while_loop, 6)

    def test_while_with_tensor_condition(self):
        check(while_tensor_cond, rt.ones((4,)))

    def test_zero_trip(self):
        check(zero_trip_loop, rt.rand((2,), seed=9), 0)

    def test_range_step_rejected(self):
        def f(n: int):
            total = 0
            for i in range(0, n, 2):
                total += i
            return total
        with pytest.raises(ScriptError):
            script(f)


class TestNesting:
    def test_loop_in_if(self):
        check(loop_in_if, rt.rand((2,), seed=10), True, 3)
        check(loop_in_if, rt.rand((2,), seed=10), False, 3)

    def test_if_in_loop(self):
        check(if_in_loop, rt.rand((3,), seed=11), 6)

    def test_lstm_style_buffer_fill(self):
        check(running_lstm_style, rt.rand((5, 3), seed=12),
              rt.rand((3,), seed=13), 5)


class TestLoopIR:
    def test_loop_carries_reassigned_var(self):
        s = script(for_accumulate)
        loop = s.graph.nodes_of("prim::Loop")[0]
        # acc is carried: (trip, cond, acc)
        assert len(loop.inputs) == 3
        assert len(loop.outputs) == 1

    def test_mutated_but_not_rebound_is_not_carried(self):
        s = script(for_mutate_rows)
        loop = s.graph.nodes_of("prim::Loop")[0]
        # y is only mutated through views, never rebound -> TorchScript
        # semantics: not a loop-carried value (the paper's problem!).
        assert len(loop.inputs) == 2
        assert len(loop.outputs) == 0
