"""Revert pass: unfused Assigns back to in-place mutation (paper §3.2)."""

import numpy as np

import repro.runtime as rt
from repro.backend import run_graph
from repro.frontend import script
from repro.ir import clone_graph, verify
from repro.passes import dce
from repro.passes.revert import revert_unfused_assigns
from repro.pipelines import TensorSSAPipeline
from repro.tensorssa import convert_to_tensorssa


def converted(fn):
    g = clone_graph(script(fn).graph)
    convert_to_tensorssa(g)
    dce(g)
    return g


class TestRevert:
    def test_single_consumer_assign_reverted(self):
        def f(x):
            y = x.clone()
            y[0] = 5.0
            return y
        g = converted(f)
        n = revert_unfused_assigns(g)
        dce(g)
        verify(g)
        assert n >= 1
        assert any(node.op == "aten::copy_" for node in g.walk())
        got = run_graph(g, [rt.tensor([1.0, 2.0])])[0]
        assert got.tolist() == [5.0, 2.0]

    def test_shared_base_not_reverted(self):
        def f(x):
            y = x.clone()
            z = y * 1.0          # second reader of the pre-assign value
            y[0] = 5.0
            return y, z
        g = converted(f)
        # find the select_assign: its base (the clone) has 2+ uses
        before = [n.op for n in g.walk() if n.op.endswith("_assign")]
        revert_unfused_assigns(g)
        dce(g)
        verify(g)
        x = rt.tensor([1.0, 2.0])
        y, z = run_graph(g, [x])
        assert z.numpy()[0] == 1.0  # snapshot must keep old data
        assert y.numpy()[0] == 5.0
        assert before  # sanity: there was something to consider

    def test_graph_input_base_never_reverted(self):
        def f(x):
            y = x + 0.0
            return y
        g = converted(f)
        assert revert_unfused_assigns(g) == 0

    def test_cross_block_assign_not_reverted(self):
        def f(x, n: int):
            y = x.clone()
            for i in range(n):
                y[i] = float(i)
            return y
        g = converted(f)
        # the select_assign sits in the loop; its base is the carried
        # param (a block param) -> must not be reverted
        revert_unfused_assigns(g)
        verify(g)
        got = run_graph(g, [rt.ones((3,)), 3])[0]
        assert got.tolist() == [0.0, 1.0, 2.0]

    def test_pipeline_flag_correctness(self):
        def f(x):
            y = x.clone()
            y[0:2] = y[2:4] * 3.0
            y.relu_()
            return y
        args = rt.randn((4,), seed=9)
        expected = f(args.clone())
        for flag in (True, False):
            pipe = TensorSSAPipeline(revert_unfused=flag,
                                     name=f"rv_{flag}")
            got = pipe.compile(f)(args.clone())
            np.testing.assert_allclose(got.numpy(), expected.numpy(),
                                       rtol=1e-6)
