"""Scripting frontend: straight-line programs (scripted == eager)."""

import numpy as np
import pytest

import repro.runtime as rt
from conftest import assert_outputs_equal
from repro.frontend import ScriptError, script


def check(fn, *args, n_extra_runs=0):
    """Run eager and scripted on cloned inputs and compare everything,
    including in-place effects on the inputs."""
    def cloned():
        return [a.clone() if isinstance(a, rt.Tensor) else a for a in args]

    eager_args = cloned()
    expected = fn(*eager_args)
    scripted = script(fn)
    got_args = cloned()
    got = scripted(*got_args)
    assert_outputs_equal(got, expected, msg=f"outputs of {fn.__name__}")
    for i, (ea, ga) in enumerate(zip(eager_args, got_args)):
        if isinstance(ea, rt.Tensor):
            assert_outputs_equal(ga, ea, msg=f"input {i} mutation effect")
    return scripted


def arith(x, y):
    return x * 2.0 + y / 2.0 - 1.0


def unary_chain(x):
    return (-x).exp().sigmoid().tanh()


def scalar_math(a: int, b: int):
    c = a * b + 7
    d = c // 2 - a
    return d


def views_and_reduce(x):
    top = x[0:2]
    right = x[:, 1]
    return top.sum() + right.mean()


def mutate_slice(x):
    y = x.clone()
    y[0] = y[1] * 2.0
    y[:, 0] += 5.0
    return y


def mutate_input(x):
    x[0] = 0.0
    return x.sum()


def tensor_methods(x):
    a = x.clamp(-0.5, 0.5)
    b = x.relu()
    c = rt.where(x > 0, a, b)
    return c.softmax(1)


def free_functions(x, y):
    both = rt.cat([x, y], 0)
    stacked = rt.stack([x, y], 0)
    return both.sum(), stacked.mean()


def tuple_ops(x):
    values, idx = x.topk(2, dim=1)
    return values, idx.to(rt.float32)


def shapes(x):
    n = x.shape[0]
    m = len(x)
    return rt.zeros((n, m)) + float(n + m)


def kwargs_call(x):
    return x.sum(dim=1, keepdim=True)


def helper_double(v):
    return v * 2.0


def inlined(x):
    return helper_double(x) + helper_double(x[0])


def constants_and_creation(x):
    k = rt.arange(4).to(rt.float32)
    return x + k.unsqueeze(0)


def matmul_linear(x, w):
    return x @ w + rt.matmul(x, w)


def augassign_scalar(n: int):
    total = 0
    total += n
    total *= 2
    return total


def list_build(x):
    parts = [x[0], x[1]]
    parts.append(x[2])
    return rt.stack(parts, 0)


def ternary(flag: bool, x):
    y = x * 2.0 if flag else x * 3.0
    return y


class TestStraightLine:
    def test_arith(self):
        check(arith, rt.rand((3, 3), seed=1), rt.rand((3, 3), seed=2))

    def test_unary_chain(self):
        check(unary_chain, rt.rand((4,), seed=3))

    def test_scalar_math(self):
        check(scalar_math, 5, 7)

    def test_views_and_reduce(self):
        check(views_and_reduce, rt.rand((3, 3), seed=4))

    def test_mutate_slice(self):
        check(mutate_slice, rt.rand((3, 3), seed=5))

    def test_mutation_of_input_is_preserved(self):
        check(mutate_input, rt.rand((3, 3), seed=6))

    def test_tensor_methods(self):
        check(tensor_methods, rt.randn((3, 4), seed=7))

    def test_free_functions(self):
        check(free_functions, rt.rand((2, 2), seed=8),
              rt.rand((2, 2), seed=9))

    def test_multi_output_ops(self):
        check(tuple_ops, rt.rand((3, 5), seed=10))

    def test_shape_queries(self):
        check(shapes, rt.rand((3, 2), seed=11))

    def test_kwargs(self):
        check(kwargs_call, rt.rand((2, 3), seed=12))

    def test_helper_inlining(self):
        check(inlined, rt.rand((2, 2), seed=13))

    def test_constants_and_creation(self):
        check(constants_and_creation, rt.rand((2, 4), seed=14))

    def test_matmul(self):
        check(matmul_linear, rt.rand((2, 3), seed=15),
              rt.rand((3, 2), seed=16))

    def test_scalar_augassign(self):
        check(augassign_scalar, 21)

    def test_list_build(self):
        check(list_build, rt.rand((3, 2), seed=17))

    def test_ternary(self):
        check(ternary, True, rt.rand((2,), seed=18))
        check(ternary, False, rt.rand((2,), seed=18))


class TestGraphShape:
    def test_mutation_survives_into_ir(self):
        s = script(mutate_slice)
        ops = [n.op for n in s.graph.walk()]
        assert "aten::copy_" in ops
        assert "aten::add_" in ops
        assert "aten::select" in ops or "aten::slice" in ops

    def test_pure_program_has_no_mutation(self):
        s = script(arith)
        assert not any(n.schema.is_mutating for n in s.graph.walk()
                       if n.op != "prim::Constant")


class TestErrors:
    def test_early_return_rejected(self):
        def f(x):
            if True:
                return x
            return x
        with pytest.raises(ScriptError):
            script(f)

    def test_unknown_name(self):
        def f(x):
            return x + undefined_variable  # noqa: F821
        with pytest.raises(ScriptError):
            script(f)

    def test_nested_def_rejected(self):
        def f(x):
            def g(y):
                return y
            return g(x)
        with pytest.raises(ScriptError):
            script(f)

    def test_chained_compare_rejected(self):
        def f(a: int):
            return 0 < a < 5
        with pytest.raises(ScriptError):
            script(f)

    def test_star_args_rejected(self):
        def f(*xs):
            return xs[0]
        with pytest.raises(ScriptError):
            script(f)
