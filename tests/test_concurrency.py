"""Concurrency regressions: compile cache, profiler isolation, and
N-threads-by-M-workloads runs through both ``run_workload`` and
``Server.submit``.

Each test class documents the pre-fix failure mode it guards against:

* ``TestCompileCacheThreadSafety`` — the cache had no lock and callers
  inferred hit/miss by diffing global ``misses`` counters around the
  call, so any concurrent miss corrupted another run's ``cache_hit``;
* ``TestProfilerIsolation`` — the profiler stack was a module-global
  list, so two threads profiling at once interleaved launch/alloc
  events and corrupted each other's ``peak_bytes``;
* ``TestCounterEpochs`` — ``clear_compile_cache()`` silently reset
  counters, making post-clear ``RunResult`` snapshots incomparable
  with pre-clear ones; the epoch field makes the lifecycle explicit.
"""

import threading
import time

import numpy as np
import pytest

import repro.runtime as rt
from repro.eval.harness import (CompileCache, clear_compile_cache,
                                compile_cache_stats, run_workload)
from repro.models import get_workload
from repro.serve import ServePolicy, Server

pytestmark = pytest.mark.usefixtures("fresh_cache")


@pytest.fixture
def fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def run_threads(fns):
    """Run one thread per fn, re-raising the first worker exception."""
    errors = []

    def guard(fn):
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=guard, args=(fn,)) for fn in fns]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestCompileCacheThreadSafety:
    def test_lookup_reports_per_call_hit_status(self):
        # regression (bugfix 1): hit/miss must come from the call
        # itself, never from diffing global counters around it
        cache = CompileCache()
        entry, hit = cache.lookup(("k",))
        assert entry is None and hit is False
        cache.put(("k",), object())
        entry, hit = cache.lookup(("k",))
        assert entry is not None and hit is True
        snap = cache.snapshot()
        assert (snap.hits, snap.misses) == (1, 1)

    def test_concurrent_misses_compile_once(self):
        # in-flight dedup: 8 threads race the same cold key; exactly
        # one factory invocation, one miss, seven hits
        cache = CompileCache()
        calls = []
        started = threading.Barrier(8)
        results = []

        def factory():
            calls.append(1)
            time.sleep(0.05)  # hold the in-flight slot open
            return object()

        def worker():
            started.wait()
            results.append(cache.get_or_compile(("cold",), factory))

        run_threads([worker] * 8)
        assert len(calls) == 1
        snap = cache.snapshot()
        assert snap.misses == 1 and snap.hits == 7
        assert len({id(compiled) for compiled, _ in results}) == 1
        assert sum(1 for _, hit in results if not hit) == 1

    def test_failed_compile_releases_inflight_slot(self):
        cache = CompileCache()
        with pytest.raises(RuntimeError):
            cache.get_or_compile(("bad",),
                                 lambda: (_ for _ in ()).throw(
                                     RuntimeError("boom")))
        ok = object()
        compiled, hit = cache.get_or_compile(("bad",), lambda: ok)
        assert compiled is ok and hit is False

    def test_counter_sum_matches_calls_under_contention(self):
        cache = CompileCache(capacity=8)
        per_thread = 200

        def worker(tid):
            def fn():
                for i in range(per_thread):
                    cache.get_or_compile(("k", (tid + i) % 12),
                                         lambda: object())
            return fn

        run_threads([worker(t) for t in range(6)])
        snap = cache.snapshot()
        assert snap.hits + snap.misses == 6 * per_thread

    def test_run_workload_cache_hit_correct_under_concurrent_misses(self):
        # pre-fix: run_workload diffed _compile_cache.misses around the
        # compile, so a concurrent miss flipped another run's cache_hit
        run_workload("attention", "eager", seq_len=8)  # warm the key
        results = []

        def hitter():
            for _ in range(20):
                results.append(
                    run_workload("attention", "eager", seq_len=8))

        def misser():
            for s in range(20):
                run_workload("attention", "eager", seq_len=8 + s + 1)

        run_threads([hitter, misser])
        assert all(r.cache_hit for r in results)


class TestProfilerIsolation:
    def test_thread_profiles_do_not_interleave(self):
        # regression (bugfix 2): thread B records while thread A's
        # profile is open; pre-fix A observed B's launches
        a_open = threading.Event()
        b_done = threading.Event()
        captured = {}

        def thread_a():
            with rt.profile() as prof:
                a_open.set()
                assert b_done.wait(10)
            captured["a"] = prof

        def thread_b():
            assert a_open.wait(10)
            with rt.profile() as prof:
                x = rt.ones((16,))
                rt.add(x, x)
            captured["b"] = prof
            b_done.set()

        run_threads([thread_a, thread_b])
        assert captured["a"].num_launches == 0
        assert captured["b"].num_launches == 2  # ones + add

    def test_alloc_accounting_is_thread_local(self):
        # pre-fix: concurrent planned runs pushed pools/allocs onto
        # shared stacks, corrupting each other's peak_bytes
        solo = run_workload("lstm", "tensorssa", seq_len=8)
        results = [None] * 4

        def worker(i):
            def fn():
                results[i] = run_workload("lstm", "tensorssa", seq_len=8)
            return fn

        run_threads([worker(i) for i in range(4)])
        for res in results:
            assert res.kernel_launches == solo.kernel_launches
            assert res.peak_bytes == solo.peak_bytes
            assert res.bytes_reused == solo.bytes_reused

    def test_explicit_stack_api(self):
        from repro.runtime import profiler
        x = rt.ones((4,))
        prof = profiler.Profile()
        profiler.push_profile(prof)
        try:
            rt.add(x, 1.0)
        finally:
            assert profiler.pop_profile() is prof
        assert prof.num_launches == 1
        with pytest.raises(RuntimeError):
            profiler.pop_profile()


class TestCounterEpochs:
    def test_clear_advances_epoch(self):
        # regression (bugfix 3): post-clear results must be marked as a
        # new counter epoch, not silently restart from zero
        first = run_workload("attention", "tensorssa", seq_len=8)
        clear_compile_cache()
        second = run_workload("attention", "tensorssa", seq_len=8)
        assert second.cache_epoch == first.cache_epoch + 1
        assert second.cache_misses == 1  # fresh epoch, fresh counters
        assert not second.cache_hit

    def test_snapshot_matches_run_result(self):
        res = run_workload("attention", "tensorssa", seq_len=8)
        snap = compile_cache_stats()
        assert (snap.epoch, snap.hits, snap.misses) == \
            (res.cache_epoch, res.cache_hits, res.cache_misses)

    def test_injected_cache_isolates_counters(self):
        private = CompileCache()
        res = run_workload("attention", "eager", seq_len=8, cache=private)
        assert res.cache_misses == 1 and res.cache_epoch == 0
        assert compile_cache_stats().misses == 0  # global untouched


class TestConcurrentRuns:
    WORKLOADS = [("lstm", 8), ("attention", 8), ("nasrnn", 8)]

    def test_threads_by_workloads_bit_exact_vs_sequential_eager(self):
        # N threads x M workloads through run_workload: every compiled
        # run must match the sequential eager reference bit for bit
        expected = {}
        for name, seq in self.WORKLOADS:
            wl = get_workload(name)
            args = wl.make_inputs(batch_size=1, seq_len=seq, seed=0)
            outs = wl.model_fn(*tuple(a.clone() for a in args))
            expected[name] = outs if isinstance(outs, tuple) else (outs,)

        results = {}

        def worker(name, seq):
            def fn():
                results[name] = run_workload(name, "tensorssa",
                                             seq_len=seq)
            return fn

        run_threads([worker(n, s) for n, s in self.WORKLOADS] * 2)
        for name, _ in self.WORKLOADS:
            got = results[name].outputs
            assert len(got) == len(expected[name])
            for g, e in zip(got, expected[name]):
                np.testing.assert_array_equal(g.numpy(), e.numpy())

    def test_server_unbatched_bit_exact_vs_sequential_eager(self):
        # through Server.submit with batching disabled: responses are
        # bit-exact with solo eager (the strongest contract; batched
        # mode's oracle is exercised in test_serve.py)
        pol = ServePolicy(workers=4, max_batch_size=1, verify="solo")
        with Server(pol) as srv:
            futs = {}
            for name, seq in self.WORKLOADS:
                for seed in (0, 1):
                    futs[(name, seed)] = srv.submit(
                        name, seq_len=seq, seed=seed,
                        pipeline="tensorssa")
            for (name, seed), fut in futs.items():
                resp = fut.result(timeout=120)
                assert resp.ok, f"{name}/{seed}: {resp.error}"
                assert resp.verified is True
                wl = get_workload(name)
                args = wl.make_inputs(batch_size=1, seq_len=dict(
                    self.WORKLOADS)[name], seed=seed)
                outs = wl.model_fn(*tuple(a.clone() for a in args))
                outs = outs if isinstance(outs, tuple) else (outs,)
                for g, e in zip(resp.outputs, outs):
                    np.testing.assert_array_equal(g.numpy(), e.numpy())
        assert srv.stats.to_dict()["diverged"] == 0

    def test_server_batched_hit_rate_and_agreement(self):
        # batched serving: high cache hit rate once shapes repeat, and
        # the batch oracle (bit-exact vs eager on identical coalesced
        # inputs) holds for every response
        wl = get_workload("lstm")
        base = wl.make_inputs(batch_size=1, seq_len=8, seed=0)
        pol = ServePolicy(workers=2, max_batch_size=4,
                          batch_wait_s=0.01, verify="batch")
        with Server(pol) as srv:
            futs = []
            for s in range(16):
                a = wl.make_inputs(batch_size=1, seq_len=8, seed=50 + s)
                args = (a[0],) + base[1:4] + (a[4], a[5])
                futs.append(srv.submit("lstm", args=args))
            rs = [f.result(timeout=120) for f in futs]
        assert all(r.ok for r in rs)
        assert all(r.verified is True for r in rs)
        stats = srv.stats.to_dict()
        assert stats["diverged"] == 0
        # batch composition varies with scheduler timing, but there are
        # only max_batch_size distinct compile keys (one per batch
        # size), so misses are bounded and everything else must hit
        assert 1 <= stats["compile_cache"]["misses"] <= pol.max_batch_size
        assert (stats["compile_cache"]["hits"]
                + stats["compile_cache"]["misses"]
                == stats["batches_executed"])


class TestContinuousBatchingUnderContention:
    """Continuous admission + priority lanes with many submitter
    threads: the batch oracle must stay bit-exact when late arrivals
    are admitted into in-flight windows, and lane accounting must add
    up under contention."""

    def test_mixed_lanes_batch_oracle_and_lane_accounting(self):
        wl = get_workload("lstm")
        base = wl.make_inputs(batch_size=1, seq_len=8, seed=0)
        pol = ServePolicy(workers=2, max_batch_size=4,
                          batch_wait_s=0.02, verify="batch")
        n_threads, per_thread = 4, 6
        futs = [[] for _ in range(n_threads)]
        with Server(pol) as srv:
            def submitter(tid):
                def fn():
                    for k in range(per_thread):
                        a = wl.make_inputs(batch_size=1, seq_len=8,
                                           seed=100 + tid * per_thread + k)
                        args = (a[0],) + base[1:4] + (a[4], a[5])
                        futs[tid].append(srv.submit(
                            "lstm", args=args, priority=tid % 2,
                            tenant=f"t{tid % 2}"))
                        time.sleep(0.002)
                return fn
            run_threads([submitter(t) for t in range(n_threads)])
            rs = [f.result(timeout=120) for fs in futs for f in fs]
        assert all(r.ok for r in rs), [r.error for r in rs if not r.ok]
        assert all(r.verified is True for r in rs)
        stats = srv.stats.to_dict()
        assert stats["diverged"] == 0
        total = n_threads * per_thread
        assert stats["completed"] == total
        # every request was accounted to exactly one lane, in and out
        assert sum(stats["lane_submitted"].values()) == total
        assert sum(stats["lane_completed"].values()) == total
        assert stats["lane_completed"] == stats["lane_submitted"]
        # responses echo the lane they were submitted on
        for tid, fs in enumerate(futs):
            for f in fs:
                assert f.result(timeout=1).priority == tid % 2
