"""The eight paper workloads: shapes, determinism, and compiled
equivalence at test-friendly sizes."""

import numpy as np
import pytest

import repro.runtime as rt
from repro.models import WORKLOADS, get_workload, workload_names
from repro.models.registry import cv_nlp_split
from repro.pipelines import TensorSSAPipeline, get_pipeline

SMALL = dict(batch_size=2, seq_len=8)


def clone_args(args):
    return tuple(a.clone() if isinstance(a, rt.Tensor) else a for a in args)


class TestRegistry:
    def test_eight_workloads(self):
        assert len(WORKLOADS) == 8
        assert set(workload_names()) == {
            "yolov3", "ssd", "yolact", "fcos",
            "nasrnn", "lstm", "seq2seq", "attention"}

    def test_domains(self):
        cv, other = cv_nlp_split()
        assert set(cv) == {"yolov3", "ssd", "yolact", "fcos"}
        assert set(other) == {"nasrnn", "lstm", "seq2seq", "attention"}

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_workload("resnet")


@pytest.mark.parametrize("name", workload_names())
class TestEachWorkload:
    def test_eager_runs_and_is_deterministic(self, name):
        wl = get_workload(name)
        a1 = wl.make_inputs(seed=3, **SMALL)
        a2 = wl.make_inputs(seed=3, **SMALL)
        r1 = wl.model_fn(*clone_args(a1))
        r2 = wl.model_fn(*clone_args(a2))
        r1 = r1 if isinstance(r1, tuple) else (r1,)
        r2 = r2 if isinstance(r2, tuple) else (r2,)
        for x, y in zip(r1, r2):
            np.testing.assert_array_equal(x.numpy(), y.numpy())

    def test_seed_changes_output(self, name):
        wl = get_workload(name)
        r1 = wl.model_fn(*clone_args(wl.make_inputs(seed=1, **SMALL)))
        r2 = wl.model_fn(*clone_args(wl.make_inputs(seed=2, **SMALL)))
        r1 = r1 if isinstance(r1, tuple) else (r1,)
        r2 = r2 if isinstance(r2, tuple) else (r2,)
        assert any(not np.array_equal(x.numpy(), y.numpy())
                   for x, y in zip(r1, r2))

    def test_batch_dimension_respected(self, name):
        wl = get_workload(name)
        args = wl.make_inputs(batch_size=3, seq_len=8)
        out = wl.model_fn(*clone_args(args))
        out = out if isinstance(out, tuple) else (out,)
        assert any(3 in o.shape for o in out if isinstance(o, rt.Tensor))

    def test_tensorssa_equivalence(self, name):
        wl = get_workload(name)
        args = wl.make_inputs(seed=5, **SMALL)
        expected = wl.model_fn(*clone_args(args))
        compiled = TensorSSAPipeline().compile(wl.model_fn)
        got = compiled(*clone_args(args))
        expected = expected if isinstance(expected, tuple) else (expected,)
        got = got if isinstance(got, tuple) else (got,)
        for i, (g, e) in enumerate(zip(got, expected)):
            np.testing.assert_allclose(
                g.numpy().astype(float), e.numpy().astype(float),
                rtol=1e-4, atol=1e-5, err_msg=f"{name} output {i}")

    def test_workload_is_mutation_heavy(self, name):
        """Every paper workload must actually exercise the problem: the
        eager run performs in-place writes through views or whole
        tensors."""
        wl = get_workload(name)
        args = wl.make_inputs(seed=0, **SMALL)
        with rt.profile() as prof:
            wl.model_fn(*clone_args(args))
        mutating = {"copy_", "fill_", "add_", "sub_", "mul_", "div_",
                    "sigmoid_", "tanh_", "relu_", "clamp_", "zero_",
                    "masked_fill_", "exp_"}
        assert any(e.op in mutating for e in prof.events), \
            f"{name} performs no mutation — not an imperative workload"


class TestNLPSeqScaling:
    @pytest.mark.parametrize("name", ["nasrnn", "lstm", "seq2seq"])
    def test_eager_work_scales_linearly(self, name):
        wl = get_workload(name)
        with rt.profile() as p8:
            wl.model_fn(*clone_args(wl.make_inputs(seq_len=8)))
        with rt.profile() as p16:
            wl.model_fn(*clone_args(wl.make_inputs(seq_len=16)))
        assert 1.5 <= p16.num_launches / p8.num_launches <= 2.5

    def test_attention_is_causal(self):
        wl = get_workload("attention")
        q, k, v = wl.make_inputs(batch_size=1, seq_len=6)
        out, probs = wl.model_fn(q, k, v)
        p = probs.numpy()[0]
        upper = np.triu(p, k=1)
        assert np.abs(upper).max() < 1e-6  # no attention to the future
        np.testing.assert_allclose(p.sum(axis=1), 1.0, rtol=1e-5)


class TestCVBehaviour:
    def test_ssd_boxes_are_corner_form(self):
        wl = get_workload("ssd")
        boxes, filtered, best = wl.model_fn(*clone_args(
            wl.make_inputs(batch_size=1)))
        b = boxes.numpy()
        assert (b[:, :, 2] >= b[:, :, 0]).mean() > 0.95
        assert (b[:, :, 3] >= b[:, :, 1]).mean() > 0.95

    def test_ssd_background_class_filtered(self):
        wl = get_workload("ssd")
        _, filtered, _ = wl.model_fn(*clone_args(
            wl.make_inputs(batch_size=1)))
        assert filtered.numpy()[:, :, 0].sum() == 0.0

    def test_nms_suppresses_duplicates(self):
        from repro.models.boxes import greedy_nms_suppress
        box = rt.tensor([[[0.0, 0.0, 1.0, 1.0],
                          [0.0, 0.0, 1.0, 1.0],
                          [5.0, 5.0, 6.0, 6.0]]])
        mask = greedy_nms_suppress(box, 0.5, 3)
        assert mask.numpy()[0].tolist() == [0.0, 1.0, 0.0]

    def test_yolact_crop_zeroes_outside(self):
        wl = get_workload("yolact")
        args = wl.make_inputs(batch_size=1, seed=4)
        boxes, scores, cropped, area = wl.model_fn(*clone_args(args))
        c = cropped.numpy()
        assert (c >= 0).all()
        # at least one mask has zeroed margins
        assert (c == 0).any()

    def test_yolov3_scores_bounded(self):
        wl = get_workload("yolov3")
        boxes, scores = wl.model_fn(*clone_args(
            wl.make_inputs(batch_size=1)))
        s = scores.numpy()
        assert (s >= 0).all() and (s <= 1.0 + 1e-6).all()
