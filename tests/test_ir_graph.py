"""Graph-level IR data structure invariants."""

import pytest

from repro.ir import (Graph, VerificationError, clone_graph, print_graph,
                      verify)
from repro.ir import types as T


def make_simple_graph():
    g = Graph("simple")
    a = g.add_input("a", T.TensorType())
    b = g.add_input("b", T.TensorType())
    add = g.create("aten::add", [a, b], ["s"], [T.TensorType()])
    g.block.append(add)
    mul = g.create("aten::mul", [add.output(), a], ["m"], [T.TensorType()])
    g.block.append(mul)
    g.add_output(mul.output())
    return g, a, b, add, mul


class TestConstruction:
    def test_uses_are_tracked(self):
        g, a, b, add, mul = make_simple_graph()
        assert len(a.uses) == 2  # add input 0, mul input 1
        assert len(add.output().uses) == 1
        assert mul.output().uses[0].user is g.block

    def test_verify_ok(self):
        g, *_ = make_simple_graph()
        verify(g)

    def test_print_contains_ops(self):
        g, *_ = make_simple_graph()
        text = print_graph(g)
        assert "aten::add" in text and "aten::mul" in text
        assert text.startswith("graph simple(")

    def test_constant_node(self):
        g = Graph()
        c = g.constant(3.5)
        g.block.append(c)
        assert c.attrs["value"] == 3.5
        assert isinstance(c.output().type, T.FloatType)

    def test_unknown_op_rejected(self):
        g = Graph()
        with pytest.raises(KeyError):
            g.create("aten::definitely_not_an_op", [])


class TestMutationAPI:
    def test_replace_all_uses(self):
        g, a, b, add, mul = make_simple_graph()
        add.output().replace_all_uses_with(b)
        assert mul.input(0) is b
        assert not add.output().uses
        verify(g)

    def test_replace_updates_block_returns(self):
        g, a, b, add, mul = make_simple_graph()
        mul.output().replace_all_uses_with(add.output())
        assert g.outputs[0] is add.output()
        verify(g)

    def test_set_input(self):
        g, a, b, add, mul = make_simple_graph()
        mul.set_input(1, b)
        assert not any(u.user is mul for u in a.uses if u.index == 1)
        assert any(u.user is mul and u.index == 1 for u in b.uses)
        verify(g)

    def test_remove_input_reindexes_uses(self):
        g, a, b, add, mul = make_simple_graph()
        add.remove_input(0)
        assert add.inputs == (b,)
        assert b.uses[0].index == 0
        # verify() would fail arity checks only for control ops; the use
        # records themselves must still be consistent:
        verify(g)

    def test_destroy_requires_no_uses(self):
        g, a, b, add, mul = make_simple_graph()
        with pytest.raises(RuntimeError):
            add.destroy()
        mul.set_input(0, b)
        add.destroy()
        assert add not in g.block.nodes
        verify(g)

    def test_insert_before_after_and_is_before(self):
        g, a, b, add, mul = make_simple_graph()
        neg = g.create("aten::neg", [a], ["n"], [T.TensorType()])
        g.block.insert_before(mul, neg)
        assert add.is_before(neg) and neg.is_before(mul)
        neg2 = g.create("aten::neg", [a], ["n"], [T.TensorType()])
        g.block.insert_after(add, neg2)
        assert neg2.is_before(neg)
        verify(g)


class TestControlFlowStructure:
    def make_loop_graph(self):
        g = Graph("loopy")
        n = g.add_input("n", T.IntType())
        x = g.add_input("x", T.TensorType())
        true = g.constant(True)
        g.block.append(true)
        loop = g.create("prim::Loop", [n, true.output(), x])
        g.block.append(loop)
        body = loop.add_block()
        body.add_param("i", T.IntType())
        xc = body.add_param("x", T.TensorType())
        one = g.constant(1)
        body.append(one)
        add = g.create("aten::add", [xc, one.output()], ["x"],
                       [T.TensorType()])
        body.append(add)
        body.add_return(true.output())
        body.add_return(add.output())
        out = loop.add_output("x", T.TensorType())
        g.add_output(out)
        return g, loop

    def test_loop_verifies(self):
        g, loop = self.make_loop_graph()
        verify(g)

    def test_loop_arity_checked(self):
        g, loop = self.make_loop_graph()
        loop.blocks[0].params.pop()  # corrupt
        with pytest.raises(VerificationError):
            verify(g)

    def test_scope_violation_detected(self):
        g, loop = self.make_loop_graph()
        inner_add = loop.blocks[0].nodes[-1]
        # A top-level node using a loop-local value is out of scope.
        bad = g.create("aten::neg", [inner_add.output()], ["bad"],
                       [T.TensorType()])
        g.block.append(bad)
        with pytest.raises(VerificationError):
            verify(g)

    def test_walk_covers_nested(self):
        g, loop = self.make_loop_graph()
        ops = [n.op for n in g.walk()]
        assert "aten::add" in ops and "prim::Loop" in ops

    def test_nodes_of(self):
        g, loop = self.make_loop_graph()
        assert g.nodes_of("prim::Loop") == [loop]


class TestClone:
    def test_clone_is_deep_and_verifies(self):
        g, a, b, add, mul = make_simple_graph()
        g2 = clone_graph(g)
        verify(g2)
        assert len(list(g2.walk())) == len(list(g.walk()))
        # mutating the clone leaves the original intact
        g2.block.nodes[0].op = "aten::sub"
        assert g.block.nodes[0].op == "aten::add"

    def test_clone_control_flow(self):
        g, loop = TestControlFlowStructure().make_loop_graph()
        g2 = clone_graph(g)
        verify(g2)
        loops = g2.nodes_of("prim::Loop")
        assert len(loops) == 1
        assert loops[0] is not loop
        assert len(loops[0].blocks[0].nodes) == 2
