"""Textual IR parser: literals and printer round-trips."""

import pytest

import repro.runtime as rt
from repro.backend import run_graph
from repro.frontend import script
from repro.ir import IRParseError, parse_graph, print_graph, verify


SIMPLE = """
graph demo(%x.0 : Tensor, %n.0 : Int):
  %c.0 = prim::Constant[value=1.0]()
  %a.0 = aten::add(%x.0, %c.0)
  %b.0 = aten::mul(%a.0, %a.0)
  return (%b.0)
"""

LOOPY = """
graph loopy(%x.0 : Tensor, %n.0 : Int):
  %t.0 = prim::Constant[value=True]()
  %y.0 = aten::clone(%x.0)
  %y.2 = prim::Loop(%n.0, %t.0, %y.0)
    block0(%i.0 : Int, %y.1 : Tensor):
      %c.1 = prim::Constant[value=1.0]()
      %z.0 = aten::add(%y.1, %c.1)
      -> (%t.0, %z.0)
  return (%y.2)
"""

BRANCHY = """
graph branchy(%x.0 : Tensor, %f.0 : Bool):
  %o.0 = prim::If(%f.0)
    block0():
      %c.0 = prim::Constant[value=2.0]()
      %a.0 = aten::mul(%x.0, %c.0)
      -> (%a.0)
    block1():
      %c.1 = prim::Constant[value=3.0]()
      %b.0 = aten::mul(%x.0, %c.1)
      -> (%b.0)
  return (%o.0)
"""


class TestParse:
    def test_simple(self):
        g = parse_graph(SIMPLE)
        verify(g)
        assert [n.op for n in g.block.nodes] == [
            "prim::Constant", "aten::add", "aten::mul"]
        out = run_graph(g, [rt.tensor([2.0]), 0])[0]
        assert out.item() == 9.0

    def test_loop(self):
        g = parse_graph(LOOPY)
        verify(g)
        out = run_graph(g, [rt.tensor([0.0]), 5])[0]
        assert out.item() == 5.0

    def test_branch(self):
        g = parse_graph(BRANCHY)
        verify(g)
        assert run_graph(g, [rt.tensor([1.0]), True])[0].item() == 2.0
        assert run_graph(g, [rt.tensor([1.0]), False])[0].item() == 3.0

    def test_constants_payloads(self):
        g = parse_graph("""
graph c(%x.0 : Tensor):
  %a.0 = prim::Constant[value=None]()
  %b.0 = prim::Constant[value=[1, 2, 3]]()
  %c.0 = prim::Constant[value='hi']()
  %d.0 = prim::Constant[value=-1.5]()
  return (%x.0)
""")
        payloads = [n.attrs["value"] for n in
                    g.nodes_of("prim::Constant")]
        assert payloads == [None, [1, 2, 3], "hi", -1.5]

    def test_errors(self):
        with pytest.raises(IRParseError):
            parse_graph("nonsense")
        with pytest.raises(IRParseError):
            parse_graph("graph g(%x.0 : Tensor):\n  %a.0 = "
                        "aten::add(%nope.0, %x.0)\n  return (%a.0)")
        with pytest.raises(IRParseError):
            parse_graph("graph g(%x.0 : Wat):\n  return (%x.0)")


class TestRoundTrip:
    def _roundtrip(self, graph):
        text = print_graph(graph)
        reparsed = parse_graph(text)
        verify(reparsed)
        assert print_graph(reparsed) == text

    def test_literals_round_trip(self):
        for text in (SIMPLE, LOOPY, BRANCHY):
            g = parse_graph(text)
            self._roundtrip(g)

    def test_scripted_models_round_trip(self):
        from repro.models import WORKLOADS
        for name in ("ssd", "lstm", "attention"):
            graph = script(WORKLOADS[name].model_fn).graph
            self._roundtrip(graph)

    def test_converted_graph_round_trips(self):
        from repro.ir import clone_graph
        from repro.passes import dce
        from repro.tensorssa import convert_to_tensorssa

        def f(b, n: int):
            b = b.clone()
            for i in range(n):
                b[i] = b[i] + 1.0
            return b
        g = clone_graph(script(f).graph)
        convert_to_tensorssa(g)
        dce(g)
        self._roundtrip(g)

    def test_parsed_graph_executes_like_original(self):
        import numpy as np
        from repro.models import WORKLOADS
        wl = WORKLOADS["lstm"]
        graph = script(wl.model_fn).graph
        reparsed = parse_graph(print_graph(graph))
        args = wl.make_inputs(batch_size=1, seq_len=4)
        a = run_graph(graph, list(args))
        b = run_graph(reparsed, list(args))
        for x, y in zip(a, b):
            np.testing.assert_allclose(x.numpy(), y.numpy())
