"""Replay every checked-in fuzz corpus entry through the full oracle.

Each JSON file under ``tests/corpus/`` is a minimized program that once
exposed a real bug (``kind: regression``) or pins down a tricky shape
the fuzzer should keep covering (``kind: coverage``).  Replaying them
through eager plus every registered pipeline — bit-exact outputs, graph
and profiler invariants, IR round-trip — is the cheapest possible
guard against those bugs coming back.

New entries come from ``python -m repro.tools.fuzz --save-corpus
tests/corpus`` (see DESIGN.md); this test picks them up automatically.
"""

import json
from pathlib import Path

import pytest

from repro.frontend import script
from repro.fuzz.oracle import CorpusProgram, materialize, run_oracle
from repro.ir import parse_graph, print_graph

CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS_DIR.glob("*.json"))


def _load(path):
    return json.loads(path.read_text())


def test_corpus_is_populated():
    assert len(ENTRIES) >= 5, (
        "tests/corpus/ must hold at least five minimized entries")


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_replays_clean(path):
    entry = _load(path)
    program = CorpusProgram(seed=entry["seed"], source=entry["source"],
                            name=entry.get("fn_name", "f"))
    failure = run_oracle(program)
    assert failure is None, (
        f"corpus regression {entry['name']} resurfaced "
        f"(originally: {entry.get('note', 'n/a')})\n{failure.describe()}")


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_metadata_complete(path):
    entry = _load(path)
    for field in ("name", "seed", "source", "ir", "kind", "found_by"):
        assert field in entry, f"{path.name} lacks {field!r}"
    assert entry["name"] == path.stem


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_ir_matches_source(path):
    """The stored IR is exactly what scripting the source yields today,
    and it round-trips through the textual parser."""
    entry = _load(path)
    graph = script(materialize(entry["source"],
                               entry.get("fn_name", "f"))).graph
    text = print_graph(graph)
    assert text == entry["ir"], (
        f"{path.name}: stored IR is stale; regenerate the entry")
    assert print_graph(parse_graph(text)) == text
