"""TensorSSA conversion (Algorithm 1): unit and equivalence tests."""

import numpy as np
import pytest

import repro.runtime as rt
from repro.backend import run_graph
from repro.frontend import script
from repro.ir import clone_graph, verify
from repro.passes import dce
from repro.tensorssa import convert_to_tensorssa


def convert(fn):
    graph = clone_graph(script(fn).graph)
    report = convert_to_tensorssa(graph)
    dce(graph)
    verify(graph)
    return graph, report


def check_equivalent(fn, *args, intra_block_only=False):
    graph = clone_graph(script(fn).graph)
    report = convert_to_tensorssa(graph, intra_block_only=intra_block_only)
    dce(graph)
    verify(graph)

    def cloned():
        return [a.clone() if isinstance(a, rt.Tensor) else a for a in args]

    eager_args, opt_args = cloned(), cloned()
    expected = fn(*eager_args)
    got = run_graph(graph, opt_args)
    exp_list = list(expected) if isinstance(expected, tuple) else [expected]
    assert len(got) == len(exp_list)
    for g, e in zip(got, exp_list):
        ga = g.numpy() if isinstance(g, rt.Tensor) else np.asarray(g)
        ea = e.numpy() if isinstance(e, rt.Tensor) else np.asarray(e)
        np.testing.assert_allclose(ga.astype(float), ea.astype(float),
                                   rtol=1e-5, atol=1e-6)
    for ea_in, ga_in in zip(eager_args, opt_args):
        if isinstance(ea_in, rt.Tensor):
            np.testing.assert_allclose(ga_in.numpy(), ea_in.numpy(),
                                       rtol=1e-5, err_msg="input mutation")
    return graph, report


def inner_mutations(graph):
    return [n.op for n in graph.walk()
            if n.schema.is_mutating and not (
                n.op == "aten::copy_" and n.input(0).is_param
                and n.input(0).param_block.owning_node is None)]


# -- straight-line ------------------------------------------------------------

def slice_mutation(x):
    y = x.clone()
    y[0:2] = y[2:4] * 2.0
    return y


def deep_chain(x):
    y = x.clone()
    v = y.select(0, 1).slice(0, 0, 3).select(0, 2)
    v.fill_(9.0)
    return y


def inplace_arith(x):
    y = x.clone()
    y.select(0, 0).add_(5.0)
    y.slice(0, 1, 3).mul_(2.0)
    y.sigmoid_()
    return y


def repeated_mutations(x):
    y = x.clone()
    y[0] = 1.0
    y[1] = y[0] + 1.0
    y[2] = y[1] + 1.0
    return y


def transpose_mutation(x):
    y = x.clone()
    t = y.transpose(0, 1)
    t[0] = 7.0
    return y


def reshape_mutation(x):
    y = x.clone()
    r = y.reshape((6,))
    r[2] = -3.0
    return y


def view_before_mutation_read_after(x):
    y = x.clone()
    early = y[1:]
    y[0] = 100.0
    y[2] = 200.0
    return early.sum()  # must observe both mutations (alias semantics)


class TestStraightLine:
    def test_slice_mutation(self):
        g, _ = check_equivalent(slice_mutation, rt.rand((4, 2), seed=1))
        assert not inner_mutations(g)

    def test_deep_chain(self):
        g, rep = check_equivalent(deep_chain, rt.rand((3, 4), seed=2))
        assert not inner_mutations(g)
        ops = [n.op for n in g.walk()]
        assert "immut::select_assign" in ops
        assert "immut::slice_assign" in ops

    def test_inplace_arith(self):
        g, rep = check_equivalent(inplace_arith, rt.rand((4,), seed=3))
        assert rep.num_rewritten == 3
        assert not inner_mutations(g)

    def test_repeated_mutations_version_chain(self):
        g, rep = check_equivalent(repeated_mutations, rt.rand((4,), seed=4))
        assert rep.num_rewritten == 3

    def test_transpose_mutation(self):
        check_equivalent(transpose_mutation, rt.rand((3, 3), seed=5))

    def test_reshape_mutation(self):
        check_equivalent(reshape_mutation, rt.rand((2, 3), seed=6))

    def test_view_taken_before_mutation(self):
        check_equivalent(view_before_mutation_read_after,
                         rt.rand((4,), seed=7))


# -- control flow ------------------------------------------------------------

def paper_fig4(b, n: int):
    b = b.clone()
    for i in range(n):
        b[i] = b[i] + 1.0
    return b


def paper_fig2(a, b, idx: int):
    if idx >= 0:
        a += 1.0
        b[0] = a[0]
    else:
        a -= 1.0
        b[1] = a[1]
    return a, b


def nested_loops(x, n: int, m: int):
    y = x.clone()
    for i in range(n):
        for j in range(m):
            y[i, j] = y[i, j] * 2.0 + float(i + j)
    return y


def mutation_in_branch_of_loop(x, n: int):
    y = x.clone()
    for i in range(n):
        if i - (i // 2) * 2 == 0:
            y[0] += 1.0
        else:
            y[1] += 2.0
    return y


def view_outside_mutated_inside(x, n: int):
    y = x.clone()
    head = y.select(0, 0)
    for i in range(n):
        head.add_(1.0)
    return y, head + 0.0


def accumulator_loop(x, n: int):
    acc = rt.zeros((4,))
    for i in range(n):
        acc += x * float(i)
    return acc


class TestControlFlow:
    def test_paper_fig4(self):
        g, rep = check_equivalent(paper_fig4, rt.rand((4,), seed=8), 4)
        assert not inner_mutations(g)
        loop = g.nodes_of("prim::Loop")[0]
        # b became loop-carried through block propagation
        assert len(loop.inputs) == 3

    def test_paper_fig4_zero_trip(self):
        check_equivalent(paper_fig4, rt.rand((4,), seed=9), 0)

    def test_paper_fig2_both_paths(self):
        for idx in (1, -1):
            g, rep = check_equivalent(
                paper_fig2, rt.rand((3,), seed=10), rt.rand((3,), seed=11),
                idx)
            assert rep.copied_back_inputs == ["a.0", "b.0"]

    def test_nested_loops(self):
        g, _ = check_equivalent(nested_loops, rt.rand((3, 3), seed=12), 3, 3)
        assert not inner_mutations(g)

    def test_mutation_in_branch_of_loop(self):
        check_equivalent(mutation_in_branch_of_loop, rt.rand((3,), seed=13),
                         5)

    def test_view_outside_mutated_inside(self):
        check_equivalent(view_outside_mutated_inside, rt.rand((3,), seed=14),
                         3)

    def test_accumulator_param(self):
        g, rep = check_equivalent(accumulator_loop, rt.rand((4,), seed=15),
                                  4)
        assert rep.num_rewritten == 1
        assert not inner_mutations(g)


# -- policy ------------------------------------------------------------------

class TestPolicy:
    def test_intra_block_skips_cross_boundary(self):
        g, rep = check_equivalent(paper_fig4, rt.rand((4,), seed=16), 4,
                                  intra_block_only=True)
        assert rep.num_rewritten == 0
        assert len(rep.skipped) == 1
        assert "control-flow" in rep.skipped[0][1]

    def test_intra_block_still_handles_straight_line(self):
        g, rep = check_equivalent(slice_mutation, rt.rand((4, 2), seed=17),
                                  intra_block_only=True)
        assert rep.num_rewritten == 1

    def test_updates_all_removed(self):
        g, _ = convert(paper_fig4)
        assert not g.nodes_of("tssa::update")

    def test_no_op_on_pure_program(self):
        def pure(x):
            return (x * 2.0).sigmoid().sum()
        g, rep = convert(pure)
        assert rep.num_rewritten == 0
        assert not rep.skipped

    def test_input_mutation_copy_back_is_last(self):
        def f(x):
            x[0] = 0.0
            return x.sum()
        g, rep = convert(f)
        assert rep.copied_back_inputs == ["x.0"]
        copies = [n for n in g.block.nodes if n.op == "aten::copy_"]
        assert copies and copies[-1] in g.block.nodes[-2:]

    def test_ineligible_left_imperative_but_correct(self):
        def f(x, flag: bool):
            y = x.clone()
            v = y[0] if flag else y[1]   # control-flow alias
            v.fill_(0.0)                 # cannot functionalize
            return y
        g, rep = check_equivalent(f, rt.rand((2, 3), seed=18), True)
        assert rep.skipped
        assert any(n.op == "aten::fill_" for n in g.walk())


def mixed_boundary_mutations(x, flag: bool):
    # regression (found by hypothesis): the same origin is mutated both
    # at top level and inside a branch — intra-block mode must leave the
    # WHOLE T-set imperative, not half of it
    y = x.clone()
    y[0] = y[0] + 0.0
    if flag:
        y[0] = 5.0
    else:
        y[0] = 7.0
    y[1] = y[1] + 1.0
    return y


class TestMixedBoundary:
    def test_intra_block_all_or_nothing(self):
        for flag in (True, False):
            g, rep = check_equivalent(
                mixed_boundary_mutations, rt.rand((3,), seed=21), flag,
                intra_block_only=True)
            assert rep.num_rewritten == 0
            assert any("control-flow" in why for _, why in rep.skipped)

    def test_holistic_handles_it_fully(self):
        for flag in (True, False):
            g, rep = check_equivalent(
                mixed_boundary_mutations, rt.rand((3,), seed=22), flag)
            assert rep.num_rewritten == 4
            assert not inner_mutations(g)
