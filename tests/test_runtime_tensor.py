"""Tensor, storage, views, and aliasing semantics (paper §2.1)."""

import numpy as np
import pytest

import repro.runtime as rt
from conftest import assert_tensor_equal


class TestCreation:
    def test_tensor_from_list(self):
        t = rt.tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype is rt.float32
        assert t.numel == 4

    def test_int_list_infers_int64(self):
        t = rt.tensor([1, 2, 3])
        assert t.dtype is rt.int64

    def test_zeros_ones_full(self):
        assert rt.zeros((2, 3)).numpy().sum() == 0
        assert rt.ones((2, 3)).numpy().sum() == 6
        assert rt.full((2,), 7.0).numpy().tolist() == [7.0, 7.0]

    def test_arange(self):
        assert rt.arange(5).tolist() == [0, 1, 2, 3, 4]
        assert rt.arange(2, 5).tolist() == [2, 3, 4]

    def test_rand_is_seeded(self):
        a = rt.rand((4,), seed=42)
        b = rt.rand((4,), seed=42)
        assert_tensor_equal(a, b)

    def test_from_numpy_copies(self):
        arr = np.ones(3, dtype=np.float32)
        t = rt.from_numpy(arr)
        arr[0] = 99
        assert t.numpy()[0] == 1.0

    def test_item_and_errors(self):
        assert rt.tensor([3.5]).item() == pytest.approx(3.5)
        with pytest.raises(ValueError):
            rt.tensor([1.0, 2.0]).item()


class TestViewsAlias:
    def test_select_shares_storage(self):
        a = rt.zeros((3, 3))
        row = a.select(0, 1)
        assert row.is_view and row.shares_storage_with(a)

    def test_paper_figure1_view_mutation(self):
        # B = A[...]; B.copy_(C)  =>  A is mutated through the view.
        A = rt.zeros((2, 2))
        B = A.select(0, 0)
        C = rt.ones((2,))
        B.copy_(C)
        assert A.numpy()[0].tolist() == [1.0, 1.0]
        assert A.numpy()[1].tolist() == [0.0, 0.0]

    def test_mutation_bumps_version(self):
        a = rt.zeros((4,))
        v0 = a.version
        a.add_(1)
        assert a.version == v0 + 1
        b = a.select(0, 2)
        b.fill_(9)
        assert a.version == v0 + 2

    def test_select_0d_view(self):
        a = rt.tensor([1.0, 2.0, 3.0])
        el = a.select(0, 1)
        assert el.shape == ()
        el.fill_(9.0)
        assert a.numpy()[1] == 9.0

    def test_negative_select(self):
        a = rt.tensor([1.0, 2.0, 3.0])
        assert a.select(0, -1).item() == 3.0

    def test_select_out_of_range(self):
        with pytest.raises(IndexError):
            rt.zeros((3,)).select(0, 3)

    def test_slice_view_writes_back(self):
        a = rt.arange(6).to(rt.float32).reshape((2, 3))
        s = a.slice(1, 0, 2)
        s.mul_(10)
        assert a.numpy()[0].tolist() == [0.0, 10.0, 2.0]

    def test_slice_with_step(self):
        a = rt.arange(6)
        s = a.slice(0, 0, None, 2)
        assert s.tolist() == [0, 2, 4]

    def test_narrow(self):
        a = rt.arange(6)
        assert a.narrow(0, 2, 3).tolist() == [2, 3, 4]

    def test_chained_views_mutate_root(self):
        a = rt.zeros((2, 3, 4))
        v = a.select(0, 1).slice(0, 0, 2).select(1, 3)
        v.fill_(5)
        assert a.numpy()[1, 0, 3] == 5 and a.numpy()[1, 1, 3] == 5
        assert a.numpy().sum() == 10

    def test_reshape_contiguous_is_view(self):
        a = rt.zeros((2, 3))
        r = a.reshape((3, 2))
        assert r.is_view
        r.fill_(1)
        assert a.numpy().sum() == 6

    def test_view_requires_contiguous(self):
        a = rt.zeros((2, 3)).transpose(0, 1)
        with pytest.raises(RuntimeError):
            a.view((6,))

    def test_permute_transpose(self):
        a = rt.rand((2, 3, 4), seed=1)
        p = a.permute([2, 0, 1])
        assert p.shape == (4, 2, 3)
        t = a.transpose(0, 2)
        assert t.shape == (4, 3, 2)
        assert p.is_view and t.is_view

    def test_squeeze_unsqueeze(self):
        a = rt.zeros((2, 1, 3))
        assert a.squeeze(1).shape == (2, 3)
        assert a.squeeze().shape == (2, 3)
        assert a.unsqueeze(0).shape == (1, 2, 1, 3)
        assert a.unsqueeze(-1).shape == (2, 1, 3, 1)

    def test_expand_stride0(self):
        a = rt.tensor([[1.0], [2.0]])
        e = a.expand((2, 4))
        assert e.shape == (2, 4)
        assert e.numpy()[1].tolist() == [2.0] * 4

    def test_expanded_view_rejects_mutation(self):
        e = rt.tensor([1.0]).expand((4,))
        with pytest.raises(Exception):
            e.fill_(3)

    def test_flatten(self):
        a = rt.zeros((2, 3, 4))
        assert a.flatten().shape == (24,)
        assert a.flatten(1).shape == (2, 12)


class TestSubscripts:
    def test_getitem_int_slice(self):
        a = rt.arange(12).reshape((3, 4))
        assert a[1].tolist() == [4, 5, 6, 7]
        assert a[1, 2].item() == 6
        assert a[0:2, 1].tolist() == [1, 5]
        assert a[..., -1].tolist() == [3, 7, 11]

    def test_setitem_scalar_and_tensor(self):
        a = rt.zeros((3, 3))
        a[0] = 5.0
        a[1, 1] = rt.tensor(7.0)
        a[2, 0:2] = rt.tensor([1.0, 2.0])
        out = a.numpy()
        assert out[0].tolist() == [5.0] * 3
        assert out[1, 1] == 7.0
        assert out[2].tolist() == [1.0, 2.0, 0.0]

    def test_setitem_bool_mask(self):
        a = rt.tensor([1.0, -2.0, 3.0, -4.0])
        a[a < 0] = 0.0
        assert a.tolist() == [1.0, 0.0, 3.0, 0.0]

    def test_getitem_bool_mask(self):
        a = rt.tensor([1.0, -2.0, 3.0])
        sel = a[a > 0.0]
        assert sel.tolist() == [1.0, 3.0]

    def test_getitem_index_tensor(self):
        a = rt.tensor([10.0, 20.0, 30.0])
        idx = rt.tensor([2, 0])
        assert a[idx].tolist() == [30.0, 10.0]

    def test_setitem_index_tensor(self):
        a = rt.zeros((4,))
        a[rt.tensor([1, 3])] = rt.tensor([5.0, 6.0])
        assert a.tolist() == [0.0, 5.0, 0.0, 6.0]

    def test_none_inserts_dim(self):
        a = rt.zeros((3,))
        assert a[None].shape == (1, 3)


class TestOperatorSugar:
    def test_arith(self):
        a = rt.tensor([1.0, 2.0])
        assert (a + 1).tolist() == [2.0, 3.0]
        assert (1 + a).tolist() == [2.0, 3.0]
        assert (a - 1).tolist() == [0.0, 1.0]
        assert (2 - a).tolist() == [1.0, 0.0]
        assert (a * 3).tolist() == [3.0, 6.0]
        assert (a / 2).tolist() == [0.5, 1.0]
        assert (6 / a).tolist() == [6.0, 3.0]
        assert (-a).tolist() == [-1.0, -2.0]
        assert (a ** 2).tolist() == [1.0, 4.0]

    def test_comparisons(self):
        a = rt.tensor([1.0, 2.0, 3.0])
        assert (a > 2).tolist() == [False, False, True]
        assert (a <= 2).tolist() == [True, True, False]
        assert (a == 2).tolist() == [False, True, False]

    def test_matmul_operator(self):
        a = rt.tensor([[1.0, 0.0], [0.0, 2.0]])
        b = rt.tensor([[3.0], [4.0]])
        assert (a @ b).numpy().ravel().tolist() == [3.0, 8.0]

    def test_iadd_is_inplace(self):
        a = rt.tensor([1.0, 2.0])
        alias = a.select(0, 0)
        a += 1
        assert alias.item() == 2.0  # mutated through the alias

    def test_float32_preserved_under_scalar_ops(self):
        a = rt.tensor([1.0])
        assert (a + 1).dtype is rt.float32
        assert (a * 2.5).dtype is rt.float32
        assert a.sigmoid().dtype is rt.float32

    def test_bool_of_multielement_raises(self):
        with pytest.raises(ValueError):
            bool(rt.tensor([1.0, 2.0]))
