"""Autotuned kernel schedules (``repro.tune``): the schedule space,
kernel variants, the persistent per-key-file tuning database, the
search oracle, and the serve-side lookup path — plus the kernel
accounting and codegen regressions that rode along."""

import json
import multiprocessing

import numpy as np
import pytest

import repro.runtime as rt
from repro.backend import run_graph
from repro.backend.codegen import (CodegenError, _const_literal,
                                   _ordered_nodes, compile_block,
                                   compile_block_unrolled)
from repro.backend.fusion_runtime import _tiled_launch
from repro.errors import CompileError, DeadlineExceeded
from repro.eval.harness import (CompileCache, _shape_signature,
                                run_workload)
from repro.faults import (Fault, FaultPlan, FaultRule, SITE_BATCH_EXEC,
                          SITE_KERNEL_LAUNCH, global_fault_scope)
from repro.frontend import script
from repro.ir import clone_graph
from repro.ir.graph import free_values
from repro.models import get_workload
from repro.passes import FuserConfig, dce, fuse, parallelize_loops
from repro.serve import ServePolicy, Server
from repro.tensorssa import convert_to_tensorssa
from repro.tune import (DEFAULT_SCHEDULE, SCHEDULE_SPACE, Schedule,
                        TuningDB, active_schedule, mutate_schedule,
                        random_schedule, schedule_scope, shape_key_text,
                        tune_workload, tuning_key)

ALL_WORKLOADS = ("attention", "fcos", "lstm", "nasrnn", "seq2seq",
                 "ssd", "yolact", "yolov3")


def _bit_exact(got, expected):
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        ga = g.numpy() if hasattr(g, "numpy") else np.asarray(g)
        ea = e.numpy() if hasattr(e, "numpy") else np.asarray(e)
        assert ga.shape == ea.shape
        assert ga.dtype == ea.dtype
        assert np.array_equal(ga, ea)


# -- schedule records ----------------------------------------------------


class TestSchedule:
    def test_default_identity(self):
        assert DEFAULT_SCHEDULE.is_default
        assert DEFAULT_SCHEDULE.schedule_id == "default"
        assert active_schedule() is DEFAULT_SCHEDULE

    def test_round_trip(self):
        s = Schedule(loop_order="consumer", tile_elems=4096,
                     hloop_unroll=2, pmap_chunk=4)
        assert not s.is_default
        assert s.schedule_id == "oc-t4096-u2-c4"
        assert Schedule.from_dict(s.to_dict()) == s

    def test_from_dict_rejects_unknown_knob(self):
        with pytest.raises(ValueError):
            Schedule.from_dict({"loop_order": "program",
                                "warp_size": 32})

    def test_from_dict_rejects_out_of_space_value(self):
        with pytest.raises(ValueError):
            Schedule.from_dict({"tile_elems": 12345})
        with pytest.raises(ValueError):
            Schedule.from_dict({"loop_order": "zigzag"})

    def test_random_and_mutate_stay_in_space(self):
        import random
        rng = random.Random(7)
        for _ in range(50):
            s = random_schedule(rng)
            m = mutate_schedule(s, rng)
            for cand in (s, m):
                d = cand.to_dict()
                for knob, values in SCHEDULE_SPACE.items():
                    assert d[knob] in values
            assert m != s  # mutation re-draws exactly one knob

    def test_scope_restores(self):
        s = Schedule(tile_elems=4096)
        with schedule_scope(s):
            assert active_schedule() is s
            with schedule_scope(None):  # passthrough
                assert active_schedule() is s
        assert active_schedule().is_default


# -- codegen: recursive constant validation (the _const_literal fix) ----


class TestConstLiteral:
    @pytest.mark.parametrize("value", [
        3, 2.5, True, None, "s", (1, 2), (1,), [1, (2.0, None)], [],
    ])
    def test_literals_eval_back_equal(self, value):
        assert eval(_const_literal(value)) == value

    def test_singleton_tuple_stays_a_tuple(self):
        assert eval(_const_literal((7,))) == (7,)

    @pytest.mark.parametrize("value", [
        object(), np.float32, [object()], (1, object()),
        [1, [2, np.dtype("f4")]],
    ])
    def test_non_literals_rejected_recursively(self, value):
        # before the fix, containers were repr'd blind: [<object ...>]
        # compiled to a SyntaxError (or rebuilt the wrong object)
        with pytest.raises(CodegenError):
            _const_literal(value)

    def test_unliteralizable_const_captured_by_reference(self):
        # a fusion-group kernel whose constant cannot be inlined must
        # still compile (capture-by-reference) and compute correctly
        def f(x):
            return (x + 1.0) * 2.0
        g = clone_graph(script(f).graph)
        fuse(g, FuserConfig(name="t", fuse_views=True))
        group = g.nodes_of("prim::FusionGroup")[0]
        marker = object()
        for node in group.blocks[0].nodes:
            if node.op == "prim::Constant":
                node.attrs["value"] = marker
                node.output().type = None
                break
        else:
            pytest.skip("no constant in the fused body")
        kernel = compile_block(group.blocks[0], name="_k")
        assert "_c0" in kernel.__source__
        assert not kernel.__elementwise_safe__
        # the captured object is threaded through untouched: the add
        # receives it, so numpy raises a *type* error, not a NameError
        # from broken generated source
        with pytest.raises(TypeError):
            kernel([np.ones(2, np.float32)])


class TestConsumerOrder:
    def _group(self, fn):
        g = clone_graph(script(fn).graph)
        fuse(g, FuserConfig(name="t", fuse_views=True))
        return g.nodes_of("prim::FusionGroup")[0]

    def test_permutation_respects_def_use(self):
        def f(x, y):
            a = x + y
            b = x * 2.0
            return a.sigmoid() + b
        block = self._group(f).blocks[0]
        ordered = _ordered_nodes(block, "consumer")
        assert sorted(map(id, ordered)) == \
            sorted(map(id, block.nodes))
        pos = {id(n): i for i, n in enumerate(ordered)}
        producer = {id(out): n for n in block.nodes for out in n.outputs}
        for node in block.nodes:
            for v in node.inputs:
                dep = producer.get(id(v))
                if dep is not None:
                    assert pos[id(dep)] < pos[id(node)]

    def test_consumer_kernel_bit_exact(self):
        def f(x, y):
            a = x + y
            b = x * 2.0
            return a.sigmoid() + b
        block = self._group(f).blocks[0]
        args = [np.random.default_rng(0).standard_normal(
            (4, 3)).astype(np.float32) for _ in range(2)]
        default = compile_block(block, name="_d")(list(args))
        consumer = compile_block(block, name="_c",
                                 loop_order="consumer")(list(args))
        _bit_exact(consumer, default)

    def test_unknown_order_rejected(self):
        def f(x):
            return x + 1.0 + 2.0
        block = self._group(f).blocks[0]
        with pytest.raises(CodegenError):
            compile_block(block, loop_order="zigzag")


# -- tiled launches ------------------------------------------------------


class TestTiledLaunch:
    @staticmethod
    def _add(args):
        a, b = args
        return (a + b, a * b)

    def test_tiled_matches_whole_launch(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((16, 4)).astype(np.float32)
        b = rng.standard_normal((16, 4)).astype(np.float32)
        tiled = _tiled_launch(self._add, [a, b], tile_elems=8,
                              n_returns=2)
        assert tiled is not None
        _bit_exact(tiled, self._add([a, b]))

    def test_scalar_extra_arg_not_tiled(self):
        a = np.ones((16, 4), np.float32)
        out = _tiled_launch(lambda args: (args[0] + args[1],),
                            [a, 2.0], tile_elems=8, n_returns=1)
        # the scalar rides along whole; array rows are tiled
        assert out is not None
        _bit_exact(out, [a + 2.0])

    @pytest.mark.parametrize("raw", [
        [np.ones((16, 4), np.float32), np.ones((8, 4), np.float32)],
        [np.ones(16, np.float32)],       # ndim < 2
        [2.0, 3],                        # no arrays at all
        [np.ones((2, 4), np.float32)],   # fits in one tile
    ])
    def test_unsafe_inputs_fall_back(self, raw):
        assert _tiled_launch(lambda args: (args[0],), raw,
                             tile_elems=16, n_returns=1) is None

    def test_non_row_shaped_output_falls_back(self):
        # a reduction sneaking through static analysis is caught on
        # the first tile: output rows != tile rows -> whole launch
        a = np.ones((16, 4), np.float32)
        assert _tiled_launch(lambda args: (args[0].sum(axis=0),), [a],
                             tile_elems=8, n_returns=1) is None


# -- unrolled horizontal-loop kernels ------------------------------------


class TestUnrolledKernel:
    def _loop_body(self):
        def f(x, n: int):
            acc = rt.zeros((3,))
            for i in range(n):
                acc = acc + x
            return acc
        g = clone_graph(script(f).graph)
        convert_to_tensorssa(g)
        dce(g)
        assert parallelize_loops(g) == 1
        loop = g.nodes_of("prim::Loop")[0]
        return loop.blocks[0]

    def test_unrolled_block_matches_sequential_steps(self):
        body = self._loop_body()
        extra = free_values(body)
        base = compile_block(body, name="_h", extra_inputs=extra)
        k2 = compile_block_unrolled(body, 2, name="_h2",
                                    extra_inputs=extra)
        x = np.random.default_rng(2).standard_normal(3) \
            .astype(np.float32)
        # captures are the body's free values: the tensor operand and
        # the (always-true) outer loop condition
        caps = [x if "Tensor" in str(v.type) else True for v in extra]
        acc = np.zeros(3, np.float32)
        r0 = base([0, acc] + caps)      # (continue, acc')
        r1 = base([1] + list(r0[1:]) + caps)
        u = k2([0, acc] + caps)         # (trips, continue, acc')
        assert int(u[0]) == 2
        assert bool(u[1]) == bool(r1[0])
        _bit_exact(list(u[2:]), list(r1[1:]))

    def test_scheduled_loop_bit_exact_including_remainder(self):
        def f(x, n: int):
            y = x.clone()
            for i in range(n):
                y[i] = y[i] * 2.0 + 1.0
            return y
        g = clone_graph(script(f).graph)
        convert_to_tensorssa(g)
        dce(g)
        assert parallelize_loops(g) == 1
        x = rt.rand((5, 2), seed=9)
        expected = run_graph(clone_graph(g), [x.clone(), 5])[0]
        # trip 5 under unroll 2: two unrolled blocks + one remainder
        sched = Schedule(hloop_unroll=2)
        with schedule_scope(sched):
            got = run_graph(g, [x.clone(), 5])[0]
        _bit_exact([got], [expected])
        # trip 1 < unroll: the base kernel serves the whole loop
        with schedule_scope(sched):
            short = run_graph(g, [x.clone(), 1])[0]
        _bit_exact([short], [run_graph(clone_graph(g),
                                       [x.clone(), 1])[0]])


# -- kernel accounting (the zero-trip fix) -------------------------------


class TestLoopAccounting:
    def _graph(self):
        def f(x, n: int):
            y = x.clone()
            for i in range(n):
                y = y + 100.0
            return y
        g = clone_graph(script(f).graph)
        convert_to_tensorssa(g)
        dce(g)
        assert parallelize_loops(g) == 1
        return g

    def test_zero_trip_records_zero_fused_work(self):
        g = self._graph()
        with rt.profile() as prof:
            out = run_graph(g, [rt.ones((2,)), 0])[0]
        assert out.numpy().tolist() == [1.0, 1.0]
        ev = [e for e in prof.events if e.op == "parallel_loop"]
        assert len(ev) == 1  # the launch itself still happened
        # before the fix a zero-trip loop was billed for one full
        # iteration of fused ops and flops
        assert ev[0].fused_ops == 0
        assert ev[0].flops == 0

    def test_trips_scale_fused_ops(self):
        g = self._graph()
        with rt.profile() as prof:
            run_graph(g, [rt.ones((2,)), 4])
        ev = [e for e in prof.events if e.op == "parallel_loop"]
        assert len(ev) == 1
        assert ev[0].fused_ops > 0
        assert ev[0].fused_ops % 4 == 0  # n_ops * trips
        assert ev[0].flops > 0


# -- the tuning database -------------------------------------------------


class TestTuningDB:
    def test_round_trip_across_instances(self, tmp_path):
        key = tuning_key("lstm", "((4,16,8),)", "datacenter")
        sched = Schedule(loop_order="consumer", tile_elems=16384)
        TuningDB(tmp_path).put(key, sched, meta={"speedup": 1.2})
        fresh = TuningDB(tmp_path)
        assert fresh.best(key) == sched
        rec = fresh.get_record(key)
        assert rec["meta"]["speedup"] == 1.2
        assert fresh.keys() == [key]

    def test_miss_returns_none_and_counts(self, tmp_path):
        db = TuningDB(tmp_path)
        key = tuning_key("lstm", "x", "datacenter")
        assert db.best(key) is None
        assert db.best(key) is None  # memoized miss
        snap = db.snapshot()
        assert snap["misses"] >= 1 and snap["hits"] == 0
        assert snap["size"] == 0

    def test_corrupt_entry_rejected_to_default(self, tmp_path):
        db = TuningDB(tmp_path)
        key = tuning_key("lstm", "x", "datacenter")
        path = db.put(key, Schedule(tile_elems=4096))
        with open(path, "w") as fh:
            fh.write("{ not json")
        db.invalidate(key)
        assert db.best(key) is None  # serve falls back to default
        assert db.snapshot()["rejected"] == 1

    def test_stale_version_rejected(self, tmp_path):
        db = TuningDB(tmp_path)
        key = tuning_key("lstm", "x", "datacenter")
        path = db.put(key, Schedule(tile_elems=4096))
        record = json.load(open(path))
        record["version"] = 999
        json.dump(record, open(path, "w"))
        db.invalidate(key)
        assert db.best(key) is None
        assert db.snapshot()["rejected"] == 1

    def test_key_mismatch_rejected(self, tmp_path):
        # an entry file whose recorded key disagrees with its filename
        # (hash collision, manual tampering) must not serve
        db = TuningDB(tmp_path)
        key = tuning_key("lstm", "x", "datacenter")
        other = tuning_key("lstm", "y", "datacenter")
        path = db.put(key, Schedule(tile_elems=4096))
        record = json.load(open(path))
        record["key"] = list(other)
        json.dump(record, open(path, "w"))
        db.invalidate(key)
        assert db.best(key) is None

    def test_out_of_space_schedule_rejected(self, tmp_path):
        db = TuningDB(tmp_path)
        key = tuning_key("lstm", "x", "datacenter")
        path = db.put(key, Schedule(tile_elems=4096))
        record = json.load(open(path))
        record["schedule"]["tile_elems"] = 777  # not in SCHEDULE_SPACE
        json.dump(record, open(path, "w"))
        db.invalidate(key)
        assert db.best(key) is None
        assert db.snapshot()["rejected"] == 1


def _db_put_worker(root, i):
    db = TuningDB(root)
    key = tuning_key(f"wl{i}", f"shape{i}", "datacenter")
    db.put(key, Schedule(tile_elems=4096), meta={"i": i})
    shared = tuning_key("shared", "s", "datacenter")
    db.put(shared, Schedule(hloop_unroll=2), meta={"i": i})
    return db.best(key) is not None


class TestTuningDBConcurrency:
    def test_cross_process_puts_all_land(self, tmp_path):
        n = 8
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            oks = pool.starmap(_db_put_worker,
                               [(str(tmp_path), i) for i in range(n)])
        assert all(oks)
        db = TuningDB(tmp_path)
        assert len(db.keys()) == n + 1
        for i in range(n):
            key = tuning_key(f"wl{i}", f"shape{i}", "datacenter")
            assert db.best(key) == Schedule(tile_elems=4096)
        # the contended key: last atomic replace wins, file never torn
        shared = db.best(tuning_key("shared", "s", "datacenter"))
        assert shared == Schedule(hloop_unroll=2)


# -- the schedule oracle: every workload, bit-exact ----------------------


class TestScheduleOracle:
    @pytest.mark.parametrize("workload", ALL_WORKLOADS)
    def test_schedules_bit_exact_on_seed_workloads(self, workload):
        cache = CompileCache()
        base = run_workload(workload, "tensorssa", batch_size=1,
                            seq_len=8, seed=0, cache=cache)
        for sched in (Schedule(loop_order="consumer", tile_elems=4096,
                               hloop_unroll=2, pmap_chunk=2),
                      Schedule(tile_elems=65536, hloop_unroll=4,
                               pmap_chunk=4)):
            with schedule_scope(sched):
                run = run_workload(workload, "tensorssa", batch_size=1,
                                   seq_len=8, seed=0, cache=cache)
            _bit_exact(run.outputs, base.outputs)
            assert run.schedule_id == sched.schedule_id


# -- search --------------------------------------------------------------


class TestSearch:
    def test_small_search_records_winner(self, tmp_path):
        db = TuningDB(tmp_path)
        result = tune_workload("attention", batch_size=1, seq_len=8,
                               seed=0, n_random=3, n_mutation=1,
                               top_k=1, best_of=2, db=db)
        assert result.divergences == 0
        assert len(result.candidates) >= 4  # default + explored
        assert all(c.exact for c in result.candidates)
        assert db.best(result.key) == result.best_schedule
        snap = db.snapshot()
        assert snap["searches"] == 1 and snap["puts"] == 1
        if result.improved:
            assert result.speedup > 1.0
            assert not result.best_schedule.is_default
        else:
            assert result.best_schedule.is_default

    def test_dynamic_shape_key_uses_family_wildcards(self, tmp_path):
        db = TuningDB(tmp_path)
        result = tune_workload("attention", batch_size=1, seq_len=8,
                               seed=0, n_random=1, n_mutation=0,
                               top_k=1, best_of=1, db=db,
                               dynamic_shapes=True)
        assert '"*"' in result.shape_key  # symbolic dims wildcarded
        assert db.best(result.key) is not None


# -- harness + serve lookups --------------------------------------------


class TestWarmLookup:
    def _seed_db(self, tmp_path, workload, batch_size, seq_len,
                 sched, platform="datacenter"):
        wl = get_workload(workload)
        args = wl.make_inputs(batch_size=batch_size, seq_len=seq_len,
                              seed=0)
        key = tuning_key(workload,
                         shape_key_text(_shape_signature(args)),
                         platform)
        db = TuningDB(tmp_path)
        db.put(key, sched)
        return db, args

    def test_harness_runs_best_known_schedule(self, tmp_path):
        sched = Schedule(loop_order="consumer", tile_elems=4096)
        db, _ = self._seed_db(tmp_path, "lstm", 1, 8, sched)
        cache = CompileCache()
        base = run_workload("lstm", "tensorssa", batch_size=1,
                            seq_len=8, seed=0, cache=cache)
        assert not base.tuned and base.schedule_id == "default"
        cache.tuning_db = db
        run = run_workload("lstm", "tensorssa", batch_size=1,
                           seq_len=8, seed=0, cache=cache)
        assert run.tuned and run.schedule_id == sched.schedule_id
        _bit_exact(run.outputs, base.outputs)
        assert db.snapshot()["searches"] == 0  # lookups never search

    def test_explicit_scope_beats_db(self, tmp_path):
        db, _ = self._seed_db(tmp_path, "lstm", 1, 8,
                              Schedule(tile_elems=4096))
        cache = CompileCache()
        cache.tuning_db = db
        pinned = Schedule(hloop_unroll=2)
        with schedule_scope(pinned):
            run = run_workload("lstm", "tensorssa", batch_size=1,
                               seq_len=8, seed=0, cache=cache)
        assert not run.tuned
        assert run.schedule_id == pinned.schedule_id

    def test_server_serves_tuned_without_searching(self, tmp_path):
        sched = Schedule(loop_order="consumer", tile_elems=4096)
        db, args = self._seed_db(tmp_path, "attention", 1, 8, sched)
        policy = ServePolicy(workers=1, max_batch_size=1,
                             verify="batch",
                             tuning_db_path=str(tmp_path))
        with Server(policy) as srv:
            resps = [srv.submit("attention", args=args,
                                seq_len=8).result(timeout=60)
                     for _ in range(3)]
        stats = srv.stats.to_dict()  # drained: counters are final
        for resp in resps:
            assert resp.ok
            assert resp.tuned
            assert resp.schedule_id == sched.schedule_id
            assert resp.verified is True  # tuned output == eager
        assert stats["tuned"] == 3
        assert stats["schedule_hist"] == {sched.schedule_id: 3}
        # the warm-serve witness: the hot path never tunes
        assert stats["tune_db"]["searches"] == 0
        assert stats["tune_db"]["hits"] >= 1


# -- executor error taxonomy (the blanket-except fix) --------------------


class TestExecutorErrorRouting:
    def _policy(self, **kw):
        base = dict(workers=1, max_batch_size=2, batch_wait_s=0.001,
                    ladder_enabled=False, verify="off",
                    retry_base_delay_s=0.0001)
        base.update(kw)
        return ServePolicy(**base)

    def test_batch_fault_surfaces_typed_error(self):
        plan = FaultPlan([FaultRule(site=SITE_BATCH_EXEC,
                                    probability=1.0, times=None)])
        with Server(self._policy(max_retries=0)) as srv:
            with global_fault_scope(plan):
                resp = srv.submit("attention",
                                  seq_len=8).result(timeout=30)
        assert resp.status == "error"
        # before the fix the blanket handler stringified the raw
        # exception; now the classified type name is part of the answer
        assert "KernelError" in resp.error
        assert "batch failed" in resp.error

    def test_retryable_batch_fault_recovers_solo(self):
        plan = FaultPlan([FaultRule(site=SITE_BATCH_EXEC,
                                    probability=1.0, times=None)])
        with Server(self._policy(max_retries=2)) as srv:
            with global_fault_scope(plan):
                resp = srv.submit("attention",
                                  seq_len=8).result(timeout=30)
        assert resp.ok and resp.retries >= 1

    def test_non_retryable_fault_not_hammered(self):
        # CompileError is non-retryable: one solo attempt, then stop —
        # before the fix the retry loop hammered every typed error alike
        plan = FaultPlan([FaultRule(
            site=SITE_KERNEL_LAUNCH, probability=1.0, times=None,
            fault=Fault(error=CompileError))])
        with Server(self._policy(max_retries=3,
                                 eager_fallback=False)) as srv:
            with global_fault_scope(plan):
                resp = srv.submit("attention",
                                  seq_len=8).result(timeout=30)
        assert resp.status == "error"
        assert "CompileError" in resp.error
        fired = plan.fired_by_site().get(SITE_KERNEL_LAUNCH, 0)
        assert fired <= 2  # batch attempt + one solo probe, no more

    def test_injected_deadline_classified_as_timeout(self):
        plan = FaultPlan([FaultRule(
            site=SITE_BATCH_EXEC,
            fault=Fault(error=DeadlineExceeded))])
        with Server(self._policy(max_retries=2)) as srv:
            with global_fault_scope(plan):
                resp = srv.submit("attention",
                                  seq_len=8).result(timeout=30)
        assert resp.status == "timeout"


# -- the CLI -------------------------------------------------------------


class TestTuneCLI:
    def test_tune_then_warm_serve_gate(self, tmp_path):
        from repro.tools.tune import main as tune_main
        db_root = tmp_path / "db"
        out = tmp_path / "tune.json"
        rc = tune_main(["--workloads", "attention", "--seed", "0",
                        "--batch-size", "1", "--seq-len", "8",
                        "--n-random", "2", "--n-mutation", "1",
                        "--top-k", "1", "--best-of", "2",
                        "--db", str(db_root), "--out", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        entry = report["workloads"][0]
        assert entry["divergences"] == 0
        assert entry["roundtrip_ok"]
        assert report["db"]["searches"] == 1
        # warm serve against the CLI's database: whatever the winner
        # was (tuned or default), it is served without searching
        policy = ServePolicy(workers=1, max_batch_size=1,
                             verify="batch",
                             tuning_db_path=str(db_root))
        wl = get_workload("attention")
        args = wl.make_inputs(batch_size=1, seq_len=8, seed=0)
        with Server(policy) as srv:
            resp = srv.submit("attention", args=args,
                              seq_len=8).result(timeout=60)
        stats = srv.stats.to_dict()  # drained: counters are final
        assert resp.ok and resp.verified is True
        assert resp.schedule_id == entry["best_schedule_id"]
        assert stats["tune_db"]["searches"] == 0
        assert stats["tune_db"]["hits"] >= 1
