"""Differential fuzzing subsystem: generator, oracle, shrinker.

Covers the satellite checklist of the fuzzing issue:

* generator determinism — one seed, byte-identical source;
* oracle pass — 50 seeded programs through every registered pipeline
  with zero divergences;
* shrinker monotonicity — a deliberately injected pass bug is caught,
  and every shrink step preserves the failure, down to a repro whose
  scripted IR is tiny;
* IR round-trip — print -> parse -> print is a fixed point for fuzzer
  graphs, scripted and compiled alike.
"""

import pytest

from repro.fuzz import (FuzzProgram, OracleConfig, failure_predicate,
                        generate_program, materialize, run_oracle,
                        scripted_node_count, shrink)
from repro.fuzz.oracle import all_pipeline_names
from repro.frontend import script
from repro.ir import parse_graph, print_graph
from repro.pipelines.tensorssa_pipeline import TensorSSAPipeline

ORACLE_SEEDS = 50


class TestGenerator:
    def test_same_seed_same_source(self):
        for seed in range(10):
            a = generate_program(seed)
            b = generate_program(seed)
            assert a.source == b.source, f"seed {seed} is not deterministic"

    def test_different_seeds_differ(self):
        sources = {generate_program(s).source for s in range(10)}
        assert len(sources) > 1

    def test_programs_are_scriptable(self):
        for seed in range(5):
            program = generate_program(seed)
            fn = materialize(program.source, program.name)
            graph = script(fn).graph
            assert sum(1 for _ in graph.walk()) > 0

    def test_max_nodes_budget_scales(self):
        small = scripted_node_count(generate_program(3, max_nodes=24))
        large = scripted_node_count(generate_program(3, max_nodes=192))
        assert small < large

    def test_clone_is_deep(self):
        program = generate_program(0)
        copy = program.clone()
        copy.stmts[0].line = "# tampered"
        assert program.source != copy.source


class TestOracle:
    @pytest.mark.parametrize("seed", range(ORACLE_SEEDS))
    def test_pipelines_agree(self, seed):
        failure = run_oracle(generate_program(seed))
        assert failure is None, failure.describe()

    def test_all_pipelines_include_ablation(self):
        names = all_pipeline_names()
        assert "tensorssa" in names and "tensorssa_noplan" in names

    def test_oracle_reports_eager_errors(self):
        program = FuzzProgram(seed=0, stmts=[])
        program.stmts = []
        bad = FuzzProgram.__new__(FuzzProgram)
        bad.seed = 0
        bad.stmts = []
        bad.name = "f"
        # sabotage: undefined name only reachable at runtime
        src = ("def f(x, flag: bool, n: int):\n"
               "    y = x.clone()\n"
               "    acc = missing_name * 1.0\n"
               "    return y, acc\n")

        class Raw:
            seed = 0
            source = src
            name = "f"

        failure = run_oracle(Raw())
        assert failure is not None
        assert failure.pipeline == "eager-reference"
        assert failure.kind == "runtime-error"


class _BuggyTensorSSA(TensorSSAPipeline):
    """TensorSSA pipeline with an injected post-compile pass bug: the
    first tensor-tensor ``aten::add`` silently becomes ``aten::sub``."""

    def __init__(self):
        super().__init__(name="tensorssa_buggy")

    def compile(self, model_fn, example_args=None):
        compiled = super().compile(model_fn, example_args=example_args)
        from repro.ir import types as T
        for node in compiled.graph.walk():
            if node.op != "aten::add":
                continue
            if all(isinstance(v.type, T.TensorType) for v in node.inputs):
                node.op = "aten::sub"
                break
        return compiled


class TestShrinker:
    # the single-op bug is invisible on programs whose first tensor-
    # tensor add has a zero operand (add == sub there); these seeds are
    # known to expose it
    def _failing_setup(self, seed=2):
        program = generate_program(seed)
        config = OracleConfig(pipelines=[_BuggyTensorSSA()],
                              check_roundtrip=False)
        failure = run_oracle(program, config)
        assert failure is not None, "injected bug was not caught"
        assert failure.kind == "output-mismatch"
        assert failure.pipeline == "tensorssa_buggy"
        return program, config, failure

    def test_injected_bug_is_caught_and_shrunk_small(self):
        program, config, failure = self._failing_setup()
        predicate = failure_predicate(failure, config)
        small = shrink(program, predicate)
        assert small.num_statements() <= program.num_statements()
        # acceptance bar: the repro's scripted IR is <= 10 nodes
        assert scripted_node_count(small) <= 10, small.source

    def test_shrunk_program_still_fails(self):
        """Monotonicity: the shrunk program reproduces the same failure
        kind on the same pipeline."""
        program, config, failure = self._failing_setup(seed=3)
        predicate = failure_predicate(failure, config)
        small = shrink(program, predicate)
        assert predicate(small), (
            "shrinker returned a program that no longer fails:\n"
            + small.source)

    def test_shrink_noop_when_predicate_never_held(self):
        program = generate_program(0)
        out = shrink(program, lambda p: False)
        assert out.source == program.source

    def test_while_scaffolding_survives_shrinking(self):
        """Counter init/increment render with their loop even after all
        shrinkable body statements are gone (no infinite loops)."""
        program, config, failure = self._failing_setup(seed=7)
        small = shrink(program, failure_predicate(failure, config))
        src = small.source
        for line in src.splitlines():
            if line.strip().startswith("while "):
                var = line.strip().split()[1]
                assert f"{var} = 0" in src
                assert f"{var} = {var} + 1" in src


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(15))
    def test_scripted_graph_fixed_point(self, seed):
        program = generate_program(seed)
        graph = script(materialize(program.source, program.name)).graph
        text = print_graph(graph)
        assert print_graph(parse_graph(text)) == text

    @pytest.mark.parametrize("seed", range(5))
    def test_compiled_graph_fixed_point(self, seed):
        from repro.pipelines.registry import get_pipeline
        import repro.runtime as rt
        from repro.fuzz.generator import make_inputs
        import numpy as np
        program = generate_program(seed)
        fn = materialize(program.source, program.name)
        x, variants = make_inputs(seed)
        flag, n = variants[0]
        for name in ("tensorssa", "ts_nnc"):
            pipe = get_pipeline(name)
            compiled = pipe.compile(
                fn, example_args=(rt.from_numpy(x), flag, n))
            text = print_graph(compiled.graph)
            assert print_graph(parse_graph(text)) == text, name

    def test_nonfinite_constants_round_trip(self):
        import math
        from repro.ir.graph import Graph
        g = Graph("t")
        for val in (math.inf, -math.inf, math.nan):
            c = g.constant(val)
            g.block.append(c)
        g.block.add_return(g.block.nodes[0].output())
        text = print_graph(g)
        assert print_graph(parse_graph(text)) == text
