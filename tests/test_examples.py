"""The examples must stay runnable — they are the public quickstart."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")
EXAMPLES = ["quickstart.py", "cv_postprocess.py", "nlp_loop_fusion.py",
            "custom_operator.py", "ablation_study.py"]


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True,
        timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{name} printed nothing"


def test_quickstart_shows_the_conversion():
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "quickstart.py"))
    result = subprocess.run([sys.executable, path], capture_output=True,
                            text=True, timeout=600)
    out = result.stdout
    assert "immut::select_assign" in out  # the converted IR is displayed
    assert "optimized launches" in out


def test_custom_operator_reports_speedup():
    path = os.path.abspath(os.path.join(EXAMPLES_DIR,
                                        "custom_operator.py"))
    result = subprocess.run([sys.executable, path], capture_output=True,
                            text=True, timeout=600)
    assert "faster" in result.stdout
    assert "preserved" in result.stdout
