"""Introspection tooling."""

from repro.pipelines import EagerPipeline, TensorSSAPipeline
from repro.tools import inspect_workload, op_histogram, print_report


class TestInspect:
    def test_report_structure(self):
        report = inspect_workload(
            "attention", seq_len=8,
            pipelines=[EagerPipeline(), TensorSSAPipeline()])
        assert "__source__" in report
        assert "tensorssa" in report and "eager" in report
        entry = report["tensorssa"]
        assert entry["launches"] > 0
        assert entry["latency_us"] >= max(0.0, entry["device_us"]) or True
        assert "ops" in entry and "group_sizes" in entry

    def test_eager_has_no_graph_fields(self):
        report = inspect_workload("attention", seq_len=8,
                                  pipelines=[EagerPipeline()])
        assert "ops" not in report["eager"]

    def test_op_histogram(self):
        from repro.frontend import script
        from repro.models import get_workload
        g = script(get_workload("lstm").model_fn).graph
        hist = op_histogram(g)
        assert hist["prim::Loop"] == 1
        assert hist["aten::linear"] == 2

    def test_print_report_smoke(self, capsys):
        report = inspect_workload("attention", seq_len=8,
                                  pipelines=[TensorSSAPipeline()])
        print_report("attention", report)
        out = capsys.readouterr().out
        assert "tensorssa" in out and "launches=" in out
