"""The repro.obs layer: spans, metrics, Chrome export, and the three
bugfixes that shipped with it (nearest-rank percentile, reservoir
sampling past the cap, constant-fold fault swallowing)."""

import json
import threading

import pytest

import repro.runtime as rt
from repro.errors import CompileError, ReproError
from repro.eval.harness import CompileCache, run_workload
from repro.faults import FaultPlan, FaultRule, SITE_PASS, fault_scope
from repro.ir import Graph
from repro.ir import types as T
from repro.obs import (Counter, Gauge, Histogram, LabeledCounter,
                       MetricsRegistry, Trace, add_instant, chrome_trace,
                       coverage_fraction, current_span, global_tracing,
                       null_instrumentation, percentile_nearest_rank, span,
                       tracing, tracing_active, validate_chrome_trace,
                       write_chrome_trace)
from repro.passes import constant_fold
from repro.serve import ServePolicy, Server, ServerStats, percentile


# -- percentile: the nearest-rank regression --------------------------------

class TestPercentileNearestRank:
    def test_p50_of_four_is_second_element(self):
        # the old int(round(q/100*(n-1))) gave 3 here
        assert percentile([1, 2, 3, 4], 50) == 2
        assert percentile_nearest_rank([1, 2, 3, 4], 50) == 2

    def test_small_sets(self):
        assert percentile([1, 2, 3, 4], 25) == 1
        assert percentile([1, 2, 3, 4], 75) == 3
        assert percentile([1, 2, 3, 4], 100) == 4
        assert percentile([1, 2, 3], 50) == 2
        assert percentile([7], 99) == 7

    def test_q0_is_minimum_q100_is_maximum(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_returns_actual_member(self):
        data = [0.1, 0.2, 0.9]
        for q in (10, 50, 90, 95):
            assert percentile(data, q) in data


# -- metrics instruments ----------------------------------------------------

class TestInstruments:
    def test_counter(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_peak(self):
        g = Gauge("g")
        g.set(3)
        g.set(10)
        g.set(2)
        assert g.value == 2
        assert g.peak == 10

    def test_labeled_counter(self):
        lc = LabeledCounter("lc")
        lc.inc(4)
        lc.inc(4)
        lc.inc(1)
        assert lc.as_dict() == {4: 2, 1: 1}
        assert lc.total == 3

    def test_histogram_exact_until_cap(self):
        h = Histogram("h", max_samples=10, seed=0)
        for x in range(5):
            h.record(float(x))
        assert h.count == 5
        assert h.sum == 10.0
        assert sorted(h.samples()) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_reservoir_shifts_after_cap(self):
        # the frozen-sampling regression: the old ServerStats dropped
        # every sample past the cap, so a late-run distribution shift
        # was invisible to percentiles
        h = Histogram("h", max_samples=100, seed=0)
        for _ in range(100):
            h.record(1.0)
        assert h.percentile(95) == 1.0
        for _ in range(900):
            h.record(100.0)
        assert h.count == 1000
        # ~90% of the reservoir should now be late samples
        assert h.percentile(50) == 100.0
        assert 100.0 in h.samples()

    def test_reservoir_is_seeded_deterministic(self):
        def run(seed):
            h = Histogram("h", max_samples=8, seed=seed)
            for x in range(100):
                h.record(float(x))
            return h.samples()
        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_registry_idempotent_and_typed(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        d = reg.to_dict()
        assert d["a"] == 0

    def test_registry_histogram_snapshot(self):
        reg = MetricsRegistry(seed=1)
        h = reg.histogram("lat")
        for x in (1.0, 2.0, 3.0, 4.0):
            h.record(x)
        snap = reg.to_dict()["lat"]
        assert snap["count"] == 4
        assert snap["p50"] == 2.0  # nearest-rank, not interpolated


# -- ServerStats over the registry ------------------------------------------

class TestServerStats:
    def test_to_dict_keys_and_counts(self):
        st = ServerStats()
        st.on_submit(queue_depth=3)
        st.on_batch(2)
        st.on_response(status="ok", latency_s=0.01, queue_wait_s=0.001,
                       cache_hit=True, fallback=False, retries=0,
                       verified=True)
        st.on_response(status="error", latency_s=0.02, queue_wait_s=0.002,
                       cache_hit=False, fallback=True, retries=2,
                       verified=False, fallback_depth=1, degraded=True)
        d = st.to_dict()
        assert d["submitted"] == 1
        assert d["completed"] == 1
        assert d["errors"] == 1
        assert d["fallbacks"] == 1
        assert d["retries"] == 2
        assert d["verified"] == 2
        assert d["diverged"] == 1
        assert d["degraded"] == 1
        assert d["batches_executed"] == 1
        assert d["batch_size_hist"] == {"2": 1}
        assert d["fallback_depth_hist"] == {"0": 1}
        assert d["queue_depth_peak"] == 3
        assert d["request_cache_hits"] == 1
        assert d["cache_hit_rate"] == 0.5
        assert st.latency_percentile(50) == 0.01

    def test_latency_reservoir_not_frozen_after_cap(self):
        class SmallStats(ServerStats):
            MAX_SAMPLES = 50
        st = SmallStats()
        for _ in range(50):
            st.on_response(status="ok", latency_s=0.001,
                           queue_wait_s=0.0, cache_hit=True,
                           fallback=False, retries=0, verified=None)
        assert st.latency_percentile(95) == 0.001
        # distribution shifts two orders of magnitude after the cap
        for _ in range(450):
            st.on_response(status="ok", latency_s=0.1,
                           queue_wait_s=0.0, cache_hit=True,
                           fallback=False, retries=0, verified=None)
        assert st.latency_percentile(50) == 0.1


# -- span tracing -----------------------------------------------------------

class TestSpans:
    def test_disabled_is_inert(self):
        assert not tracing_active()
        with span("x") as sp:
            assert sp is None
        add_instant("y")  # must not raise
        assert current_span() is None

    def test_nesting_and_args(self):
        with tracing(seed=0) as tr:
            with span("outer", cat="compile", k=1) as outer:
                with span("inner") as inner:
                    assert current_span() is inner
                    add_instant("tick", n=3)
                assert current_span() is outer
        assert [s.name for s in tr.spans] == ["inner", "outer"]
        inner, outer = tr.spans
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.args["k"] == 1
        assert inner.instants[0].name == "tick"
        assert inner.duration_s >= 0.0
        assert tr.roots() == [outer]
        assert tr.children(outer) == [inner]

    def test_error_unwind_stamps_and_closes(self):
        with tracing() as tr:
            with pytest.raises(ValueError):
                with span("boom"):
                    raise ValueError("x")
        assert tr.spans[0].error == "ValueError"
        assert tr.spans[0].end_s >= tr.spans[0].start_s

    def test_orphan_instant(self):
        with tracing() as tr:
            add_instant("loose")
        assert [i.name for i in tr.orphan_instants] == ["loose"]

    def test_ids_deterministic(self):
        def ids():
            with tracing(seed=7) as tr:
                with span("a"):
                    with span("b"):
                        pass
                with span("c"):
                    pass
            return [(s.name, s.span_id) for s in tr.spans]
        assert ids() == ids()
        assert ids() == [("b", 2), ("a", 1), ("c", 3)]

    def test_global_sink_not_reentrant(self):
        with global_tracing():
            with pytest.raises(RuntimeError):
                with global_tracing():
                    pass

    def test_context_local_wins_over_global(self):
        with global_tracing() as g:
            with tracing() as local:
                with span("s"):
                    pass
            assert len(local.spans) == 1
            assert len(g.spans) == 0

    def test_two_threads_disjoint_well_nested_trees(self):
        """Two workers tracing into one shared sink must produce
        disjoint, well-nested span trees (the contextvar isolation
        contract)."""
        shared = Trace(name="shared")
        barrier = threading.Barrier(2)

        def worker(label):
            with tracing(trace=shared):
                with span(f"{label}:outer") as outer:
                    barrier.wait(timeout=5)
                    with span(f"{label}:inner"):
                        barrier.wait(timeout=5)
                return outer

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert len(shared.spans) == 4
        assert len({s.span_id for s in shared.spans}) == 4
        roots = shared.roots()
        assert sorted(s.name for s in roots) == ["t0:outer", "t1:outer"]
        for root in roots:
            label = root.name.split(":")[0]
            kids = shared.children(root)
            # each tree is confined to its own thread and label
            assert [k.name for k in kids] == [f"{label}:inner"]
            assert all(k.tid == root.tid for k in kids)
            assert all(root.start_s <= k.start_s
                       and k.end_s <= root.end_s for k in kids)

    def test_null_instrumentation_bypass(self):
        from repro.obs import trace as obs_trace
        with null_instrumentation():
            assert not obs_trace.tracing_active()
            with tracing() as tr:  # sink installs, but call sites bypass
                with obs_trace.span("x"):
                    pass
            assert len(tr.spans) == 0
        assert obs_trace.tracing_active() is False


# -- Chrome export ----------------------------------------------------------

class TestChromeExport:
    def _sample_trace(self):
        with tracing(name="sample", seed=0) as tr:
            with span("outer", cat="compile"):
                add_instant("tick")
                with span("inner", cat="exec"):
                    pass
            add_instant("orphan")
        return tr

    def test_export_validates(self):
        doc = chrome_trace(self._sample_trace())
        assert validate_chrome_trace(doc) == []
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert "X" in phases and "i" in phases and "M" in phases

    def test_span_ids_and_parents_in_args(self):
        doc = chrome_trace(self._sample_trace())
        xs = {e["name"]: e for e in doc["traceEvents"]
              if e["ph"] == "X"}
        assert xs["inner"]["args"]["parent_id"] == \
            xs["outer"]["args"]["span_id"]

    def test_validator_catches_corruption(self):
        doc = chrome_trace(self._sample_trace())
        doc["traceEvents"][-1] = {"name": "bad", "ph": "Q"}
        assert validate_chrome_trace(doc)
        assert validate_chrome_trace({}) == \
            ["traceEvents missing or not a list"]

    def test_write_round_trips(self, tmp_path):
        path = write_chrome_trace(self._sample_trace(),
                                  tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []

    def test_coverage_fraction(self):
        tr = Trace()
        import time
        t0 = time.perf_counter()
        with tracing(trace=tr):
            with span("root"):
                time.sleep(0.01)
        t1 = time.perf_counter()
        assert coverage_fraction(tr, (t0, t1)) > 0.5
        assert coverage_fraction(tr, (t0, t0)) == 0.0


# -- stage-boundary integration ---------------------------------------------

class TestPipelineIntegration:
    def test_workload_trace_covers_stages(self):
        with tracing(seed=0) as tr:
            import time
            t0 = time.perf_counter()
            run_workload("lstm", "tensorssa", seq_len=8,
                         cache=CompileCache())
            t1 = time.perf_counter()
        names = {s.name for s in tr.spans}
        for expected in ("harness:run_workload", "harness:compile",
                         "harness:execute", "pipeline:compile",
                         "frontend:script", "tensorssa:convert",
                         "pass_manager:run", "cache:lookup",
                         "cache:compile", "memplan:plan",
                         "kernel:fusion_group"):
            assert expected in names, f"missing span {expected}"
        assert any(s.name.startswith("pass:") for s in tr.spans)
        # kernel/alloc events bridge in as instants somewhere
        instants = [i for s in tr.spans for i in s.instants]
        assert any(i.name.startswith("kernel:") for i in instants)
        assert any(i.name.startswith("alloc:") for i in instants)
        assert coverage_fraction(tr, (t0, t1)) >= 0.95
        assert validate_chrome_trace(chrome_trace(tr)) == []

    def test_serve_timelines_under_global_tracing(self):
        with global_tracing() as tr:
            with Server(ServePolicy(workers=2, max_batch_size=4,
                                    batch_wait_s=0.001)) as srv:
                futs = [srv.submit("attention", pipeline="tensorssa",
                                   seq_len=8, seed=i) for i in range(4)]
                responses = [f.result(timeout=30) for f in futs]
        assert all(r.ok for r in responses)
        for r in responses:
            events = [e["event"] for e in r.timeline]
            assert events[0] == "enqueue"
            assert events[-1] == "finish"
            for needed in ("dequeue", "execute"):
                assert needed in events
            # marks are monotonically timestamped
            ts = [e["t_s"] for e in r.timeline]
            assert ts == sorted(ts)
        assert {"serve:batch", "serve:coalesce",
                "serve:execute"} <= {s.name for s in tr.spans}

    def test_serve_timeline_empty_without_sink(self):
        with Server(ServePolicy(workers=1)) as srv:
            resp = srv.submit("attention", seq_len=8).result(timeout=30)
        assert resp.ok
        assert resp.timeline == ()


# -- constant-fold fault swallowing -----------------------------------------

def _div_graph(numer, denom):
    g = Graph()
    c0 = g.constant(denom)
    c1 = g.constant(numer)
    g.block.append(c0)
    g.block.append(c1)
    div = g.create("prim::truediv", [c1.output(), c0.output()],
                   ["d"], [T.FloatType()])
    g.block.append(div)
    g.add_output(div.output())
    return g


class TestConstantFoldFaults:
    def test_injected_fault_is_not_swallowed(self):
        """Regression: the blanket ``except Exception: continue``
        masked injected infrastructure faults as "leave unfolded"."""
        plan = FaultPlan([FaultRule(site=SITE_PASS,
                                    match="constant_fold:")])
        g = _div_graph(4.0, 2.0)
        with fault_scope(plan):
            with pytest.raises(ReproError) as exc_info:
                constant_fold(g)
        assert getattr(exc_info.value, "injected", False)
        assert plan.num_fired == 1

    def test_expected_eval_failure_still_skips(self):
        g = _div_graph(1.0, 0)
        constant_fold(g)  # ZeroDivisionError: skip, don't raise
        assert g.nodes_of("prim::truediv")

    def test_clean_fold_still_works(self):
        g = _div_graph(4.0, 2.0)
        assert constant_fold(g)
        assert not g.nodes_of("prim::truediv")
