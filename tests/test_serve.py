"""Serving layer: batcher units, server behavior, policies, oracles."""

import threading
import time

import numpy as np
import pytest

import repro.runtime as rt
from repro.models import Workload, get_workload
from repro.serve import (BatchSpec, ServePolicy, Server, coalesce,
                         get_batch_spec, group_key, scatter)
from repro.serve.batching import request_rows
from repro.serve.executor import BatchExecutor
from repro.serve.request import Request
from repro.serve.stats import ServerStats
from repro.eval.harness import CompileCache


def make_request(workload="lstm", seq_len=8, seed=0, base=None,
                 pipeline="tensorssa", platform="datacenter",
                 deadline=None):
    """A Request with optionally shared model state from ``base``."""
    wl = get_workload(workload)
    args = wl.make_inputs(batch_size=1, seq_len=seq_len, seed=seed)
    spec = get_batch_spec(wl.name)
    if base is not None and spec is not None:
        args = tuple(args[i] if ax is not None else base[i]
                     for i, ax in enumerate(spec.arg_axes))
    return Request(workload=wl, pipeline=pipeline, platform=platform,
                   args=tuple(args), batch_rows=request_rows(spec, args),
                   deadline=deadline)


def shared_base(workload="lstm", seq_len=8):
    return get_workload(workload).make_inputs(batch_size=1,
                                              seq_len=seq_len, seed=0)


class TestGroupKey:
    def test_shared_state_and_shapes_coalesce(self):
        base = shared_base()
        a = make_request(seed=1, base=base)
        b = make_request(seed=2, base=base)
        assert group_key(a) == group_key(b)

    def test_different_seq_len_splits(self):
        base = shared_base(seq_len=8)
        a = make_request(seq_len=8, base=base)
        b = make_request(seq_len=16)
        assert group_key(a) != group_key(b)

    def test_different_weights_split(self):
        # distinct weight tensors = distinct models: never coalesce
        a = make_request(seed=1)
        b = make_request(seed=2)
        assert group_key(a) != group_key(b)

    def test_different_pipeline_platform_split(self):
        base = shared_base()
        a = make_request(base=base, pipeline="tensorssa")
        b = make_request(base=base, pipeline="eager")
        c = make_request(base=base, platform="consumer")
        assert len({group_key(a), group_key(b), group_key(c)}) == 3

    def test_unspecced_workload_is_solo(self):
        a = make_request("yolact", seed=1)
        b = make_request("yolact", seed=1)
        assert get_batch_spec("yolact") is None
        assert group_key(a) != group_key(b)  # unique per request


class TestCoalesceScatter:
    def test_single_request_passthrough(self):
        req = make_request()
        plan = coalesce([req])
        assert plan.args is req.args
        assert plan.segments == [(0, 1)]

    def test_segments_and_composed_shapes(self):
        base = shared_base()
        reqs = [make_request(seed=s, base=base) for s in (1, 2, 3)]
        plan = coalesce(reqs)
        assert plan.segments == [(0, 1), (1, 2), (2, 3)]
        assert plan.total_rows == 3
        x, wx = plan.args[0], plan.args[1]
        assert x.shape[1] == 3          # (T, B, D): batch axis 1
        assert wx is base[1]            # shared weights pass through

    def test_scatter_roundtrip_is_exact(self):
        base = shared_base("attention", seq_len=8)
        reqs = [make_request("attention", seed=s, base=base)
                for s in (1, 2)]
        plan = coalesce(reqs)
        wl = get_workload("attention")
        outs = wl.model_fn(*plan.args)
        per_req = scatter(outs, plan)
        assert len(per_req) == 2
        for i, outs_i in enumerate(per_req):
            # slices must exactly equal the corresponding batch rows
            assert outs_i[0].shape[0] == 1
            np.testing.assert_array_equal(
                outs_i[0].numpy(), outs[0].numpy()[[i]])

    def test_mixed_row_counts(self):
        wl = get_workload("attention")
        base = shared_base("attention", seq_len=8)
        r1 = make_request("attention", seed=1, base=base)
        a2 = wl.make_inputs(batch_size=3, seq_len=8, seed=2)
        spec = get_batch_spec("attention")
        r2 = Request(workload=wl, pipeline="tensorssa",
                     platform="datacenter", args=a2,
                     batch_rows=request_rows(spec, a2))
        assert r2.batch_rows == 3
        plan = coalesce([r1, r2])
        assert plan.segments == [(0, 1), (1, 4)]
        assert plan.args[0].shape[0] == 4


class TestServerBasics:
    def test_submit_solo_bit_exact_vs_eager(self):
        wl = get_workload("attention")
        args = wl.make_inputs(batch_size=1, seq_len=8, seed=3)
        expected = wl.model_fn(*tuple(a.clone() for a in args))
        with Server(ServePolicy(workers=1, max_batch_size=1,
                                verify="solo")) as srv:
            resp = srv.submit("attention", args=args).result(timeout=60)
        assert resp.ok and resp.served_by == "tensorssa"
        assert resp.verified is True
        for got, exp in zip(resp.outputs, expected):
            np.testing.assert_array_equal(got.numpy(), exp.numpy())

    def test_requests_coalesce_into_batches(self):
        base = shared_base(seq_len=8)
        wl = get_workload("lstm")
        pol = ServePolicy(workers=1, max_batch_size=4, batch_wait_s=0.05,
                          verify="batch")
        with Server(pol) as srv:
            futs = []
            for s in range(4):
                a = wl.make_inputs(batch_size=1, seq_len=8, seed=10 + s)
                args = (a[0],) + base[1:4] + (a[4], a[5])
                futs.append(srv.submit("lstm", args=args))
            rs = [f.result(timeout=60) for f in futs]
        assert all(r.ok for r in rs)
        assert any(r.batch_requests > 1 for r in rs)
        assert all(r.verified is True for r in rs)

    def test_partial_batch_flushes_on_timeout(self):
        # fewer requests than max_batch_size must still be served once
        # the oldest has waited batch_wait_s
        pol = ServePolicy(workers=1, max_batch_size=64,
                          batch_wait_s=0.01)
        with Server(pol) as srv:
            start = time.monotonic()
            resp = srv.submit("attention", seq_len=8).result(timeout=60)
            elapsed = time.monotonic() - start
        assert resp.ok
        assert resp.batch_requests == 1
        assert elapsed < 30.0

    def test_submit_many(self):
        with Server(ServePolicy(workers=2, max_batch_size=2)) as srv:
            futs = srv.submit_many(
                {"workload": "attention", "seq_len": 8, "seed": s}
                for s in range(3))
            rs = [f.result(timeout=60) for f in futs]
        assert [r.ok for r in rs] == [True] * 3

    def test_stats_surface(self):
        srv = Server(ServePolicy(workers=2, max_batch_size=4,
                                 verify="batch"))
        try:
            futs = [srv.submit("attention", seq_len=8, seed=s)
                    for s in range(6)]
            for f in futs:
                assert f.result(timeout=60).ok
        finally:
            srv.shutdown()
        s = srv.stats.to_dict()
        assert s["submitted"] == 6 and s["completed"] == 6
        assert s["errors"] == 0 and s["diverged"] == 0
        assert sum(int(k) * v for k, v in s["batch_size_hist"].items()) == 6
        assert s["latency_p95_ms"] >= s["latency_p50_ms"] >= 0.0
        assert s["compile_cache"]["epoch"] == 0
        assert 0.0 <= s["cache_hit_rate"] <= 1.0


def _unscriptable_model(x):
    # numpy round-trip: runs fine eagerly, but the frontend cannot
    # script it (np is not a registered op namespace)
    arr = x.numpy() * 2.0
    return rt.from_numpy(arr)


UNSCRIPTABLE = Workload(
    name="unscriptable", domain="module", model_fn=_unscriptable_model,
    make_inputs=lambda batch_size=1, seq_len=8, seed=0:
        (get_workload("attention").make_inputs(batch_size, seq_len,
                                               seed)[0],))


class TestRobustnessPolicies:
    def test_fallback_to_eager_on_compile_failure(self):
        pol = ServePolicy(workers=1, max_batch_size=1, verify="solo")
        with Server(pol) as srv:
            resp = srv.submit(UNSCRIPTABLE, seq_len=8).result(timeout=60)
        assert resp.ok and resp.served_by == "eager"
        assert resp.verified is True
        assert srv.stats.fallbacks == 1

    def test_compile_failure_without_fallback_errors(self):
        pol = ServePolicy(workers=1, max_batch_size=1,
                          eager_fallback=False, max_retries=0)
        with Server(pol) as srv:
            resp = srv.submit(UNSCRIPTABLE, seq_len=8).result(timeout=60)
        assert resp.status == "error"

    def test_expired_request_times_out_without_running(self):
        stats = ServerStats()
        ex = BatchExecutor(ServePolicy(), CompileCache(), stats)
        req = make_request("attention",
                           deadline=time.monotonic() - 1.0)
        ex.execute([req])
        resp = req.future.result(timeout=5)
        assert resp.status == "timeout"
        assert stats.timeouts == 1

    def test_deadline_near_skips_cold_compile(self):
        # no cached artifact + deadline inside the slack window -> the
        # executor serves eagerly instead of starting a cold compile
        stats = ServerStats()
        pol = ServePolicy(deadline_slack_s=10.0, verify="solo")
        ex = BatchExecutor(pol, CompileCache(), stats)
        req = make_request("attention",
                           deadline=time.monotonic() + 1.0)
        ex.execute([req])
        resp = req.future.result(timeout=30)
        assert resp.ok and resp.served_by == "eager"
        assert stats.fallbacks == 1

    def test_backpressure_rejects_when_full(self):
        release = threading.Event()
        pol = ServePolicy(workers=1, max_batch_size=1, queue_capacity=1,
                          reject_on_full=True, batch_wait_s=0.0)
        srv = Server(pol)
        original = srv.executor.execute

        def blocking_execute(batch):
            release.wait(30)
            original(batch)

        srv.executor.execute = blocking_execute
        try:
            first = srv.submit("attention", seq_len=8)   # worker blocks
            time.sleep(0.1)                              # worker took it
            second = srv.submit("attention", seq_len=8)  # fills queue
            third = srv.submit("attention", seq_len=8)   # rejected
            resp3 = third.result(timeout=5)
            assert resp3.status == "rejected"
            assert srv.stats.rejected == 1
            release.set()
            assert first.result(timeout=60).ok
            assert second.result(timeout=60).ok
        finally:
            release.set()
            srv.shutdown()

    def test_shutdown_no_drain_cancels_queued(self):
        release = threading.Event()
        pol = ServePolicy(workers=1, max_batch_size=1, batch_wait_s=0.0)
        srv = Server(pol)
        original = srv.executor.execute

        def blocking_execute(batch):
            release.wait(30)
            original(batch)

        srv.executor.execute = blocking_execute
        first = srv.submit("attention", seq_len=8)
        time.sleep(0.1)
        queued = srv.submit("attention", seq_len=8)
        release.set()
        srv.shutdown(drain=False)
        assert queued.result(timeout=5).status == "cancelled"
        assert first.result(timeout=60).status in ("ok", "cancelled")
        with pytest.raises(RuntimeError):
            srv.submit("attention", seq_len=8)


class TestFuzzOracleThroughServer:
    """Fuzz-generated programs served end to end: the differential
    oracle's bit-exactness contract must survive the serving path."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_generated_program_served_bit_exact(self, seed):
        from repro.fuzz import generate_program, materialize
        from repro.fuzz.generator import make_inputs as fuzz_inputs

        program = generate_program(seed, max_nodes=64)
        fn = materialize(program.source, program.name)
        x_data, variants = fuzz_inputs(seed)
        flag, n = variants[0]
        wl = Workload(name=f"fuzz{seed}", domain="module", model_fn=fn,
                      make_inputs=lambda **kw: (rt.from_numpy(x_data),
                                                flag, n))
        expected = fn(rt.from_numpy(x_data.copy()), flag, n)
        pol = ServePolicy(workers=2, max_batch_size=4, verify="solo")
        with Server(pol) as srv:
            resp = srv.submit(
                wl, args=(rt.from_numpy(x_data.copy()), flag, n),
                pipeline="tensorssa").result(timeout=120)
        assert resp.ok, resp.error
        assert resp.verified is True
        got = resp.outputs
        exp = expected if isinstance(expected, tuple) else (expected,)
        assert len(got) == len(exp)
        for g, e in zip(got, exp):
            np.testing.assert_array_equal(g.numpy(), e.numpy())


# -- continuous batching + admission control (PR 8) ----------------------

from repro.serve import (AdmissionController, TokenBucket,  # noqa: E402
                         group_lane, group_min_deadline)


def shared_args(base, workload="lstm", seq_len=8, seed=1):
    """Request args reusing ``base``'s shared model state (so requests
    land in one group) with fresh batched inputs from ``seed``."""
    wl = get_workload(workload)
    fresh = wl.make_inputs(batch_size=1, seq_len=seq_len, seed=seed)
    spec = get_batch_spec(workload)
    return tuple(fresh[i] if ax is not None else base[i]
                 for i, ax in enumerate(spec.arg_axes))


class _StubStats:
    """Feeds AdmissionController a hand-set queue-wait percentile."""

    def __init__(self, p=0.0):
        self.p = p

    def recent_queue_wait_percentile(self, q):
        return self.p


class TestTokenBucket:
    def test_burst_then_refill(self):
        t = [0.0]
        b = TokenBucket(rate=1.0, burst=2.0, clock=lambda: t[0])
        assert b.try_take()
        assert b.try_take()
        assert not b.try_take()          # burst drained
        t[0] += 1.0                       # 1 token refilled
        assert b.try_take()
        assert not b.try_take()

    def test_refill_caps_at_burst(self):
        t = [0.0]
        b = TokenBucket(rate=10.0, burst=3.0, clock=lambda: t[0])
        t[0] += 100.0
        assert b.tokens == 3.0

    def test_zero_rate_never_refills(self):
        t = [0.0]
        b = TokenBucket(rate=0.0, burst=1.0, clock=lambda: t[0])
        assert b.try_take()
        t[0] += 1000.0
        assert not b.try_take()

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmissionController:
    def test_hysteresis_trip_and_recover(self):
        pol = ServePolicy(shed_budget_s=1.0, shed_recover_fraction=0.5)
        stub = _StubStats()
        ctrl = AdmissionController(pol, stub)
        stub.p = 0.5
        assert not ctrl.should_shed(0)
        stub.p = 1.5
        assert ctrl.should_shed(0)        # tripped: p > budget
        stub.p = 0.8
        assert ctrl.should_shed(0)        # hysteresis: 0.8 > 1.0 * 0.5
        stub.p = 0.4
        assert not ctrl.should_shed(0)    # recovered below budget*frac
        assert not ctrl.shedding

    def test_high_priority_never_shed(self):
        pol = ServePolicy(shed_budget_s=0.1, shed_priority_max=0)
        stub = _StubStats(p=10.0)
        ctrl = AdmissionController(pol, stub)
        assert ctrl.should_shed(0)
        assert not ctrl.should_shed(1)
        assert not ctrl.should_shed(2)

    def test_budget_derives_from_request_timeout(self):
        pol = ServePolicy(request_timeout_s=2.0, deadline_slack_s=0.5)
        ctrl = AdmissionController(pol, _StubStats())
        assert ctrl.shed_budget_s() == pytest.approx(1.5)

    def test_no_deadline_disables_shedding(self):
        pol = ServePolicy(request_timeout_s=0)
        ctrl = AdmissionController(pol, _StubStats(p=100.0))
        assert ctrl.shed_budget_s() is None
        assert not ctrl.should_shed(0)

    def test_disabled_flag_wins(self):
        pol = ServePolicy(shed_enabled=False, shed_budget_s=0.01)
        ctrl = AdmissionController(pol, _StubStats(p=100.0))
        assert not ctrl.should_shed(0)

    def test_work_conservation_floor(self):
        # even while tripped, a near-empty queue is never shed into:
        # the lagging percentile must not idle the server
        pol = ServePolicy(workers=2, max_batch_size=4,
                          shed_budget_s=0.1)
        ctrl = AdmissionController(pol, _StubStats(p=10.0))
        assert ctrl.keep_busy_floor == 8    # derived workers*max_batch
        assert ctrl.should_shed(0, pending=100)
        assert ctrl.shedding
        assert not ctrl.should_shed(0, pending=7)
        assert ctrl.should_shed(0, pending=8)
        explicit = AdmissionController(
            ServePolicy(shed_budget_s=0.1, shed_min_pending=3),
            _StubStats(p=10.0))
        assert explicit.keep_busy_floor == 3
        assert not explicit.should_shed(0, pending=2)


class TestGroupLaneHelpers:
    def test_group_lane_is_max_priority(self):
        base = shared_base()
        reqs = [make_request(seed=1, base=base),
                make_request(seed=2, base=base)]
        reqs[1].priority = 3
        assert group_lane(reqs) == 3
        assert group_lane([]) == 0

    def test_group_min_deadline_scans_all_members(self):
        base = shared_base()
        a = make_request(seed=1, base=base, deadline=None)
        b = make_request(seed=2, base=base, deadline=50.0)
        c = make_request(seed=3, base=base, deadline=10.0)
        assert group_min_deadline([a]) is None
        assert group_min_deadline([a, b, c]) == 10.0


class TestSchedulerRegressions:
    """The three flush-once scheduler bugs, pinned in classic mode."""

    def test_sleeping_scheduler_wakes_for_deadline(self):
        # Bug 1: the cond-wait timeout was computed from flush_at
        # alone, so a lone request with a deadline far inside
        # batch_wait_s slept until it had already expired.
        pol = ServePolicy(workers=1, max_batch_size=8, batch_wait_s=5.0,
                          continuous_batching=False)
        t0 = time.monotonic()
        with Server(pol) as srv:
            resp = srv.submit("attention", seq_len=8,
                              timeout_s=0.8).result(timeout=10)
        wall = time.monotonic() - t0
        assert resp.ok, resp.error
        assert wall < 2.0, f"scheduler slept through the deadline ({wall:.2f}s)"

    def test_group_min_deadline_triggers_urgent_flush(self):
        # Bug 2: urgency inspected only queue[0]; a later member with
        # a tighter deadline starved behind a relaxed oldest one.
        wl = get_workload("lstm")
        base = wl.make_inputs(batch_size=1, seq_len=8, seed=0)
        pol = ServePolicy(workers=1, max_batch_size=8, batch_wait_s=5.0,
                          continuous_batching=False)
        t0 = time.monotonic()
        with Server(pol) as srv:
            relaxed = srv.submit("lstm", args=shared_args(base, seed=1),
                                 timeout_s=30.0)
            tight = srv.submit("lstm", args=shared_args(base, seed=2),
                               timeout_s=0.8)
            r_tight = tight.result(timeout=10)
            r_relaxed = relaxed.result(timeout=10)
        wall = time.monotonic() - t0
        assert r_tight.ok, r_tight.error
        assert r_relaxed.ok, r_relaxed.error
        # the group flushed at the tight member's urgency point, not at
        # the relaxed oldest member's 5s batch_wait (the executor may
        # still peel the near-deadline member onto the eager path)
        assert r_tight.queue_wait_s < 2.0, r_tight.queue_wait_s
        assert wall < 2.0, f"tight-deadline member starved ({wall:.2f}s)"

    def test_backpressure_wait_is_visible_in_queue_wait(self):
        # Bug 3: enqueued_at was re-stamped after the backpressure
        # wait, hiding blocked-submit time from the queue-wait
        # percentiles (the very signal the shedder reads).
        release = threading.Event()
        pol = ServePolicy(workers=1, max_batch_size=1, queue_capacity=1,
                          reject_on_full=False, submit_timeout_s=10.0,
                          batch_wait_s=0.0)
        srv = Server(pol)
        original = srv.executor.execute

        def blocking_execute(batch):
            release.wait(30)
            original(batch)

        srv.executor.execute = blocking_execute
        try:
            first = srv.submit("attention", seq_len=8)   # worker blocks
            time.sleep(0.1)                              # worker took it
            second = srv.submit("attention", seq_len=8)  # fills queue
            futs = []

            def blocked_submit():
                futs.append(srv.submit("attention", seq_len=8))

            t = threading.Thread(target=blocked_submit)
            t.start()
            time.sleep(0.4)          # third sits in the backpressure wait
            release.set()
            t.join(timeout=10)
            assert not t.is_alive()
            third = futs[0].result(timeout=30)
            assert third.ok, third.error
            assert first.result(timeout=30).ok
            assert second.result(timeout=30).ok
            assert srv.stats.backpressure_waits == 1
            # the blocked ~0.4s must show up in the request's queue wait
            assert third.queue_wait_s >= 0.3, third.queue_wait_s
        finally:
            release.set()
            srv.shutdown()


class TestPriorityLanes:
    def test_high_priority_group_drains_first(self):
        release = threading.Event()
        order = []
        pol = ServePolicy(workers=1, max_batch_size=1, batch_wait_s=0.0)
        srv = Server(pol)
        original = srv.executor.execute

        def gated_execute(batch):
            order.append(batch[0].priority)
            release.wait(30)
            original(batch)

        srv.executor.execute = gated_execute
        try:
            dummy = srv.submit("attention", seq_len=4)     # occupies worker
            time.sleep(0.1)
            low = srv.submit("attention", seq_len=8, priority=0)
            high = srv.submit("attention", seq_len=16, priority=2)
            release.set()
            assert high.result(timeout=30).ok
            assert low.result(timeout=30).ok
            assert dummy.result(timeout=30).ok
            # after the dummy, the high lane drained before the low one
            assert order == [0, 2, 0]
        finally:
            release.set()
            srv.shutdown()

    def test_response_echoes_lane_and_tenant(self):
        pol = ServePolicy(workers=1)
        with Server(pol) as srv:
            resp = srv.submit("attention", seq_len=8, priority=2,
                              tenant="gold").result(timeout=30)
        assert resp.ok
        assert resp.priority == 2
        assert resp.tenant == "gold"
        assert srv.stats.lane_submitted.get(2) == 1
        assert srv.stats.lane_completed.get(2) == 1
        assert srv.stats.lane_latency_percentile(2, 50) > 0.0


class TestContinuousBatching:
    def test_window_admits_late_arrival(self):
        pol = ServePolicy(workers=1, max_batch_size=8, batch_wait_s=0.5)
        with Server(pol) as srv:
            f1 = srv.submit("attention", seq_len=16, seed=1)
            time.sleep(0.1)      # worker claimed f1, window open
            f2 = srv.submit("attention", seq_len=16, seed=2)
            r1, r2 = f1.result(timeout=30), f2.result(timeout=30)
        assert r1.ok and r2.ok
        assert r1.batch_requests == 2 and r2.batch_requests == 2
        assert r2.admitted and not r1.admitted
        assert srv.stats.admitted == 1

    def test_deadline_pulls_cutoff_before_batch_wait(self):
        pol = ServePolicy(workers=1, max_batch_size=8, batch_wait_s=5.0)
        t0 = time.monotonic()
        with Server(pol) as srv:
            resp = srv.submit("attention", seq_len=8,
                              timeout_s=0.8).result(timeout=10)
        wall = time.monotonic() - t0
        assert resp.ok, resp.error
        assert wall < 2.0, f"window ignored the deadline ({wall:.2f}s)"

    def test_batch_oracle_exact_with_admitted_members(self):
        wl = get_workload("lstm")
        base = wl.make_inputs(batch_size=1, seq_len=8, seed=0)
        pol = ServePolicy(workers=1, max_batch_size=8, batch_wait_s=0.4,
                          verify="batch")
        with Server(pol) as srv:
            futs = []
            for seed in range(1, 5):
                futs.append(srv.submit(
                    "lstm", args=shared_args(base, seed=seed)))
                time.sleep(0.05)
            resps = [f.result(timeout=60) for f in futs]
        assert all(r.ok for r in resps), [r.error for r in resps]
        assert all(r.verified for r in resps)
        assert srv.stats.diverged == 0
        assert srv.stats.admitted >= 1   # later submits rode the window


class TestQuotasAndShedding:
    def test_tenant_quota_rejects_when_drained(self):
        pol = ServePolicy(workers=1,
                          tenant_rates={"free": (0.0, 2.0)})
        with Server(pol) as srv:
            a = srv.submit("attention", seq_len=8, tenant="free")
            b = srv.submit("attention", seq_len=8, tenant="free")
            c = srv.submit("attention", seq_len=8, tenant="free")
            gold = srv.submit("attention", seq_len=8, tenant="gold")
            rc = c.result(timeout=30)
            assert a.result(timeout=30).ok
            assert b.result(timeout=30).ok
            assert gold.result(timeout=30).ok
        assert rc.status == "rejected"
        assert "quota" in rc.error
        assert srv.stats.quota_rejected_by_tenant == {"free": 1}

    def test_shed_then_recover_through_server(self):
        pol = ServePolicy(workers=1, shed_budget_s=0.5, shed_window=8,
                          shed_priority_max=0, shed_min_pending=0)
        with Server(pol) as srv:
            # simulate a queue-wait spike crossing the budget
            for _ in range(8):
                srv.stats.on_response("ok", 0.01, 1.0, False, False, 0,
                                      None)
            shed = srv.submit("attention", seq_len=8, priority=0)
            kept = srv.submit("attention", seq_len=8, priority=1)
            r_shed = shed.result(timeout=30)
            assert r_shed.status == "shed"
            assert "shed" in r_shed.error
            assert kept.result(timeout=30).ok
            assert srv.admission.shedding
            # the spike drains: recent waits fall below budget * frac
            for _ in range(8):
                srv.stats.on_response("ok", 0.01, 0.01, False, False, 0,
                                      None)
            recovered = srv.submit("attention", seq_len=8, priority=0)
            assert recovered.result(timeout=30).ok
        assert srv.stats.shed == 1
        assert srv.stats.shed_by_lane == {0: 1}


class TestDrainDeadline:
    """``shutdown(drain=True)`` is bounded: a wedged worker thread can
    delay shutdown by at most the drain deadline, and whatever it
    would have served is answered with a typed ``ServerShutdown``
    rejection instead of hanging its waiters forever."""

    def _wedge_plan(self, seconds):
        from repro.faults import (Fault, FaultPlan, FaultRule,
                                  KIND_LATENCY, SITE_BATCH_EXEC)
        return FaultPlan([FaultRule(
            site=SITE_BATCH_EXEC, probability=1.0, times=None,
            fault=Fault(kind=KIND_LATENCY, latency_s=seconds))])

    def test_wedged_worker_cannot_stall_shutdown(self):
        from repro.faults import global_fault_scope
        policy = ServePolicy(workers=1, max_batch_size=1,
                             batch_wait_s=0.001, drain_timeout_s=0.3)
        srv = Server(policy)
        with global_fault_scope(self._wedge_plan(8.0)):
            futs = [srv.submit("attention", seq_len=8, seed=s)
                    for s in range(3)]
            start = time.monotonic()
            srv.shutdown(drain=True)
            elapsed = time.monotonic() - start
        assert elapsed < 4.0  # bounded by the deadline, not the wedge
        assert srv.stats.drain_expired >= 1
        # the wedged request's waiter is not our concern here; every
        # *queued* request must already hold a typed rejection
        done = [f for f in futs if f.done()]
        assert len(done) >= 2
        for f in done:
            resp = f.result(timeout=0)
            if resp.ok:
                continue  # served before the worker wedged
            assert resp.status == "cancelled"
            assert "ServerShutdown" in resp.error \
                or "shut down" in resp.error

    def test_explicit_timeout_overrides_policy(self):
        from repro.faults import global_fault_scope
        policy = ServePolicy(workers=1, max_batch_size=1,
                             batch_wait_s=0.001, drain_timeout_s=30.0)
        srv = Server(policy)
        with global_fault_scope(self._wedge_plan(8.0)):
            futs = [srv.submit("attention", seq_len=8, seed=s)
                    for s in range(2)]
            start = time.monotonic()
            srv.shutdown(drain=True, timeout=0.2)
            elapsed = time.monotonic() - start
        assert elapsed < 4.0
        assert srv.stats.drain_expired >= 1
        del futs

    def test_clean_drain_leaves_no_expiry(self):
        policy = ServePolicy(workers=1, max_batch_size=2,
                             batch_wait_s=0.001, drain_timeout_s=10.0)
        srv = Server(policy)
        futs = [srv.submit("attention", seq_len=8, seed=s)
                for s in range(4)]
        srv.shutdown(drain=True)
        assert all(f.result(timeout=0).ok for f in futs)
        assert srv.stats.drain_expired == 0
