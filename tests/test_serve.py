"""Serving layer: batcher units, server behavior, policies, oracles."""

import threading
import time

import numpy as np
import pytest

import repro.runtime as rt
from repro.models import Workload, get_workload
from repro.serve import (BatchSpec, ServePolicy, Server, coalesce,
                         get_batch_spec, group_key, scatter)
from repro.serve.batching import request_rows
from repro.serve.executor import BatchExecutor
from repro.serve.request import Request
from repro.serve.stats import ServerStats
from repro.eval.harness import CompileCache


def make_request(workload="lstm", seq_len=8, seed=0, base=None,
                 pipeline="tensorssa", platform="datacenter",
                 deadline=None):
    """A Request with optionally shared model state from ``base``."""
    wl = get_workload(workload)
    args = wl.make_inputs(batch_size=1, seq_len=seq_len, seed=seed)
    spec = get_batch_spec(wl.name)
    if base is not None and spec is not None:
        args = tuple(args[i] if ax is not None else base[i]
                     for i, ax in enumerate(spec.arg_axes))
    return Request(workload=wl, pipeline=pipeline, platform=platform,
                   args=tuple(args), batch_rows=request_rows(spec, args),
                   deadline=deadline)


def shared_base(workload="lstm", seq_len=8):
    return get_workload(workload).make_inputs(batch_size=1,
                                              seq_len=seq_len, seed=0)


class TestGroupKey:
    def test_shared_state_and_shapes_coalesce(self):
        base = shared_base()
        a = make_request(seed=1, base=base)
        b = make_request(seed=2, base=base)
        assert group_key(a) == group_key(b)

    def test_different_seq_len_splits(self):
        base = shared_base(seq_len=8)
        a = make_request(seq_len=8, base=base)
        b = make_request(seq_len=16)
        assert group_key(a) != group_key(b)

    def test_different_weights_split(self):
        # distinct weight tensors = distinct models: never coalesce
        a = make_request(seed=1)
        b = make_request(seed=2)
        assert group_key(a) != group_key(b)

    def test_different_pipeline_platform_split(self):
        base = shared_base()
        a = make_request(base=base, pipeline="tensorssa")
        b = make_request(base=base, pipeline="eager")
        c = make_request(base=base, platform="consumer")
        assert len({group_key(a), group_key(b), group_key(c)}) == 3

    def test_unspecced_workload_is_solo(self):
        a = make_request("yolact", seed=1)
        b = make_request("yolact", seed=1)
        assert get_batch_spec("yolact") is None
        assert group_key(a) != group_key(b)  # unique per request


class TestCoalesceScatter:
    def test_single_request_passthrough(self):
        req = make_request()
        plan = coalesce([req])
        assert plan.args is req.args
        assert plan.segments == [(0, 1)]

    def test_segments_and_composed_shapes(self):
        base = shared_base()
        reqs = [make_request(seed=s, base=base) for s in (1, 2, 3)]
        plan = coalesce(reqs)
        assert plan.segments == [(0, 1), (1, 2), (2, 3)]
        assert plan.total_rows == 3
        x, wx = plan.args[0], plan.args[1]
        assert x.shape[1] == 3          # (T, B, D): batch axis 1
        assert wx is base[1]            # shared weights pass through

    def test_scatter_roundtrip_is_exact(self):
        base = shared_base("attention", seq_len=8)
        reqs = [make_request("attention", seed=s, base=base)
                for s in (1, 2)]
        plan = coalesce(reqs)
        wl = get_workload("attention")
        outs = wl.model_fn(*plan.args)
        per_req = scatter(outs, plan)
        assert len(per_req) == 2
        for i, outs_i in enumerate(per_req):
            # slices must exactly equal the corresponding batch rows
            assert outs_i[0].shape[0] == 1
            np.testing.assert_array_equal(
                outs_i[0].numpy(), outs[0].numpy()[[i]])

    def test_mixed_row_counts(self):
        wl = get_workload("attention")
        base = shared_base("attention", seq_len=8)
        r1 = make_request("attention", seed=1, base=base)
        a2 = wl.make_inputs(batch_size=3, seq_len=8, seed=2)
        spec = get_batch_spec("attention")
        r2 = Request(workload=wl, pipeline="tensorssa",
                     platform="datacenter", args=a2,
                     batch_rows=request_rows(spec, a2))
        assert r2.batch_rows == 3
        plan = coalesce([r1, r2])
        assert plan.segments == [(0, 1), (1, 4)]
        assert plan.args[0].shape[0] == 4


class TestServerBasics:
    def test_submit_solo_bit_exact_vs_eager(self):
        wl = get_workload("attention")
        args = wl.make_inputs(batch_size=1, seq_len=8, seed=3)
        expected = wl.model_fn(*tuple(a.clone() for a in args))
        with Server(ServePolicy(workers=1, max_batch_size=1,
                                verify="solo")) as srv:
            resp = srv.submit("attention", args=args).result(timeout=60)
        assert resp.ok and resp.served_by == "tensorssa"
        assert resp.verified is True
        for got, exp in zip(resp.outputs, expected):
            np.testing.assert_array_equal(got.numpy(), exp.numpy())

    def test_requests_coalesce_into_batches(self):
        base = shared_base(seq_len=8)
        wl = get_workload("lstm")
        pol = ServePolicy(workers=1, max_batch_size=4, batch_wait_s=0.05,
                          verify="batch")
        with Server(pol) as srv:
            futs = []
            for s in range(4):
                a = wl.make_inputs(batch_size=1, seq_len=8, seed=10 + s)
                args = (a[0],) + base[1:4] + (a[4], a[5])
                futs.append(srv.submit("lstm", args=args))
            rs = [f.result(timeout=60) for f in futs]
        assert all(r.ok for r in rs)
        assert any(r.batch_requests > 1 for r in rs)
        assert all(r.verified is True for r in rs)

    def test_partial_batch_flushes_on_timeout(self):
        # fewer requests than max_batch_size must still be served once
        # the oldest has waited batch_wait_s
        pol = ServePolicy(workers=1, max_batch_size=64,
                          batch_wait_s=0.01)
        with Server(pol) as srv:
            start = time.monotonic()
            resp = srv.submit("attention", seq_len=8).result(timeout=60)
            elapsed = time.monotonic() - start
        assert resp.ok
        assert resp.batch_requests == 1
        assert elapsed < 30.0

    def test_submit_many(self):
        with Server(ServePolicy(workers=2, max_batch_size=2)) as srv:
            futs = srv.submit_many(
                {"workload": "attention", "seq_len": 8, "seed": s}
                for s in range(3))
            rs = [f.result(timeout=60) for f in futs]
        assert [r.ok for r in rs] == [True] * 3

    def test_stats_surface(self):
        srv = Server(ServePolicy(workers=2, max_batch_size=4,
                                 verify="batch"))
        try:
            futs = [srv.submit("attention", seq_len=8, seed=s)
                    for s in range(6)]
            for f in futs:
                assert f.result(timeout=60).ok
        finally:
            srv.shutdown()
        s = srv.stats.to_dict()
        assert s["submitted"] == 6 and s["completed"] == 6
        assert s["errors"] == 0 and s["diverged"] == 0
        assert sum(int(k) * v for k, v in s["batch_size_hist"].items()) == 6
        assert s["latency_p95_ms"] >= s["latency_p50_ms"] >= 0.0
        assert s["compile_cache"]["epoch"] == 0
        assert 0.0 <= s["cache_hit_rate"] <= 1.0


def _unscriptable_model(x):
    # numpy round-trip: runs fine eagerly, but the frontend cannot
    # script it (np is not a registered op namespace)
    arr = x.numpy() * 2.0
    return rt.from_numpy(arr)


UNSCRIPTABLE = Workload(
    name="unscriptable", domain="module", model_fn=_unscriptable_model,
    make_inputs=lambda batch_size=1, seq_len=8, seed=0:
        (get_workload("attention").make_inputs(batch_size, seq_len,
                                               seed)[0],))


class TestRobustnessPolicies:
    def test_fallback_to_eager_on_compile_failure(self):
        pol = ServePolicy(workers=1, max_batch_size=1, verify="solo")
        with Server(pol) as srv:
            resp = srv.submit(UNSCRIPTABLE, seq_len=8).result(timeout=60)
        assert resp.ok and resp.served_by == "eager"
        assert resp.verified is True
        assert srv.stats.fallbacks == 1

    def test_compile_failure_without_fallback_errors(self):
        pol = ServePolicy(workers=1, max_batch_size=1,
                          eager_fallback=False, max_retries=0)
        with Server(pol) as srv:
            resp = srv.submit(UNSCRIPTABLE, seq_len=8).result(timeout=60)
        assert resp.status == "error"

    def test_expired_request_times_out_without_running(self):
        stats = ServerStats()
        ex = BatchExecutor(ServePolicy(), CompileCache(), stats)
        req = make_request("attention",
                           deadline=time.monotonic() - 1.0)
        ex.execute([req])
        resp = req.future.result(timeout=5)
        assert resp.status == "timeout"
        assert stats.timeouts == 1

    def test_deadline_near_skips_cold_compile(self):
        # no cached artifact + deadline inside the slack window -> the
        # executor serves eagerly instead of starting a cold compile
        stats = ServerStats()
        pol = ServePolicy(deadline_slack_s=10.0, verify="solo")
        ex = BatchExecutor(pol, CompileCache(), stats)
        req = make_request("attention",
                           deadline=time.monotonic() + 1.0)
        ex.execute([req])
        resp = req.future.result(timeout=30)
        assert resp.ok and resp.served_by == "eager"
        assert stats.fallbacks == 1

    def test_backpressure_rejects_when_full(self):
        release = threading.Event()
        pol = ServePolicy(workers=1, max_batch_size=1, queue_capacity=1,
                          reject_on_full=True, batch_wait_s=0.0)
        srv = Server(pol)
        original = srv.executor.execute

        def blocking_execute(batch):
            release.wait(30)
            original(batch)

        srv.executor.execute = blocking_execute
        try:
            first = srv.submit("attention", seq_len=8)   # worker blocks
            time.sleep(0.1)                              # worker took it
            second = srv.submit("attention", seq_len=8)  # fills queue
            third = srv.submit("attention", seq_len=8)   # rejected
            resp3 = third.result(timeout=5)
            assert resp3.status == "rejected"
            assert srv.stats.rejected == 1
            release.set()
            assert first.result(timeout=60).ok
            assert second.result(timeout=60).ok
        finally:
            release.set()
            srv.shutdown()

    def test_shutdown_no_drain_cancels_queued(self):
        release = threading.Event()
        pol = ServePolicy(workers=1, max_batch_size=1, batch_wait_s=0.0)
        srv = Server(pol)
        original = srv.executor.execute

        def blocking_execute(batch):
            release.wait(30)
            original(batch)

        srv.executor.execute = blocking_execute
        first = srv.submit("attention", seq_len=8)
        time.sleep(0.1)
        queued = srv.submit("attention", seq_len=8)
        release.set()
        srv.shutdown(drain=False)
        assert queued.result(timeout=5).status == "cancelled"
        assert first.result(timeout=60).status in ("ok", "cancelled")
        with pytest.raises(RuntimeError):
            srv.submit("attention", seq_len=8)


class TestFuzzOracleThroughServer:
    """Fuzz-generated programs served end to end: the differential
    oracle's bit-exactness contract must survive the serving path."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_generated_program_served_bit_exact(self, seed):
        from repro.fuzz import generate_program, materialize
        from repro.fuzz.generator import make_inputs as fuzz_inputs

        program = generate_program(seed, max_nodes=64)
        fn = materialize(program.source, program.name)
        x_data, variants = fuzz_inputs(seed)
        flag, n = variants[0]
        wl = Workload(name=f"fuzz{seed}", domain="module", model_fn=fn,
                      make_inputs=lambda **kw: (rt.from_numpy(x_data),
                                                flag, n))
        expected = fn(rt.from_numpy(x_data.copy()), flag, n)
        pol = ServePolicy(workers=2, max_batch_size=4, verify="solo")
        with Server(pol) as srv:
            resp = srv.submit(
                wl, args=(rt.from_numpy(x_data.copy()), flag, n),
                pipeline="tensorssa").result(timeout=120)
        assert resp.ok, resp.error
        assert resp.verified is True
        got = resp.outputs
        exp = expected if isinstance(expected, tuple) else (expected,)
        assert len(got) == len(exp)
        for g, e in zip(got, exp):
            np.testing.assert_array_equal(g.numpy(), e.numpy())
