"""Router building blocks: hash ring, IPC framing, policy, stats."""

import socket
import struct
import threading

import numpy as np
import pytest

from repro.models import get_workload
from repro.shard import (Channel, HashRing, MSG_HEARTBEAT, MSG_RESULT,
                         MSG_SUBMIT, RouterStats, ShardPolicy,
                         ShardRouter, decode_args, encode_args,
                         read_message, write_message)
from repro.shard.ipc import HEADER, MAGIC, MAX_FRAME


class TestHashRing:
    def test_lookup_is_deterministic(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])  # insertion order irrelevant
        keys = [f"key-{i}" for i in range(200)]
        assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]

    def test_every_node_owns_keys(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        owners = {ring.lookup(f"key-{i}") for i in range(500)}
        assert owners == {"w0", "w1", "w2", "w3"}

    def test_removal_moves_only_the_dead_nodes_keys(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        keys = [f"key-{i}" for i in range(500)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove("w2")
        for k in keys:
            after = ring.lookup(k)
            if before[k] != "w2":
                assert after == before[k]  # survivors keep their keys
            else:
                assert after != "w2"

    def test_add_back_restores_the_original_mapping(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"key-{i}" for i in range(200)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove("w1")
        ring.add("w1")
        assert {k: ring.lookup(k) for k in keys} == before

    def test_empty_ring_and_idempotent_membership(self):
        ring = HashRing()
        assert ring.lookup("anything") is None
        ring.add("w0")
        ring.add("w0")
        assert len(ring) == 1
        ring.remove("w0")
        ring.remove("w0")
        assert ring.nodes == [] and ring.lookup("x") is None

    def test_virtual_nodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(virtual_nodes=0)


class TestFraming:
    def test_round_trip_preserves_type_and_payload(self):
        left, right = socket.socketpair()
        try:
            write_message(left, MSG_SUBMIT, {"rid": 7, "args": [1, 2]})
            write_message(left, MSG_HEARTBEAT, {"seq": 3})
            assert read_message(right) == (MSG_SUBMIT,
                                           {"rid": 7, "args": [1, 2]})
            assert read_message(right) == (MSG_HEARTBEAT, {"seq": 3})
        finally:
            left.close()
            right.close()

    def test_torn_frame_is_a_connection_error(self):
        left, right = socket.socketpair()
        try:
            # a header promising more payload than ever arrives — the
            # shape a SIGKILL mid-write leaves behind
            left.sendall(HEADER.pack(MAGIC, MSG_RESULT, 1024) + b"abc")
            left.close()
            with pytest.raises(ConnectionError, match="mid-frame"):
                read_message(right)
        finally:
            right.close()

    def test_bad_magic_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(HEADER.pack(b"XXXX", MSG_RESULT, 0))
            with pytest.raises(ConnectionError, match="magic"):
                read_message(right)
        finally:
            left.close()
            right.close()

    def test_oversized_length_prefix_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">4sBI", MAGIC, MSG_RESULT,
                                     MAX_FRAME + 1))
            with pytest.raises(ConnectionError, match="exceeds"):
                read_message(right)
        finally:
            left.close()
            right.close()

    def test_channel_send_after_close_raises(self):
        left, right = socket.socketpair()
        chan = Channel(left)
        chan.close()
        chan.close()  # idempotent
        assert chan.closed
        with pytest.raises(ConnectionError):
            chan.send(MSG_HEARTBEAT, {})
        right.close()


class TestArgCodec:
    def test_tensors_round_trip_without_shared_storage(self):
        wl = get_workload("lstm")
        args = wl.make_inputs(batch_size=1, seq_len=8, seed=0)
        decoded = decode_args(encode_args(args))
        assert len(decoded) == len(args)
        for got, want in zip(decoded, args):
            assert np.array_equal(got.numpy(), want.numpy())
            got.numpy()  # rebuilt tensor owns its own storage:
            assert got is not want

    def test_scalars_pass_through_tagged(self):
        wire = encode_args((3, "datacenter", None))
        assert [tag for tag, _ in wire] == ["py", "py", "py"]
        assert decode_args(wire) == (3, "datacenter", None)


class TestShardPolicy:
    def test_defaults_are_valid(self):
        ShardPolicy()

    @pytest.mark.parametrize("kwargs", [
        {"num_workers": 0},
        {"heartbeat_interval_s": 0.0},
        {"heartbeat_interval_s": 0.5, "heartbeat_timeout_s": 0.5},
        {"max_respawns": -1},
        {"redeliver_max": -1},
        {"virtual_nodes": 0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ShardPolicy(**kwargs)


class TestRouterStats:
    def test_counters_and_snapshot(self):
        stats = RouterStats()
        stats.inc("submitted")
        stats.inc("submitted", 2)
        stats.inc("redelivered")
        assert stats.get("submitted") == 3
        assert stats.get("answered") == 0
        stats.worker_compiles["w0"] = 4
        snap = stats.to_dict()
        assert snap["submitted"] == 3 and snap["redelivered"] == 1
        assert snap["worker_compiles"] == {"w0": 4}

    def test_snapshot_is_detached(self):
        stats = RouterStats()
        snap = stats.to_dict()
        snap["submitted"] = 99
        snap["worker_compiles"]["w9"] = 1
        assert stats.get("submitted") == 0
        assert stats.to_dict()["worker_compiles"] == {}


class TestRingKey:
    def test_shape_specialization_decides_the_key(self):
        wl = get_workload("attention")
        a = wl.make_inputs(batch_size=1, seq_len=8, seed=0)
        same_shape = wl.make_inputs(batch_size=1, seq_len=8, seed=9)
        other_shape = wl.make_inputs(batch_size=1, seq_len=16, seed=0)
        key = ShardRouter.ring_key("attention", "tensorssa",
                                   "datacenter", a)
        assert ShardRouter.ring_key("attention", "tensorssa",
                                    "datacenter", same_shape) == key
        assert ShardRouter.ring_key("attention", "tensorssa",
                                    "datacenter", other_shape) != key
        assert ShardRouter.ring_key("attention", "eager",
                                    "datacenter", a) != key
