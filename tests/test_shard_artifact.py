"""Artifact serialization: round-trips, tamper rejection, the store."""

import json
import os
import threading

import numpy as np
import pytest

from repro.errors import ArtifactError
from repro.eval.harness import (CompileCache, compile_cached_family,
                                compile_key)
from repro.models import get_workload, workload_names
from repro.pipelines.registry import get_pipeline
from repro.shard import (ARTIFACT_VERSION, ArtifactStore,
                         deserialize_compiled, serialize_compiled)

GRAPH_PIPELINES = ("tensorssa", "dynamo_inductor", "ts_nvfuser",
                   "ts_nnc")


def _fresh(workload, pipeline, seq_len=8):
    """Compile one pair and return (workload, compiled, key, args)."""
    wl = get_workload(workload)
    args = wl.make_inputs(batch_size=1, seq_len=seq_len, seed=0)
    pipe = get_pipeline(pipeline)
    compiled = pipe.compile(wl.model_fn, example_args=args)
    return wl, compiled, compile_key(pipe, wl, args), args


def _assert_same_outputs(got, want):
    got = got if isinstance(got, tuple) else (got,)
    want = want if isinstance(want, tuple) else (want,)
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert np.array_equal(g.numpy(), w.numpy(), equal_nan=True)


def _tampered(data: bytes, mutate) -> bytes:
    """Re-seal an artifact after ``mutate(payload)`` with a *valid*
    checksum, so the deeper validators (not the checksum) must fire."""
    from repro.shard.artifact import _canonical, _sha256
    envelope = json.loads(data.decode("utf-8"))
    mutate(envelope["payload"])
    envelope["checksum"] = _sha256(_canonical(envelope["payload"]))
    return json.dumps(envelope, sort_keys=True).encode("utf-8")


class TestRoundTrip:
    @pytest.mark.parametrize("workload", workload_names())
    @pytest.mark.parametrize("pipeline", GRAPH_PIPELINES)
    def test_every_workload_and_graph_pipeline(self, workload, pipeline):
        wl, compiled, key, args = _fresh(workload, pipeline)
        data = serialize_compiled(compiled, key)
        restored = deserialize_compiled(data)
        assert restored.key == key
        assert restored.pipeline == compiled.pipeline
        # all described kernels were pre-built during restore
        payload = json.loads(data.decode("utf-8"))["payload"]
        assert restored.kernels_built == len(payload["kernels"])
        fresh_args = wl.make_inputs(batch_size=1, seq_len=8, seed=3)
        _assert_same_outputs(restored.compiled.fn(*fresh_args),
                             compiled.fn(*fresh_args))

    def test_family_guards_round_trip(self):
        wl = get_workload("lstm")
        pipe = get_pipeline("tensorssa")
        cache = CompileCache()
        args = wl.make_inputs(batch_size=1, seq_len=8, seed=0)
        compiled, _, family, _ = compile_cached_family(
            pipe, wl, args, cache=cache)
        key = ("tensorssa", wl.name, "family", family.family_id)
        restored = deserialize_compiled(
            serialize_compiled(compiled, key, family=family))
        assert restored.family is not None
        assert restored.family.family_id == family.family_id
        assert {(g.kind, str(g.lhs), g.rhs) for g in
                restored.family.guards} \
            == {(g.kind, str(g.lhs), g.rhs) for g in family.guards}
        assert restored.family.extent_bounds() == \
            family.extent_bounds()

    def test_eager_pipeline_is_not_serializable(self):
        _, compiled, key, _ = _fresh("attention", "tensorssa")
        eager = get_pipeline("eager").compile(
            get_workload("attention").model_fn)
        with pytest.raises(ArtifactError, match="no graph"):
            serialize_compiled(eager, key)


class TestRejection:
    def _artifact(self):
        _, compiled, key, _ = _fresh("attention", "tensorssa")
        return serialize_compiled(compiled, key)

    def test_malformed_bytes(self):
        with pytest.raises(ArtifactError, match="malformed"):
            deserialize_compiled(b"\xff\x00 not json")

    def test_bad_magic(self):
        envelope = json.loads(self._artifact().decode("utf-8"))
        envelope["magic"] = "someone-elses-format"
        with pytest.raises(ArtifactError, match="magic"):
            deserialize_compiled(json.dumps(envelope).encode("utf-8"))

    def test_corrupted_payload_fails_checksum(self):
        envelope = json.loads(self._artifact().decode("utf-8"))
        envelope["payload"]["pipeline"] = "tampered"
        with pytest.raises(ArtifactError, match="checksum"):
            deserialize_compiled(json.dumps(envelope).encode("utf-8"))

    def test_version_mismatch(self):
        def bump(payload):
            payload["version"] = ARTIFACT_VERSION + 1

        with pytest.raises(ArtifactError, match="version"):
            deserialize_compiled(_tampered(self._artifact(), bump))

    def test_stale_memory_plan_rejected(self):
        data = self._artifact()
        payload = json.loads(data.decode("utf-8"))["payload"]
        if payload["memplan"] is None:
            pytest.skip("pipeline records no memory plan")

        def skew(payload):
            payload["memplan"]["slots"][0]["occupants"] \
                .append("%phantom")
            payload["memplan"]["summary"] = "tampered"

        with pytest.raises(ArtifactError, match="memory plan"):
            deserialize_compiled(_tampered(data, skew))

    def test_kernel_digest_mismatch_rejected(self):
        data = self._artifact()
        payload = json.loads(data.decode("utf-8"))["payload"]
        if not payload["kernels"]:
            pytest.skip("graph has no kernel-bearing nodes")

        def skew(payload):
            payload["kernels"][0]["source_sha256"] = "0" * 64

        with pytest.raises(ArtifactError, match="kernel source"):
            deserialize_compiled(_tampered(data, skew))


class TestArtifactStore:
    def test_put_load_round_trip(self, tmp_path):
        wl, compiled, key, _ = _fresh("attention", "tensorssa")
        store = ArtifactStore(str(tmp_path))
        digest = store.put(key, compiled)
        assert store.put(key, compiled) == digest  # idempotent
        assert len(store) == 1
        assert store.keys() == [key]
        restored = store.load(key)
        assert restored is not None and restored.key == key
        assert store.load(("tensorssa", "lstm", ())) is None
        assert store.puts == 2 and store.loads == 1

    def test_corrupt_object_is_a_typed_error(self, tmp_path):
        _, compiled, key, _ = _fresh("attention", "tensorssa")
        store = ArtifactStore(str(tmp_path))
        digest = store.put(key, compiled)
        obj = os.path.join(str(tmp_path), "objects", digest)
        with open(obj, "wb") as fh:
            fh.write(b"garbage")
        with pytest.raises(ArtifactError):
            store.load(key)
        assert store.errors == 1

    def test_warm_start_pays_zero_compiles(self, tmp_path):
        wl, compiled, key, args = _fresh("attention", "tensorssa")
        store = ArtifactStore(str(tmp_path))
        store.put(key, compiled)
        cache = CompileCache()
        assert store.warm_start(cache) == 1
        hit_compiled, hit = cache.get_or_compile(
            key, lambda: pytest.fail("warm cache must not compile"))
        assert hit
        snap = cache.snapshot()
        assert snap.misses == 0 and snap.guard_misses == 0
        _assert_same_outputs(hit_compiled.fn(*args), compiled.fn(*args))

    def test_concurrent_store_handles_do_not_lose_puts(self, tmp_path):
        """Regression: each compile key owns its own index record, so
        two store handles (two worker processes in production) putting
        distinct keys concurrently can never lose each other's entries
        the way a monolithic read-modify-write index file did."""
        wl = get_workload("attention")
        pipe = get_pipeline("tensorssa")
        pairs = []
        for seq_len in (8, 12, 16, 20, 24, 28):
            args = wl.make_inputs(batch_size=1, seq_len=seq_len, seed=0)
            pairs.append((compile_key(pipe, wl, args),
                          pipe.compile(wl.model_fn, example_args=args)))
        stores = [ArtifactStore(str(tmp_path)) for _ in range(2)]
        threads = [threading.Thread(
            target=lambda i=i, k=k, c=c: stores[i % 2].put(k, c))
            for i, (k, c) in enumerate(pairs)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        merged = ArtifactStore(str(tmp_path))
        assert sorted(merged.keys()) == sorted(k for k, _ in pairs)
        cache = CompileCache()
        assert merged.warm_start(cache) == len(pairs)
