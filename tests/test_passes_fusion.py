"""Vertical fusion: group formation rules and execution equivalence."""

import numpy as np

import repro.runtime as rt
from repro.backend import run_graph
from repro.frontend import script
from repro.ir import clone_graph, verify
from repro.passes import FuserConfig, FuserConfig as FC, fuse
from repro.tensorssa import convert_to_tensorssa
from repro.passes import dce


def scripted(fn):
    return clone_graph(script(fn).graph)


def elementwise_chain(x):
    return ((x * 2.0 + 1.0).sigmoid() - 0.5).relu()


def chain_with_matmul(x, w):
    a = x * 2.0 + 1.0
    b = a @ w
    return (b - 0.5).relu()


def mutation_between(x):
    a = x * 2.0
    x.add_(1.0)       # barrier: x's storage changes
    b = x * 3.0       # must NOT fuse with `a`'s group
    return a + b


def views_in_chain(x):
    return x.select(0, 0) * 2.0 + x.select(0, 1)


class TestGroupFormation:
    def test_elementwise_chain_fuses_to_one_group(self):
        g = scripted(elementwise_chain)
        n = fuse(g, FuserConfig(name="t"))
        assert n == 1
        group = g.nodes_of("prim::FusionGroup")[0]
        assert group.attrs["num_member_ops"] == 5
        verify(g)

    def test_matmul_splits_groups(self):
        g = scripted(chain_with_matmul)
        fuse(g, FuserConfig(name="t"))
        groups = g.nodes_of("prim::FusionGroup")
        assert len(groups) == 2
        assert not g.nodes_of("aten::matmul")[0].op == "prim::FusionGroup"

    def test_mutation_is_barrier(self):
        g = scripted(mutation_between)
        fuse(g, FuserConfig(name="t"))
        for group in g.nodes_of("prim::FusionGroup"):
            member_ops = [n.op for n in group.blocks[0].nodes]
            # `a`'s chain and `b`'s chain stay apart
            assert not ("aten::mul" in member_ops
                        and member_ops.count("aten::mul") > 1)

    def test_views_not_fused_without_flag(self):
        g = scripted(views_in_chain)
        fuse(g, FuserConfig(name="t", fuse_views=False))
        assert g.nodes_of("aten::select")  # still standalone

    def test_views_fused_with_flag_when_pure(self):
        g = scripted(views_in_chain)
        fuse(g, FuserConfig(name="t", fuse_views=True))
        top_selects = [n for n in g.block.nodes if n.op == "aten::select"]
        assert not top_selects  # absorbed into the group body

    def test_views_not_fused_in_mutating_block_even_with_flag(self):
        g = scripted(mutation_between)
        fuse(g, FuserConfig(name="t", fuse_views=True))
        # the block still mutates -> effective fuse_views must be off;
        # correctness double-checked by execution below
        x = rt.tensor([1.0, 2.0])
        expected = mutation_between(rt.tensor([1.0, 2.0]))
        got = run_graph(g, [x])[0]
        np.testing.assert_allclose(got.numpy(), expected.numpy())

    def test_min_group_size(self):
        def single(x):
            return x + 1.0
        g = scripted(single)
        assert fuse(g, FuserConfig(name="t")) == 0

    def test_max_group_size_splits(self):
        def long_chain(x):
            y = x
            y = y + 1.0
            y = y + 2.0
            y = y + 3.0
            y = y + 4.0
            y = y + 5.0
            y = y + 6.0
            return y
        g = scripted(long_chain)
        n = fuse(g, FuserConfig(name="t", max_group_size=2))
        assert n == 3

    def test_excluded_ops(self):
        g = scripted(elementwise_chain)
        fuse(g, FuserConfig(name="t", excluded_ops={"aten::sigmoid"}))
        assert g.nodes_of("aten::sigmoid")

    def test_group_of_only_views_not_materialized(self):
        def only_views(x):
            return x.select(0, 0).unsqueeze(0)
        g = scripted(only_views)
        assert fuse(g, FuserConfig(name="t", fuse_views=True)) == 0


class TestFusedExecution:
    def check(self, fn, *args, config=None):
        g = scripted(fn)
        fuse(g, config or FC(name="t"))
        verify(g)
        cloned = [a.clone() if isinstance(a, rt.Tensor) else a
                  for a in args]
        expected = fn(*cloned)
        got = run_graph(g, [a.clone() if isinstance(a, rt.Tensor) else a
                            for a in args])
        exp = list(expected) if isinstance(expected, tuple) else [expected]
        for gv, ev in zip(got, exp):
            np.testing.assert_allclose(gv.numpy(), ev.numpy(), rtol=1e-5)

    def test_chain(self):
        self.check(elementwise_chain, rt.randn((8,), seed=1))

    def test_with_matmul(self):
        self.check(chain_with_matmul, rt.randn((4, 4), seed=2),
                   rt.randn((4, 4), seed=3))

    def test_fused_group_is_single_launch(self):
        g = scripted(elementwise_chain)
        fuse(g, FC(name="t"))
        x = rt.randn((8,), seed=4)
        with rt.profile() as prof:
            run_graph(g, [x])
        assert prof.num_launches == 1
        assert prof.events[0].fused_ops == 5

    def test_post_conversion_fusion_handles_assigns(self):
        def f(x):
            y = x.clone()
            y[0] = y[1] * 2.0
            y[1] = y[0] + 1.0
            return y
        g = scripted(f)
        convert_to_tensorssa(g)
        dce(g)
        fuse(g, FC(name="t", fuse_views=True))
        verify(g)
        expected = f(rt.tensor([1.0, 2.0, 3.0]))
        got = run_graph(g, [rt.tensor([1.0, 2.0, 3.0])])[0]
        np.testing.assert_allclose(got.numpy(), expected.numpy())

    def test_group_output_does_not_alias_inputs(self):
        def f(x):
            return x.select(0, 0) * 1.0 + 0.0
        g = scripted(f)
        fuse(g, FC(name="t", fuse_views=True))
        x = rt.tensor([[1.0, 2.0], [3.0, 4.0]])
        out = run_graph(g, [x])[0]
        x.fill_(0.0)
        assert out.numpy().tolist() == [1.0, 2.0]
