"""Analytical cost model: device/host pricing."""

import pytest

from repro.eval.platforms import (CONSUMER, DATACENTER, PLATFORMS,
                                  get_platform)
from repro.runtime.profiler import KernelEvent, Profile, PythonEvent


def profile_with(events=(), python=()):
    prof = Profile()
    prof.events.extend(events)
    prof.python_events.extend(python)
    return prof


class TestDeviceModel:
    def test_launch_overhead_only(self):
        prof = profile_with([KernelEvent("k", bytes=0, flops=0)] * 10)
        assert DATACENTER.device_time_us(prof) == pytest.approx(
            10 * DATACENTER.launch_overhead_us)

    def test_memory_bound_kernel(self):
        nbytes = 936_000  # exactly 1us at 936 GB/s
        prof = profile_with([KernelEvent("k", bytes=nbytes, flops=1)])
        expected = DATACENTER.launch_overhead_us + 1.0
        assert DATACENTER.device_time_us(prof) == pytest.approx(expected)

    def test_compute_bound_kernel(self):
        flops = int(35_580 * 1e3 * 2)  # 2us of fp32 work
        prof = profile_with([KernelEvent("k", bytes=8, flops=flops)])
        expected = DATACENTER.launch_overhead_us + 2.0
        assert DATACENTER.device_time_us(prof) == pytest.approx(expected)

    def test_roofline_takes_max(self):
        ev = KernelEvent("k", bytes=936_000, flops=int(35_580e3 * 5))
        prof = profile_with([ev])
        assert DATACENTER.device_time_us(prof) == pytest.approx(
            DATACENTER.launch_overhead_us + 5.0)

    def test_device_penalty_scales_work_not_launches(self):
        ev = KernelEvent("k", bytes=936_000, flops=0)
        prof = profile_with([ev])
        base = DATACENTER.device_time_us(prof)
        penalized = DATACENTER.device_time_us(prof, device_penalty=2.0)
        assert penalized == pytest.approx(base + 1.0)

    def test_consumer_is_slower(self):
        ev = KernelEvent("k", bytes=10_000_000, flops=0)
        prof = profile_with([ev] * 4)
        assert CONSUMER.device_time_us(prof) > \
            DATACENTER.device_time_us(prof)


class TestHostModel:
    def test_eager_counts_launches(self):
        prof = profile_with([KernelEvent("k")] * 7)
        per = DATACENTER.host_costs_us["eager"]["per_launch"]
        assert DATACENTER.host_time_us(prof, "eager") == pytest.approx(
            7 * per)

    def test_eager_counts_scalar_syncs(self):
        prof = profile_with([KernelEvent("k")],
                            [PythonEvent("scalar_sync", 3)])
        costs = DATACENTER.host_costs_us["eager"]
        expected = costs["per_launch"] + 3 * costs["scalar_sync"]
        assert DATACENTER.host_time_us(prof, "eager") == pytest.approx(
            expected)

    def test_interpreter_profile(self):
        prof = profile_with([], [PythonEvent("interp_op", 10),
                                 PythonEvent("loop_iter", 4)])
        costs = DATACENTER.host_costs_us["interpreter"]
        expected = 10 * costs["interp_op"] + 4 * costs["loop_iter"]
        assert DATACENTER.host_time_us(prof, "interpreter") == \
            pytest.approx(expected)

    def test_python_profile_charges_graph_breaks(self):
        prof = profile_with([], [PythonEvent("loop_iter", 100)])
        interp = DATACENTER.host_time_us(prof, "interpreter")
        dynamo = DATACENTER.host_time_us(prof, "python")
        assert dynamo > interp * 3

    def test_unknown_event_kinds_cost_nothing(self):
        prof = profile_with([], [PythonEvent("mystery", 100)])
        assert DATACENTER.host_time_us(prof, "interpreter") == 0.0


class TestLatency:
    def test_latency_is_max_of_host_and_device(self):
        prof = profile_with([KernelEvent("k", bytes=936_000_00)],
                            [PythonEvent("interp_op", 1)])
        lat = DATACENTER.latency_us(prof, "interpreter")
        assert lat == pytest.approx(DATACENTER.device_time_us(prof))

    def test_registry(self):
        assert set(PLATFORMS) == {"consumer", "datacenter"}
        assert get_platform("consumer") is CONSUMER
        with pytest.raises(KeyError):
            get_platform("tpu")

    def test_paper_machine_labels(self):
        assert "1660" in CONSUMER.label
        assert "3090" in DATACENTER.label
