"""Measurement harness and figure helpers (fast paths only)."""

import pytest

from repro.eval.harness import (RunResult, clear_compile_cache,
                                run_workload, speedup_over_eager)
from repro.eval.report import format_table, geomean, summarize_speedups


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


class TestRunWorkload:
    def test_result_fields(self):
        res = run_workload("lstm", "tensorssa", seq_len=8)
        assert isinstance(res, RunResult)
        assert res.latency_us > 0
        assert res.kernel_launches > 0
        assert res.latency_ms == pytest.approx(res.latency_us / 1000)
        assert res.latency_us == pytest.approx(
            max(res.device_us, res.host_us))

    def test_check_mode_validates(self):
        run_workload("ssd", "tensorssa", batch_size=1, check=True)

    def test_deterministic_latency(self):
        a = run_workload("attention", "ts_nnc", seq_len=8)
        b = run_workload("attention", "ts_nnc", seq_len=8)
        assert a.latency_us == pytest.approx(b.latency_us)

    def test_platforms_give_different_latency(self):
        dc = run_workload("lstm", "eager", platform="datacenter",
                          seq_len=8)
        con = run_workload("lstm", "eager", platform="consumer",
                           seq_len=8)
        assert con.latency_us > dc.latency_us

    def test_speedup_over_eager(self):
        s = speedup_over_eager("ssd", "tensorssa", batch_size=1)
        assert s > 1.0

    def test_wallclock_measurement(self):
        res = run_workload("attention", "tensorssa", seq_len=8,
                           measure_wallclock=True, repeats=2)
        assert res.wallclock_s is not None and res.wallclock_s > 0

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError):
            run_workload("nope", "eager")
        with pytest.raises(KeyError):
            run_workload("lstm", "nope")


class TestCompileCache:
    def test_second_run_hits_cache(self):
        first = run_workload("lstm", "tensorssa", seq_len=8)
        assert not first.cache_hit
        second = run_workload("lstm", "tensorssa", seq_len=8)
        assert second.cache_hit
        assert second.cache_hits >= 1
        assert second.cache_misses >= 1

    def test_shape_change_recompiles(self):
        run_workload("lstm", "tensorssa", seq_len=8)
        other = run_workload("lstm", "tensorssa", seq_len=16)
        # different sequence length -> different shape signature -> miss
        assert not other.cache_hit

    def test_lru_eviction_is_bounded(self):
        from repro.eval.harness import _CompileCache
        cache = _CompileCache(capacity=3)
        for i in range(5):
            cache.put(("p", "w", i), object())
        assert len(cache) == 3
        assert ("p", "w", 0) not in cache
        assert ("p", "w", 4) in cache

    def test_lru_order_refreshes_on_hit(self):
        from repro.eval.harness import _CompileCache
        cache = _CompileCache(capacity=2)
        cache.put(("a",), object())
        cache.put(("b",), object())
        assert cache.get(("a",)) is not None  # refresh "a"
        cache.put(("c",), object())           # evicts "b", not "a"
        assert ("a",) in cache and ("b",) not in cache

    def test_counters_reset_with_cache(self):
        from repro.eval.harness import _compile_cache
        run_workload("lstm", "tensorssa", seq_len=8)
        assert _compile_cache.misses >= 1
        clear_compile_cache()
        assert _compile_cache.hits == 0 and _compile_cache.misses == 0


class TestReport:
    def test_format_table(self):
        text = format_table("T", ["a", "b"], [[1.0, 2.5], [3.0, 4.0]],
                            ["r1", "r2"])
        assert "T" in text and "2.50" in text and "r2" in text
        lines = text.splitlines()
        assert len(lines) == 5

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0]) == pytest.approx(2.0)

    def test_summarize(self):
        s = summarize_speedups({"a": 1.5, "b": 2.0})
        assert "2.00x" in s and "2 workloads" in s


class TestIntroEstimate:
    def test_imperative_fraction_band(self):
        from repro.eval.figures import intro_fraction
        data = intro_fraction(echo=False)
        assert set(data) == {"yolov3", "ssd", "yolact", "fcos", "nasrnn",
                             "lstm", "seq2seq", "attention"}
        # the paper's claim: the imperative part can reach ~90% of
        # end-to-end time; NLP loops should dominate their backbones
        assert max(data.values()) >= 0.85
        assert all(0.0 < v < 1.0 for v in data.values())
