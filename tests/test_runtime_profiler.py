"""Kernel-launch accounting (substrate for paper Figure 6)."""

import repro.runtime as rt
from repro.runtime import profiler


class TestLaunchCounting:
    def test_compute_op_is_one_launch(self):
        a = rt.ones((4,))
        with rt.profile() as p:
            rt.add(a, a)
        assert p.num_launches == 1
        assert p.events[0].op == "add"

    def test_view_ops_launch_nothing(self):
        a = rt.ones((4, 4))
        with rt.profile() as p:
            a.select(0, 1)
            a.slice(1, 0, 2)
            a.transpose(0, 1)
            a.reshape((16,))
            a.unsqueeze(0)
        assert p.num_launches == 0

    def test_inplace_op_is_one_launch(self):
        a = rt.ones((4,))
        with rt.profile() as p:
            a.add_(1)
        assert p.num_launches == 1

    def test_nested_profiles_both_record(self):
        a = rt.ones((4,))
        with rt.profile() as outer:
            rt.add(a, a)
            with rt.profile() as inner:
                rt.mul(a, a)
        assert outer.num_launches == 2
        assert inner.num_launches == 1

    def test_not_profiling_records_nothing(self):
        a = rt.ones((4,))
        rt.add(a, a)
        assert profiler.current_profile() is None

    def test_bytes_and_flops_accounting(self):
        a = rt.ones((100,))
        with rt.profile() as p:
            rt.add(a, a)
        ev = p.events[0]
        assert ev.bytes == 3 * 100 * 4  # two inputs + one output, fp32
        assert ev.flops == 100

    def test_matmul_flops(self):
        a, b = rt.ones((8, 16)), rt.ones((16, 4))
        with rt.profile() as p:
            rt.matmul(a, b)
        assert p.events[0].flops == 2 * 8 * 16 * 4

    def test_python_events(self):
        with rt.profile() as p:
            rt.record_python("graph_break")
            rt.record_python("graph_break", count=3)
        assert p.num_python_steps == 4

    def test_fused_event_aggregation(self):
        with rt.profile() as p:
            rt.record_launch("fused_kernel", nbytes=1000, flops=500,
                             fused_ops=7)
        assert p.num_launches == 1
        assert p.events[0].fused_ops == 7
        assert p.total_bytes == 1000

    def test_clear(self):
        with rt.profile() as p:
            rt.add(rt.ones((2,)), 1)
            p.clear()
            assert p.num_launches == 0
