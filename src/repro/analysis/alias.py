"""Alias analysis (paper §2.3).

Builds the alias graph of a program: points-to edges from derived values
to their bases, labelled with the three dependency kinds of the paper —

* **memory** — ``p`` is a view of ``q`` (``p = q[i]``); also the output
  of a mutating op, which is an *identity* view of its target;
* **control-flow** — ``p`` is a block argument of ``q`` or ``q`` is a
  block return of ``p`` (values threaded through ``prim::If``/``Loop``);
* **container** — a list/tuple ``q`` contains ``p``.

From this graph we extract the paper's ``T`` sets (Equation 1/2):
``T = (t, V, M)`` with origin tensor ``t``, its view closure ``V``
(memory edges only — must-alias), and the mutations ``M`` that hit any
member of ``V``.  ``TSet.eligible`` implements the "sub-graphs which
solely consist of memory dependencies" restriction, extended with the
safety rules documented in DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import networkx as nx

from ..ir import types as T
from ..ir.graph import Block, Graph, Node, Value
from ..ops.schema import OpKind

MEMORY = "memory"
CONTROL = "control"
CONTAINER = "container"

_CONTAINER_OPS = {"prim::ListConstruct", "prim::TupleConstruct",
                  "prim::ListIndex", "prim::TupleUnpack", "aten::append"}
_CONTROL_OPS = {"prim::If", "prim::Loop", "prim::FusionGroup",
                "prim::ParallelMap"}


@dataclass
class Mutation:
    """One Mutate statement: ``node`` writes through view ``target``."""

    node: Node
    target: Value  # the mutated view (node input 0)

    @property
    def source_inputs(self):
        return self.node.inputs[1:]


@dataclass
class TSet:
    """The paper's ``T := (t, V, M)``."""

    origin: Value
    views: List[Value] = field(default_factory=list)     # V (excludes t)
    mutations: List[Mutation] = field(default_factory=list)  # M
    eligible: bool = True
    reason: str = ""

    @property
    def values(self) -> List[Value]:
        return [self.origin] + self.views


def _is_tensor(value: Value) -> bool:
    return isinstance(value.type, (T.TensorType, T.AnyType))


class AliasGraph:
    """Alias information for one Graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.g = nx.MultiDiGraph()
        #: memory-dependency parent: value -> (base value, view node)
        self.view_base: Dict[int, Value] = {}
        self.view_node: Dict[int, Node] = {}
        #: value -> list of view nodes using it as a base
        self.view_children: Dict[int, List[Node]] = {}
        self.mutations: List[Mutation] = []
        self.by_id: Dict[int, Value] = {}
        #: (container value, element value) for list/tuple construction
        self.container_puts: List[tuple] = []
        #: (container value, extracted value) for indexing/unpacking
        self.container_gets: List[tuple] = []
        #: (new container alias, old container) e.g. append's return
        self.container_forwards: List[tuple] = []
        #: (derived, base) pairs for control-flow value threading
        self.control_links: List[tuple] = []
        self._build()

    # -- construction ------------------------------------------------------

    def _add_value(self, v: Value) -> None:
        if id(v) not in self.by_id:
            self.by_id[id(v)] = v
            self.g.add_node(id(v))

    def _edge(self, derived: Value, base: Value, kind: str) -> None:
        self._add_value(derived)
        self._add_value(base)
        self.g.add_edge(id(derived), id(base), kind=kind)
        if kind == CONTROL:
            self.control_links.append((derived, base))

    def _build(self) -> None:
        for p in self.graph.inputs:
            self._add_value(p)
        self._build_block(self.graph.block)

    def _build_block(self, block: Block) -> None:
        for node in block.nodes:
            self._build_node(node)

    def _build_node(self, node: Node) -> None:
        kind = node.kind
        for out in node.outputs:
            self._add_value(out)
        if kind is OpKind.VIEW:
            out, base = node.output(), node.input(0)
            self._edge(out, base, MEMORY)
            self.view_base[id(out)] = base
            self.view_node[id(out)] = node
            self.view_children.setdefault(id(base), []).append(node)
        elif kind is OpKind.MUTATING and node.op != "aten::append":
            target = node.input(0)
            self.mutations.append(Mutation(node, target))
            if node.outputs:
                # the in-place op returns its (mutated) target: an
                # identity view in the alias graph
                out = node.output()
                self._edge(out, target, MEMORY)
                self.view_base[id(out)] = target
                self.view_node[id(out)] = node
                self.view_children.setdefault(id(target), []).append(node)
        elif node.op in _CONTAINER_OPS:
            if node.op in ("prim::ListConstruct", "prim::TupleConstruct"):
                for v in node.inputs:
                    if _is_tensor(v):
                        self._edge(v, node.output(), CONTAINER)
                        self.container_puts.append((node.output(), v))
            elif node.op == "aten::append":
                self._edge(node.input(1), node.input(0), CONTAINER)
                self.container_puts.append((node.input(0), node.input(1)))
                if node.outputs:
                    self._edge(node.output(), node.input(0), CONTAINER)
                    self.container_forwards.append((node.output(),
                                                    node.input(0)))
            else:  # ListIndex / TupleUnpack: outputs may alias contents
                for out in node.outputs:
                    self._edge(out, node.input(0), CONTAINER)
                    self.container_gets.append((node.input(0), out))
        elif node.op in _CONTROL_OPS:
            # control-flow dependencies: node inputs <-> block params,
            # block returns <-> node outputs
            if node.op == "prim::Loop":
                carried_in = node.inputs[2:]
                body = node.blocks[0]
                for v, p in zip(carried_in, body.params[1:]):
                    if _is_tensor(p):
                        self._edge(p, v, CONTROL)
                for r, o in zip(body.returns[1:], node.outputs):
                    if _is_tensor(o):
                        self._edge(o, r, CONTROL)
                    # next-iteration aliasing: return feeds the param
                for r, p in zip(body.returns[1:], body.params[1:]):
                    if _is_tensor(p):
                        self._edge(p, r, CONTROL)
            else:
                for b in node.blocks:
                    for v, p in zip(node.inputs, b.params):
                        if _is_tensor(p):
                            self._edge(p, v, CONTROL)
                    for r, o in zip(b.returns, node.outputs):
                        if _is_tensor(o):
                            self._edge(o, r, CONTROL)
            for b in node.blocks:
                self._build_block(b)

    # -- queries -----------------------------------------------------------

    def view_root(self, value: Value) -> Value:
        """Follow memory edges to the origin tensor (must-alias chain)."""
        seen = set()
        current = value
        while id(current) in self.view_base:
            if id(current) in seen:  # defensive; view chains are acyclic
                break
            seen.add(id(current))
            current = self.view_base[id(current)]
        return current

    def view_closure(self, origin: Value) -> List[Value]:
        """All values reachable from ``origin`` through memory edges
        (the paper's V), in discovery order."""
        out: List[Value] = []
        stack = [origin]
        seen = {id(origin)}
        while stack:
            base = stack.pop()
            for node in self.view_children.get(id(base), []):
                for o in node.outputs:
                    if id(o) in self.view_base and \
                            self.view_base[id(o)] is base and \
                            id(o) not in seen:
                        seen.add(id(o))
                        out.append(o)
                        stack.append(o)
        return out

    def must_alias(self, a: Value, b: Value) -> bool:
        """True when a and b are provably views of the same origin."""
        return self.view_root(a) is self.view_root(b)

    def may_alias(self, a: Value, b: Value) -> bool:
        """True unless a and b are in disjoint alias components."""
        und = self.g.to_undirected(as_view=True)
        if id(a) not in und or id(b) not in und:
            return a is b
        return nx.has_path(und, id(a), id(b))

    # -- T-set extraction ----------------------------------------------------

    def _owns_storage(self, v: Value) -> bool:
        if v.is_param:
            return v.param_block.owning_node is None  # graph input
        assert v.node is not None
        return v.node.kind in (OpKind.PURE, OpKind.CONSTANT)

    def _component_of(self, v: Value) -> Set[int]:
        und = self.g.to_undirected(as_view=True)
        if id(v) not in und:
            return {id(v)}
        return set(nx.node_connected_component(und, id(v)))

    def storage_set(self, v: Value) -> Set[int]:
        """The set of storage-owning origins ``v`` may alias (a
        points-to fixpoint over view, control, and container flows)."""
        self._ensure_storage_sets()
        return self._ssets.get(id(v), set())

    def _ensure_storage_sets(self) -> None:
        if hasattr(self, "_ssets"):
            return
        sets: Dict[int, Set[int]] = {}
        contents: Dict[int, Set[int]] = {}

        def sset(v: Value) -> Set[int]:
            return sets.setdefault(id(v), set())

        def cset(v: Value) -> Set[int]:
            return contents.setdefault(id(v), set())

        for vid, v in self.by_id.items():
            if self._owns_storage(v):
                sets.setdefault(vid, set()).add(vid)

        changed = True
        while changed:
            changed = False

            def flow(dst: Set[int], src: Set[int]) -> None:
                nonlocal changed
                before = len(dst)
                dst |= src
                if len(dst) != before:
                    changed = True

            for derived_id, base in self.view_base.items():
                derived = self.by_id[derived_id]
                flow(sset(derived), sset(base))
            for derived, base in self.control_links:
                flow(sset(derived), sset(base))
                flow(cset(derived), cset(base))
            for container, elem in self.container_puts:
                flow(cset(container), sset(elem))
            for container, out in self.container_gets:
                flow(sset(out), cset(container))
            for alias, container in self.container_forwards:
                flow(cset(alias), cset(container))
                flow(cset(container), cset(alias))
        self._ssets = sets

    def tsets(self) -> List[TSet]:
        """Group mutations by origin tensor and judge eligibility."""
        by_origin: Dict[int, TSet] = {}
        order: List[int] = []
        for mut in self.mutations:
            origin = self.view_root(mut.target)
            key = id(origin)
            if key not in by_origin:
                by_origin[key] = TSet(origin=origin,
                                      views=self.view_closure(origin))
                order.append(key)
            by_origin[key].mutations.append(mut)
        tsets = [by_origin[k] for k in order]
        for tset in tsets:
            self._judge(tset)
        return tsets

    # -- program-order helpers (lazily built) ---------------------------

    def _ensure_positions(self) -> None:
        if hasattr(self, "_entry_index"):
            return
        # pre-order => a node's subtree occupies a contiguous range, so
        # both indices come out of a single recursive pass
        self._entry_index: Dict[int, int] = {}
        self._exit_index: Dict[int, int] = {}
        counter = 0

        def visit(node: Node) -> None:
            nonlocal counter
            self._entry_index[id(node)] = counter
            counter += 1
            for block in node.blocks:
                for inner in block.nodes:
                    visit(inner)
            self._exit_index[id(node)] = counter - 1

        for top in self.graph.block.nodes:
            visit(top)

    def _loop_ancestors(self, node: Node) -> Set[int]:
        out: Set[int] = set()
        block = node.owning_block
        while block is not None and block.owning_node is not None:
            owner = block.owning_node
            if owner.op == "prim::Loop":
                out.add(id(owner))
            block = owner.owning_block
        return out

    def _judge(self, tset: TSet) -> None:
        from ..ops import registry

        def fail(reason: str) -> None:
            tset.eligible = False
            tset.reason = reason

        o = tset.origin
        self._ensure_positions()
        if not self._owns_storage(o):
            if not self._is_safe_accumulator_param(tset):
                return fail(f"origin %{o.name} does not own storage "
                            f"(control-flow or container alias)")
        if not o.is_param and o.node is not None and \
                o.node.kind is OpKind.CONSTANT:
            return fail(f"origin %{o.name} is a constant (weights must "
                        f"not be functionalized away)")
        for mut in tset.mutations:
            schema = registry.get(mut.node.op)
            if mut.node.op != "aten::copy_" and \
                    schema.functional_op is None:
                return fail(f"mutation {mut.node.op} has no functional "
                            f"equivalent")
        for v in tset.views:
            vnode = self.view_node.get(id(v))
            if vnode is not None and vnode.kind is OpKind.VIEW and \
                    registry.get(vnode.op).assign_op is None:
                return fail(f"view op {vnode.op} has no Assign inverse "
                            f"(mutation through it is not invertible)")

        # Escape analysis with program positions: an alias escaping into
        # a container / control-flow slot / inner block return is safe
        # when the escape happens *after* the last mutation (renaming
        # rewrites the escaping use to the final pure version), and no
        # loop wraps both the escape and a mutation (iteration
        # wrap-around would interleave them).
        last_mut = max(self._entry_index[id(m.node)]
                       for m in tset.mutations)
        mut_loops: Set[int] = set()
        for m in tset.mutations:
            mut_loops |= self._loop_ancestors(m.node)

        def escape_is_unsafe(pos: int, user_node: Node) -> bool:
            if pos < last_mut:
                return True
            return bool(self._loop_ancestors(user_node) & mut_loops) \
                if user_node is not None else False

        for v in tset.values:
            for use in v.uses:
                if isinstance(use.user, Block):
                    owner = use.user.owning_node
                    if owner is None:
                        continue  # graph return: runs last, gets renamed
                    if escape_is_unsafe(self._exit_index[id(owner)],
                                        owner):
                        return fail(f"%{v.name} escapes through a block "
                                    f"return before the last mutation")
                elif use.user.op in _CONTROL_OPS:
                    if escape_is_unsafe(self._entry_index[id(use.user)],
                                        use.user):
                        return fail(f"%{v.name} is carried into control "
                                    f"flow interleaved with mutations")
                elif use.user.op in _CONTAINER_OPS:
                    if escape_is_unsafe(self._entry_index[id(use.user)],
                                        use.user):
                        return fail(f"%{v.name} escapes into a container "
                                    f"before the last mutation")
        # Cross-contamination: a mutation reached through a *different*
        # view-root but whose points-to set may include our origin's
        # storage would observe (or miss) our functionalized versions.
        for mut in self.mutations:
            root = self.view_root(mut.target)
            if root is not o and id(o) in self.storage_set(mut.target):
                return fail(f"storage may-aliased by mutation "
                            f"{mut.node.op} rooted at %{root.name}")

    def _is_safe_accumulator_param(self, tset: TSet) -> bool:
        """Whole-mutation of a loop-carried accumulator is
        functionalizable when the carried slot's initializer owns its
        storage and flows nowhere else (``acc += x`` inside a loop)."""
        o = tset.origin
        if not o.is_param:
            return False
        block = o.param_block
        node = block.owning_node
        if node is None or node.op != "prim::Loop":
            return False
        # every mutation must hit the param itself (whole mutation) and
        # every alias must be a mutate-output, not a true view
        for mut in tset.mutations:
            if mut.target is not o:
                return False
        for v in tset.views:
            vnode = self.view_node.get(id(v))
            if vnode is None or vnode.kind is OpKind.VIEW:
                return False
        try:
            k = block.params.index(o) - 1
        except ValueError:
            return False
        if k < 0:
            return False
        init = node.inputs[2 + k]
        if not self._owns_storage(init) or len(init.uses) != 1:
            return False
        return True
