"""Dominance on block-structured IR.

Because the IR is structured (no arbitrary CFG), dominance reduces to:
``A`` dominates ``B`` iff ``A``'s owning block is ``B``'s block or an
ancestor of it, and ``A`` precedes (in its own block) the node of that
block which (transitively) contains ``B``.

Used by the TensorSSA pass-down step: a view statement is re-accessed at
a mutation site only if it *dominates* the mutation (Algorithm 1 line 4).
"""

from __future__ import annotations

from typing import Optional

from ..ir.graph import Block, Node, Value


def enclosing_node_in_block(node: Node, block: Block) -> Optional[Node]:
    """The ancestor of ``node`` (possibly itself) that sits directly in
    ``block``, or None when ``node`` is not nested inside ``block``."""
    current: Optional[Node] = node
    while current is not None:
        owner = current.owning_block
        if owner is block:
            return current
        current = owner.owning_node if owner is not None else None
    return None


def node_dominates(a: Node, b: Node) -> bool:
    """Does statement ``a`` dominate statement ``b``?"""
    if a is b:
        return True
    anchor = enclosing_node_in_block(b, a.owning_block)
    if anchor is None:
        return False
    if anchor is a:
        # a *contains* b (b is inside one of a's blocks): a control node
        # does not dominate its own body in the statement-order sense we
        # need (its body runs as part of it).  Treat as containment.
        return True
    return a.is_before(anchor)


def value_dominates(value: Value, node: Node) -> bool:
    """Is ``value`` available (defined) at statement ``node``?"""
    if value.is_param:
        block = value.param_block
        current: Optional[Node] = node
        while current is not None:
            if current.owning_block is block:
                return True
            owner = current.owning_block
            current = owner.owning_node if owner is not None else None
        return False
    assert value.node is not None
    if value.node is node:
        return False
    return node_dominates(value.node, node)
