"""repro.analysis — alias analysis, dominance, liveness."""

from .alias import CONTAINER, CONTROL, MEMORY, AliasGraph, Mutation, TSet
from .dominance import node_dominates, value_dominates

__all__ = ["AliasGraph", "TSet", "Mutation", "MEMORY", "CONTROL",
           "CONTAINER", "node_dominates", "value_dominates"]
