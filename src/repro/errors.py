"""Typed error taxonomy for the whole stack.

Every failure the runtime, backend, or serving layer can surface is
classified here, because the degradation machinery needs to *decide*
things about exceptions: a circuit breaker must know whether a failure
indicts the pipeline (``CompileError`` — the same compile will fail
again) or may pass (``KernelError`` — a transient launch failure worth
one retry), and the retry loop must never burn attempts on a fault that
cannot succeed (``DeadlineExceeded``).

The contract is the ``retryable`` class attribute:

* retryable (``KernelError``, ``OOMError``) — transient device-side
  faults; retrying the same rung with backoff is reasonable.
* non-retryable (``CompileError``, ``DeadlineExceeded``,
  ``ServerShutdown``) — deterministic or terminal; the ladder should
  descend (or stop) immediately instead of retrying.

Unknown exceptions (plain ``ValueError`` from a bug, say) are treated
as non-retryable: retrying a bug wastes the deadline budget, while
descending a rung may route around the broken component.

Injected faults (see :mod:`repro.faults`) raise these same types with
``injected=True`` set, so chaos reports can separate injected faults
from organically-found bugs.
"""

from __future__ import annotations

from typing import Union

__all__ = [
    "ReproError", "CompileError", "GradError", "KernelError", "OOMError",
    "DeadlineExceeded", "ServerShutdown", "TornStateError",
    "WorkerCrashed", "ArtifactError",
    "classify", "is_retryable",
]


class ReproError(Exception):
    """Base of the typed taxonomy.

    ``retryable`` tells retry loops and circuit breakers whether the
    same operation may succeed if simply attempted again; ``injected``
    marks exceptions raised by the fault-injection layer.
    """

    retryable: bool = False
    injected: bool = False


class CompileError(ReproError):
    """A pipeline failed to produce a compiled artifact (scripting,
    pass, or fusion-kernel compilation).  Deterministic: retrying the
    same rung re-runs the same compiler on the same input, so the
    ladder should descend instead."""

    retryable = False


class GradError(CompileError):
    """Reverse-mode differentiation of a graph is impossible or
    unsupported: an op without a registered VJP on a demanded adjoint
    path, an op explicitly marked non-differentiable, or a graph shape
    the adjoint engine cannot invert (residual mutations, dynamic
    reduction dims).  A :class:`CompileError` because building the
    backward graph happens at compile time and is deterministic —
    retrying differentiates the same graph again."""

    retryable = False


class KernelError(ReproError):
    """A kernel launch failed at execution time.  Modeled as transient
    (a real device launch can fail on a recoverable fault), so one
    bounded retry of the same rung is allowed."""

    retryable = True


class OOMError(ReproError):
    """A device allocation could not be served (simulated OOM).
    Transient in a multi-tenant arena — other runs release buffers —
    so retryable; persistent OOM trips the breaker instead."""

    retryable = True


class DeadlineExceeded(ReproError):
    """The request's deadline expired.  Terminal by definition: no
    retry or fallback can un-spend the budget."""

    retryable = False


class ServerShutdown(ReproError, RuntimeError):
    """The server stopped before (or while) serving the request.

    Subclasses ``RuntimeError`` so pre-taxonomy callers that caught
    ``RuntimeError`` on submit-after-shutdown keep working.
    """

    retryable = False


class WorkerCrashed(ReproError):
    """A sharded-serving worker process died (or went silent past its
    heartbeat deadline) while holding the request.  Retryable by
    design: the request's inputs never left the router, so redelivery
    to a surviving or respawned worker can succeed — the at-most-once
    guard in :mod:`repro.shard.router` makes sure a request that
    already produced a result is answered from the result cache
    instead of being executed twice."""

    retryable = True


class ArtifactError(ReproError):
    """A serialized compile artifact (:mod:`repro.shard.artifact`)
    could not be produced or restored: unsupported pipeline, corrupted
    checksum, version mismatch, or a restored memory plan that
    disagrees with the recorded slot table.  Non-retryable — the bytes
    will not get better; the caller should fall back to a cold
    compile."""

    retryable = False


class TornStateError(ReproError):
    """A :class:`repro.faults.StateAuditor` found process state that did
    not return to its baseline after a failure (leaked profiler frame,
    pool bytes, or in-flight compile slot)."""

    retryable = False


def classify(exc: BaseException) -> Union[ReproError, BaseException]:
    """Map an arbitrary exception onto the taxonomy.

    Already-typed errors pass through; ``MemoryError`` becomes
    :class:`OOMError`; everything else is returned unchanged (and
    treated as non-retryable by :func:`is_retryable`).
    """
    if isinstance(exc, ReproError):
        return exc
    if isinstance(exc, MemoryError):
        oom = OOMError(str(exc) or "out of memory")
        oom.__cause__ = exc
        return oom
    return exc


def is_retryable(exc: BaseException) -> bool:
    """Whether a retry of the *same* rung may succeed."""
    exc = classify(exc)
    if isinstance(exc, ReproError):
        return exc.retryable
    return False
