"""Dtype definitions for the imperative tensor runtime.

A thin, explicit wrapper over numpy dtypes so the rest of the system
never spells raw numpy dtype objects.  Mirrors the small dtype set that
the paper's workloads need (float compute, integer indices, booleans).
"""

from __future__ import annotations

import numpy as np


class DType:
    """A scalar element type.

    Instances are singletons (``float32``, ``int64``, ...); identity
    comparison is safe.
    """

    _registry: dict = {}

    def __init__(self, name: str, np_dtype: np.dtype, is_float: bool,
                 is_int: bool, is_bool: bool) -> None:
        self.name = name
        self.np = np.dtype(np_dtype)
        self.is_float = is_float
        self.is_int = is_int
        self.is_bool = is_bool
        DType._registry[self.np] = self
        DType._registry[name] = self

    @property
    def itemsize(self) -> int:
        return self.np.itemsize

    def __repr__(self) -> str:
        return f"repro.{self.name}"

    @staticmethod
    def from_numpy(np_dtype) -> "DType":
        """Map a numpy dtype (or anything castable to one) to a DType."""
        key = np.dtype(np_dtype)
        try:
            return DType._registry[key]
        except KeyError:
            raise TypeError(f"unsupported numpy dtype: {np_dtype!r}") from None

    @staticmethod
    def of(value) -> "DType":
        """Infer the DType of a Python scalar."""
        if isinstance(value, bool):
            return bool_
        if isinstance(value, int):
            return int64
        if isinstance(value, float):
            return float32
        raise TypeError(f"cannot infer dtype of {value!r}")


float32 = DType("float32", np.float32, True, False, False)
float64 = DType("float64", np.float64, True, False, False)
int32 = DType("int32", np.int32, False, True, False)
int64 = DType("int64", np.int64, False, True, False)
bool_ = DType("bool", np.bool_, False, False, True)

ALL_DTYPES = (float32, float64, int32, int64, bool_)


def promote(a: DType, b: DType) -> DType:
    """Binary-op result dtype, following numpy promotion restricted to
    the supported set."""
    return DType.from_numpy(np.promote_types(a.np, b.np))
