"""Tensor storage: the unit of memory ownership and mutation tracking.

Every concrete tensor owns (or views) exactly one ``Storage``.  A view
tensor shares the storage of its base; an in-place operator mutates the
storage and bumps its version counter.  The version counter is what lets
tests and the functionalization pass *prove* that a converted (pure)
program no longer mutates anything.

This module also hosts :class:`MemoryPool`, the arena allocator the
static memory planner (``repro.memplan``) executes against.  The pool
models a no-shrink caching allocator with size-bucketed free lists:
buffers released at their planned death point become reusable, so fresh
arena growth — the ``peak_bytes`` every profile reports — stays close to
the true working set instead of the sum of all intermediates.  While a
pool is installed (see :func:`pool_scope`), every ``Storage`` creation
is routed through it; otherwise creations are charged to the profiler
as fresh, unreusable allocations (what an unplanned run pays).
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import profiler
from ..faults import SITE_ALLOC, maybe_inject

_storage_ids = itertools.count()

#: the innermost installed pool; Storage creations route through it.
#: Context-local so concurrent planned runs on different threads never
#: allocate through each other's pools (see runtime/profiler.py for the
#: same discipline on profile stacks).
_active_pool: ContextVar[Tuple["MemoryPool", ...]] = ContextVar(
    "repro_pool_stack", default=())


class Storage:
    """A flat, owning buffer of elements plus a mutation version counter."""

    __slots__ = ("buffer", "version", "id", "pooled")

    def __init__(self, buffer: np.ndarray) -> None:
        # The buffer is kept as the *owning* ndarray; views into it are
        # ordinary numpy views so aliasing semantics come for free.
        self.buffer = buffer
        self.version = 0
        self.id = next(_storage_ids)
        #: did a pool free-list block serve this storage's bytes?
        self.pooled = False
        pool = current_pool()
        if pool is not None:
            self.pooled = pool.allocate(self.nbytes)
        else:
            profiler.record_alloc(self.nbytes, reused=False)

    @property
    def nbytes(self) -> int:
        return self.buffer.nbytes

    def bump(self) -> None:
        """Record that the underlying data was mutated in place."""
        self.version += 1

    def __repr__(self) -> str:
        return f"Storage(id={self.id}, nbytes={self.nbytes}, version={self.version})"


def _bucket(nbytes: int) -> int:
    """Size class of a block: the next power of two (min 256 bytes)."""
    size = 256
    while size < nbytes:
        size <<= 1
    return size


class MemoryPool:
    """A greedy best-fit arena allocator with size-bucketed free lists.

    The pool is an *accounting* arena for the simulated device: blocks
    are sizes, not host buffers (numpy owns the real memory either way).
    ``allocate`` serves a request from the smallest free block that fits
    — searching the request's power-of-two bucket and a few larger ones
    — splitting off any usable remainder; a miss grows the arena.
    ``release`` returns a dead buffer's bytes to its bucket.  The high-
    water mark of arena growth is the run's planned ``peak_bytes``.
    """

    #: how many buckets above the request's own to search before giving
    #: up and growing the arena (bounds internal fragmentation at ~8x)
    BUCKET_SEARCH_SPAN = 3
    #: split remainders smaller than this stay attached to the block
    MIN_SPLIT_BYTES = 256

    def __init__(self) -> None:
        self._free: Dict[int, List[int]] = {}
        self.arena_bytes = 0       # total fresh growth (never shrinks)
        self.in_use_bytes = 0
        self.bytes_reused = 0
        self.bytes_released = 0
        self.num_allocs = 0
        self.num_reuses = 0
        self.num_releases = 0

    # -- allocation ------------------------------------------------------

    def allocate(self, nbytes: int) -> bool:
        """Serve one request; returns True when a free block was reused.

        The ``alloc`` fault checkpoint: an injected simulated OOM
        (:class:`~repro.errors.OOMError`) raises before any accounting
        mutates, so a failed allocation never tears ``in_use_bytes`` or
        the free lists.
        """
        nbytes = int(nbytes)
        if nbytes <= 0:
            return False
        maybe_inject(SITE_ALLOC, str(nbytes))
        block = self._take_block(nbytes)
        self.in_use_bytes += nbytes
        if block is not None:
            remainder = block - nbytes
            if remainder >= self.MIN_SPLIT_BYTES:
                self._free.setdefault(_bucket(remainder), []).append(remainder)
            self.bytes_reused += nbytes
            self.num_reuses += 1
            profiler.record_alloc(nbytes, reused=True)
            return True
        self.arena_bytes += nbytes
        self.num_allocs += 1
        profiler.record_alloc(nbytes, reused=False)
        return False

    def _take_block(self, nbytes: int) -> Optional[int]:
        """Best-fit: pop the smallest free block >= nbytes within the
        searched buckets, or None.  A block of size s lives in bucket
        ``_bucket(s)``, so the request's own bucket may hold both
        fitting and too-small blocks and must be scanned."""
        best_key = best_idx = best_size = None
        key = _bucket(nbytes)
        for _ in range(self.BUCKET_SEARCH_SPAN + 1):
            for idx, size in enumerate(self._free.get(key, ())):
                if size >= nbytes and (best_size is None or size < best_size):
                    best_key, best_idx, best_size = key, idx, size
            if best_size is not None:
                break  # larger buckets cannot hold a tighter fit
            key <<= 1
        if best_key is None:
            return None
        return self._free[best_key].pop(best_idx)

    def release(self, nbytes: int) -> None:
        """Return a dead buffer's bytes to the free lists."""
        nbytes = int(nbytes)
        if nbytes <= 0:
            return
        self._free.setdefault(_bucket(nbytes), []).append(nbytes)
        self.in_use_bytes = max(0, self.in_use_bytes - nbytes)
        self.bytes_released += nbytes
        self.num_releases += 1
        profiler.record_free(nbytes)

    # -- introspection ---------------------------------------------------

    @property
    def peak_bytes(self) -> int:
        """Arena high-water mark (the arena never shrinks)."""
        return self.arena_bytes

    @property
    def free_bytes(self) -> int:
        return sum(sum(blocks) for blocks in self._free.values())

    def stats(self) -> Dict[str, int]:
        """Counters for reports: arena growth, reuse, release traffic."""
        return {
            "peak_bytes": self.peak_bytes,
            "bytes_reused": self.bytes_reused,
            "bytes_released": self.bytes_released,
            "num_allocs": self.num_allocs,
            "num_reuses": self.num_reuses,
            "num_releases": self.num_releases,
        }

    def __repr__(self) -> str:
        return (f"MemoryPool(arena={self.arena_bytes}, "
                f"reused={self.bytes_reused}, free={self.free_bytes})")


def current_pool() -> Optional[MemoryPool]:
    """The innermost installed pool, or None outside any pool scope."""
    stack = _active_pool.get()
    return stack[-1] if stack else None


def active_pools() -> Tuple["MemoryPool", ...]:
    """The context's pool-scope stack, outermost first (read-only view;
    the :class:`repro.faults.StateAuditor` checks its depth returns to
    baseline after failures)."""
    return _active_pool.get()


@contextmanager
def pool_scope(pool: MemoryPool) -> Iterator[MemoryPool]:
    """Route every Storage allocation inside the body through ``pool``
    (context-local: only this thread/context sees the pool)."""
    token = _active_pool.set(_active_pool.get() + (pool,))
    try:
        yield pool
    finally:
        _active_pool.reset(token)
