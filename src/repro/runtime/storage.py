"""Tensor storage: the unit of memory ownership and mutation tracking.

Every concrete tensor owns (or views) exactly one ``Storage``.  A view
tensor shares the storage of its base; an in-place operator mutates the
storage and bumps its version counter.  The version counter is what lets
tests and the functionalization pass *prove* that a converted (pure)
program no longer mutates anything.
"""

from __future__ import annotations

import itertools

import numpy as np

_storage_ids = itertools.count()


class Storage:
    """A flat, owning buffer of elements plus a mutation version counter."""

    __slots__ = ("buffer", "version", "id")

    def __init__(self, buffer: np.ndarray) -> None:
        # The buffer is kept as the *owning* ndarray; views into it are
        # ordinary numpy views so aliasing semantics come for free.
        self.buffer = buffer
        self.version = 0
        self.id = next(_storage_ids)

    @property
    def nbytes(self) -> int:
        return self.buffer.nbytes

    def bump(self) -> None:
        """Record that the underlying data was mutated in place."""
        self.version += 1

    def __repr__(self) -> str:
        return f"Storage(id={self.id}, nbytes={self.nbytes}, version={self.version})"
