"""Pure elementwise compute operators.

Each function launches exactly one kernel (``record_op``) and returns a
fresh storage-owning tensor.  These are the "memory-intensive" operators
that dominate the paper's imperative post-processing workloads, and the
primary fusion candidates for the NNC-like backend.
"""

from __future__ import annotations

import numpy as np

from .tensor import Scalar, Tensor, as_tensor, record_op


def _coerce(a, b):
    ta, tb = as_tensor(a), as_tensor(b)
    return ta, tb


def _binary(op: str, fn, a, b) -> Tensor:
    ta, tb = _coerce(a, b)
    out_arr = fn(ta._array, tb._array)
    # Promote python-float results back to float32 when both inputs were
    # float32 (numpy promotes scalar ops conservatively).
    if out_arr.dtype == np.float64 and (ta.dtype.np != np.float64
                                        and tb.dtype.np != np.float64):
        out_arr = out_arr.astype(np.float32)
    out = Tensor.from_array(out_arr, copy=False)
    record_op(op, [ta, tb], [out])
    return out


def _unary(op: str, fn, a: Tensor, flops_per_elem: int = 1) -> Tensor:
    ta = as_tensor(a)
    out_arr = fn(ta._array)
    if out_arr.dtype == np.float64 and ta.dtype.np != np.float64:
        out_arr = out_arr.astype(np.float32)
    out = Tensor.from_array(out_arr, copy=False)
    record_op(op, [ta], [out], flops=out.numel * flops_per_elem)
    return out


# -- arithmetic -------------------------------------------------------------

def add(a, b) -> Tensor:
    """Elementwise broadcasted ``add`` (one kernel launch, fresh output)."""
    return _binary("add", np.add, a, b)


def sub(a, b) -> Tensor:
    """Elementwise broadcasted ``sub`` (one kernel launch, fresh output)."""
    return _binary("sub", np.subtract, a, b)


def mul(a, b) -> Tensor:
    """Elementwise broadcasted ``mul`` (one kernel launch, fresh output)."""
    return _binary("mul", np.multiply, a, b)


def div(a, b) -> Tensor:
    """Elementwise broadcasted ``div`` (one kernel launch, fresh output)."""
    return _binary("div", np.true_divide, a, b)


def pow(a, b) -> Tensor:  # noqa: A001 - mirrors aten::pow
    """Elementwise broadcasted ``pow`` (one kernel launch, fresh output)."""
    return _binary("pow", np.power, a, b)


def maximum(a, b) -> Tensor:
    """Elementwise broadcasted ``maximum`` (one kernel launch, fresh output)."""
    return _binary("maximum", np.maximum, a, b)


def minimum(a, b) -> Tensor:
    """Elementwise broadcasted ``minimum`` (one kernel launch, fresh output)."""
    return _binary("minimum", np.minimum, a, b)


def remainder(a, b) -> Tensor:
    """Elementwise broadcasted ``remainder`` (one kernel launch, fresh output)."""
    return _binary("remainder", np.remainder, a, b)


def neg(a) -> Tensor:
    """Elementwise ``neg`` (one kernel launch, fresh output)."""
    return _unary("neg", np.negative, a)


def abs(a) -> Tensor:  # noqa: A001 - mirrors aten::abs
    """Elementwise ``abs`` (one kernel launch, fresh output)."""
    return _unary("abs", np.abs, a)


def exp(a) -> Tensor:
    """Elementwise ``exp`` (one kernel launch, fresh output)."""
    return _unary("exp", np.exp, a, flops_per_elem=4)


def log(a) -> Tensor:
    """Elementwise ``log`` (one kernel launch, fresh output)."""
    return _unary("log", np.log, a, flops_per_elem=4)


def sqrt(a) -> Tensor:
    """Elementwise ``sqrt`` (one kernel launch, fresh output)."""
    return _unary("sqrt", np.sqrt, a, flops_per_elem=2)


def sigmoid(a) -> Tensor:
    """Elementwise ``sigmoid`` (one kernel launch, fresh output)."""
    return _unary("sigmoid", lambda x: 1.0 / (1.0 + np.exp(-x)), a,
                  flops_per_elem=6)


def tanh(a) -> Tensor:
    """Elementwise ``tanh`` (one kernel launch, fresh output)."""
    return _unary("tanh", np.tanh, a, flops_per_elem=6)


def relu(a) -> Tensor:
    """Elementwise ``relu`` (one kernel launch, fresh output)."""
    return _unary("relu", lambda x: np.maximum(x, 0), a)


def floor(a) -> Tensor:
    """Elementwise ``floor`` (one kernel launch, fresh output)."""
    return _unary("floor", np.floor, a)


def ceil(a) -> Tensor:
    """Elementwise ``ceil`` (one kernel launch, fresh output)."""
    return _unary("ceil", np.ceil, a)


def clamp(a, min_val: Scalar = None, max_val: Scalar = None) -> Tensor:
    """Elementwise ``clamp`` (one kernel launch, fresh output)."""
    ta = as_tensor(a)
    lo = -np.inf if min_val is None else min_val
    hi = np.inf if max_val is None else max_val
    out = Tensor.from_array(np.clip(ta._array, lo, hi), copy=False)
    record_op("clamp", [ta], [out], flops=out.numel * 2)
    return out


def where(cond, a, b) -> Tensor:
    """Elementwise broadcasted ``where`` (one kernel launch, fresh output)."""
    tc, ta, tb = as_tensor(cond), as_tensor(a), as_tensor(b)
    out_arr = np.where(tc._array, ta._array, tb._array)
    if out_arr.dtype == np.float64 and np.float64 not in (
            ta.dtype.np.type, tb.dtype.np.type):
        out_arr = out_arr.astype(np.float32)
    out = Tensor.from_array(out_arr, copy=False)
    record_op("where", [tc, ta, tb], [out])
    return out


def clone(a: Tensor) -> Tensor:
    """A fresh deep copy — one memory-bound kernel."""
    ta = as_tensor(a)
    out = Tensor.from_array(ta._array, copy=True)
    record_op("clone", [ta], [out], flops=0)
    return out


def to(a: Tensor, dtype) -> Tensor:
    """Dtype cast (``aten::to``)."""
    ta = as_tensor(a)
    out = Tensor.from_array(ta._array.astype(dtype.np), copy=False)
    record_op("to", [ta], [out], flops=0)
    return out


# -- comparison / logic -----------------------------------------------------

def gt(a, b) -> Tensor:
    """Elementwise broadcasted ``gt`` (one kernel launch, fresh output)."""
    return _binary("gt", np.greater, a, b)


def lt(a, b) -> Tensor:
    """Elementwise broadcasted ``lt`` (one kernel launch, fresh output)."""
    return _binary("lt", np.less, a, b)


def ge(a, b) -> Tensor:
    """Elementwise broadcasted ``ge`` (one kernel launch, fresh output)."""
    return _binary("ge", np.greater_equal, a, b)


def le(a, b) -> Tensor:
    """Elementwise broadcasted ``le`` (one kernel launch, fresh output)."""
    return _binary("le", np.less_equal, a, b)


def eq(a, b) -> Tensor:
    """Elementwise broadcasted ``eq`` (one kernel launch, fresh output)."""
    return _binary("eq", np.equal, a, b)


def ne(a, b) -> Tensor:
    """Elementwise broadcasted ``ne`` (one kernel launch, fresh output)."""
    return _binary("ne", np.not_equal, a, b)


def logical_and(a, b) -> Tensor:
    """Elementwise broadcasted ``logical_and`` (one kernel launch, fresh output)."""
    return _binary("logical_and", np.logical_and, a, b)


def logical_or(a, b) -> Tensor:
    """Elementwise broadcasted ``logical_or`` (one kernel launch, fresh output)."""
    return _binary("logical_or", np.logical_or, a, b)


def logical_not(a) -> Tensor:
    """Elementwise ``logical_not`` (one kernel launch, fresh output)."""
    return _unary("logical_not", np.logical_not, a)
