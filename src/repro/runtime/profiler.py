"""Kernel-launch accounting for the simulated device.

The paper's Figure 6 counts *kernel launches*; its cost model intuition
is that every device op pays a fixed launch overhead plus memory/compute
time.  This module records one ``KernelEvent`` per launch.  View ops are
metadata-only and record nothing (as on a real GPU); fused groups record
a single event that aggregates the bytes/flops of their member ops.

Usage::

    with profile() as prof:
        run_model()
    prof.num_launches, prof.total_bytes, prof.total_flops

Profiling state is **context-local** (:mod:`contextvars`): each thread
(and each ``contextvars.Context``) owns an independent profile stack,
so two ``run_workload`` calls on different threads never interleave
each other's launch/alloc events or corrupt ``peak_bytes``.  Within one
context the behavior is unchanged — profiles nest, and every active
profile on the stack records every event.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ..faults import SITE_KERNEL_LAUNCH, maybe_inject
from ..obs import trace as obs_trace

#: Launch kinds whose fault checkpoint already ran *before* compute in
#: ``backend/kernels.pre_launch`` — record_launch must not double-hit
#: the ``kernel_launch`` site for them.
_PRECHECKED_OPS = frozenset(
    {"fusion_group", "parallel_loop", "parallel_map"})


@dataclass
class KernelEvent:
    """One device kernel launch."""

    op: str
    bytes: int = 0
    flops: int = 0
    fused_ops: int = 1  # how many logical ops this launch covers


@dataclass
class PythonEvent:
    """One host-side interpreter step that a compiled pipeline could not
    remove (e.g. a TorchDynamo graph break, eager dispatch overhead)."""

    kind: str
    count: int = 1


@dataclass
class AllocEvent:
    """One device-buffer lifecycle event.

    ``kind`` is ``"alloc"`` (arena had to grow by ``nbytes``),
    ``"reuse"`` (request served from a memory pool's free list — the
    arena did not grow), or ``"free"`` (a buffer returned to a free
    list).  The accounting models a no-shrink caching allocator, as on
    a real GPU: ``peak_bytes`` is the arena high-water mark, which only
    fresh allocations raise.
    """

    kind: str
    nbytes: int = 0


@dataclass
class Profile:
    """Accumulated events for one profiled region."""

    events: List[KernelEvent] = field(default_factory=list)
    python_events: List[PythonEvent] = field(default_factory=list)
    alloc_events: List[AllocEvent] = field(default_factory=list)
    enabled: bool = True

    @property
    def num_launches(self) -> int:
        return len(self.events)

    @property
    def total_bytes(self) -> int:
        return sum(e.bytes for e in self.events)

    @property
    def total_flops(self) -> int:
        return sum(e.flops for e in self.events)

    @property
    def num_python_steps(self) -> int:
        return sum(e.count for e in self.python_events)

    # -- allocation accounting (memory planner observability) ----------

    @property
    def bytes_allocated(self) -> int:
        """Fresh arena growth: bytes no free-list block could serve."""
        return sum(e.nbytes for e in self.alloc_events if e.kind == "alloc")

    @property
    def bytes_reused(self) -> int:
        """Bytes served from a pool free list instead of fresh arena."""
        return sum(e.nbytes for e in self.alloc_events if e.kind == "reuse")

    @property
    def bytes_freed(self) -> int:
        """Bytes returned to a pool free list (reclaimable, not shrunk)."""
        return sum(e.nbytes for e in self.alloc_events if e.kind == "free")

    @property
    def peak_bytes(self) -> int:
        """Arena high-water mark: a no-shrink caching allocator grows
        only on fresh allocations, so the peak equals total fresh
        bytes; reused requests never raise it."""
        return self.bytes_allocated

    @property
    def num_allocs(self) -> int:
        return sum(1 for e in self.alloc_events if e.kind == "alloc")

    @property
    def num_reuses(self) -> int:
        return sum(1 for e in self.alloc_events if e.kind == "reuse")

    def clear(self) -> None:
        self.events.clear()
        self.python_events.clear()
        self.alloc_events.clear()


#: The active profile stack of the *current* context.  New threads see
#: the default (empty) stack, which is the isolation guarantee.
_stack_var: ContextVar[Tuple[Profile, ...]] = ContextVar(
    "repro_profile_stack", default=())


def active_profiles() -> Tuple[Profile, ...]:
    """The context's profile stack, outermost first (read-only view)."""
    return _stack_var.get()


def current_profile() -> Optional[Profile]:
    """The innermost active profile, or None when not profiling."""
    stack = _stack_var.get()
    return stack[-1] if stack else None


def push_profile(prof: Profile) -> None:
    """Explicit-stack API: make ``prof`` the innermost active profile
    of this context (pair with :func:`pop_profile`)."""
    _stack_var.set(_stack_var.get() + (prof,))


def pop_profile() -> Profile:
    """Explicit-stack API: deactivate and return the innermost profile."""
    stack = _stack_var.get()
    if not stack:
        raise RuntimeError("pop_profile: no active profile in this context")
    _stack_var.set(stack[:-1])
    return stack[-1]


@contextmanager
def profile() -> Iterator[Profile]:
    """Collect kernel launches executed inside the ``with`` body."""
    prof = Profile()
    token = _stack_var.set(_stack_var.get() + (prof,))
    try:
        yield prof
    finally:
        _stack_var.reset(token)


def record_launch(op: str, nbytes: int = 0, flops: int = 0,
                  fused_ops: int = 1) -> None:
    """Record one kernel launch on every active profile.

    Also the ``kernel_launch`` fault checkpoint for interpreted and
    eager launches: an injected :class:`~repro.errors.KernelError`
    raises *here* (before the event is recorded — a failed launch did
    not run), and injected latency sleeps here.  Compiled fused kernels
    check the same site pre-compute in ``backend/kernels.pre_launch``
    instead.
    """
    if op not in _PRECHECKED_OPS:
        maybe_inject(SITE_KERNEL_LAUNCH, op)
    for prof in _stack_var.get():
        prof.events.append(KernelEvent(op, int(nbytes), int(flops), fused_ops))
    if obs_trace.tracing_active():
        # bridge the KernelEvent into the active span timeline
        obs_trace.add_instant("kernel:" + op, bytes=int(nbytes),
                              flops=int(flops), fused_ops=fused_ops)


def record_python(kind: str, count: int = 1) -> None:
    """Record host-side interpreter work (dispatch / graph-break cost)."""
    for prof in _stack_var.get():
        prof.python_events.append(PythonEvent(kind, count))


def record_alloc(nbytes: int, reused: bool = False) -> None:
    """Record one buffer allocation on every active profile.

    ``reused=True`` means a memory pool served the request from its
    free list, so the arena (and thus ``peak_bytes``) did not grow.
    """
    kind = "reuse" if reused else "alloc"
    for prof in _stack_var.get():
        prof.alloc_events.append(AllocEvent(kind, int(nbytes)))
    if obs_trace.tracing_active():
        obs_trace.add_instant("alloc:" + kind, nbytes=int(nbytes))


def record_free(nbytes: int) -> None:
    """Record one buffer release into a pool free list."""
    for prof in _stack_var.get():
        prof.alloc_events.append(AllocEvent("free", int(nbytes)))
    if obs_trace.tracing_active():
        obs_trace.add_instant("alloc:free", nbytes=int(nbytes))
