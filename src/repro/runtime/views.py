"""View operators: aliasing, metadata-only tensor transformations.

These are the ``View`` operators of the paper's Definition 3.1: each
returns a tensor that *shares storage* with its base.  None of them
launches a kernel — on a real device a view is a stride/offset
recomputation on the host.

The signatures here double as the canonical "view rules" ``[.]`` that
the TensorSSA pass inverts into ``immut::*_assign`` operators, so every
op takes plain, explicit parameters (dim, start, end, ...).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from .tensor import Scalar, Tensor, as_tensor


def _norm_dim(dim: int, ndim: int, wiggle: int = 0) -> int:
    """Normalize a possibly-negative dim index."""
    limit = ndim + wiggle
    if dim < -limit or dim >= limit:
        raise IndexError(f"dim {dim} out of range for ndim {ndim}")
    return dim + limit if dim < 0 else dim


def alias(t: Tensor) -> Tensor:
    """The identity view: a new Tensor aliasing all of ``t``."""
    return t._view(t._array[...])


def select(t: Tensor, dim: int, index: int) -> Tensor:
    """``t[..., index, ...]`` at dimension ``dim`` (rank reduces by one)."""
    dim = _norm_dim(dim, t.ndim)
    index = int(index)
    size = t.shape[dim]
    if index < -size or index >= size:
        raise IndexError(f"select index {index} out of range for size {size}")
    if index < 0:
        index += size
    # Slice-then-squeeze keeps the result a genuine numpy *view* even
    # when it becomes 0-d (plain integer indexing would return a scalar).
    key = (slice(None),) * dim + (slice(index, index + 1),)
    return t._view(np.squeeze(t._array[key], axis=dim))


def slice_(t: Tensor, dim: int, start: int = 0, end: int = None,
           step: int = 1) -> Tensor:
    """``t[..., start:end:step, ...]`` at dimension ``dim``."""
    dim = _norm_dim(dim, t.ndim)
    if step <= 0:
        raise ValueError("slice step must be positive")
    key = (slice(None),) * dim + (slice(start, end, step),)
    return t._view(t._array[key])


def narrow(t: Tensor, dim: int, start: int, length: int) -> Tensor:
    """A length-``length`` window starting at ``start`` along ``dim``."""
    return slice_(t, dim, start, start + length, 1)


def reshape(t: Tensor, shape: Sequence[int]) -> Tensor:
    """Reshape; returns a view when the data layout allows, else a copy
    (PyTorch ``reshape`` semantics)."""
    new = t._array.reshape(tuple(shape))
    if new.base is not None or new is t._array:
        return t._view(new)
    # Layout prevented a view: materialize a copy (owns new storage).
    from .tensor import record_op
    out = Tensor.from_array(new, copy=True)
    record_op("reshape_copy", [t], [out])
    return out


def view(t: Tensor, shape: Sequence[int]) -> Tensor:
    """Reshape that *must* alias; raises when the layout cannot."""
    if not t.is_contiguous:
        raise RuntimeError("view() requires a contiguous tensor; "
                           "use reshape()")
    return t._view(t._array.reshape(tuple(shape)))


def permute(t: Tensor, dims: Sequence[int]) -> Tensor:
    """Reorder dimensions (aliasing view)."""
    dims = tuple(_norm_dim(d, t.ndim) for d in dims)
    if sorted(dims) != list(range(t.ndim)):
        raise ValueError(f"invalid permutation {dims} for ndim {t.ndim}")
    return t._view(t._array.transpose(dims))


def transpose(t: Tensor, dim0: int, dim1: int) -> Tensor:
    """Swap two dimensions (aliasing view)."""
    dims = list(range(t.ndim))
    d0, d1 = _norm_dim(dim0, t.ndim), _norm_dim(dim1, t.ndim)
    dims[d0], dims[d1] = dims[d1], dims[d0]
    return permute(t, dims)


def squeeze(t: Tensor, dim: int = None) -> Tensor:
    """Drop size-1 dimension(s) (aliasing view)."""
    if dim is None:
        return t._view(t._array.squeeze())
    dim = _norm_dim(dim, t.ndim)
    if t.shape[dim] != 1:
        return alias(t)
    return t._view(t._array.squeeze(dim))


def unsqueeze(t: Tensor, dim: int) -> Tensor:
    """Insert a size-1 dimension at ``dim`` (aliasing view)."""
    dim = _norm_dim(dim, t.ndim, wiggle=1)
    return t._view(np.expand_dims(t._array, dim))


def expand(t: Tensor, shape: Sequence[int]) -> Tensor:
    """Broadcast size-1 dims to ``shape`` without copying (stride-0 view)."""
    target = tuple(t.shape[i] if s == -1 else s
                   for i, s in enumerate(shape))
    return t._view(np.broadcast_to(t._array, target))


def flatten(t: Tensor, start_dim: int = 0, end_dim: int = -1) -> Tensor:
    """Merge a dim range into one dimension (view when layout allows)."""
    start = _norm_dim(start_dim, t.ndim)
    end = _norm_dim(end_dim, t.ndim)
    merged = 1
    for s in t.shape[start:end + 1]:
        merged *= s
    shape = t.shape[:start] + (merged,) + t.shape[end + 1:]
    return reshape(t, shape)


# ---------------------------------------------------------------------------
# Subscript sugar: __getitem__ / __setitem__
# ---------------------------------------------------------------------------

def getitem(t: Tensor, key) -> Tensor:
    """Python subscript load.

    Basic keys (ints, slices, tuples of them) produce *views*; advanced
    keys (tensor indices, boolean masks) produce copies, as in PyTorch.
    """
    if isinstance(key, Tensor):
        if key.dtype.is_bool:
            from .shape_ops import masked_select
            return masked_select(t, key)
        from .shape_ops import index_select
        return index_select(t, 0, key)
    if not isinstance(key, tuple):
        key = (key,)
    if any(k is Ellipsis for k in key):
        # Expand `...` into the right number of full slices up front.
        pos = key.index(Ellipsis)
        n_specified = sum(1 for k in key
                          if k is not Ellipsis and k is not None)
        fill = (slice(None),) * (t.ndim - n_specified)
        key = key[:pos] + fill + key[pos + 1:]
    out = t
    dim = 0
    for k in key:
        if isinstance(k, int):
            out = select(out, dim, k)
        elif isinstance(k, slice):
            if k.step is not None and k.step <= 0:
                raise ValueError("non-positive slice steps are unsupported")
            out = slice_(out, dim, k.start or 0, k.stop, k.step or 1)
            dim += 1
        elif k is None:
            out = unsqueeze(out, dim)
            dim += 1
        else:
            raise TypeError(f"unsupported subscript element: {k!r}")
    return out


def setitem(t: Tensor, key, value: Union[Tensor, Scalar]) -> None:
    """Python subscript store — a *mutation* of ``t`` through a view."""
    from . import inplace
    if isinstance(key, Tensor) and key.dtype.is_bool:
        if isinstance(value, Tensor):
            inplace.masked_scatter_(t, key, value)
        else:
            inplace.masked_fill_(t, key, value)
        return
    if isinstance(key, Tensor):
        inplace.index_put_(t, key, as_tensor(value))
        return
    target = getitem(t, key)
    if isinstance(value, Tensor):
        inplace.copy_(target, value)
    else:
        inplace.fill_(target, value)
