"""The imperative tensor: strided views, aliasing, and mutation.

This is the substrate the paper's problem statement lives on.  A
``Tensor`` wraps a numpy array that is a *view into its storage buffer*,
so view tensors share memory with their base exactly as in PyTorch:
mutating a view through an in-place op (``copy_``, ``add_`` ...)
implicitly mutates every alias (paper §2.1, Figure 1).

Design notes
------------
* ``_array`` is a numpy ndarray whose memory lives inside
  ``_storage.buffer``; numpy's strided views provide the sharing.
* ``_base`` is the tensor this one was *directly* derived from by a view
  op (None for storage-owning tensors).  The IR-level alias analysis does
  not use it — it exists for runtime introspection and tests.
* Every in-place op funnels through :func:`write_through`, which bumps
  the storage version counter.  Tests assert functionalized programs
  leave every input's version untouched.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from . import profiler
from .dtype import DType
from .storage import Storage

Scalar = Union[int, float, bool]


class Tensor:
    """A strided, possibly-aliasing, mutable tensor."""

    __slots__ = ("_array", "_storage", "_base")

    def __init__(self, array: np.ndarray, storage: Storage,
                 base: Optional["Tensor"] = None) -> None:
        self._array = array
        self._storage = storage
        self._base = base

    # -- construction ---------------------------------------------------

    @staticmethod
    def from_array(array: np.ndarray, copy: bool = True) -> "Tensor":
        """Create a storage-owning tensor from a numpy array."""
        arr = np.array(array, copy=True) if copy else np.asarray(array)
        return Tensor(arr, Storage(arr), base=None)

    def _view(self, np_view: np.ndarray) -> "Tensor":
        """Wrap a numpy view of this tensor's data as an aliasing Tensor."""
        if np_view.base is None and np_view is not self._array:
            raise AssertionError("_view called with a non-aliasing array")
        return Tensor(np_view, self._storage, base=self)

    # -- metadata -------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self._array.shape)

    @property
    def ndim(self) -> int:
        return self._array.ndim

    @property
    def dtype(self) -> DType:
        return DType.from_numpy(self._array.dtype)

    @property
    def numel(self) -> int:
        return int(self._array.size)

    @property
    def nbytes(self) -> int:
        return int(self._array.nbytes)

    @property
    def is_view(self) -> bool:
        return self._base is not None

    @property
    def base(self) -> Optional["Tensor"]:
        return self._base

    @property
    def storage(self) -> Storage:
        return self._storage

    @property
    def version(self) -> int:
        return self._storage.version

    @property
    def is_contiguous(self) -> bool:
        return bool(self._array.flags["C_CONTIGUOUS"])

    def shares_storage_with(self, other: "Tensor") -> bool:
        return self._storage is other._storage

    # -- data access ----------------------------------------------------

    def numpy(self) -> np.ndarray:
        """A defensive copy of the data as a numpy array."""
        return np.array(self._array, copy=True)

    def item(self) -> Scalar:
        if self.numel != 1:
            raise ValueError(f"item() on tensor with {self.numel} elements")
        # reading a scalar back stalls the host on the device queue
        profiler.record_python("scalar_sync")
        value = self._array.reshape(()).item()
        return value

    def tolist(self):
        return self._array.tolist()

    def __len__(self) -> int:
        if self.ndim == 0:
            raise TypeError("len() of a 0-d tensor")
        return self.shape[0]

    def __repr__(self) -> str:
        body = np.array2string(self._array, precision=4, threshold=20)
        return (f"Tensor(shape={self.shape}, dtype={self.dtype.name}, "
                f"view={self.is_view})\n{body}")

    def __bool__(self) -> bool:
        if self.numel != 1:
            raise ValueError("truth value of a multi-element tensor is "
                             "ambiguous")
        profiler.record_python("scalar_sync")
        return bool(self._array.reshape(()).item())

    def __float__(self) -> float:
        return float(self.item())

    def __int__(self) -> int:
        return int(self.item())

    # -- operator sugar (implementations live in sibling modules) -------

    def __add__(self, other):
        from . import elementwise
        return elementwise.add(self, other)

    def __radd__(self, other):
        from . import elementwise
        return elementwise.add(self, other)

    def __sub__(self, other):
        from . import elementwise
        return elementwise.sub(self, other)

    def __rsub__(self, other):
        from . import elementwise
        return elementwise.sub(as_tensor(other), self)

    def __mul__(self, other):
        from . import elementwise
        return elementwise.mul(self, other)

    def __rmul__(self, other):
        from . import elementwise
        return elementwise.mul(self, other)

    def __truediv__(self, other):
        from . import elementwise
        return elementwise.div(self, other)

    def __rtruediv__(self, other):
        from . import elementwise
        return elementwise.div(as_tensor(other), self)

    def __pow__(self, other):
        from . import elementwise
        return elementwise.pow(self, other)

    def __neg__(self):
        from . import elementwise
        return elementwise.neg(self)

    def __matmul__(self, other):
        from . import linalg
        return linalg.matmul(self, other)

    def __gt__(self, other):
        from . import elementwise
        return elementwise.gt(self, other)

    def __lt__(self, other):
        from . import elementwise
        return elementwise.lt(self, other)

    def __ge__(self, other):
        from . import elementwise
        return elementwise.ge(self, other)

    def __le__(self, other):
        from . import elementwise
        return elementwise.le(self, other)

    def __eq__(self, other):  # type: ignore[override]
        from . import elementwise
        return elementwise.eq(self, other)

    def __ne__(self, other):  # type: ignore[override]
        from . import elementwise
        return elementwise.ne(self, other)

    __hash__ = object.__hash__

    # Augmented assignment is *in-place* mutation, as in PyTorch.
    def __iadd__(self, other):
        from . import inplace
        return inplace.add_(self, other)

    def __isub__(self, other):
        from . import inplace
        return inplace.sub_(self, other)

    def __imul__(self, other):
        from . import inplace
        return inplace.mul_(self, other)

    def __itruediv__(self, other):
        from . import inplace
        return inplace.div_(self, other)

    # Subscripts: loads are views, stores are mutations.
    def __getitem__(self, key):
        from . import views
        return views.getitem(self, key)

    def __setitem__(self, key, value) -> None:
        from . import views
        views.setitem(self, key, value)


def as_tensor(value, dtype: Optional[DType] = None) -> Tensor:
    """Coerce a Python scalar / list / numpy array / Tensor to a Tensor."""
    if isinstance(value, Tensor):
        return value
    np_dtype = dtype.np if dtype is not None else None
    if isinstance(value, bool):
        arr = np.array(value, dtype=np_dtype or np.bool_)
    elif isinstance(value, int):
        arr = np.array(value, dtype=np_dtype or np.int64)
    elif isinstance(value, float):
        arr = np.array(value, dtype=np_dtype or np.float32)
    else:
        arr = np.array(value, dtype=np_dtype)
        if arr.dtype == np.float64 and dtype is None:
            arr = arr.astype(np.float32)
    return Tensor.from_array(arr, copy=False)


def write_through(target: Tensor, value: np.ndarray) -> None:
    """Mutate ``target``'s data in place (and thus every alias of it)."""
    target._array[...] = value
    target._storage.bump()


def record_op(op: str, inputs, outputs, flops: Optional[int] = None) -> None:
    """Record one kernel launch for a compute op.

    ``bytes`` is the total data moved (inputs read + outputs written);
    ``flops`` defaults to one op per output element.
    """
    nbytes = 0
    out_numel = 0
    for t in inputs:
        if isinstance(t, Tensor):
            nbytes += t.nbytes
    for t in outputs:
        if isinstance(t, Tensor):
            nbytes += t.nbytes
            out_numel += t.numel
    profiler.record_launch(op, nbytes, flops if flops is not None else out_numel)
