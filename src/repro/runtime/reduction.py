"""Reduction and normalization operators."""

from __future__ import annotations

import numpy as np

from .dtype import DType, int64
from .tensor import Tensor, as_tensor, record_op


def _reduce(op: str, fn, a: Tensor, dim=None, keepdim: bool = False,
            out_dtype: DType = None) -> Tensor:
    ta = as_tensor(a)
    axis = dim if dim is None else int(dim)
    out_arr = fn(ta._array, axis=axis, keepdims=keepdim if dim is not None
                 else False)
    out_arr = np.asarray(out_arr)
    if out_dtype is not None:
        out_arr = out_arr.astype(out_dtype.np)
    elif out_arr.dtype == np.float64 and ta.dtype.np != np.float64:
        out_arr = out_arr.astype(np.float32)
    out = Tensor.from_array(out_arr, copy=False)
    record_op(op, [ta], [out], flops=ta.numel)
    return out


def sum(a, dim=None, keepdim: bool = False) -> Tensor:  # noqa: A001
    """``sum`` reduction over all elements or one ``dim`` (one kernel launch)."""
    return _reduce("sum", np.sum, a, dim, keepdim)


def mean(a, dim=None, keepdim: bool = False) -> Tensor:
    """``mean`` reduction over all elements or one ``dim`` (one kernel launch)."""
    return _reduce("mean", np.mean, a, dim, keepdim)


def max(a, dim=None, keepdim: bool = False) -> Tensor:  # noqa: A001
    """``max`` reduction over all elements or one ``dim`` (one kernel launch)."""
    return _reduce("max", np.max, a, dim, keepdim)


def min(a, dim=None, keepdim: bool = False) -> Tensor:  # noqa: A001
    """``min`` reduction over all elements or one ``dim`` (one kernel launch)."""
    return _reduce("min", np.min, a, dim, keepdim)


def argmax(a, dim=None, keepdim: bool = False) -> Tensor:
    """``argmax`` reduction over all elements or one ``dim`` (one kernel launch)."""
    ta = as_tensor(a)
    axis = dim if dim is None else int(dim)
    out_arr = np.argmax(ta._array, axis=axis)
    if keepdim and dim is not None:
        out_arr = np.expand_dims(out_arr, axis)
    out = Tensor.from_array(np.asarray(out_arr, dtype=np.int64), copy=False)
    record_op("argmax", [ta], [out], flops=ta.numel)
    return out


def argmin(a, dim=None, keepdim: bool = False) -> Tensor:
    """``argmin`` reduction over all elements or one ``dim`` (one kernel launch)."""
    ta = as_tensor(a)
    axis = dim if dim is None else int(dim)
    out_arr = np.argmin(ta._array, axis=axis)
    if keepdim and dim is not None:
        out_arr = np.expand_dims(out_arr, axis)
    out = Tensor.from_array(np.asarray(out_arr, dtype=np.int64), copy=False)
    record_op("argmin", [ta], [out], flops=ta.numel)
    return out


def any_(a, dim=None, keepdim: bool = False) -> Tensor:
    """``any`` reduction over all elements or one ``dim`` (one kernel launch)."""
    return _reduce("any", np.any, a, dim, keepdim)


def all_(a, dim=None, keepdim: bool = False) -> Tensor:
    """``all`` reduction over all elements or one ``dim`` (one kernel launch)."""
    return _reduce("all", np.all, a, dim, keepdim)


def cumsum(a, dim: int) -> Tensor:
    """``cumsum`` reduction over all elements or one ``dim`` (one kernel launch)."""
    ta = as_tensor(a)
    out = Tensor.from_array(np.cumsum(ta._array, axis=int(dim)), copy=False)
    record_op("cumsum", [ta], [out], flops=ta.numel)
    return out


def softmax(a, dim: int) -> Tensor:
    """Numerically stable softmax along ``dim`` — one fused-style kernel
    in eager mode (mirrors a library softmax implementation)."""
    ta = as_tensor(a)
    x = ta._array
    shifted = x - np.max(x, axis=int(dim), keepdims=True)
    e = np.exp(shifted)
    out_arr = e / np.sum(e, axis=int(dim), keepdims=True)
    out = Tensor.from_array(out_arr.astype(ta.dtype.np), copy=False)
    record_op("softmax", [ta], [out], flops=ta.numel * 8)
    return out


def log_softmax(a, dim: int) -> Tensor:
    """``log_softmax`` reduction over all elements or one ``dim`` (one kernel launch)."""
    ta = as_tensor(a)
    x = ta._array
    shifted = x - np.max(x, axis=int(dim), keepdims=True)
    out_arr = shifted - np.log(np.sum(np.exp(shifted), axis=int(dim),
                                      keepdims=True))
    out = Tensor.from_array(out_arr.astype(ta.dtype.np), copy=False)
    record_op("log_softmax", [ta], [out], flops=ta.numel * 8)
    return out


_ = int64  # re-exported for convenience in callers
