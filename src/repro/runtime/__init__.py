"""repro.runtime — the imperative tensor substrate.

A deliberately PyTorch-flavoured tensor library over numpy with *real*
aliasing semantics: view ops share storage, in-place ops mutate through
views, and a profiler counts simulated kernel launches.  This is the
"eager mode" every compiler pipeline in the reproduction is compared
against, and the executor its interpreters bottom out in.
"""

from . import creation, elementwise, inplace, linalg, reduction, shape_ops, views
from .dtype import ALL_DTYPES, DType, bool_, float32, float64, int32, int64, promote
from .profiler import (AllocEvent, KernelEvent, Profile, PythonEvent,
                       current_profile, profile, record_alloc, record_free,
                       record_launch, record_python)
from .storage import MemoryPool, Storage, current_pool, pool_scope
from .tensor import Scalar, Tensor, as_tensor

# Creation
tensor = creation.tensor
from_numpy = creation.from_numpy
zeros = creation.zeros
ones = creation.ones
full = creation.full
empty = creation.empty
arange = creation.arange
zeros_like = creation.zeros_like
ones_like = creation.ones_like
full_like = creation.full_like
rand = creation.rand
randn = creation.randn

# Elementwise / shape / reduction / linalg functional API
add = elementwise.add
sub = elementwise.sub
mul = elementwise.mul
div = elementwise.div
neg = elementwise.neg
exp = elementwise.exp
log = elementwise.log
sqrt = elementwise.sqrt
sigmoid = elementwise.sigmoid
tanh = elementwise.tanh
relu = elementwise.relu
clamp = elementwise.clamp
where = elementwise.where
clone = elementwise.clone
maximum = elementwise.maximum
minimum = elementwise.minimum
floor = elementwise.floor
ceil = elementwise.ceil
logical_and = elementwise.logical_and
logical_or = elementwise.logical_or
logical_not = elementwise.logical_not

sum = reduction.sum  # noqa: A001
mean = reduction.mean
max = reduction.max  # noqa: A001
min = reduction.min  # noqa: A001
argmax = reduction.argmax
argmin = reduction.argmin
cumsum = reduction.cumsum
softmax = reduction.softmax
log_softmax = reduction.log_softmax

matmul = linalg.matmul
bmm = linalg.bmm
linear = linalg.linear

cat = shape_ops.cat
stack = shape_ops.stack
index_select = shape_ops.index_select
gather = shape_ops.gather
masked_select = shape_ops.masked_select
topk = shape_ops.topk
sort = shape_ops.sort
nonzero = shape_ops.nonzero
embedding = shape_ops.embedding
masked_fill = shape_ops.masked_fill
masked_scatter = shape_ops.masked_scatter
index_put = shape_ops.index_put
index_fill = shape_ops.index_fill
chunk = shape_ops.chunk


def _attach_tensor_methods() -> None:
    """Give Tensor the PyTorch-style method surface the workloads use."""
    method_table = {
        # views
        "select": views.select,
        "slice": views.slice_,
        "narrow": views.narrow,
        "reshape": views.reshape,
        "view": views.view,
        "permute": views.permute,
        "transpose": views.transpose,
        "squeeze": views.squeeze,
        "unsqueeze": views.unsqueeze,
        "expand": views.expand,
        "flatten": views.flatten,
        # pure compute
        "add": elementwise.add,
        "sub": elementwise.sub,
        "mul": elementwise.mul,
        "div": elementwise.div,
        "pow": elementwise.pow,
        "neg": elementwise.neg,
        "abs": elementwise.abs,
        "exp": elementwise.exp,
        "log": elementwise.log,
        "sqrt": elementwise.sqrt,
        "sigmoid": elementwise.sigmoid,
        "tanh": elementwise.tanh,
        "relu": elementwise.relu,
        "clamp": elementwise.clamp,
        "clone": elementwise.clone,
        "to": elementwise.to,
        "floor": elementwise.floor,
        "ceil": elementwise.ceil,
        "maximum": elementwise.maximum,
        "minimum": elementwise.minimum,
        # reductions
        "sum": reduction.sum,
        "mean": reduction.mean,
        "max": reduction.max,
        "min": reduction.min,
        "argmax": reduction.argmax,
        "argmin": reduction.argmin,
        "cumsum": reduction.cumsum,
        "softmax": reduction.softmax,
        # linalg / movement
        "matmul": linalg.matmul,
        "gather": shape_ops.gather,
        "index_select": shape_ops.index_select,
        "masked_select": shape_ops.masked_select,
        "masked_fill": shape_ops.masked_fill,
        "masked_scatter": shape_ops.masked_scatter,
        "index_put": shape_ops.index_put,
        "index_fill": shape_ops.index_fill,
        "topk": shape_ops.topk,
        "sort": shape_ops.sort,
        "chunk": shape_ops.chunk,
        # in-place
        "copy_": inplace.copy_,
        "fill_": inplace.fill_,
        "zero_": inplace.zero_,
        "add_": inplace.add_,
        "sub_": inplace.sub_,
        "mul_": inplace.mul_,
        "div_": inplace.div_,
        "pow_": inplace.pow_,
        "neg_": inplace.neg_,
        "exp_": inplace.exp_,
        "sqrt_": inplace.sqrt_,
        "sigmoid_": inplace.sigmoid_,
        "tanh_": inplace.tanh_,
        "relu_": inplace.relu_,
        "clamp_": inplace.clamp_,
        "maximum_": inplace.maximum_,
        "minimum_": inplace.minimum_,
        "masked_fill_": inplace.masked_fill_,
        "masked_scatter_": inplace.masked_scatter_,
        "index_put_": inplace.index_put_,
        "index_fill_": inplace.index_fill_,
    }
    for name, fn in method_table.items():
        setattr(Tensor, name, fn)


_attach_tensor_methods()

__all__ = [name for name in dir() if not name.startswith("_")]
