"""In-place (mutating) operators — the paper's ``Mutate`` set.

Every function here writes through its first argument's storage (and
therefore through *every alias* of it), bumps the storage version, and
returns the mutated tensor, mirroring PyTorch's ``op_`` convention.
These are exactly the operators TensorSSA rewrites into pure
``immut::*_assign`` forms.
"""

from __future__ import annotations

import numpy as np

from .tensor import Scalar, Tensor, as_tensor, record_op, write_through


def _inplace_binary(op: str, fn, target: Tensor, other) -> Tensor:
    t, o = as_tensor(target), as_tensor(other)
    write_through(t, fn(t._array, o._array).astype(t.dtype.np, copy=False))
    record_op(op, [t, o], [t])
    return t


def _inplace_unary(op: str, fn, target: Tensor,
                   flops_per_elem: int = 1) -> Tensor:
    t = as_tensor(target)
    write_through(t, fn(t._array).astype(t.dtype.np, copy=False))
    record_op(op, [t], [t], flops=t.numel * flops_per_elem)
    return t


def copy_(target: Tensor, src) -> Tensor:
    """``target.copy_(src)``: overwrite target's data with (broadcast)
    ``src``.  The canonical partial-mutation op of the paper (Fig. 1)."""
    t, s = as_tensor(target), as_tensor(src)
    write_through(t, np.broadcast_to(
        s._array.astype(t.dtype.np, copy=False), t.shape))
    record_op("copy_", [t, s], [t], flops=0)
    return t


def fill_(target: Tensor, value: Scalar) -> Tensor:
    """In-place ``fill``: writes through the target's storage (and all its aliases)."""
    t = as_tensor(target)
    write_through(t, np.full(t.shape, value, dtype=t.dtype.np))
    record_op("fill_", [t], [t], flops=0)
    return t


def zero_(target: Tensor) -> Tensor:
    """In-place ``zero``: writes through the target's storage (and all its aliases)."""
    return fill_(target, 0)


def add_(target: Tensor, other) -> Tensor:
    """In-place ``add``: writes through the target's storage (and all its aliases)."""
    return _inplace_binary("add_", np.add, target, other)


def sub_(target: Tensor, other) -> Tensor:
    """In-place ``sub``: writes through the target's storage (and all its aliases)."""
    return _inplace_binary("sub_", np.subtract, target, other)


def mul_(target: Tensor, other) -> Tensor:
    """In-place ``mul``: writes through the target's storage (and all its aliases)."""
    return _inplace_binary("mul_", np.multiply, target, other)


def div_(target: Tensor, other) -> Tensor:
    """In-place ``div``: writes through the target's storage (and all its aliases)."""
    return _inplace_binary("div_", np.true_divide, target, other)


def pow_(target: Tensor, other) -> Tensor:
    """In-place ``pow``: writes through the target's storage (and all its aliases)."""
    return _inplace_binary("pow_", np.power, target, other)


def maximum_(target: Tensor, other) -> Tensor:
    """In-place ``maximum``: writes through the target's storage (and all its aliases)."""
    return _inplace_binary("maximum_", np.maximum, target, other)


def minimum_(target: Tensor, other) -> Tensor:
    """In-place ``minimum``: writes through the target's storage (and all its aliases)."""
    return _inplace_binary("minimum_", np.minimum, target, other)


def neg_(target: Tensor) -> Tensor:
    """In-place ``neg``: writes through the target's storage (and all its aliases)."""
    return _inplace_unary("neg_", np.negative, target)


def exp_(target: Tensor) -> Tensor:
    """In-place ``exp``: writes through the target's storage (and all its aliases)."""
    return _inplace_unary("exp_", np.exp, target, flops_per_elem=4)


def sigmoid_(target: Tensor) -> Tensor:
    """In-place ``sigmoid``: writes through the target's storage (and all its aliases)."""
    return _inplace_unary("sigmoid_", lambda x: 1.0 / (1.0 + np.exp(-x)),
                          target, flops_per_elem=6)


def tanh_(target: Tensor) -> Tensor:
    """In-place ``tanh``: writes through the target's storage (and all its aliases)."""
    return _inplace_unary("tanh_", np.tanh, target, flops_per_elem=6)


def relu_(target: Tensor) -> Tensor:
    """In-place ``relu``: writes through the target's storage (and all its aliases)."""
    return _inplace_unary("relu_", lambda x: np.maximum(x, 0), target)


def sqrt_(target: Tensor) -> Tensor:
    """In-place ``sqrt``: writes through the target's storage (and all its aliases)."""
    return _inplace_unary("sqrt_", np.sqrt, target, flops_per_elem=2)


def clamp_(target: Tensor, min_val: Scalar = None,
           max_val: Scalar = None) -> Tensor:
    """In-place ``clamp``: writes through the target's storage (and all its aliases)."""
    t = as_tensor(target)
    lo = -np.inf if min_val is None else min_val
    hi = np.inf if max_val is None else max_val
    write_through(t, np.clip(t._array, lo, hi))
    record_op("clamp_", [t], [t], flops=t.numel * 2)
    return t


def masked_fill_(target: Tensor, mask: Tensor, value: Scalar) -> Tensor:
    """In-place ``masked_fill``: writes through the target's storage (and all its aliases)."""
    t, m = as_tensor(target), as_tensor(mask)
    write_through(t, np.where(np.broadcast_to(m._array, t.shape),
                              np.asarray(value, dtype=t.dtype.np),
                              t._array))
    record_op("masked_fill_", [t, m], [t])
    return t


def masked_scatter_(target: Tensor, mask: Tensor, src: Tensor) -> Tensor:
    """In-place ``masked_scatter``: writes through the target's storage (and all its aliases)."""
    t, m, s = as_tensor(target), as_tensor(mask), as_tensor(src)
    new = np.array(t._array, copy=True)
    bmask = np.broadcast_to(m._array, t.shape)
    n = int(bmask.sum())
    new[bmask] = s._array.reshape(-1)[:n].astype(t.dtype.np, copy=False)
    write_through(t, new)
    record_op("masked_scatter_", [t, m, s], [t])
    return t


def index_put_(target: Tensor, index: Tensor, src: Tensor) -> Tensor:
    """``target[index] = src`` with an integer index tensor on dim 0."""
    t, i, s = as_tensor(target), as_tensor(index), as_tensor(src)
    new = np.array(t._array, copy=True)
    new[i._array] = s._array.astype(t.dtype.np, copy=False)
    write_through(t, new)
    record_op("index_put_", [t, i, s], [t])
    return t


def index_fill_(target: Tensor, dim: int, index: Tensor,
                value: Scalar) -> Tensor:
    """In-place ``index_fill``: writes through the target's storage (and all its aliases)."""
    t, i = as_tensor(target), as_tensor(index)
    new = np.array(t._array, copy=True)
    key = (slice(None),) * int(dim) + (i._array,)
    new[key] = value
    write_through(t, new)
    record_op("index_fill_", [t, i], [t])
    return t
