"""Data-movement operators: concatenation, gather/scatter, sorting.

All of these launch one kernel and produce fresh storage (none alias
their inputs), which makes them fusion *barriers* in every pipeline but
still cheap, memory-bound work.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .tensor import Tensor, as_tensor, record_op


def cat(tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    """Concatenate tensors along ``dim`` (fresh storage)."""
    ts = [as_tensor(t) for t in tensors]
    out = Tensor.from_array(
        np.concatenate([t._array for t in ts], axis=int(dim)), copy=False)
    record_op("cat", ts, [out], flops=0)
    return out


def stack(tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    """Stack tensors along a new ``dim`` (fresh storage)."""
    ts = [as_tensor(t) for t in tensors]
    out = Tensor.from_array(
        np.stack([t._array for t in ts], axis=int(dim)), copy=False)
    record_op("stack", ts, [out], flops=0)
    return out


def index_select(t: Tensor, dim: int, index: Tensor) -> Tensor:
    """Select rows/slices along ``dim`` by an int index tensor (copy)."""
    tt, ti = as_tensor(t), as_tensor(index)
    out = Tensor.from_array(np.take(tt._array, ti._array, axis=int(dim)),
                            copy=False)
    record_op("index_select", [tt, ti], [out], flops=0)
    return out


def gather(t: Tensor, dim: int, index: Tensor) -> Tensor:
    """Gather elements along ``dim`` by an index tensor of equal rank."""
    tt, ti = as_tensor(t), as_tensor(index)
    out = Tensor.from_array(
        np.take_along_axis(tt._array, ti._array, axis=int(dim)), copy=False)
    record_op("gather", [tt, ti], [out], flops=0)
    return out


def masked_select(t: Tensor, mask: Tensor) -> Tensor:
    """1-D copy of elements where ``mask`` is true."""
    tt, tm = as_tensor(t), as_tensor(mask)
    out = Tensor.from_array(tt._array[np.broadcast_to(tm._array, tt.shape)],
                            copy=False)
    record_op("masked_select", [tt, tm], [out], flops=0)
    return out


def topk(t: Tensor, k: int, dim: int = -1, largest: bool = True):
    """Values and indices of the top-``k`` entries along ``dim``."""
    tt = as_tensor(t)
    axis = int(dim)
    arr = tt._array
    if largest:
        idx = np.argsort(-arr, axis=axis, kind="stable")
    else:
        idx = np.argsort(arr, axis=axis, kind="stable")
    idx = np.take(idx, np.arange(k), axis=axis)
    vals = np.take_along_axis(arr, idx, axis=axis)
    values = Tensor.from_array(vals, copy=False)
    indices = Tensor.from_array(idx.astype(np.int64), copy=False)
    record_op("topk", [tt], [values, indices],
              flops=tt.numel * max(1, int(np.log2(max(tt.numel, 2)))))
    return values, indices


def sort(t: Tensor, dim: int = -1, descending: bool = False):
    """Sorted values and indices along ``dim``."""
    tt = as_tensor(t)
    axis = int(dim)
    arr = tt._array
    idx = np.argsort(-arr if descending else arr, axis=axis, kind="stable")
    vals = np.take_along_axis(arr, idx, axis=axis)
    values = Tensor.from_array(vals, copy=False)
    indices = Tensor.from_array(idx.astype(np.int64), copy=False)
    record_op("sort", [tt], [values, indices],
              flops=tt.numel * max(1, int(np.log2(max(tt.numel, 2)))))
    return values, indices


def nonzero(t: Tensor) -> Tensor:
    """Indices of nonzero elements, shape ``(n, ndim)`` — dynamic shape."""
    tt = as_tensor(t)
    out = Tensor.from_array(
        np.stack(np.nonzero(tt._array), axis=-1).astype(np.int64)
        if tt._array.any() else np.zeros((0, max(tt.ndim, 1)), np.int64),
        copy=False)
    record_op("nonzero", [tt], [out], flops=tt.numel)
    return out


def embedding(weight: Tensor, index: Tensor) -> Tensor:
    """Row lookup (``aten::embedding``)."""
    return index_select(weight, 0, index)


def chunk(t: Tensor, chunks: int, dim: int = 0) -> List[Tensor]:
    """Split into equal views along ``dim`` (views, no kernels)."""
    from .views import narrow
    tt = as_tensor(t)
    size = tt.shape[int(dim)]
    if size % chunks != 0:
        raise ValueError(f"chunk: size {size} not divisible by {chunks}")
    step = size // chunks
    return [narrow(tt, int(dim), i * step, step) for i in range(chunks)]


# ---------------------------------------------------------------------------
# Pure counterparts of the indexed/masked mutation ops (used by the
# TensorSSA rewrite to materialize a mutation's value functionally).
# ---------------------------------------------------------------------------

def masked_fill(t: Tensor, mask: Tensor, value) -> Tensor:
    """Pure masked fill: where(mask, value, t)."""
    tt, tm = as_tensor(t), as_tensor(mask)
    out = Tensor.from_array(
        np.where(np.broadcast_to(tm._array, tt.shape),
                 np.asarray(value, dtype=tt.dtype.np), tt._array),
        copy=False)
    record_op("masked_fill", [tt, tm], [out])
    return out


def masked_scatter(t: Tensor, mask: Tensor, src: Tensor) -> Tensor:
    """Pure masked scatter: copy of ``t`` with masked slots taken from ``src``."""
    tt, tm, ts = as_tensor(t), as_tensor(mask), as_tensor(src)
    new = np.array(tt._array, copy=True)
    bmask = np.broadcast_to(tm._array, tt.shape)
    n = int(bmask.sum())
    new[bmask] = ts._array.reshape(-1)[:n].astype(tt.dtype.np, copy=False)
    out = Tensor.from_array(new, copy=False)
    record_op("masked_scatter", [tt, tm, ts], [out])
    return out


def index_put(t: Tensor, index: Tensor, src: Tensor) -> Tensor:
    """Pure indexed store on dim 0: copy of ``t`` with ``t[index] = src``."""
    tt, ti, ts = as_tensor(t), as_tensor(index), as_tensor(src)
    new = np.array(tt._array, copy=True)
    new[ti._array] = ts._array.astype(tt.dtype.np, copy=False)
    out = Tensor.from_array(new, copy=False)
    record_op("index_put", [tt, ti, ts], [out])
    return out


def index_fill(t: Tensor, dim: int, index: Tensor, value) -> Tensor:
    """Pure indexed fill along ``dim``."""
    tt, ti = as_tensor(t), as_tensor(index)
    new = np.array(tt._array, copy=True)
    key = (slice(None),) * int(dim) + (ti._array,)
    new[key] = value
    out = Tensor.from_array(new, copy=False)
    record_op("index_fill", [tt, ti], [out])
    return out


def unbroadcast(g: Tensor, template: Tensor) -> Tensor:
    """Reduce a broadcast gradient back to ``template``'s shape/dtype.

    The adjoint of numpy-style broadcasting: extra leading dims are
    summed away and stretched size-1 dims are summed with ``keepdims``,
    then the result is cast to ``template``'s dtype (the adjoint of an
    implicit up-cast is the matching down-cast).  Identity shapes pass
    through as a cheap copy-free cast.
    """
    gg, tt = as_tensor(g), as_tensor(template)
    arr = gg._array
    while arr.ndim > tt.ndim:
        arr = arr.sum(axis=0)
    for axis, size in enumerate(tt.shape):
        if arr.shape[axis] != size:
            arr = arr.sum(axis=axis, keepdims=True)
    arr = np.ascontiguousarray(arr.astype(tt.dtype.np, copy=False))
    out = Tensor.from_array(arr, copy=arr is gg._array)
    record_op("unbroadcast", [gg], [out])
    return out


def reshape_like(src: Tensor, template: Tensor) -> Tensor:
    """``src`` reshaped to ``template``'s shape (fresh storage).

    The adjoint of every metadata-only reshape-family op (reshape /
    view / squeeze / unsqueeze / flatten and their Assign duals): the
    gradient just flows back with the original geometry restored.
    """
    ss, tt = as_tensor(src), as_tensor(template)
    out = Tensor.from_array(ss._array.reshape(tt.shape), copy=True)
    record_op("reshape_like", [ss], [out])
    return out
