"""Tensor creation operators."""

from __future__ import annotations

import contextlib
import contextvars
from typing import Optional, Sequence

import numpy as np

from .dtype import DType, float32, int64
from .tensor import Scalar, Tensor, as_tensor, record_op

#: Active float32-promotion override (see :func:`promoting_f32_to`).
_f32_override: contextvars.ContextVar = contextvars.ContextVar(
    "repro_f32_override", default=None)


@contextlib.contextmanager
def promoting_f32_to(dtype: DType):
    """Scope inside which float32 *factory defaults* become ``dtype``.

    The numerical grad-check harness runs models in float64 to get the
    ~1e-6 finite-difference accuracy its tolerances demand, but model
    code allocates scratch buffers with the factory default
    (``rt.zeros(shape)`` == float32), which would silently truncate the
    promoted precision mid-model.  Inside this scope ``zeros`` / ``ones``
    / ``full`` / ``empty`` calls that would produce float32 produce
    ``dtype`` instead; explicit integer/bool dtypes are untouched.
    Context-local, so concurrent runs in other threads keep float32.
    """
    token = _f32_override.set(dtype)
    try:
        yield
    finally:
        _f32_override.reset(token)


def _factory_dtype(dtype: DType) -> DType:
    """Apply the active float32 promotion to a factory dtype."""
    override = _f32_override.get()
    if override is not None and dtype is float32:
        return override
    return dtype


def tensor(data, dtype: Optional[DType] = None) -> Tensor:
    """Build a tensor from (nested) Python data or a numpy array."""
    arr = np.array(data, dtype=dtype.np if dtype else None)
    if dtype is None and arr.dtype == np.float64:
        arr = arr.astype(np.float32)
    return Tensor.from_array(arr, copy=False)


def from_numpy(array: np.ndarray) -> Tensor:
    """Wrap a numpy array (copies, to guarantee storage ownership)."""
    return Tensor.from_array(array, copy=True)


def zeros(shape: Sequence[int], dtype: DType = float32) -> Tensor:
    """Create a fresh ``zeros`` tensor (one allocation kernel)."""
    dtype = _factory_dtype(dtype)
    out = Tensor.from_array(np.zeros(tuple(shape), dtype.np), copy=False)
    record_op("zeros", [], [out], flops=0)
    return out


def ones(shape: Sequence[int], dtype: DType = float32) -> Tensor:
    """Create a fresh ``ones`` tensor (one allocation kernel)."""
    dtype = _factory_dtype(dtype)
    out = Tensor.from_array(np.ones(tuple(shape), dtype.np), copy=False)
    record_op("ones", [], [out], flops=0)
    return out


def full(shape: Sequence[int], value: Scalar,
         dtype: DType = float32) -> Tensor:
    """Create a fresh ``full`` tensor (one allocation kernel)."""
    dtype = _factory_dtype(dtype)
    out = Tensor.from_array(np.full(tuple(shape), value, dtype.np),
                            copy=False)
    record_op("full", [], [out], flops=0)
    return out


def empty(shape: Sequence[int], dtype: DType = float32) -> Tensor:
    """Uninitialized storage — deterministically zeroed here so tests
    never depend on garbage memory."""
    dtype = _factory_dtype(dtype)
    out = Tensor.from_array(np.zeros(tuple(shape), dtype.np), copy=False)
    record_op("empty", [], [out], flops=0)
    return out


def arange(start, end=None, step=1, dtype: DType = int64) -> Tensor:
    """Create a fresh ``arange`` tensor (one allocation kernel)."""
    if end is None:
        start, end = 0, start
    out = Tensor.from_array(np.arange(start, end, step, dtype=dtype.np),
                            copy=False)
    record_op("arange", [], [out], flops=0)
    return out


def zeros_like(t: Tensor) -> Tensor:
    """Create a fresh ``zeros_like`` tensor (one allocation kernel).

    ``*_like`` factories follow their template's dtype *exactly* —
    the :func:`promoting_f32_to` override never applies (promotion is
    decided where the template was first allocated).
    """
    t = as_tensor(t)
    out = Tensor.from_array(np.zeros(t.shape, t.dtype.np), copy=False)
    record_op("zeros", [], [out], flops=0)
    return out


def ones_like(t: Tensor) -> Tensor:
    """Create a fresh ``ones_like`` tensor (dtype follows the template
    exactly; one allocation kernel)."""
    t = as_tensor(t)
    out = Tensor.from_array(np.ones(t.shape, t.dtype.np), copy=False)
    record_op("ones", [], [out], flops=0)
    return out


def full_like(t: Tensor, value: Scalar) -> Tensor:
    """Create a fresh ``full_like`` tensor (dtype follows the template
    exactly; one allocation kernel)."""
    t = as_tensor(t)
    out = Tensor.from_array(np.full(t.shape, value, t.dtype.np),
                            copy=False)
    record_op("full", [], [out], flops=0)
    return out


def rand(shape: Sequence[int], seed: Optional[int] = None,
         dtype: DType = float32) -> Tensor:
    """Uniform [0, 1) — seeded explicitly (no hidden global RNG state in
    compiled regions; workloads pre-generate inputs with this)."""
    rng = np.random.default_rng(seed)
    out = Tensor.from_array(rng.random(tuple(shape)).astype(dtype.np),
                            copy=False)
    record_op("rand", [], [out], flops=0)
    return out


def randn(shape: Sequence[int], seed: Optional[int] = None,
          dtype: DType = float32) -> Tensor:
    """Create a fresh ``randn`` tensor (one allocation kernel)."""
    rng = np.random.default_rng(seed)
    out = Tensor.from_array(
        rng.standard_normal(tuple(shape)).astype(dtype.np), copy=False)
    record_op("randn", [], [out], flops=0)
    return out


def stash_init(template, n) -> Tensor:
    """A zeroed ``(n, *template.shape)`` stash buffer.

    The gradient pass's scan-style Loop adjoint records each
    iteration's entering carried state into one of these (row ``i`` =
    iteration ``i``), sized by the loop's *measured* trip count ``n``
    so even ``while``-style loops (``max_trip`` = 2**31-1) stash
    exactly what ran.  Scalar carried values stash as 0-d rows; Python
    floats stash at float64 so replay-from-stash never truncates the
    precision a float64 grad-check run depends on.
    """
    if isinstance(template, float):
        out = Tensor.from_array(np.zeros((int(n),), np.float64), copy=False)
        record_op("stash_init", [], [out], flops=0)
        return out
    tt = as_tensor(template)
    out = Tensor.from_array(
        np.zeros((int(n),) + tt.shape, tt.dtype.np), copy=False)
    record_op("stash_init", [], [out], flops=0)
    return out
