"""Tensor creation operators."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .dtype import DType, float32, int64
from .tensor import Scalar, Tensor, record_op


def tensor(data, dtype: Optional[DType] = None) -> Tensor:
    """Build a tensor from (nested) Python data or a numpy array."""
    arr = np.array(data, dtype=dtype.np if dtype else None)
    if dtype is None and arr.dtype == np.float64:
        arr = arr.astype(np.float32)
    return Tensor.from_array(arr, copy=False)


def from_numpy(array: np.ndarray) -> Tensor:
    """Wrap a numpy array (copies, to guarantee storage ownership)."""
    return Tensor.from_array(array, copy=True)


def zeros(shape: Sequence[int], dtype: DType = float32) -> Tensor:
    """Create a fresh ``zeros`` tensor (one allocation kernel)."""
    out = Tensor.from_array(np.zeros(tuple(shape), dtype.np), copy=False)
    record_op("zeros", [], [out], flops=0)
    return out


def ones(shape: Sequence[int], dtype: DType = float32) -> Tensor:
    """Create a fresh ``ones`` tensor (one allocation kernel)."""
    out = Tensor.from_array(np.ones(tuple(shape), dtype.np), copy=False)
    record_op("ones", [], [out], flops=0)
    return out


def full(shape: Sequence[int], value: Scalar,
         dtype: DType = float32) -> Tensor:
    """Create a fresh ``full`` tensor (one allocation kernel)."""
    out = Tensor.from_array(np.full(tuple(shape), value, dtype.np),
                            copy=False)
    record_op("full", [], [out], flops=0)
    return out


def empty(shape: Sequence[int], dtype: DType = float32) -> Tensor:
    """Uninitialized storage — deterministically zeroed here so tests
    never depend on garbage memory."""
    out = Tensor.from_array(np.zeros(tuple(shape), dtype.np), copy=False)
    record_op("empty", [], [out], flops=0)
    return out


def arange(start, end=None, step=1, dtype: DType = int64) -> Tensor:
    """Create a fresh ``arange`` tensor (one allocation kernel)."""
    if end is None:
        start, end = 0, start
    out = Tensor.from_array(np.arange(start, end, step, dtype=dtype.np),
                            copy=False)
    record_op("arange", [], [out], flops=0)
    return out


def zeros_like(t: Tensor) -> Tensor:
    """Create a fresh ``zeros_like`` tensor (one allocation kernel)."""
    return zeros(t.shape, t.dtype)


def ones_like(t: Tensor) -> Tensor:
    """Create a fresh ``ones_like`` tensor (one allocation kernel)."""
    return ones(t.shape, t.dtype)


def full_like(t: Tensor, value: Scalar) -> Tensor:
    """Create a fresh ``full_like`` tensor (one allocation kernel)."""
    return full(t.shape, value, t.dtype)


def rand(shape: Sequence[int], seed: Optional[int] = None,
         dtype: DType = float32) -> Tensor:
    """Uniform [0, 1) — seeded explicitly (no hidden global RNG state in
    compiled regions; workloads pre-generate inputs with this)."""
    rng = np.random.default_rng(seed)
    out = Tensor.from_array(rng.random(tuple(shape)).astype(dtype.np),
                            copy=False)
    record_op("rand", [], [out], flops=0)
    return out


def randn(shape: Sequence[int], seed: Optional[int] = None,
          dtype: DType = float32) -> Tensor:
    """Create a fresh ``randn`` tensor (one allocation kernel)."""
    rng = np.random.default_rng(seed)
    out = Tensor.from_array(
        rng.standard_normal(tuple(shape)).astype(dtype.np), copy=False)
    record_op("randn", [], [out], flops=0)
    return out
