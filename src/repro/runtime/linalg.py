"""Dense linear algebra: the compute-intensive operators.

These are *not* fusion candidates in any of the compared pipelines (the
paper delegates them to vendor libraries); they matter to the evaluation
because CV workloads are dominated by them, which is why CV speedups are
smaller than NLP speedups (paper §5.2).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor, record_op


def _matmul_flops(a_shape, b_shape) -> int:
    # 2*M*N*K for the trailing two dims, times the broadcast batch.
    if len(a_shape) == 1 and len(b_shape) == 1:
        return 2 * a_shape[0]
    m = a_shape[-2] if len(a_shape) >= 2 else 1
    k = a_shape[-1]
    n = b_shape[-1] if len(b_shape) >= 2 else 1
    batch = 1
    for s in np.broadcast_shapes(tuple(a_shape[:-2]), tuple(b_shape[:-2])):
        batch *= s
    return 2 * batch * m * n * k


def matmul(a, b) -> Tensor:
    """Batched matrix multiply (one library kernel)."""
    ta, tb = as_tensor(a), as_tensor(b)
    out = Tensor.from_array(np.matmul(ta._array, tb._array), copy=False)
    record_op("matmul", [ta, tb], [out],
              flops=_matmul_flops(ta.shape, tb.shape))
    return out


def bmm(a, b) -> Tensor:
    """Batched matmul over rank-3 tensors."""
    ta, tb = as_tensor(a), as_tensor(b)
    if ta.ndim != 3 or tb.ndim != 3:
        raise ValueError("bmm expects rank-3 tensors")
    return matmul(ta, tb)


def linear(x, weight, bias=None) -> Tensor:
    """``x @ weight.T + bias`` as one library kernel (like cuBLAS GEMM
    with epilogue)."""
    tx, tw = as_tensor(x), as_tensor(weight)
    out_arr = np.matmul(tx._array, tw._array.T)
    inputs = [tx, tw]
    if bias is not None:
        tb = as_tensor(bias)
        out_arr = out_arr + tb._array
        inputs.append(tb)
    out = Tensor.from_array(out_arr, copy=False)
    record_op("linear", inputs, [out],
              flops=_matmul_flops(tx.shape, tw.shape[::-1]))
    return out
