"""Measurement harness: compile, execute under the profiler, and price
the run on a platform's cost model.

``run_workload`` is the single entry point the figures and the
pytest-benchmark suites share.  Compilation is cached per
(pipeline, workload), and runs verify numerical equivalence against
eager on demand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

import repro.runtime as rt
from ..models import Workload, get_workload
from ..pipelines import Pipeline, get_pipeline
from ..pipelines.base import Compiled
from .platforms import Platform, get_platform

_compile_cache: Dict[Tuple[str, str], Compiled] = {}


@dataclass
class RunResult:
    workload: str
    pipeline: str
    platform: str
    batch_size: int
    seq_len: int
    latency_us: float
    device_us: float
    host_us: float
    kernel_launches: int
    fused_ops: int
    wallclock_s: Optional[float] = None
    outputs: tuple = field(default=(), repr=False)

    @property
    def latency_ms(self) -> float:
        return self.latency_us / 1000.0


def clone_args(args) -> tuple:
    """Deep-copy tensor arguments so runs never share mutable inputs."""
    return tuple(a.clone() if isinstance(a, rt.Tensor) else a for a in args)


def compile_cached(pipeline: Pipeline, workload: Workload,
                   example_args=None) -> Compiled:
    """Compile (or fetch) a pipeline/workload pair; tracing pipelines key on input shapes."""
    key = (pipeline.name, workload.name)
    if pipeline.needs_example_inputs and example_args is not None:
        shapes = tuple(
            tuple(a.shape) if isinstance(a, rt.Tensor) else a
            for a in example_args)
        key = key + (shapes,)
    if key not in _compile_cache:
        _compile_cache[key] = pipeline.compile(workload.model_fn,
                                               example_args=example_args)
    return _compile_cache[key]


def run_workload(workload: str, pipeline: str, platform: str = "datacenter",
                 batch_size: int = 1, seq_len: int = 64, seed: int = 0,
                 check: bool = False, measure_wallclock: bool = False,
                 repeats: int = 3) -> RunResult:
    """Execute one (workload, pipeline) pair and price it."""
    wl = get_workload(workload)
    pipe = get_pipeline(pipeline)
    plat: Platform = get_platform(platform)
    args = wl.make_inputs(batch_size=batch_size, seq_len=seq_len, seed=seed)
    compiled = compile_cached(pipe, wl, example_args=args)

    with rt.profile() as prof:
        outputs = compiled(*clone_args(args))

    if check:
        expected = wl.model_fn(*clone_args(args))
        _assert_equal(outputs, expected, workload, pipeline)

    wallclock = None
    if measure_wallclock:
        best = float("inf")
        for _ in range(repeats):
            run_args = clone_args(args)
            start = time.perf_counter()
            compiled(*run_args)
            best = min(best, time.perf_counter() - start)
        wallclock = best

    return RunResult(
        workload=workload, pipeline=pipeline, platform=platform,
        batch_size=batch_size, seq_len=seq_len,
        latency_us=plat.latency_us(prof, pipe.host_profile,
                                   pipe.device_penalty),
        device_us=plat.device_time_us(prof, pipe.device_penalty),
        host_us=plat.host_time_us(prof, pipe.host_profile),
        kernel_launches=prof.num_launches,
        fused_ops=sum(e.fused_ops for e in prof.events),
        wallclock_s=wallclock,
        outputs=outputs if isinstance(outputs, tuple) else (outputs,),
    )


def speedup_over_eager(workload: str, pipeline: str, **kwargs) -> float:
    """Eager latency divided by ``pipeline`` latency for one workload."""
    base = run_workload(workload, "eager", **kwargs)
    opt = run_workload(workload, pipeline, **kwargs)
    return base.latency_us / opt.latency_us


def _assert_equal(got, expected, workload: str, pipeline: str) -> None:
    got = got if isinstance(got, tuple) else (got,)
    expected = expected if isinstance(expected, tuple) else (expected,)
    assert len(got) == len(expected), \
        f"{workload}/{pipeline}: output arity mismatch"
    for i, (g, e) in enumerate(zip(got, expected)):
        ga = g.numpy() if isinstance(g, rt.Tensor) else np.asarray(g)
        ea = e.numpy() if isinstance(e, rt.Tensor) else np.asarray(e)
        np.testing.assert_allclose(
            ga.astype(np.float64), ea.astype(np.float64),
            rtol=1e-4, atol=1e-5,
            err_msg=f"{workload}/{pipeline}: output {i} diverges")


def clear_compile_cache() -> None:
    """Drop all cached compilations (tests isolate through this)."""
    _compile_cache.clear()
