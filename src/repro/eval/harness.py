"""Measurement harness: compile, execute under the profiler, and price
the run on a platform's cost model.

``run_workload`` is the single entry point the figures and the
pytest-benchmark suites share.  Compilation is cached per
(pipeline, workload, input shapes) with LRU eviction — shapes are part
of the key because compiled artifacts carry shape-derived state (traced
graphs, cached memory plans, specialized kernels) — and runs verify
numerical equivalence against eager on demand.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

import repro.runtime as rt
from ..models import Workload, get_workload
from ..pipelines import Pipeline, get_pipeline
from ..pipelines.base import Compiled
from .platforms import Platform, get_platform


class _CompileCache:
    """LRU map of (pipeline, workload, shape signature) -> Compiled.

    Bounded so shape sweeps (Figures 7/8 scan batch sizes and sequence
    lengths) cannot grow compilation state without limit; hit/miss
    counters are surfaced on :class:`RunResult` so benchmarks can tell
    recompilations from cache replays.
    """

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, Compiled]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get(self, key: tuple) -> Optional[Compiled]:
        """Fetch and mark recently used; counts a hit or a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, compiled: Compiled) -> None:
        """Insert, evicting the least recently used beyond capacity."""
        self._entries[key] = compiled
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop entries and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_compile_cache = _CompileCache()


@dataclass
class RunResult:
    workload: str
    pipeline: str
    platform: str
    batch_size: int
    seq_len: int
    latency_us: float
    device_us: float
    host_us: float
    kernel_launches: int
    fused_ops: int
    #: memory-planner observability (arena high-water and reuse traffic)
    peak_bytes: int = 0
    bytes_allocated: int = 0
    bytes_reused: int = 0
    #: compile-cache state at the end of this run
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit: bool = False
    wallclock_s: Optional[float] = None
    outputs: tuple = field(default=(), repr=False)

    @property
    def latency_ms(self) -> float:
        return self.latency_us / 1000.0


def clone_args(args) -> tuple:
    """Deep-copy tensor arguments so runs never share mutable inputs."""
    return tuple(a.clone() if isinstance(a, rt.Tensor) else a for a in args)


def _shape_signature(example_args) -> tuple:
    """The batch/seq shape signature of a run's example inputs."""
    if example_args is None:
        return ()
    return tuple(
        tuple(a.shape) if isinstance(a, rt.Tensor) else a
        for a in example_args)


def compile_cached(pipeline: Pipeline, workload: Workload,
                   example_args=None) -> Compiled:
    """Compile (or fetch) a pipeline/workload pair, keyed on the input
    shape signature so sweeps never replay state specialized for a
    different batch size or sequence length."""
    key = (pipeline.name, workload.name, _shape_signature(example_args))
    compiled = _compile_cache.get(key)
    if compiled is None:
        compiled = pipeline.compile(workload.model_fn,
                                    example_args=example_args)
        _compile_cache.put(key, compiled)
    return compiled


def run_workload(workload: str, pipeline: str, platform: str = "datacenter",
                 batch_size: int = 1, seq_len: int = 64, seed: int = 0,
                 check: bool = False, measure_wallclock: bool = False,
                 repeats: int = 3) -> RunResult:
    """Execute one (workload, pipeline) pair and price it."""
    wl = get_workload(workload)
    pipe = get_pipeline(pipeline)
    plat: Platform = get_platform(platform)
    args = wl.make_inputs(batch_size=batch_size, seq_len=seq_len, seed=seed)
    misses_before = _compile_cache.misses
    compiled = compile_cached(pipe, wl, example_args=args)
    was_hit = _compile_cache.misses == misses_before

    run_args = clone_args(args)  # outside the profile: input prep is
    with rt.profile() as prof:   # not part of the measured run
        outputs = compiled(*run_args)

    if check:
        expected = wl.model_fn(*clone_args(args))
        _assert_equal(outputs, expected, workload, pipeline)

    wallclock = None
    if measure_wallclock:
        best = float("inf")
        for _ in range(repeats):
            run_args = clone_args(args)
            start = time.perf_counter()
            compiled(*run_args)
            best = min(best, time.perf_counter() - start)
        wallclock = best

    return RunResult(
        workload=workload, pipeline=pipeline, platform=platform,
        batch_size=batch_size, seq_len=seq_len,
        latency_us=plat.latency_us(prof, pipe.host_profile,
                                   pipe.device_penalty),
        device_us=plat.device_time_us(prof, pipe.device_penalty),
        host_us=plat.host_time_us(prof, pipe.host_profile),
        kernel_launches=prof.num_launches,
        fused_ops=sum(e.fused_ops for e in prof.events),
        peak_bytes=prof.peak_bytes,
        bytes_allocated=prof.bytes_allocated,
        bytes_reused=prof.bytes_reused,
        cache_hits=_compile_cache.hits,
        cache_misses=_compile_cache.misses,
        cache_hit=was_hit,
        wallclock_s=wallclock,
        outputs=outputs if isinstance(outputs, tuple) else (outputs,),
    )


def speedup_over_eager(workload: str, pipeline: str, **kwargs) -> float:
    """Eager latency divided by ``pipeline`` latency for one workload."""
    base = run_workload(workload, "eager", **kwargs)
    opt = run_workload(workload, pipeline, **kwargs)
    return base.latency_us / opt.latency_us


def _assert_equal(got, expected, workload: str, pipeline: str) -> None:
    got = got if isinstance(got, tuple) else (got,)
    expected = expected if isinstance(expected, tuple) else (expected,)
    assert len(got) == len(expected), \
        f"{workload}/{pipeline}: output arity mismatch"
    for i, (g, e) in enumerate(zip(got, expected)):
        ga = g.numpy() if isinstance(g, rt.Tensor) else np.asarray(g)
        ea = e.numpy() if isinstance(e, rt.Tensor) else np.asarray(e)
        np.testing.assert_allclose(
            ga.astype(np.float64), ea.astype(np.float64),
            rtol=1e-4, atol=1e-5,
            err_msg=f"{workload}/{pipeline}: output {i} diverges")


def clear_compile_cache() -> None:
    """Drop all cached compilations (tests isolate through this)."""
    _compile_cache.clear()
