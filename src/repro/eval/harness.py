"""Measurement harness: compile, execute under the profiler, and price
the run on a platform's cost model.

``run_workload`` is the single entry point the figures, the serving
layer, and the pytest-benchmark suites share.  Compilation is cached per
(pipeline, workload, input shapes) with LRU eviction — shapes are part
of the key because compiled artifacts carry shape-derived state (traced
graphs, cached memory plans, specialized kernels) — and runs verify
numerical equivalence against eager on demand.

Concurrency contract
--------------------

:class:`CompileCache` is safe to share across threads: every counter
and entry update happens under one lock, a miss registers an *in-flight*
slot so concurrent requests for the same key wait for one compilation
instead of duplicating it, and each ``get_or_compile`` call reports its
own hit/miss status (callers must never infer it by diffing the global
counters — that was racy, see tests/test_concurrency.py).

Counter lifecycle
-----------------

Hit/miss counters are **per-epoch**: ``clear()`` drops the entries,
zeroes the counters, and increments ``epoch``.  Anything that snapshots
the counters (``RunResult``, ``tools/inspect``, ``repro.serve``
metrics) records the epoch alongside them, so two snapshots are only
comparable when their epochs match.  ``snapshot()`` returns all of it
atomically.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

import repro.runtime as rt
from ..models import Workload, get_workload
from ..obs import trace as obs_trace
from ..pipelines import Pipeline, get_pipeline
from ..pipelines.base import Compiled
from ..symshape.family import FamilyTable, ShapeFamily, compiling_family
from ..tune.db import shape_key_text, tuning_key
from ..tune.schedule import active_schedule, schedule_scope
from .platforms import Platform, get_platform


@dataclass(frozen=True)
class CacheStats:
    """Atomic snapshot of a cache's per-epoch counters."""

    epoch: int
    hits: int
    misses: int
    size: int
    capacity: int
    #: recompiles forced by a shape-family guard flip — kept distinct
    #: from plain misses so stats can tell "never saw this program"
    #: from "saw it, but the artifact was specialized too narrowly"
    guard_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses + self.guard_misses
        return self.hits / total if total else 0.0


class _InFlight:
    """One compilation in progress; waiters block on the event."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


class CompileCache:
    """Thread-safe LRU map of (pipeline, workload, shape signature) ->
    Compiled.

    Bounded so shape sweeps (Figures 7/8 scan batch sizes and sequence
    lengths) cannot grow compilation state without limit; hit/miss
    counters are surfaced on :class:`RunResult` so benchmarks can tell
    recompilations from cache replays.  All mutation happens under one
    lock; concurrent misses on the same key are deduplicated so exactly
    one thread compiles while the rest wait for its result.
    """

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, Compiled]" = OrderedDict()
        self._lock = threading.RLock()
        self._inflight: dict = {}
        self.hits = 0
        self.misses = 0
        self.guard_misses = 0
        self.epoch = 0
        #: shape families for dynamic-shape lookups; cleared with the
        #: entries on every epoch boundary
        self.families = FamilyTable()
        #: optional :class:`repro.tune.db.TuningDB` — when set, every
        #: run looks up the best-known schedule for its (workload,
        #: shape key, platform) and executes under it; a persistent
        #: store, it deliberately survives ``clear()`` epochs
        self.tuning_db = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def lookup(self, key: tuple) -> Tuple[Optional[Compiled], bool]:
        """Fetch and mark recently used; returns ``(entry, hit)``.

        The per-call ``hit`` flag is the only correct way to learn the
        outcome under concurrency — other threads move the global
        counters between any two reads.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None, False
            self._entries.move_to_end(key)
            self.hits += 1
            return entry, True

    def get(self, key: tuple) -> Optional[Compiled]:
        """Fetch and mark recently used; counts a hit or a miss."""
        return self.lookup(key)[0]

    def put(self, key: tuple, compiled: Compiled) -> None:
        """Insert, evicting the least recently used beyond capacity."""
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def entries(self) -> List[Tuple[tuple, "Compiled"]]:
        """Snapshot of ``(key, compiled)`` pairs, LRU order (oldest
        first) — how shard workers discover what to publish into the
        artifact store without holding the cache lock while
        serializing."""
        with self._lock:
            return list(self._entries.items())

    def get_or_compile(self, key: tuple,
                       factory: Callable[[], Compiled],
                       guard_flip: bool = False
                       ) -> Tuple[Compiled, bool]:
        """Return ``(compiled, hit)``, invoking ``factory`` on a miss.

        Concurrent misses on the same key coalesce: one caller owns the
        compilation, the others wait on its in-flight slot and then
        re-check the cache (re-counting as a hit on success).  If the
        owner's factory raises, waiters retry the compilation
        themselves rather than inheriting the owner's exception.

        ``guard_flip`` marks this lookup as a shape-family guard miss:
        if it does compile, the event counts in ``guard_misses``
        instead of ``misses`` (the artifact for this program existed,
        it was just guarded too narrowly).
        """
        with obs_trace.span("cache:lookup", cat="cache",
                            key=str(key)) as lookup_sp:
            while True:
                with self._lock:
                    entry = self._entries.get(key)
                    if entry is not None:
                        self._entries.move_to_end(key)
                        self.hits += 1
                        if lookup_sp is not None:
                            lookup_sp.args["hit"] = True
                        return entry, True
                    flight = self._inflight.get(key)
                    if flight is None:
                        flight = _InFlight()
                        self._inflight[key] = flight
                        if guard_flip:
                            self.guard_misses += 1
                        else:
                            self.misses += 1
                        owner = True
                    else:
                        owner = False
                if not owner:
                    flight.event.wait()
                    continue  # re-check: hit on success, own miss on error
                if lookup_sp is not None:
                    lookup_sp.args["hit"] = False
                # The in-flight slot is released and its event set on EVERY
                # exit path (including put() failing), or waiters would
                # block forever on an event that never fires — the torn
                # state the StateAuditor checks for.
                try:
                    with obs_trace.span("cache:compile", cat="cache",
                                        key=str(key)):
                        compiled = factory()
                    self.put(key, compiled)
                finally:
                    with self._lock:
                        self._inflight.pop(key, None)
                    flight.event.set()
                return compiled, False

    def inflight_count(self) -> int:
        """Compilations currently owned by some thread.  Zero at
        quiescence — a nonzero count with no compile running means a
        leaked slot (the StateAuditor asserts on this)."""
        with self._lock:
            return len(self._inflight)

    def snapshot(self) -> CacheStats:
        """All counters plus the epoch, read atomically."""
        with self._lock:
            return CacheStats(epoch=self.epoch, hits=self.hits,
                              misses=self.misses,
                              guard_misses=self.guard_misses,
                              size=len(self._entries),
                              capacity=self.capacity)

    def clear(self) -> None:
        """Drop entries and shape families, reset the counters, and
        start a new epoch."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.guard_misses = 0
            self.epoch += 1
            self.families.clear()


#: Back-compat alias — the class predates its public, thread-safe form.
_CompileCache = CompileCache

_compile_cache = CompileCache()


@dataclass
class RunResult:
    workload: str
    pipeline: str
    platform: str
    batch_size: int
    seq_len: int
    latency_us: float
    device_us: float
    host_us: float
    kernel_launches: int
    fused_ops: int
    #: memory-planner observability (arena high-water and reuse traffic)
    peak_bytes: int = 0
    bytes_allocated: int = 0
    bytes_reused: int = 0
    #: compile-cache state at the end of this run; ``cache_hits`` /
    #: ``cache_misses`` are per-epoch cumulative counters, only
    #: comparable between results with the same ``cache_epoch``
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit: bool = False
    cache_epoch: int = 0
    #: guard-flip recompiles (family keying; see ``dynamic_shapes``)
    cache_guard_misses: int = 0
    #: shape-family observability when the run used ``dynamic_shapes``:
    #: which family served it and the table verdict (hit/new/guard_miss)
    family_id: str = ""
    family_outcome: str = ""
    #: kernel-schedule observability: the schedule this run executed
    #: under, and whether it came from a tuning-DB hit (``tuned``) as
    #: opposed to the default or an explicit ``schedule_scope``
    tuned: bool = False
    schedule_id: str = "default"
    wallclock_s: Optional[float] = None
    #: degradation-ladder observability (``run_workload_resilient``):
    #: which rung actually served the run, how far down the chain it
    #: sat, and how many executions were attempted in total
    served_by: str = ""
    fallback_depth: int = 0
    degraded: bool = False
    attempts: int = 1
    outputs: tuple = field(default=(), repr=False)

    @property
    def latency_ms(self) -> float:
        return self.latency_us / 1000.0


def clone_args(args) -> tuple:
    """Deep-copy tensor arguments so runs never share mutable inputs."""
    return tuple(a.clone() if isinstance(a, rt.Tensor) else a for a in args)


def _shape_signature(example_args) -> tuple:
    """The batch/seq shape signature of a run's example inputs."""
    if example_args is None:
        return ()
    return tuple(
        tuple(a.shape) if isinstance(a, rt.Tensor) else a
        for a in example_args)


def compile_key(pipeline: Pipeline, workload: Workload,
                example_args=None, grad: bool = False) -> tuple:
    """The cache key a (pipeline, workload, inputs) triple compiles
    under — shared with ``repro.serve`` so batcher grouping and cache
    specialization agree.  Backward artifacts (``grad=True``) key
    separately from forward ones: same program, different graph."""
    key = (pipeline.name, workload.name, _shape_signature(example_args))
    return key + ("grad",) if grad else key


def family_key(pipeline: Pipeline, workload: Workload,
               family: ShapeFamily, grad: bool = False) -> tuple:
    """The cache key a shape family's artifact lives under."""
    key = (pipeline.name, workload.name, "family", family.family_id)
    return key + ("grad",) if grad else key


def compile_cached_family(pipeline: Pipeline, workload: Workload,
                          example_args=None,
                          cache: Optional[CompileCache] = None,
                          mod_hints=(), grad: bool = False
                          ) -> Tuple[Compiled, bool, ShapeFamily, str]:
    """Family-keyed compile: ``(compiled, hit, family, outcome)``.

    The example shapes resolve to a :class:`ShapeFamily` (minting one
    on a structural miss or a guard flip), the cache is keyed on the
    family id instead of the concrete signature, and the compile — if
    one happens — runs inside :func:`repro.symshape.family.
    compiling_family` so shape-specializing passes can record guards.
    ``outcome`` is the family-table verdict: ``hit`` / ``new`` /
    ``guard_miss``; a ``guard_miss`` compile counts in the cache's
    ``guard_misses`` counter, not ``misses``.  ``mod_hints`` are
    ``(arg_index, dim_index, divisor)`` divisibility facts forwarded
    to :meth:`repro.symshape.family.FamilyTable.resolve`.
    """
    cache = cache if cache is not None else _compile_cache
    prefix = (pipeline.name, workload.name, "grad") if grad \
        else (pipeline.name, workload.name)
    signature = _shape_signature(example_args)
    family, outcome = cache.families.resolve(prefix, signature,
                                             mod_hints=mod_hints)

    def factory() -> Compiled:
        with compiling_family(family):
            if grad:
                return pipeline.compile_grad(workload.model_fn,
                                             example_args=example_args)
            return pipeline.compile(workload.model_fn,
                                    example_args=example_args)

    try:
        compiled, hit = cache.get_or_compile(
            family_key(pipeline, workload, family, grad=grad), factory,
            guard_flip=(outcome == "guard_miss"))
    finally:
        # guards are complete once the compile owner returns (waiters
        # only get here after the owner's in-flight event fires), so
        # the family may now admit other members; seal() is idempotent
        family.seal()
    return compiled, hit, family, outcome


def compile_cached_status(pipeline: Pipeline, workload: Workload,
                          example_args=None,
                          cache: Optional[CompileCache] = None,
                          dynamic_shapes: bool = False,
                          grad: bool = False
                          ) -> Tuple[Compiled, bool]:
    """Compile (or fetch) and report this call's own hit/miss status.

    ``cache`` defaults to the process-wide cache; the serving layer
    injects its own instance so server metrics are isolated from
    figure sweeps running in the same process.  ``dynamic_shapes``
    switches the lookup from concrete-shape keying to family keying
    (see :func:`compile_cached_family`); ``grad=True`` compiles the
    backward graph instead of the forward one.
    """
    cache = cache if cache is not None else _compile_cache
    if dynamic_shapes:
        compiled, hit, _, _ = compile_cached_family(
            pipeline, workload, example_args, cache=cache, grad=grad)
        return compiled, hit
    key = compile_key(pipeline, workload, example_args, grad=grad)
    if grad:
        return cache.get_or_compile(
            key, lambda: pipeline.compile_grad(workload.model_fn,
                                               example_args=example_args))
    return cache.get_or_compile(
        key, lambda: pipeline.compile(workload.model_fn,
                                      example_args=example_args))


def compile_cached(pipeline: Pipeline, workload: Workload,
                   example_args=None,
                   cache: Optional[CompileCache] = None) -> Compiled:
    """Compile (or fetch) a pipeline/workload pair, keyed on the input
    shape signature so sweeps never replay state specialized for a
    different batch size or sequence length."""
    return compile_cached_status(pipeline, workload, example_args,
                                 cache=cache)[0]


def run_workload(workload: str, pipeline: str, platform: str = "datacenter",
                 batch_size: int = 1, seq_len: int = 64, seed: int = 0,
                 check: bool = False, measure_wallclock: bool = False,
                 repeats: int = 3,
                 cache: Optional[CompileCache] = None,
                 dynamic_shapes: bool = False,
                 grad: bool = False) -> RunResult:
    """Execute one (workload, pipeline) pair and price it.

    ``dynamic_shapes`` keys the compile cache on the shape *family* of
    the inputs instead of their concrete signature, so new batch sizes
    or sequence lengths inside an existing family replay the cached
    artifact (0 compiles) instead of recompiling.

    ``grad=True`` compiles and executes the *backward* graph (input
    gradients of the sum-of-outputs loss) instead of the forward one;
    the execution is additionally timed under a ``harness:backward``
    span, and ``check=True`` validates the optimized backward against
    the raw interpreted backward graph (``stats["grad_reference"]``)
    rather than against the eager forward.
    """
    with obs_trace.span("harness:run_workload", cat="harness",
                        workload=workload, pipeline=pipeline,
                        batch_size=batch_size, seq_len=seq_len,
                        grad=grad):
        return _run_workload_traced(
            workload, pipeline, platform, batch_size, seq_len, seed,
            check, measure_wallclock, repeats, cache, dynamic_shapes,
            grad)


def _run_workload_traced(workload, pipeline, platform, batch_size,
                         seq_len, seed, check, measure_wallclock,
                         repeats, cache, dynamic_shapes=False,
                         grad=False) -> RunResult:
    wl = get_workload(workload)
    pipe = get_pipeline(pipeline)
    plat: Platform = get_platform(platform)
    cache = cache if cache is not None else _compile_cache
    args = wl.make_inputs(batch_size=batch_size, seq_len=seq_len, seed=seed)
    family_id = ""
    family_outcome = ""
    family = None
    with obs_trace.span("harness:compile", cat="compile",
                        pipeline=pipeline, workload=workload):
        if dynamic_shapes:
            compiled, was_hit, family, family_outcome = \
                compile_cached_family(pipe, wl, example_args=args,
                                      cache=cache, grad=grad)
            family_id = family.family_id
        else:
            compiled, was_hit = compile_cached_status(pipe, wl,
                                                      example_args=args,
                                                      cache=cache,
                                                      grad=grad)

    # resolve the kernel schedule: an explicit schedule_scope wins;
    # otherwise a tuning-DB hit for (workload, shape key, platform)
    # upgrades the run from the default lowering
    sched = None
    tuned = False
    if cache.tuning_db is not None and active_schedule().is_default:
        shape_key = shape_key_text(
            family.shape_key() if family is not None
            else _shape_signature(args))
        sched = cache.tuning_db.best(
            tuning_key(workload, shape_key, platform))
        tuned = sched is not None and not sched.is_default
    schedule_id = (sched if sched is not None
                   else active_schedule()).schedule_id

    run_args = clone_args(args)  # outside the profile: input prep is
    with schedule_scope(sched), \
            obs_trace.span("harness:execute", cat="exec",
                           pipeline=pipeline, workload=workload):
        with rt.profile() as prof:  # not part of the measured run
            if grad:
                with obs_trace.span("harness:backward", cat="exec",
                                    pipeline=pipeline, workload=workload):
                    outputs = compiled(*run_args)
            else:
                outputs = compiled(*run_args)

    if check:
        with obs_trace.span("harness:check", cat="verify"):
            if grad:
                # the correctness oracle for an optimized backward is
                # the raw (pre-optimization) backward graph, interpreted
                expected = compiled.stats["grad_reference"](
                    *clone_args(args))
            else:
                expected = wl.model_fn(*clone_args(args))
            _assert_equal(outputs, expected, workload, pipeline)

    wallclock = None
    if measure_wallclock:
        best = float("inf")
        with schedule_scope(sched), \
                obs_trace.span("harness:wallclock", cat="exec",
                               repeats=repeats):
            for _ in range(repeats):
                run_args = clone_args(args)
                start = time.perf_counter()
                compiled(*run_args)
                best = min(best, time.perf_counter() - start)
        wallclock = best

    snap = cache.snapshot()
    return RunResult(
        workload=workload, pipeline=pipeline, platform=platform,
        batch_size=batch_size, seq_len=seq_len,
        latency_us=plat.latency_us(prof, pipe.host_profile,
                                   pipe.device_penalty),
        device_us=plat.device_time_us(prof, pipe.device_penalty),
        host_us=plat.host_time_us(prof, pipe.host_profile),
        kernel_launches=prof.num_launches,
        fused_ops=sum(e.fused_ops for e in prof.events),
        peak_bytes=prof.peak_bytes,
        bytes_allocated=prof.bytes_allocated,
        bytes_reused=prof.bytes_reused,
        cache_hits=snap.hits,
        cache_misses=snap.misses,
        cache_hit=was_hit,
        cache_epoch=snap.epoch,
        cache_guard_misses=snap.guard_misses,
        family_id=family_id,
        family_outcome=family_outcome,
        tuned=tuned,
        schedule_id=schedule_id,
        wallclock_s=wallclock,
        served_by=pipeline,
        outputs=outputs if isinstance(outputs, tuple) else (outputs,),
    )


def run_workload_resilient(workload: str, pipeline: str = "tensorssa",
                           platform: str = "datacenter",
                           batch_size: int = 1, seq_len: int = 64,
                           seed: int = 0, check: bool = False,
                           cache: Optional[CompileCache] = None,
                           ladder: Optional[Tuple[str, ...]] = None,
                           breakers=None, retry=None,
                           retry_rng=None) -> RunResult:
    """``run_workload`` behind the graceful-degradation ladder.

    Walks the ordered fallback chain for ``pipeline`` (see
    :func:`repro.degrade.fallback_chain`): each rung is guarded by a
    per-(workload, rung) circuit breaker and gets bounded retries with
    jittered exponential backoff for *retryable* faults (kernel
    launches, OOM); non-retryable faults (compile errors) descend
    immediately.  The result reports ``served_by``, ``fallback_depth``
    and ``degraded`` so callers can see when they got the slow-but-safe
    answer.  With no faults the first rung serves at depth 0 and the
    result is bit-exact with a plain ``run_workload`` call.

    Raises the last (typed) error when every rung fails or is
    breaker-open.
    """
    from .. import degrade
    from ..errors import classify, is_retryable

    chain = degrade.fallback_chain(pipeline, ladder=ladder)
    breakers = breakers if breakers is not None \
        else degrade.default_breakers()
    retry = retry if retry is not None else degrade.RetryPolicy()
    rng = retry_rng if retry_rng is not None else random.Random(seed)

    attempts = 0
    last_error: Optional[BaseException] = None
    for depth, rung in enumerate(chain):
        breaker = breakers.breaker(workload, rung)
        if not breaker.allow():
            continue  # rung is circuit-broken: descend without a call
        for retry_index in range(retry.max_retries + 1):
            attempts += 1
            try:
                with obs_trace.span(f"harness:rung:{rung}", cat="ladder",
                                    depth=depth, attempt=retry_index):
                    result = run_workload(
                        workload, rung, platform=platform,
                        batch_size=batch_size, seq_len=seq_len, seed=seed,
                        check=check, cache=cache)
            except Exception as exc:
                breaker.record_failure()
                last_error = classify(exc)
                if not is_retryable(exc) \
                        or retry_index >= retry.max_retries:
                    break  # descend the ladder
                with obs_trace.span("harness:retry_wait", cat="ladder",
                                    rung=rung, attempt=retry_index):
                    time.sleep(retry.delay_s(retry_index, rng))
                continue
            breaker.record_success()
            result.served_by = rung
            result.fallback_depth = depth
            result.degraded = depth > 0
            result.attempts = attempts
            return result
    if last_error is None:
        last_error = RuntimeError(
            f"{workload}/{pipeline}: every ladder rung {chain} is "
            f"circuit-broken")
    raise last_error


def speedup_over_eager(workload: str, pipeline: str, **kwargs) -> float:
    """Eager latency divided by ``pipeline`` latency for one workload."""
    base = run_workload(workload, "eager", **kwargs)
    opt = run_workload(workload, pipeline, **kwargs)
    return base.latency_us / opt.latency_us


def _assert_equal(got, expected, workload: str, pipeline: str) -> None:
    got = got if isinstance(got, tuple) else (got,)
    expected = expected if isinstance(expected, tuple) else (expected,)
    assert len(got) == len(expected), \
        f"{workload}/{pipeline}: output arity mismatch"
    for i, (g, e) in enumerate(zip(got, expected)):
        ga = g.numpy() if isinstance(g, rt.Tensor) else np.asarray(g)
        ea = e.numpy() if isinstance(e, rt.Tensor) else np.asarray(e)
        np.testing.assert_allclose(
            ga.astype(np.float64), ea.astype(np.float64),
            rtol=1e-4, atol=1e-5,
            err_msg=f"{workload}/{pipeline}: output {i} diverges")


def clear_compile_cache() -> None:
    """Drop all cached compilations and advance the counter epoch
    (tests isolate through this)."""
    _compile_cache.clear()


def compile_cache_stats() -> CacheStats:
    """Snapshot of the process-wide cache (``tools/inspect`` and the
    serve metrics read counters through this, never raw attributes)."""
    return _compile_cache.snapshot()
