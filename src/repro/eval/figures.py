"""Regenerators for every figure in the paper's evaluation (§5).

Each ``figN()`` returns the figure's data as nested dicts and can print
the paper-style table.  The module doubles as a CLI::

    python -m repro.eval.figures fig5
    python -m repro.eval.figures fig6 fig7 fig8 intro
"""

from __future__ import annotations

import sys
from typing import Dict, List, Sequence

from ..models import WORKLOADS
from ..pipelines import default_pipelines
from .harness import run_workload
from .platforms import PLATFORMS, get_platform
from .report import format_table, geomean, summarize_speedups

PIPELINE_ORDER = ["eager", "dynamo_inductor", "ts_nvfuser", "ts_nnc",
                  "tensorssa"]
COMPARED = PIPELINE_ORDER[1:]

#: nominal backbone compute (GFLOPs) per workload, used only by the
#: §1 imperative-fraction estimate — the paper offloads backbones to
#: TensorRT, so they are constants outside the compared region.
BACKBONE_GFLOPS = {
    "yolov3": 65.9, "ssd": 31.4, "yolact": 61.6, "fcos": 80.0,
    "nasrnn": 2.0, "lstm": 2.0, "seq2seq": 2.5, "attention": 1.0,
}

FIG7_BATCH_SIZES = (1, 2, 4, 8, 16)
FIG7_WORKLOADS = ("yolov3", "ssd", "yolact", "fcos", "seq2seq",
                  "attention")
FIG8_SEQ_LENS = (16, 32, 64, 128, 256)
FIG8_WORKLOADS = ("nasrnn", "lstm", "seq2seq", "attention")


def _speedup_grid(platform: str, batch_size: int = 1,
                  seq_len: int = 64) -> Dict[str, Dict[str, float]]:
    grid: Dict[str, Dict[str, float]] = {}
    for name in WORKLOADS:
        eager = run_workload(name, "eager", platform=platform,
                             batch_size=batch_size, seq_len=seq_len)
        grid[name] = {}
        for pipe in COMPARED:
            res = run_workload(name, pipe, platform=platform,
                               batch_size=batch_size, seq_len=seq_len)
            grid[name][pipe] = eager.latency_us / res.latency_us
    return grid


def fig5(platforms: Sequence[str] = ("consumer", "datacenter"),
         echo: bool = True) -> Dict[str, Dict[str, Dict[str, float]]]:
    """End-to-end speedup over PyTorch eager (paper Figure 5)."""
    data = {}
    for plat in platforms:
        grid = _speedup_grid(plat)
        data[plat] = grid
        if echo:
            rows = [[grid[w][p] for p in COMPARED] for w in grid]
            print(format_table(
                f"Figure 5 [{get_platform(plat).label}] — "
                f"speedup over eager",
                COMPARED, rows, list(grid)))
            ours_vs_best = {
                w: grid[w]["tensorssa"]
                / max(grid[w][p] for p in COMPARED[:-1])
                for w in grid}
            print(f"  vs best baseline: "
                  f"{summarize_speedups(ours_vs_best)}\n")
    return data


def fig6(echo: bool = True) -> Dict[str, Dict[str, int]]:
    """Kernel launch counts (paper Figure 6)."""
    data: Dict[str, Dict[str, int]] = {}
    for name in WORKLOADS:
        data[name] = {}
        for pipe in PIPELINE_ORDER:
            res = run_workload(name, pipe)
            data[name][pipe] = res.kernel_launches
    if echo:
        rows = [[data[w][p] for p in PIPELINE_ORDER] for w in data]
        print(format_table("Figure 6 — kernel launches per inference",
                           PIPELINE_ORDER, rows, list(data), fmt="{:d}"))
        print()
    return data


def fig7(platform: str = "datacenter",
         echo: bool = True) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Speedup over eager at different batch sizes (paper Figure 7)."""
    data: Dict[str, Dict[int, Dict[str, float]]] = {}
    for name in FIG7_WORKLOADS:
        data[name] = {}
        for bs in FIG7_BATCH_SIZES:
            eager = run_workload(name, "eager", platform=platform,
                                 batch_size=bs)
            data[name][bs] = {}
            for pipe in COMPARED:
                res = run_workload(name, pipe, platform=platform,
                                   batch_size=bs)
                data[name][bs][pipe] = eager.latency_us / res.latency_us
    if echo:
        for name in FIG7_WORKLOADS:
            rows = [[data[name][bs][p] for p in COMPARED]
                    for bs in FIG7_BATCH_SIZES]
            print(format_table(
                f"Figure 7 [{name}] — speedup over eager vs batch size",
                COMPARED, rows,
                [f"bs={bs}" for bs in FIG7_BATCH_SIZES]))
            print()
    return data


def fig8(platform: str = "datacenter",
         echo: bool = True) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Latency (ms) across sequence lengths (paper Figure 8)."""
    data: Dict[str, Dict[int, Dict[str, float]]] = {}
    for name in FIG8_WORKLOADS:
        data[name] = {}
        for sl in FIG8_SEQ_LENS:
            data[name][sl] = {}
            for pipe in PIPELINE_ORDER:
                res = run_workload(name, pipe, platform=platform,
                                   seq_len=sl)
                data[name][sl][pipe] = res.latency_ms
    if echo:
        for name in FIG8_WORKLOADS:
            rows = [[data[name][sl][p] for p in PIPELINE_ORDER]
                    for sl in FIG8_SEQ_LENS]
            print(format_table(
                f"Figure 8 [{name}] — latency (ms) vs sequence length",
                PIPELINE_ORDER, rows,
                [f"T={sl}" for sl in FIG8_SEQ_LENS], fmt="{:.3f}"))
            print()
    return data


def fig_mem(echo: bool = True) -> Dict[str, Dict[str, float]]:
    """Peak-memory report: the static planner's effect per workload.

    Runs the TensorSSA pipeline with and without memory planning and
    reports arena peak bytes, reuse traffic, and the relative reduction
    — the quantitative answer to the "functionalization inflates
    memory" critique (every ``immut::`` op materializes a copy, but the
    planner proves when each copy dies and recycles it).
    """
    data: Dict[str, Dict[str, float]] = {}
    for name in WORKLOADS:
        base = run_workload(name, "tensorssa_noplan")
        opt = run_workload(name, "tensorssa")
        reduction = (1.0 - opt.peak_bytes / base.peak_bytes
                     if base.peak_bytes else 0.0)
        data[name] = {
            "unplanned_peak_bytes": base.peak_bytes,
            "planned_peak_bytes": opt.peak_bytes,
            "bytes_reused": opt.bytes_reused,
            "reduction": reduction,
        }
    if echo:
        rows = [[d["unplanned_peak_bytes"] / 1024.0,
                 d["planned_peak_bytes"] / 1024.0,
                 d["bytes_reused"] / 1024.0,
                 d["reduction"] * 100.0] for d in data.values()]
        print(format_table(
            "Memory planning — peak KiB without/with plan",
            ["no plan", "planned", "reused", "savings %"],
            rows, list(data)))
        print()
    return data


def intro_fraction(platform: str = "datacenter",
                   echo: bool = True) -> Dict[str, float]:
    """§1's claim: imperative programs are up to ~90% of end-to-end
    inference time (backbone modeled as TensorRT-executed compute)."""
    plat = get_platform(platform)
    data = {}
    for name in WORKLOADS:
        res = run_workload(name, "eager", platform=platform)
        backbone_us = (BACKBONE_GFLOPS[name] * 1e3
                       / plat.peak_gflops * 1e3) + 50.0
        frac = res.latency_us / (res.latency_us + backbone_us)
        data[name] = frac
    if echo:
        rows = [[v * 100.0] for v in data.values()]
        print(format_table(
            "Intro claim — imperative share of end-to-end time (%)",
            ["% of wall time"], rows, list(data), fmt="{:.1f}"))
        print(f"  max: {max(data.values()) * 100:.1f}%\n")
    return data


def headline(echo: bool = True) -> Dict[str, float]:
    """§5.2 headline: speedup of TensorSSA over the *best* baseline."""
    out: Dict[str, float] = {}
    vals: List[float] = []
    for plat in PLATFORMS:
        grid = _speedup_grid(plat)
        for w, su in grid.items():
            ours = su["tensorssa"]
            best = max(su[p] for p in COMPARED[:-1])
            out[f"{plat}/{w}"] = ours / best
            vals.append(ours / best)
    if echo:
        print(f"Headline: up to {max(vals):.2f}x "
              f"(geomean {geomean(vals):.2f}x) over the best baseline")
    return out


_FIGS = {"fig5": fig5, "fig6": fig6, "fig7": fig7, "fig8": fig8,
         "fig_mem": fig_mem, "intro": intro_fraction,
         "headline": headline}


def main(argv: Sequence[str]) -> None:
    """CLI entry point."""
    targets = argv or ["fig5", "fig6", "fig7", "fig8", "fig_mem",
                       "intro", "headline"]
    for t in targets:
        if t not in _FIGS:
            raise SystemExit(f"unknown figure {t!r}; "
                             f"choose from {sorted(_FIGS)}")
        _FIGS[t]()


if __name__ == "__main__":
    main(sys.argv[1:])
