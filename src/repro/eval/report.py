"""Plain-text table rendering for figure data (terminal-friendly)."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(title: str, col_headers: Sequence[str],
                 rows: Sequence[Sequence], row_headers: Sequence[str],
                 fmt: str = "{:.2f}") -> str:
    """Render a labelled grid; numeric cells formatted with ``fmt``."""
    def cell(x) -> str:
        if isinstance(x, float):
            return fmt.format(x)
        return str(x)

    header_cells = [""] + [str(h) for h in col_headers]
    body = [[str(rh)] + [cell(c) for c in row]
            for rh, row in zip(row_headers, rows)]
    widths = [max(len(r[i]) for r in [header_cells] + body)
              for i in range(len(header_cells))]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header_cells, widths)))
    for r in body:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def geomean(values: List[float]) -> float:
    """Geometric mean of a list of ratios."""
    if not values:
        return float("nan")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def summarize_speedups(speedups: Dict[str, float]) -> str:
    """One-line max/geomean summary of a name->speedup mapping."""
    vals = list(speedups.values())
    return (f"max speedup {max(vals):.2f}x, "
            f"geomean {geomean(vals):.2f}x over {len(vals)} workloads")
