"""repro.eval — measurement harness, cost model, figure regenerators."""

from .harness import RunResult, run_workload, speedup_over_eager
from .platforms import CONSUMER, DATACENTER, PLATFORMS, Platform, get_platform

__all__ = ["run_workload", "speedup_over_eager", "RunResult", "Platform",
           "PLATFORMS", "CONSUMER", "DATACENTER", "get_platform"]
