"""Analytical device/host cost model (the paper's two platforms).

We have no GPUs, so figures are produced under a deterministic latency
model over the recorded kernel events:

* **device time** — per launch: fixed launch overhead plus
  ``max(bytes / bandwidth, flops / peak)`` (memory- vs compute-bound);
* **host time** — per-pipeline dispatch costs: eager framework dispatch
  per op, TorchScript interpreter steps, or TorchDynamo graph-break
  costs for control flow executed in Python (paper §5.3);
* **latency** — ``max(host, device)``: launches are asynchronous, so a
  launch-bound program is gated by whichever side is slower.

Parameters are calibrated to the public specs of the paper's machines
(GTX 1660 Ti + i7 "consumer"; RTX 3090 + Xeon 8369B "data center") and
to typical CUDA launch overheads; EXPERIMENTS.md reports how the modeled
*shapes* compare to the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..runtime.profiler import Profile


@dataclass(frozen=True)
class Platform:
    """One evaluation machine."""

    name: str
    label: str
    bandwidth_gb_s: float     # device memory bandwidth
    peak_gflops: float        # fp32 throughput
    launch_overhead_us: float  # per kernel launch (driver + queue)
    host_costs_us: Dict[str, float] = field(default_factory=dict)

    def device_time_us(self, profile: Profile,
                       device_penalty: float = 1.0) -> float:
        total = 0.0
        for ev in profile.events:
            mem_us = ev.bytes / (self.bandwidth_gb_s * 1e3)
            compute_us = ev.flops / (self.peak_gflops * 1e3)
            total += (self.launch_overhead_us
                      + max(mem_us, compute_us) * device_penalty)
        return total

    def host_time_us(self, profile: Profile, host_profile: str) -> float:
        costs = self.host_costs_us[host_profile]
        total = 0.0
        if host_profile == "eager":
            # every op call pays full framework dispatch (Python,
            # autograd bookkeeping, type dispatch)
            total += profile.num_launches * costs["per_launch"]
        for ev in profile.python_events:
            total += costs.get(ev.kind, 0.0) * ev.count
        return total

    def latency_us(self, profile: Profile,
                   host_profile: str = "interpreter",
                   device_penalty: float = 1.0) -> float:
        return max(self.device_time_us(profile, device_penalty),
                   self.host_time_us(profile, host_profile))


CONSUMER = Platform(
    name="consumer",
    label="GTX 1660 Ti (6GB) + Core i7-11700",
    bandwidth_gb_s=288.0,
    peak_gflops=5_437.0,
    launch_overhead_us=9.0,
    host_costs_us={
        # PyTorch eager: full framework dispatch per op call, plus a
        # queue drain whenever a scalar is read back
        "eager": {"per_launch": 14.0, "scalar_sync": 14.0},
        # TorchScript interpreter: per-node dispatch + loop bookkeeping
        "interpreter": {"interp_op": 1.6, "loop_iter": 2.5,
                        "branch": 1.8, "scalar_sync": 14.0},
        # Dynamo/Inductor: generated code (cheap per op); guard
        # evaluation per call, a Python re-entry per un-unrolled loop
        # iteration, and a full graph break on every scalar read
        "python": {"interp_op": 0.5, "loop_iter": 22.0, "branch": 22.0,
                   "guard_eval": 40.0, "scalar_sync": 22.0},
    },
)

DATACENTER = Platform(
    name="datacenter",
    label="RTX 3090 (24GB) + Xeon Platinum 8369B",
    bandwidth_gb_s=936.0,
    peak_gflops=35_580.0,
    launch_overhead_us=6.0,
    host_costs_us={
        "eager": {"per_launch": 10.0, "scalar_sync": 10.0},
        "interpreter": {"interp_op": 1.1, "loop_iter": 1.8,
                        "branch": 1.3, "scalar_sync": 10.0},
        "python": {"interp_op": 0.35, "loop_iter": 15.0, "branch": 15.0,
                   "guard_eval": 28.0, "scalar_sync": 15.0},
    },
)

PLATFORMS: Dict[str, Platform] = {p.name: p for p in (CONSUMER, DATACENTER)}


def get_platform(name: str) -> Platform:
    """Look up a platform config by name ('consumer' / 'datacenter')."""
    if name not in PLATFORMS:
        raise KeyError(f"unknown platform {name!r}; "
                       f"choose from {sorted(PLATFORMS)}")
    return PLATFORMS[name]
