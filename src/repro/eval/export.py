"""Export figure data as machine-readable artifacts.

``python -m repro.eval.export [outdir]`` writes one JSON file per
figure plus a combined ``summary.json`` (headline numbers), so plots and
regression dashboards can consume the reproduction without re-running
the sweeps.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict

from . import figures
from .report import geomean


def _jsonable(obj):
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def collect_all(fig7: bool = True, fig8: bool = True) -> Dict[str, object]:
    """Run every figure sweep (quietly) and gather the raw data."""
    data: Dict[str, object] = {
        "fig5": figures.fig5(echo=False),
        "fig6": figures.fig6(echo=False),
        "fig_mem": figures.fig_mem(echo=False),
        "intro_fraction": figures.intro_fraction(echo=False),
    }
    if fig7:
        data["fig7"] = figures.fig7(echo=False)
    if fig8:
        data["fig8"] = figures.fig8(echo=False)
    data["summary"] = summarize(data)
    return data


def summarize(data: Dict[str, object]) -> Dict[str, float]:
    """The §5.2 headline numbers from collected figure data."""
    ratios = []
    for plat_grid in data["fig5"].values():
        for speedups in plat_grid.values():
            best_baseline = max(
                v for k, v in speedups.items() if k != "tensorssa")
            ratios.append(speedups["tensorssa"] / best_baseline)
    return {
        "max_speedup_vs_best_baseline": max(ratios),
        "geomean_speedup_vs_best_baseline": geomean(ratios),
        "paper_max": 1.79,
        "paper_average": 1.34,
        "workload_platform_cells": len(ratios),
        "max_imperative_fraction": max(data["intro_fraction"].values()),
    }


def write_artifacts(outdir: str, data: Dict[str, object]) -> list:
    """Write each top-level entry of ``data`` to ``outdir/<name>.json``."""
    os.makedirs(outdir, exist_ok=True)
    written = []
    for name, payload in data.items():
        path = os.path.join(outdir, f"{name}.json")
        with open(path, "w") as fh:
            json.dump(_jsonable(payload), fh, indent=2, sort_keys=True)
        written.append(path)
    return written


def main(argv) -> None:
    """CLI entry point."""
    outdir = argv[0] if argv else "results"
    data = collect_all()
    for path in write_artifacts(outdir, data):
        print(f"wrote {path}")
    summary = data["summary"]
    print(f"headline: up to "
          f"{summary['max_speedup_vs_best_baseline']:.2f}x "
          f"(geomean {summary['geomean_speedup_vs_best_baseline']:.2f}x) "
          f"vs best baseline "
          f"[paper: {summary['paper_max']}x / {summary['paper_average']}x]")


if __name__ == "__main__":
    main(sys.argv[1:])
