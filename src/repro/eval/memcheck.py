"""Peak-memory regression gate for CI.

``python -m repro.eval.memcheck [baseline.json]`` re-measures the
TensorSSA pipeline's planned peak bytes per workload and compares
against the checked-in baseline (``results/fig_mem.json`` by default).
Exits non-zero when

* any workload's planned ``peak_bytes`` regresses more than 10% over
  the baseline (the planner lost reclamations), or
* the planner no longer achieves a >=30% peak reduction on the RNN/
  attention workloads the paper's memory argument rests on.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List

from .figures import fig_mem

#: tolerated growth of planned peak bytes over the baseline
REGRESSION_TOLERANCE = 0.10
#: workloads whose planned-vs-unplanned reduction must stay >= 30%
REDUCTION_FLOOR_WORKLOADS = ("lstm", "nasrnn", "attention")
REDUCTION_FLOOR = 0.30

DEFAULT_BASELINE = "results/fig_mem.json"


def check(baseline: Dict[str, Dict[str, float]],
          current: Dict[str, Dict[str, float]]) -> List[str]:
    """Compare a fresh fig_mem sweep against a baseline; returns the
    list of violations (empty means the gate passes)."""
    problems: List[str] = []
    for name, entry in baseline.items():
        if name not in current:
            problems.append(f"{name}: missing from current measurement")
            continue
        base_peak = float(entry["planned_peak_bytes"])
        cur_peak = float(current[name]["planned_peak_bytes"])
        if base_peak > 0 and cur_peak > base_peak * (1 +
                                                     REGRESSION_TOLERANCE):
            problems.append(
                f"{name}: planned peak regressed "
                f"{base_peak:,.0f} -> {cur_peak:,.0f} bytes "
                f"(> {REGRESSION_TOLERANCE:.0%} tolerance)")
    for name in REDUCTION_FLOOR_WORKLOADS:
        entry = current.get(name)
        if entry is None:
            problems.append(f"{name}: not measured")
            continue
        if float(entry["reduction"]) < REDUCTION_FLOOR:
            problems.append(
                f"{name}: peak reduction {float(entry['reduction']):.1%} "
                f"below the {REDUCTION_FLOOR:.0%} floor")
    return problems


def main(argv) -> int:
    """CLI entry point; returns the process exit code."""
    path = argv[0] if argv else DEFAULT_BASELINE
    with open(path) as fh:
        baseline = json.load(fh)
    current = fig_mem(echo=False)
    problems = check(baseline, current)
    for name, entry in sorted(current.items()):
        print(f"{name:>10}: planned {entry['planned_peak_bytes']:>12,.0f}B "
              f"(baseline {baseline.get(name, {}).get('planned_peak_bytes', 0):>12,.0f}B, "
              f"reduction {entry['reduction']:.1%})")
    if problems:
        print("\nMEMCHECK FAILED:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("\nmemcheck OK: no peak-memory regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
