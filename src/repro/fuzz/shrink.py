"""Delta-debugging shrinker for failing fuzz programs.

Given a program and a *predicate* ("does the failure still reproduce?"),
the shrinker greedily applies three semantics-shrinking rewrites until a
fixed point:

1. **statement removal** — delete any one :class:`~.generator.Stmt`
   (a whole ``if``/``for``/``while`` subtree counts as one statement;
   while-loop counter scaffolding lives in ``fixed_pre``/``fixed_head``
   and travels with its loop, so removal can never leave an
   unterminated loop behind);
2. **body hoisting** — replace a compound statement with the contents
   of its then-body or its else-body, deleting the branch or loop
   around them;
3. **trip-count reduction** — rewrite ``range(k)`` / ``while j < k``
   bounds downward (data-dependent ``range(n)`` collapses to
   ``range(1)``).

Every candidate is a fresh clone; a rewrite survives only if the
predicate still holds on it, so the result provably reproduces the
original failure (the *monotonicity* property `tests/test_fuzz.py`
asserts).  Candidates that break scoping (hoisting a body that used the
loop variable) simply fail the predicate — eager execution raises, the
oracle reports a different failure — and are discarded, which keeps the
rewrites themselves trivially simple.

Programs are a few dozen statements, so the greedy O(n²) loop is far
cheaper than one oracle evaluation; no ddmin cleverness needed.
"""

from __future__ import annotations

import re
from typing import Callable, List, Optional, Tuple

from .generator import FuzzProgram, Stmt
from .oracle import FuzzFailure, OracleConfig, run_oracle

__all__ = ["failure_predicate", "shrink"]

_RANGE_RE = re.compile(r"range\((\d+|n)\)")
_WHILE_RE = re.compile(r"^(while \w+ < )(\d+)(:)$")


def failure_predicate(failure: FuzzFailure,
                      config: Optional[OracleConfig] = None
                      ) -> Callable[[FuzzProgram], bool]:
    """Predicate for :func:`shrink`: the *same kind* of failure on the
    *same pipeline* still reproduces (checking only that pipeline keeps
    shrinking cheap)."""
    base = config or OracleConfig()
    if failure.pipeline in ("eager-reference", "<generator>"):
        pipelines = base.pipelines
    else:
        # keep any matching pipeline *instance* from the config (tests
        # inject unregistered, deliberately-broken pipelines); fall back
        # to resolving the name through the registry
        instances = [p for p in (base.pipelines or ())
                     if not isinstance(p, str)
                     and getattr(p, "name", None) == failure.pipeline]
        pipelines = instances or [failure.pipeline]
    cfg = OracleConfig(pipelines=pipelines,
                       check_graph=base.check_graph,
                       check_roundtrip=base.check_roundtrip,
                       variants=base.variants)

    # for error kinds, pin the exception type too: otherwise dropping a
    # definition but not its use "reproduces" any runtime error as a
    # shrinker-made NameError
    error_type = failure.detail.split(":", 1)[0] \
        if failure.kind in ("runtime-error", "compile-error") else None

    def predicate(program: FuzzProgram) -> bool:
        got = run_oracle(program, cfg)
        if got is None or got.kind != failure.kind \
                or got.pipeline != failure.pipeline:
            return False
        return error_type is None or \
            got.detail.split(":", 1)[0] == error_type

    return predicate


def _resolve(program: FuzzProgram,
             path: Tuple) -> Tuple[List[Stmt], int]:
    """The (container-list, index) a walk path points at."""
    container: List[Stmt] = program.stmts
    stmt: Optional[Stmt] = None
    for kind, idx in path:
        if kind == "top":
            container = program.stmts
        elif kind == "body":
            assert stmt is not None
            container = stmt.body
        else:
            assert stmt is not None
            container = stmt.orelse
        stmt = container[idx]
    return container, path[-1][1]


def _candidates(program: FuzzProgram):
    """Yield (description, candidate) programs one rewrite away."""
    for path, stmt in program.walk():
        # 1. drop the statement (subtree and all)
        cand = program.clone()
        container, idx = _resolve(cand, path)
        del container[idx]
        yield f"drop {stmt.line!r}", cand

        if stmt.is_compound:
            # 2. hoist the then-body / else-body over the construct
            for attr in ("body", "orelse"):
                inner = getattr(stmt, attr)
                if not inner:
                    continue
                cand = program.clone()
                container, idx = _resolve(cand, path)
                hoisted = getattr(container[idx], attr)
                container[idx:idx + 1] = hoisted
                yield f"hoist {attr} of {stmt.line!r}", cand

            # 3. cut the trip count
            line = stmt.line
            m = _WHILE_RE.match(line)
            if m and int(m.group(2)) > 1:
                new_line = f"{m.group(1)}{int(m.group(2)) - 1}{m.group(3)}"
            else:
                rm = _RANGE_RE.search(line)
                if rm is None:
                    continue
                bound = rm.group(1)
                if bound == "n":
                    new_line = line.replace("range(n)", "range(1)", 1)
                elif int(bound) > 1:
                    new_line = line.replace(f"range({bound})",
                                            f"range({int(bound) - 1})", 1)
                else:
                    continue
            cand = program.clone()
            container, idx = _resolve(cand, path)
            container[idx].line = new_line
            yield f"cut trips: {line!r} -> {new_line!r}", cand


def shrink(program: FuzzProgram,
           predicate: Callable[[FuzzProgram], bool],
           max_steps: int = 2000,
           log: Optional[Callable[[str], None]] = None) -> FuzzProgram:
    """Smallest program (greedy fixed point) on which ``predicate``
    still holds.  ``predicate(program)`` must be True on entry —
    otherwise there is nothing to preserve and the input is returned
    unchanged."""
    if not predicate(program):
        return program
    current = program
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for desc, cand in _candidates(current):
            steps += 1
            if steps >= max_steps:
                break
            if predicate(cand):
                if log is not None:
                    log(f"shrink: {desc} "
                        f"({cand.num_statements()} stmts left)")
                current = cand
                improved = True
                break  # restart candidate enumeration on the new program
    return current
