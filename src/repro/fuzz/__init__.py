"""repro.fuzz — differential fuzzing of the compiler stack.

Three cooperating pieces (mirroring the randomized-validation loops of
torch.fx and TensorIR):

* :mod:`generator` — a seeded random *imperative program* generator.
  Programs are frontend-scriptable Python source over the runtime
  tensor API: view chains, in-place mutation through views, ``if``/
  ``for``/``while`` control flow, and compute ops drawn from the
  operator registry's machine-readable :class:`~repro.ops.schema.
  GenRule` metadata.
* :mod:`oracle` — runs one program through eager and every registered
  pipeline, demanding bit-exact outputs, intact input-mutation
  semantics, structural graph invariants (including the mutation
  conventions of :func:`repro.ir.verify_mutations`), printer/parser
  round-trips, and profiler conservation laws.
* :mod:`shrink` — delta-debugs a failing program to a minimal repro by
  dropping statements, hoisting control-flow bodies, and cutting loop
  trip counts while the failure keeps reproducing.

``python -m repro.tools.fuzz`` drives the loop from the command line;
minimized findings land in ``tests/corpus/`` as standing regression
tests.
"""

from .generator import FuzzProgram, ProgramGenerator, Stmt, generate_program
from .oracle import (FuzzFailure, OracleConfig, materialize, run_oracle,
                     scripted_node_count)
from .shrink import failure_predicate, shrink

__all__ = [
    "FuzzProgram", "ProgramGenerator", "Stmt", "generate_program",
    "FuzzFailure", "OracleConfig", "materialize", "run_oracle",
    "scripted_node_count", "failure_predicate", "shrink",
]
