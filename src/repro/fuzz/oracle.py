"""Differential oracle: one program, every pipeline, bit-exact or bust.

For a generated (or corpus) program the oracle:

1. materializes the source and runs it *eagerly* — the reference
   semantics — over several ``(flag, n)`` input variants that cover
   both branch arms and zero-trip loops;
2. compiles it through every requested pipeline (shape-specializing
   pipelines recompile per variant, mirroring the harness's cache key)
   and demands **bit-exact** outputs — all pipelines bottom out in the
   same numpy kernels, so even fused/planned execution must agree to
   the last ulp;
3. re-checks caller-visible *input mutation semantics* (a program that
   only mutates its internal clone must leave ``x`` untouched in every
   pipeline);
4. verifies the compiled graph structurally (:func:`repro.ir.verify`),
   checks the TensorSSA mutation conventions
   (:func:`repro.ir.verify_mutations`) on functionalized graphs, and
   optionally demands the printer/parser round-trip be a fixed point;
5. asserts profiler conservation laws — a memory pool may only reuse
   bytes that were previously released (``bytes_reused <=
   bytes_freed``), and the arena peak equals fresh growth;
6. replays the program at several *row extents* through the symbolic
   shape-family path (``repro.symshape``): all extents must resolve to
   **one** family on the TensorSSA pipeline (first ``new``, rest
   ``hit``) and the single compiled artifact must stay bit-exact
   against eager at every extent — the fuzzed counterpart of the
   serving layer's duck-shaped compile cache;
7. builds the **backward graph** of differentiable programs
   (``repro.grad``) and demands the optimized backward be bit-exact
   with the raw interpreted backward at every variant, and the
   interpreted backward match central finite differences at float64
   (kinked elements skipped) — programs ``grad()`` refuses with a
   typed :class:`~repro.errors.GradError` are skipped, not failed.

Any violation is returned as a :class:`FuzzFailure` (never raised), so
the driving loop can hand it straight to the shrinker.
"""

from __future__ import annotations

import itertools
import linecache
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

import repro.runtime as rt
from ..frontend import script
from ..frontend.errors import ScriptError
from ..ir import parse_graph, print_graph, verify, verify_mutations
from ..ir.verifier import VerificationError
from ..pipelines import registry as pipeline_registry
from ..pipelines.base import Pipeline
from ..symshape.family import FamilyTable, compiling_family
from .generator import FuzzProgram, PROGRAM_COLS, make_inputs

__all__ = ["CorpusProgram", "FuzzFailure", "OracleConfig",
           "all_pipeline_names", "materialize", "run_oracle",
           "scripted_node_count"]

_materialize_counter = itertools.count()


def all_pipeline_names() -> List[str]:
    """Every registered pipeline, ablations included."""
    names = [p.name for p in pipeline_registry.default_pipelines()]
    names += [p.name for p in pipeline_registry.extra_pipelines()
              if p.name not in names]
    return names


def materialize(source: str, name: str = "f") -> Callable:
    """Compile program source into a callable whose source stays
    fetchable (``linecache``-registered) for the scripting frontend."""
    filename = f"<fuzz_prog_{next(_materialize_counter)}>"
    linecache.cache[filename] = (len(source), None,
                                 source.splitlines(True), filename)
    namespace = {"rt": rt}
    exec(compile(source, filename, "exec"), namespace)  # noqa: S102
    return namespace[name]


def scripted_node_count(program: FuzzProgram) -> int:
    """IR size of the program as captured by the frontend."""
    graph = script(materialize(program.source, program.name)).graph
    return sum(1 for _ in graph.walk())


@dataclass
class CorpusProgram:
    """A program restored from saved source (a ``tests/corpus/`` entry)
    rather than a generator statement tree.  Anything with ``seed``,
    ``source`` and ``name`` satisfies the oracle's program protocol."""

    seed: int
    source: str
    name: str = "f"


@dataclass
class OracleConfig:
    """What to check and against which pipelines."""

    #: pipeline names or ready :class:`Pipeline` instances (instances
    #: let tests inject deliberately-broken pipelines); None: all
    pipelines: Optional[Sequence] = None
    check_graph: bool = True
    check_roundtrip: bool = True
    #: replay at several row extents through one shape family (check 6)
    check_families: bool = True
    #: row extents for the family replay; first one seeds the family
    family_extents: Tuple[int, ...] = (4, 6, 8)
    #: build the backward graph, FD grad-check it, and demand the
    #: optimized backward be bit-exact with the interpreted one (check 7)
    check_grad: bool = True
    #: elements sampled per input by the check-7 FD grad-check
    grad_samples: int = 4
    #: (flag, n) input variants; None uses the generator's defaults
    variants: Optional[Sequence[Tuple[bool, int]]] = None


@dataclass
class FuzzFailure:
    """One divergence between a pipeline and eager semantics."""

    program: FuzzProgram
    pipeline: str
    kind: str       # compile-error | runtime-error | output-mismatch |
                    # input-mutation | graph-invariant | roundtrip |
                    # profile-invariant | family-split | grad-divergence
    detail: str
    variant: Optional[Tuple[bool, int]] = None
    ir: str = field(default="", repr=False)

    def describe(self) -> str:
        head = (f"[{self.pipeline}] {self.kind}"
                + (f" at (flag, n)={self.variant}" if self.variant else ""))
        parts = [head, self.detail.rstrip(),
                 "--- program ---", self.program.source.rstrip()]
        if self.ir:
            parts += ["--- compiled IR ---", self.ir.rstrip()]
        return "\n".join(parts)


def _to_numpy(value):
    if isinstance(value, rt.Tensor):
        return value.numpy()
    return np.asarray(value)


def _bit_equal(a: np.ndarray, b: np.ndarray) -> bool:
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    if np.issubdtype(a.dtype, np.floating):
        return bool(np.array_equal(a, b, equal_nan=True))
    return bool(np.array_equal(a, b))


def _diff_outputs(expected, got) -> Optional[str]:
    exp = expected if isinstance(expected, tuple) else (expected,)
    act = got if isinstance(got, tuple) else (got,)
    if len(exp) != len(act):
        return f"arity: expected {len(exp)} outputs, got {len(act)}"
    for i, (e, g) in enumerate(zip(exp, act)):
        ea, ga = _to_numpy(e), _to_numpy(g)
        if ea.shape != ga.shape:
            return f"output {i}: shape {ea.shape} != {ga.shape}"
        if ea.dtype != ga.dtype:
            return f"output {i}: dtype {ea.dtype} != {ga.dtype}"
        if not _bit_equal(ea, ga):
            with np.errstate(invalid="ignore"):
                delta = np.nanmax(np.abs(ea.astype(np.float64)
                                         - ga.astype(np.float64))) \
                    if np.issubdtype(ea.dtype, np.floating) else "n/a"
            return (f"output {i}: values diverge (max |delta| = {delta})\n"
                    f"expected:\n{ea}\ngot:\n{ga}")
    return None


def _check_graph(compiled, program: FuzzProgram,
                 config: OracleConfig) -> Optional[FuzzFailure]:
    graph = compiled.graph
    if graph is None:
        return None
    ir_text = print_graph(graph)
    try:
        verify(graph)
        # Mutation conventions only bind once a pipeline claims to have
        # functionalized the program; graphs with deliberately-skipped
        # mutations keep imperative read-after-write semantics.
        if "functionalized" in compiled.stats:
            strict = compiled.stats.get("skipped_mutations", 0) == 0
            verify_mutations(graph, strict=strict)
    except VerificationError as exc:
        return FuzzFailure(program, compiled.pipeline, "graph-invariant",
                           str(exc), ir=ir_text)
    if config.check_roundtrip:
        try:
            reprinted = print_graph(parse_graph(ir_text))
        except Exception as exc:  # parse errors are findings, not crashes
            return FuzzFailure(program, compiled.pipeline, "roundtrip",
                               f"parse failed: {exc}", ir=ir_text)
        if reprinted != ir_text:
            return FuzzFailure(program, compiled.pipeline, "roundtrip",
                               "print -> parse -> print is not a fixed "
                               f"point\nreprinted:\n{reprinted}",
                               ir=ir_text)
    return None


def _check_profile(prof) -> Optional[str]:
    if prof.bytes_reused > prof.bytes_freed:
        return (f"pool reused {prof.bytes_reused}B but only "
                f"{prof.bytes_freed}B were ever freed")
    if prof.peak_bytes != prof.bytes_allocated:
        return (f"arena peak {prof.peak_bytes}B != fresh growth "
                f"{prof.bytes_allocated}B")
    return None


def _check_families(program: FuzzProgram, fn: Callable,
                    config: OracleConfig) -> Optional[FuzzFailure]:
    """Oracle check 6: many extents, one family, one artifact, bit-exact.

    Replays the program on the TensorSSA pipeline (the paper pipeline,
    whose artifacts are shape-polymorphic) at each row extent in
    ``config.family_extents``, resolving every extent's input signature
    against one private :class:`~repro.symshape.FamilyTable`.  The
    first extent must mint the family (outcome ``new``); every later
    extent must land in it (outcome ``hit``) and be served by the
    artifact compiled at the first extent, bit-exactly.

    Generated programs may hard-code row windows (``y[0:4]``) whose
    *eager* semantics only hold near the generator's shape — an extent
    where the eager reference itself raises is skipped rather than
    reported, because the family contract only covers shapes the
    program is defined on.
    """
    pipe = pipeline_registry.get_pipeline("tensorssa")
    _, default_variants = make_inputs(program.seed)
    flag, n = list(config.variants or default_variants)[0]
    families = FamilyTable()
    compiled = None
    seed_family = None
    step = 0
    for rows in config.family_extents:
        rng = np.random.RandomState((program.seed ^ 0x5EED) + rows)
        x_data = rng.uniform(-1.0, 1.0,
                             size=(rows, PROGRAM_COLS)).astype(np.float32)
        try:
            expected = fn(rt.from_numpy(x_data), flag, n)
        except Exception:
            if step == 0:
                return None  # not even the seed extent is runnable
            continue  # program not shape-polymorphic at this extent
        signature = ((rows, PROGRAM_COLS), flag, n)
        family, outcome = families.resolve((pipe.name, program.name),
                                           signature)
        expect = "new" if step == 0 else "hit"
        if outcome != expect:
            detail = (f"extent rows={rows} resolved as {outcome!r} "
                      f"(expected {expect!r})")
            if seed_family is not None:
                detail += f"; seed family was {seed_family.describe()}"
            return FuzzFailure(program, pipe.name, "family-split", detail,
                               variant=(flag, n))
        if step == 0:
            seed_family = family
            try:
                try:
                    with compiling_family(family):
                        compiled = pipe.compile(
                            fn, example_args=(rt.from_numpy(x_data),
                                              flag, n))
                finally:
                    family.seal()
            except Exception as exc:
                return FuzzFailure(program, pipe.name, "compile-error",
                                   f"family compile: "
                                   f"{type(exc).__name__}: {exc}",
                                   variant=(flag, n))
        try:
            got = compiled(rt.from_numpy(x_data), flag, n)
        except Exception as exc:
            return FuzzFailure(program, pipe.name, "runtime-error",
                               f"family artifact at rows={rows}: "
                               f"{type(exc).__name__}: {exc}",
                               variant=(flag, n))
        mismatch = _diff_outputs(expected, got)
        if mismatch is not None:
            return FuzzFailure(
                program, pipe.name, "output-mismatch",
                f"family artifact (compiled at rows="
                f"{config.family_extents[0]}) diverges at rows={rows}: "
                f"{mismatch}", variant=(flag, n))
        step += 1
    return None


def _check_grad(program: FuzzProgram, fn: Callable,
                config: OracleConfig) -> Optional[FuzzFailure]:
    """Oracle check 7: the backward graph is correct twice over.

    For differentiable generated programs this builds the backward
    graph through the TensorSSA pipeline and demands:

    (a) the optimized backward (full pass pipeline + memory plan) be
        **bit-exact** with the raw interpreted backward graph at
        float32, for every input variant — fusion/parallelization/
        planning may not change a single ulp of a gradient;
    (b) the interpreted backward, evaluated at float64, match central
        finite differences of the program's sum-of-tensor-outputs
        loss within the float64 tolerances (kinks and perturbation-
        flipped branches are detected via one-sided differences and
        skipped — FD is meaningless at a non-smooth point).

    Programs the gradient pass *refuses* (a typed
    :class:`~repro.errors.GradError`: residual mutations the
    conversion skipped, a non-differentiable op on a demanded path)
    are not failures — check 7 only binds where grad() accepts.
    """
    from ..errors import GradError
    from ..grad.check import GradCheckConfig, gradcheck
    from ..runtime.creation import promoting_f32_to
    from ..runtime.dtype import float64

    pipe = pipeline_registry.get_pipeline("tensorssa")
    x_data, default_variants = make_inputs(program.seed)
    variants = list(config.variants or default_variants)

    try:
        compiled = pipe.compile_grad(fn)
    except GradError:
        return None  # legitimately non-differentiable: nothing to check
    except Exception as exc:
        return FuzzFailure(program, pipe.name, "grad-divergence",
                           f"backward compile crashed (not a typed "
                           f"GradError): {type(exc).__name__}: {exc}")
    reference = compiled.stats["grad_reference"]
    ir_text = print_graph(compiled.graph) if compiled.graph else ""

    # (a) optimized vs interpreted backward: bit-exact at float32
    for flag, n in variants:
        try:
            got = compiled(rt.from_numpy(x_data), flag, n)
            want = reference(rt.from_numpy(x_data), flag, n)
        except Exception as exc:
            return FuzzFailure(program, pipe.name, "grad-divergence",
                               f"backward execution raised: "
                               f"{type(exc).__name__}: {exc}",
                               variant=(flag, n), ir=ir_text)
        mismatch = _diff_outputs(want, got)
        if mismatch is not None:
            return FuzzFailure(
                program, pipe.name, "grad-divergence",
                "optimized backward diverges from interpreted "
                f"backward: {mismatch}", variant=(flag, n), ir=ir_text)

    # (b) interpreted backward vs central finite differences at float64
    x64 = x_data.astype(np.float64)
    flag, n = variants[0]

    def loss(xt, flag_, n_) -> float:
        with promoting_f32_to(float64):
            outs = fn(xt.clone(), flag_, n_)
        outs = outs if isinstance(outs, tuple) else (outs,)
        return sum(float(o.sum()) for o in outs
                   if isinstance(o, rt.Tensor))

    with promoting_f32_to(float64):
        grads = reference(rt.from_numpy(x64), flag, n)
    grads = grads if isinstance(grads, tuple) else (grads,)
    result = gradcheck(loss, (rt.from_numpy(x64), flag, n), list(grads),
                       wrt=[0],
                       config=GradCheckConfig(
                           samples_per_input=config.grad_samples,
                           seed=program.seed))
    if not result.ok:
        return FuzzFailure(
            program, pipe.name, "grad-divergence",
            "analytic gradient diverges from central finite "
            f"differences (max rel err {result.max_rel_err:.3g}, "
            f"{result.checked} checked, {result.skipped} kinks "
            "skipped):\n" + "\n".join(result.failures[:5]),
            variant=(flag, n), ir=ir_text)
    return None


def _pipeline_instances(config: OracleConfig) -> List[Pipeline]:
    names = config.pipelines or all_pipeline_names()
    return [pipeline_registry.get_pipeline(n) if isinstance(n, str) else n
            for n in names]


def run_oracle(program: FuzzProgram,
               config: Optional[OracleConfig] = None
               ) -> Optional[FuzzFailure]:
    """Run the full oracle stack; the first violation found, or None."""
    config = config or OracleConfig()
    x_data, default_variants = make_inputs(program.seed)
    variants = list(config.variants or default_variants)

    try:
        fn = materialize(program.source, program.name)
    except SyntaxError as exc:
        return FuzzFailure(program, "<generator>", "compile-error",
                           f"generated source does not parse: {exc}")

    # -- eager reference ------------------------------------------------
    reference = []
    for flag, n in variants:
        x = rt.from_numpy(x_data)
        try:
            expected = fn(x, flag, n)
        except Exception as exc:
            return FuzzFailure(program, "eager-reference", "runtime-error",
                               f"{type(exc).__name__}: {exc}",
                               variant=(flag, n))
        reference.append((expected, x.numpy()))

    for pipe in _pipeline_instances(config):
        compiled = None
        for (flag, n), (expected, x_after) in zip(variants, reference):
            x = rt.from_numpy(x_data)
            if compiled is None or pipe.needs_example_inputs:
                try:
                    compiled = pipe.compile(
                        fn, example_args=(rt.from_numpy(x_data), flag, n))
                except (ScriptError, Exception) as exc:
                    return FuzzFailure(
                        program, pipe.name, "compile-error",
                        f"{type(exc).__name__}: {exc}", variant=(flag, n))
                if config.check_graph:
                    failure = _check_graph(compiled, program, config)
                    if failure is not None:
                        failure.variant = (flag, n)
                        return failure
            ir_text = print_graph(compiled.graph) if compiled.graph \
                else ""
            try:
                with rt.profile() as prof:
                    got = compiled(x, flag, n)
            except Exception as exc:
                return FuzzFailure(program, pipe.name, "runtime-error",
                                   f"{type(exc).__name__}: {exc}",
                                   variant=(flag, n), ir=ir_text)
            mismatch = _diff_outputs(expected, got)
            if mismatch is not None:
                return FuzzFailure(program, pipe.name, "output-mismatch",
                                   mismatch, variant=(flag, n), ir=ir_text)
            if not _bit_equal(x.numpy(), x_after):
                return FuzzFailure(
                    program, pipe.name, "input-mutation",
                    f"input x state diverged from eager\n"
                    f"eager:\n{x_after}\npipeline:\n{x.numpy()}",
                    variant=(flag, n), ir=ir_text)
            profile_issue = _check_profile(prof)
            if profile_issue is not None:
                return FuzzFailure(program, pipe.name, "profile-invariant",
                                   profile_issue, variant=(flag, n),
                                   ir=ir_text)

    if config.check_families:
        failure = _check_families(program, fn, config)
        if failure is not None:
            return failure

    if config.check_grad:
        failure = _check_grad(program, fn, config)
        if failure is not None:
            return failure
    return None
