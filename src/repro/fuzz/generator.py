"""Seeded random imperative-program generator.

Emits *frontend-scriptable Python source*: the same program class the
paper motivates (Figure 1) — tensors mutated partially through view
chains, under data- and argument-dependent control flow — which is
exactly where hand-written tests have the worst coverage.

Design rules
------------
* **Registry-driven.**  Compute and mutation statements draw their ops
  from :func:`repro.ops.registry.all_ops` filtered on the schema's
  :class:`~repro.ops.schema.GenRule`; adding a rule to the registry
  automatically widens the fuzzed surface.
* **Shape-aware.**  A scope tracks every readable tensor's shape;
  binary operands are drawn shape-compatibly (equal or numpy-
  broadcastable), stores draw width-matched windows.
* **Deterministic.**  All choices come from one ``random.Random(seed)``
  — the same seed always yields byte-identical source, so any corpus
  entry is reproducible from its seed alone.
* **Fresh-RHS stores.**  The right-hand side of every subscript store
  is a freshly-computed tensor (scalar or arithmetic result), never a
  raw view of the destination: numpy leaves overlapping same-buffer
  assignment unspecified, and the differential oracle must only ever
  see programs whose *eager* semantics are well-defined.
* **Bounded loops by construction.**  ``while`` statements render their
  counter init and increment as fixed (unshrinkable) lines so neither
  the generator nor the shrinker can produce a non-terminating program.

Generated programs all share the signature ``f(x, flag: bool, n: int)``
with ``x`` a float32 tensor of shape ``(4, 6)``, ``flag`` steering
branches and ``n`` (0..3) steering data-dependent trip counts, and
return ``(y, acc)`` where ``y`` is the mutated clone of ``x`` and
``acc`` accumulates snapshots (so a retroactively-changed snapshot —
the classic functionalization bug — is always observable).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ops import registry
from ..ops.schema import GenRule, OpSchema

__all__ = ["Stmt", "FuzzProgram", "ProgramGenerator", "generate_program",
           "PROGRAM_ROWS", "PROGRAM_COLS"]

#: shape of the program input ``x`` (rows x cols); row count bounds the
#: index space of generated loops (`for i in range(n)`, n <= 3 < rows)
PROGRAM_ROWS = 4
PROGRAM_COLS = 6


@dataclass
class Stmt:
    """One generated statement: a simple line, or a compound header with
    nested bodies.  ``fixed_pre``/``fixed_head`` carry scaffolding lines
    (while-loop counters) that render unconditionally — the shrinker
    removes whole ``Stmt`` nodes, so scaffolding can never be separated
    from the construct that needs it."""

    line: str
    body: List["Stmt"] = field(default_factory=list)
    orelse: List["Stmt"] = field(default_factory=list)
    #: lines rendered immediately before ``line`` at the same indent
    fixed_pre: List[str] = field(default_factory=list)
    #: lines rendered first inside ``body``'s indent
    fixed_head: List[str] = field(default_factory=list)

    @property
    def is_compound(self) -> bool:
        return self.line.endswith(":")

    def clone(self) -> "Stmt":
        return Stmt(self.line, [s.clone() for s in self.body],
                    [s.clone() for s in self.orelse],
                    list(self.fixed_pre), list(self.fixed_head))

    def render(self, out: List[str], indent: int) -> None:
        pad = "    " * indent
        for pre in self.fixed_pre:
            out.append(pad + pre)
        out.append(pad + self.line)
        if self.is_compound:
            inner = "    " * (indent + 1)
            for head in self.fixed_head:
                out.append(inner + head)
            for s in self.body:
                s.render(out, indent + 1)
            if not self.fixed_head and not self.body:
                out.append(inner + "pass")
            if self.orelse:
                out.append(pad + "else:")
                for s in self.orelse:
                    s.render(out, indent + 1)

    def walk(self, path: Tuple = ()) -> List[Tuple[Tuple, "Stmt"]]:
        """(path, stmt) pairs for this subtree; paths index into
        ``body``/``orelse`` via ("body", i) / ("orelse", i) steps."""
        found = [(path, self)]
        for i, s in enumerate(self.body):
            found.extend(s.walk(path + (("body", i),)))
        for i, s in enumerate(self.orelse):
            found.extend(s.walk(path + (("orelse", i),)))
        return found


@dataclass
class FuzzProgram:
    """A generated program: seed + statement tree, rendered on demand."""

    seed: int
    stmts: List[Stmt]
    name: str = "f"

    @property
    def source(self) -> str:
        lines = [f"def {self.name}(x, flag: bool, n: int):",
                 "    y = x.clone()",
                 "    acc = y * 0.0"]
        for s in self.stmts:
            s.render(lines, 1)
        lines.append("    return y, acc")
        return "\n".join(lines) + "\n"

    def clone(self) -> "FuzzProgram":
        return FuzzProgram(self.seed, [s.clone() for s in self.stmts],
                           self.name)

    def num_statements(self) -> int:
        return sum(len(s.walk()) for s in self.stmts)

    def walk(self) -> List[Tuple[Tuple, Stmt]]:
        found = []
        for i, s in enumerate(self.stmts):
            found.extend(s.walk((("top", i),)))
        return found


class _Scope:
    """Shape environment for one lexical block.  Lookups chain to the
    parent; definitions stay local, mirroring what the frontend carries
    across control-flow boundaries."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.tensors: Dict[str, Tuple[int, ...]] = {}
        #: loop index variables usable as a row subscript in this block
        self.row_indices: List[str] = []

    def all_tensors(self) -> Dict[str, Tuple[int, ...]]:
        merged: Dict[str, Tuple[int, ...]] = {}
        if self.parent is not None:
            merged.update(self.parent.all_tensors())
        merged.update(self.tensors)
        return merged

    def all_row_indices(self) -> List[str]:
        base = self.parent.all_row_indices() if self.parent else []
        return base + self.row_indices


class ProgramGenerator:
    """Draws one :class:`FuzzProgram` from a seed.

    ``max_nodes`` budgets the *scripted IR size*: statement emission
    stops once the estimated node count (~6 IR nodes per statement)
    reaches the budget, keeping oracle latency predictable.
    """

    MAX_DEPTH = 2  # control-flow nesting

    def __init__(self, seed: int, max_nodes: int = 96) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.max_nodes = max_nodes
        self._budget = max(3, max_nodes // 6)  # statements
        self._tmp = 0
        self._view = 0
        self._loopvar = 0
        self._whilevar = 0
        # op pools from the registry's machine-readable rules
        self.ew_unary: List[OpSchema] = []
        self.ew_binary: List[OpSchema] = []
        self.mutating: List[OpSchema] = []
        self.reductions: List[OpSchema] = []
        for schema in registry.all_ops():
            rule = schema.gen
            if rule is None:
                continue
            if rule.kind == "elementwise":
                (self.ew_binary if rule.arity == 2
                 else self.ew_unary).append(schema)
            elif rule.kind == "mutating":
                self.mutating.append(schema)
            elif rule.kind == "reduction":
                self.reductions.append(schema)
        for pool in (self.ew_unary, self.ew_binary, self.mutating,
                     self.reductions):
            pool.sort(key=lambda s: s.name)  # determinism across runs

    # -- small draws ----------------------------------------------------

    def scalar(self, rule: Optional[GenRule] = None) -> str:
        lo, hi = rule.scalar_range if rule is not None else (0.0, 2.0)
        mag = round(self.rng.uniform(lo, hi), 3)
        if lo > 0.0:  # bounded-away-from-zero draws keep their sign free
            return repr(mag if self.rng.random() < 0.5 else -mag)
        return repr(round(self.rng.uniform(-hi, hi), 3))

    def span(self, size: int) -> Tuple[int, int]:
        a = self.rng.randrange(size)
        b = self.rng.randint(a + 1, size)
        return a, b

    def fresh_tmp(self) -> str:
        self._tmp += 1
        return f"t{self._tmp - 1}"

    def fresh_view(self) -> str:
        self._view += 1
        return f"v{self._view - 1}"

    def _pick_operand(self, scope: _Scope,
                      shape: Tuple[int, ...]) -> Optional[str]:
        """A readable tensor of exactly ``shape``."""
        names = sorted(n for n, s in scope.all_tensors().items()
                       if s == shape)
        return self.rng.choice(names) if names else None

    def _pick_any(self, scope: _Scope) -> Tuple[str, Tuple[int, ...]]:
        tensors = scope.all_tensors()
        name = self.rng.choice(sorted(tensors))
        return name, tensors[name]

    # -- statement kinds ------------------------------------------------

    def _stmt_pure(self, scope: _Scope) -> Stmt:
        """``tK = <registry elementwise/reduction/matmul expr>``."""
        roll = self.rng.random()
        name = self.fresh_tmp()
        if roll < 0.15:
            src, _ = self._pick_any(scope)
            schema = self.rng.choice(self.reductions)
            scope.tensors[name] = ()
            return Stmt(f"{name} = {src}.{schema.method}()")
        if roll < 0.30:
            # matmul through a transpose view: (R,C)@(C,R) or (C,R)@(R,C)
            mat = self._pick_operand(scope, (PROGRAM_ROWS, PROGRAM_COLS))
            if mat is not None:
                if self.rng.random() < 0.5:
                    scope.tensors[name] = (PROGRAM_ROWS, PROGRAM_ROWS)
                    return Stmt(f"{name} = {mat}.matmul("
                                f"{mat}.transpose(0, 1))")
                scope.tensors[name] = (PROGRAM_COLS, PROGRAM_COLS)
                return Stmt(f"{name} = {mat}.transpose(0, 1)"
                            f".matmul({mat})")
        a, shape = self._pick_any(scope)
        if roll < 0.55 or not self.ew_binary:
            schema = self.rng.choice(self.ew_unary)
            args = ", ".join(self.scalar() for _ in
                             range(schema.gen.scalar_args))
            if schema.gen.scalar_args == 2:  # clamp: ordered bounds
                lo = round(self.rng.uniform(-1.5, 0.0), 3)
                hi = round(self.rng.uniform(0.0, 1.5), 3)
                args = f"{lo}, {hi}"
            scope.tensors[name] = shape
            return Stmt(f"{name} = {a}.{schema.method}({args})")
        schema = self.rng.choice(self.ew_binary)
        rule = schema.gen
        other: Optional[str] = None
        if rule.tensor_tensor and self.rng.random() < 0.6:
            other = self._pick_operand(scope, shape)
            if other is None and shape != ():
                other = self._pick_operand(scope, ())  # 0-d broadcasts
        if other is None:
            other = self.scalar(rule)
        scope.tensors[name] = shape
        return Stmt(f"{name} = {a}.{schema.method}({other})")

    def _mut_call(self, target: str, scope: _Scope,
                  shape: Tuple[int, ...]) -> str:
        schema = self.rng.choice(self.mutating)
        rule = schema.gen
        if rule.scalar_args == 2:
            lo = round(self.rng.uniform(-1.5, 0.0), 3)
            hi = round(self.rng.uniform(0.0, 1.5), 3)
            return f"{target}.{schema.method}({lo}, {hi})"
        if rule.scalar_args == 1:
            return f"{target}.{schema.method}({self.scalar()})"
        if rule.arity == 1:
            return f"{target}.{schema.method}()"
        other: Optional[str] = None
        if rule.tensor_tensor and self.rng.random() < 0.4:
            other = self._pick_operand(scope, shape)
        if other is None:
            other = self.scalar(rule)
        return f"{target}.{schema.method}({other})"

    def _stmt_mutate_whole(self, scope: _Scope) -> Stmt:
        target = self.rng.choice(["y", "acc"])
        return Stmt(self._mut_call(target, scope,
                                   (PROGRAM_ROWS, PROGRAM_COLS)))

    def _stmt_view_mutate(self, scope: _Scope) -> List[Stmt]:
        """``vK = y[a:b]`` (or a row) followed by an in-place op through
        the view — the canonical partial-mutation pattern."""
        name = self.fresh_view()
        if self.rng.random() < 0.5:
            a, b = self.span(PROGRAM_ROWS)
            shape = (b - a, PROGRAM_COLS)
            define = Stmt(f"{name} = y[{a}:{b}]")
        else:
            i = self.rng.randrange(PROGRAM_ROWS)
            shape = (PROGRAM_COLS,)
            define = Stmt(f"{name} = y[{i}]")
        scope.tensors[name] = shape
        return [define, Stmt(self._mut_call(name, scope, shape))]

    def _row_rhs(self, scope: _Scope) -> str:
        """A fresh (never raw-view) RHS for a row-shaped store."""
        roll = self.rng.random()
        if roll < 0.4:
            return self.scalar()
        j = self.rng.randrange(PROGRAM_ROWS)
        if roll < 0.7:
            return f"y[{j}] * {self.scalar()}"
        row = self._pick_operand(scope, (PROGRAM_COLS,))
        if row is not None:
            return f"{row} + {self.scalar()}"
        return f"y[{j}] + {self.scalar()}"

    def _stmt_store(self, scope: _Scope) -> Stmt:
        roll = self.rng.random()
        indices = scope.all_row_indices()
        if indices and roll < 0.35:
            idx = self.rng.choice(indices)
            return Stmt(f"y[{idx}] = {self._row_rhs(scope)}")
        if roll < 0.30:
            i = self.rng.randrange(PROGRAM_ROWS)
            return Stmt(f"y[{i}] = {self._row_rhs(scope)}")
        if roll < 0.50:
            i = self.rng.randrange(PROGRAM_ROWS)
            a, b = self.span(PROGRAM_COLS)
            return Stmt(f"y[{i}, {a}:{b}] = {self.scalar()}")
        if roll < 0.70:
            a, b = self.span(PROGRAM_ROWS)
            if self.rng.random() < 0.5:
                c = self.rng.randint(0, PROGRAM_ROWS - (b - a))
                rhs = f"y[{c}:{c + (b - a)}] * {self.scalar()}"
            else:
                rhs = self.scalar()
            return Stmt(f"y[{a}:{b}] = {rhs}")
        if roll < 0.85:
            a, b = self.span(PROGRAM_COLS)
            return Stmt(f"y[:, {a}:{b}] = {self.scalar()}")
        a, b = self.span(PROGRAM_ROWS)
        op = self.rng.choice(["+=", "-=", "*="])
        return Stmt(f"y[{a}:{b}] {op} {self.scalar()}")

    def _stmt_snapshot(self, scope: _Scope) -> Stmt:
        """``acc = acc + y * c``: freezes a value later mutations must
        not retroactively change (paper Figure 1's failure mode)."""
        src = self._pick_operand(scope, (PROGRAM_ROWS, PROGRAM_COLS)) or "y"
        return Stmt(f"acc = acc + {src} * {self.scalar()}")

    def _condition(self, scope: _Scope) -> str:
        roll = self.rng.random()
        if roll < 0.35:
            return self.rng.choice(["flag", "not flag"])
        if roll < 0.60:
            return self.rng.choice(["n > 1", "n == 0", "n >= 2"])
        i = self.rng.randrange(PROGRAM_ROWS)
        j = self.rng.randrange(PROGRAM_COLS)
        return f"y[{i}, {j}].item() > {self.scalar()}"

    def _stmt_if(self, scope: _Scope, depth: int) -> Stmt:
        stmt = Stmt(f"if {self._condition(scope)}:")
        stmt.body = self._gen_block(_Scope(scope), depth + 1,
                                    self.rng.randint(1, 2))
        if self.rng.random() < 0.6:
            stmt.orelse = self._gen_block(_Scope(scope), depth + 1,
                                          self.rng.randint(1, 2))
        return stmt

    def _stmt_for(self, scope: _Scope, depth: int) -> Stmt:
        var = f"i{self._loopvar}"
        self._loopvar += 1
        bound = "n" if self.rng.random() < 0.4 else \
            str(self.rng.randint(1, 3))
        stmt = Stmt(f"for {var} in range({bound}):")
        inner = _Scope(scope)
        inner.row_indices.append(var)
        stmt.body = self._gen_block(inner, depth + 1,
                                    self.rng.randint(1, 2))
        return stmt

    def _stmt_while(self, scope: _Scope, depth: int) -> Stmt:
        var = f"j{self._whilevar}"
        self._whilevar += 1
        trips = self.rng.randint(1, 3)
        stmt = Stmt(f"while {var} < {trips}:",
                    fixed_pre=[f"{var} = 0"],
                    fixed_head=[f"{var} = {var} + 1"])
        stmt.body = self._gen_block(_Scope(scope), depth + 1,
                                    self.rng.randint(1, 2))
        return stmt

    # -- assembly -------------------------------------------------------

    def _gen_block(self, scope: _Scope, depth: int,
                   n_stmts: int) -> List[Stmt]:
        out: List[Stmt] = []
        for _ in range(n_stmts):
            if self._budget <= 0:
                break
            self._budget -= 1
            roll = self.rng.random()
            if roll < 0.18:
                out.append(self._stmt_pure(scope))
            elif roll < 0.34:
                out.append(self._stmt_mutate_whole(scope))
            elif roll < 0.52:
                out.extend(self._stmt_view_mutate(scope))
            elif roll < 0.72:
                out.append(self._stmt_store(scope))
            elif roll < 0.82:
                out.append(self._stmt_snapshot(scope))
            elif depth >= self.MAX_DEPTH:
                out.append(self._stmt_store(scope))
            elif roll < 0.90:
                out.append(self._stmt_if(scope, depth))
            elif roll < 0.96:
                out.append(self._stmt_for(scope, depth))
            else:
                out.append(self._stmt_while(scope, depth))
        return out

    def generate(self) -> FuzzProgram:
        top = _Scope()
        top.tensors["y"] = (PROGRAM_ROWS, PROGRAM_COLS)
        top.tensors["acc"] = (PROGRAM_ROWS, PROGRAM_COLS)
        n = self.rng.randint(3, max(4, self._budget))
        stmts = self._gen_block(top, 0, n)
        # every program ends with a snapshot so late mutations are
        # observable through acc even if y's final state masks them
        stmts.append(self._stmt_snapshot(top))
        return FuzzProgram(self.seed, stmts)


def generate_program(seed: int, max_nodes: int = 96) -> FuzzProgram:
    """The one-call entry point: seed -> deterministic program."""
    return ProgramGenerator(seed, max_nodes=max_nodes).generate()


def make_inputs(seed: int):
    """Deterministic input tensors for a program seed: the x payload
    plus (flag, n) variants covering both branches and zero-trip loops."""
    rng = np.random.RandomState(seed ^ 0x5EED)
    x = rng.uniform(-1.0, 1.0,
                    size=(PROGRAM_ROWS, PROGRAM_COLS)).astype(np.float32)
    variants = [(True, 2), (False, 3), (True, 0)]
    return x, variants
