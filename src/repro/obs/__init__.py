"""``repro.obs`` — structured tracing and metrics for the whole stack.

The observability layer the evaluation leans on: hierarchical wall-time
**spans** are emitted at every stage boundary (frontend scripting, each
``PassManager`` pass, compile-cache lookup/compile, memory planning,
fused-kernel execution, and the full serve request lifecycle), existing
profiler records (``KernelEvent``/``AllocEvent``) are bridged into the
span timeline as instant events, and a :class:`MetricsRegistry` of
counters/gauges/histograms backs the serving metrics.

Two halves:

* :mod:`repro.obs.trace` — the span collector.  ``tracing()`` installs
  a context-local :class:`Trace` sink (``global_tracing()`` installs a
  process-wide one so server worker threads report into it), and
  ``span("pass:fold_views")`` times a region.  When no sink is
  installed every entry point is a single ``contextvars`` read plus a
  global load — cheap enough for the hot path (the ``trace-smoke`` CI
  job gates the disabled-mode overhead at <5%).
* :mod:`repro.obs.metrics` — instruments.  :class:`Histogram` uses
  *seeded reservoir sampling* so percentiles stay representative of the
  whole run (not frozen on its oldest prefix), and
  :func:`percentile_nearest_rank` implements the true nearest-rank
  contract (``ceil(q/100*n)``, 1-indexed).

:mod:`repro.obs.export` renders a finished :class:`Trace` as
Chrome-trace JSON (``chrome://tracing`` / Perfetto ``traceEvents``
format) and validates the schema; ``python -m repro.tools.trace`` is
the CLI over all of it.
"""

from .metrics import (Counter, Gauge, Histogram, LabeledCounter,
                      MetricsRegistry, percentile_nearest_rank)
from .trace import (Instant, Span, Trace, active_trace, add_instant,
                    current_span, global_tracing, null_instrumentation,
                    span, tracing, tracing_active)
from .export import (chrome_trace, coverage_fraction, validate_chrome_trace,
                     write_chrome_trace)

__all__ = [
    "Span", "Instant", "Trace", "span", "add_instant", "tracing",
    "global_tracing", "active_trace", "tracing_active", "current_span",
    "null_instrumentation",
    "Counter", "Gauge", "Histogram", "LabeledCounter", "MetricsRegistry",
    "percentile_nearest_rank",
    "chrome_trace", "write_chrome_trace", "validate_chrome_trace",
    "coverage_fraction",
]
