"""Counters, gauges, and reservoir histograms behind a registry.

The serving layer's :class:`~repro.serve.stats.ServerStats` is backed
by these instruments instead of ad-hoc fields, so every metric has one
thread-safety story, one snapshot format, and one percentile
implementation.

Two statistics bugs this module exists to fix live here:

* :func:`percentile_nearest_rank` implements the true nearest-rank
  contract — the rank is ``ceil(q/100 * n)`` (1-indexed), so p50 of
  ``[1, 2, 3, 4]`` is 2.  The previous ``int(round(q/100 * (n-1)))``
  interpolation-index hybrid gave 3.
* :class:`Histogram` keeps a **seeded reservoir sample** (Vitter's
  Algorithm R): once the cap is reached, each new sample replaces a
  uniformly-random retained one, so the reservoir stays a uniform
  sample of the *whole* stream.  The previous behavior dropped every
  sample past the cap, freezing latency percentiles on the oldest
  prefix of a long run and hiding late-run regressions.
"""

from __future__ import annotations

import math
import random
import threading
from typing import Dict, List, Optional, Sequence

__all__ = [
    "percentile_nearest_rank", "Counter", "Gauge", "Histogram",
    "LabeledCounter", "MetricsRegistry",
]


def percentile_nearest_rank(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile: the value at rank ``ceil(q/100 * n)``
    (1-indexed) of the sorted samples; 0.0 on no samples.

    ``q=0`` returns the minimum, ``q=100`` the maximum, and every
    returned value is an actual member of ``samples`` (no
    interpolation) — the standard nearest-rank definition.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = math.ceil(q / 100.0 * len(ordered))
    rank = min(max(rank, 1), len(ordered))
    return ordered[rank - 1]


class Counter:
    """A monotonically-increasing count, safe across threads."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1)."""
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value with an optional high-water mark."""

    __slots__ = ("name", "_lock", "_value", "_peak")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0
        self._peak = 0.0

    def set(self, v: float) -> None:
        """Set the current value (and raise the peak if exceeded)."""
        with self._lock:
            self._value = v
            if v > self._peak:
                self._peak = v

    @property
    def value(self) -> float:
        """Last value set."""
        with self._lock:
            return self._value

    @property
    def peak(self) -> float:
        """Largest value ever set (high-water mark)."""
        with self._lock:
            return self._peak


class LabeledCounter:
    """A family of counters keyed by one label value (a histogram over
    discrete labels — batch sizes, fallback depths)."""

    __slots__ = ("name", "_lock", "_counts")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._counts: Dict[object, int] = {}

    def inc(self, label: object, n: int = 1) -> None:
        """Add ``n`` to the counter for ``label``."""
        with self._lock:
            self._counts[label] = self._counts.get(label, 0) + n

    def as_dict(self) -> Dict[object, int]:
        """Snapshot of label -> count."""
        with self._lock:
            return dict(self._counts)

    def __iter__(self):
        return iter(self.as_dict())

    @property
    def total(self) -> int:
        """Sum over all labels."""
        with self._lock:
            return sum(self._counts.values())


class Histogram:
    """A streaming sample distribution with a seeded reservoir.

    Keeps at most ``max_samples`` retained values.  Until the cap is
    reached every sample is retained; past it, sample ``i`` (0-based)
    replaces a uniformly-random retained slot with probability
    ``cap/(i+1)`` — Algorithm R, which keeps the reservoir a uniform
    random sample of everything ever recorded.  The RNG is seeded, so a
    single-threaded stream reproduces exactly.

    ``count``/``sum``/``mean`` are exact over the whole stream;
    :meth:`percentile` is computed over the reservoir (exact while the
    stream fits, an unbiased estimate after).
    """

    def __init__(self, name: str, max_samples: int = 100_000,
                 seed: int = 0) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.name = name
        self.max_samples = max_samples
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._samples: List[float] = []
        self._count = 0
        self._sum = 0.0

    def record(self, x: float) -> None:
        """Record one sample into the stream."""
        with self._lock:
            self._count += 1
            self._sum += x
            if len(self._samples) < self.max_samples:
                self._samples.append(x)
            else:
                j = self._rng.randrange(self._count)
                if j < self.max_samples:
                    self._samples[j] = x

    @property
    def count(self) -> int:
        """Total samples ever recorded (not just retained)."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Exact sum over the whole stream."""
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        """Exact stream mean (0.0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained reservoir."""
        with self._lock:
            samples = list(self._samples)
        return percentile_nearest_rank(samples, q)

    def samples(self) -> List[float]:
        """Copy of the retained reservoir (tests and exporters)."""
        with self._lock:
            return list(self._samples)


class MetricsRegistry:
    """A named collection of instruments with idempotent constructors.

    ``registry.counter("serve.submitted")`` returns the same
    :class:`Counter` on every call, so independent components can share
    instruments by name without passing objects around.  ``to_dict``
    snapshots everything JSON-ready.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind: type, factory):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = factory()
                self._instruments[name] = inst
            elif not isinstance(inst, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {kind.__name__}")
            return inst

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge, lambda: Gauge(name))

    def labeled_counter(self, name: str) -> LabeledCounter:
        """The labeled counter named ``name`` (created on first use)."""
        return self._get(name, LabeledCounter,
                         lambda: LabeledCounter(name))

    def histogram(self, name: str, max_samples: int = 100_000,
                  seed: Optional[int] = None) -> Histogram:
        """The histogram named ``name`` (created on first use; the
        reservoir RNG defaults to the registry seed)."""
        return self._get(
            name, Histogram,
            lambda: Histogram(name, max_samples=max_samples,
                              seed=self.seed if seed is None else seed))

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of every instrument."""
        with self._lock:
            instruments = dict(self._instruments)
        out: Dict[str, object] = {}
        for name, inst in sorted(instruments.items()):
            if isinstance(inst, Counter):
                out[name] = inst.value
            elif isinstance(inst, Gauge):
                out[name] = {"value": inst.value, "peak": inst.peak}
            elif isinstance(inst, LabeledCounter):
                out[name] = {str(k): v
                             for k, v in sorted(inst.as_dict().items(),
                                                key=lambda kv: str(kv[0]))}
            elif isinstance(inst, Histogram):
                out[name] = {
                    "count": inst.count, "sum": inst.sum,
                    "mean": inst.mean,
                    "p50": inst.percentile(50),
                    "p95": inst.percentile(95),
                    "p99": inst.percentile(99),
                }
        return out
