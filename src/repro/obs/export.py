"""Chrome-trace export and schema validation for :class:`Trace`.

Renders a finished trace as the ``chrome://tracing`` / Perfetto JSON
object format: one ``"X"`` (complete) event per span, one ``"i"``
(instant) event per bridged profiler record, and ``"M"`` metadata
events naming the threads.  Timestamps are microseconds relative to the
trace epoch (``Trace.t0_s``), so exports from the same seed are
byte-comparable except for the timing fields themselves.

:func:`validate_chrome_trace` is the schema gate the ``trace-smoke``
CI job runs, and :func:`coverage_fraction` measures how much of a
measured wall-clock window the top-level spans account for (the
acceptance bar is >= 95%).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .trace import Span, Trace

__all__ = ["chrome_trace", "write_chrome_trace", "validate_chrome_trace",
           "coverage_fraction"]

#: process id used for every event (one simulated device per trace)
_PID = 1


def _us(trace: Trace, t_s: float) -> float:
    """Seconds-since-epoch -> microseconds relative to the trace start."""
    return (t_s - trace.t0_s) * 1e6


def _tid_map(trace: Trace) -> Dict[int, int]:
    """OS thread idents -> small stable track numbers (first span wins)."""
    mapping: Dict[int, int] = {}
    for s in trace.spans:
        if s.tid not in mapping:
            mapping[s.tid] = len(mapping) + 1
    return mapping


def chrome_trace(trace: Trace) -> Dict[str, object]:
    """Render ``trace`` as a Chrome-trace JSON object.

    Spans become ``"X"`` complete events carrying ``span_id`` /
    ``parent_id`` in their args (Chrome's flat event list has no
    nesting of its own — the viewer reconstructs it from timestamps,
    tools from the ids); span instants become ``"i"`` thread-scoped
    instant events.
    """
    tids = _tid_map(trace)
    events: List[Dict[str, object]] = []
    names: Dict[int, str] = {}
    for s in trace.spans:
        tid = tids[s.tid]
        names.setdefault(tid, s.thread_name)
        args = dict(s.args)
        args["span_id"] = s.span_id
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        if s.error:
            args["error"] = s.error
        events.append({
            "name": s.name, "cat": s.cat or "default", "ph": "X",
            "ts": _us(trace, s.start_s), "dur": s.duration_s * 1e6,
            "pid": _PID, "tid": tid, "args": args,
        })
        for inst in s.instants:
            events.append({
                "name": inst.name, "cat": "event", "ph": "i", "s": "t",
                "ts": _us(trace, inst.t_s), "pid": _PID, "tid": tid,
                "args": dict(inst.args, span_id=s.span_id),
            })
    for inst in trace.orphan_instants:
        events.append({
            "name": inst.name, "cat": "event", "ph": "i", "s": "p",
            "ts": _us(trace, inst.t_s), "pid": _PID, "tid": 0,
            "args": dict(inst.args),
        })
    events.sort(key=lambda e: (e["ts"], e["tid"]))
    meta = [{"name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
             "args": {"name": f"repro:{trace.name}"}}]
    for tid, thread_name in sorted(names.items()):
        meta.append({"name": "thread_name", "ph": "M", "pid": _PID,
                     "tid": tid, "args": {"name": thread_name}})
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace.trace_id, "name": trace.name,
                      "seed": trace.seed, "spans": len(trace.spans)},
    }


def write_chrome_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Serialize :func:`chrome_trace` to ``path`` (parents created)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(chrome_trace(trace), indent=1) + "\n")
    return out


#: phases the validator accepts (complete, instant, metadata)
_VALID_PHASES = ("X", "i", "M")


def validate_chrome_trace(doc: Dict[str, object]) -> List[str]:
    """Every way ``doc`` violates the Chrome-trace object schema.

    Checks the contract ``chrome://tracing`` and Perfetto actually
    rely on: a ``traceEvents`` list whose members carry ``name``,
    ``ph``, ``ts``, ``pid`` and ``tid``; ``"X"`` events additionally a
    non-negative ``dur``; instant events a valid scope; and span
    ``parent_id`` references that resolve to an exported ``span_id``.
    An empty list means the document is valid.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    span_ids = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i} lacks {key!r}")
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"event {i} has unknown phase {ph!r}")
            continue
        if ph != "M" and not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"event {i} lacks a numeric ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i} ({ev.get('name')}) has "
                                f"invalid dur {dur!r}")
            sid = ev.get("args", {}).get("span_id")
            if not isinstance(sid, int):
                problems.append(f"event {i} ({ev.get('name')}) lacks "
                                f"args.span_id")
            else:
                span_ids.add(sid)
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            problems.append(f"event {i} has invalid instant scope "
                            f"{ev.get('s')!r}")
    for i, ev in enumerate(events):
        if isinstance(ev, dict) and ev.get("ph") == "X":
            parent = ev.get("args", {}).get("parent_id")
            if parent is not None and parent not in span_ids:
                problems.append(f"event {i} ({ev.get('name')}) references "
                                f"unknown parent span {parent}")
    return problems


def coverage_fraction(trace: Trace, window_s: Tuple[float, float],
                      spans: Optional[List[Span]] = None) -> float:
    """Fraction of the wall-clock window the given spans account for.

    ``window_s`` is a ``(start, end)`` pair of ``perf_counter``
    readings; ``spans`` defaults to the trace's root spans.  Overlap is
    measured as the *union* of the spans' intervals clipped to the
    window, so concurrent roots (serve workers) are not double-counted.
    """
    t0, t1 = window_s
    wall = t1 - t0
    if wall <= 0:
        return 0.0
    intervals = sorted(
        (max(s.start_s, t0), min(s.end_s, t1))
        for s in (trace.roots() if spans is None else spans))
    covered = 0.0
    cursor = t0
    for start, end in intervals:
        if end <= cursor:
            continue
        covered += end - max(start, cursor)
        cursor = end
    return covered / wall
