"""Hierarchical, context-local span tracing.

A :class:`Span` is one timed region of the pipeline ("pass:fuse",
"cache:compile", "serve:execute"); spans nest through a context-local
stack (:mod:`contextvars`, the same propagation design as the PR 3
profiler), so two threads tracing the same workload produce disjoint,
well-nested span trees inside one shared :class:`Trace` sink.

Usage::

    with tracing() as trace:
        with span("pipeline:compile", cat="compile", pipeline="tensorssa"):
            with span("pass:fuse", cat="compile"):
                ...
    trace.spans                       # finished spans, completion order
    chrome_trace(trace)               # export.py: chrome://tracing JSON

Sinks install two ways, mirroring :mod:`repro.faults`:

* :func:`tracing` — context-local; worker threads spawned elsewhere do
  **not** see it (isolation is the point);
* :func:`global_tracing` — process-global, so a live
  :class:`repro.serve.Server`'s workers report into one trace.

Overhead contract: with **no sink installed**, :func:`span` and
:func:`add_instant` return after one ``ContextVar.get`` plus a global
load — no allocation, no clock read.  The ``trace-smoke`` CI job holds
the instrumented-but-disabled stack within 5% of a fully bypassed run
(:func:`null_instrumentation` provides the bypass baseline).

Span ids are deterministic: a :class:`Trace` seeded with ``seed``
always hands out the same id sequence, so two runs of the same
single-threaded workload produce byte-identical exports (modulo
timestamps) — the property the trace regression tests pin.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span", "Instant", "Trace", "span", "add_instant", "tracing",
    "global_tracing", "active_trace", "tracing_active", "current_span",
    "null_instrumentation",
]


@dataclass
class Instant(object):
    """A zero-duration event pinned inside a span (e.g. one profiler
    ``KernelEvent`` bridged into the timeline)."""

    name: str
    t_s: float
    args: Dict[str, object] = field(default_factory=dict)


@dataclass
class Span:
    """One timed region of the pipeline.

    ``start_s``/``end_s`` are ``time.perf_counter`` readings;
    ``parent_id`` is ``None`` for roots; ``tid`` is the OS thread ident
    the span ran on (exporters remap it to small track numbers).
    """

    name: str
    cat: str
    span_id: int
    parent_id: Optional[int]
    tid: int
    thread_name: str
    start_s: float
    end_s: float = 0.0
    args: Dict[str, object] = field(default_factory=dict)
    instants: List[Instant] = field(default_factory=list)
    #: "" = clean exit; otherwise the exception type that unwound
    #: through the span (the span still closes — error paths are timed)
    error: str = ""

    @property
    def duration_s(self) -> float:
        """Wall time spent inside the span."""
        return max(0.0, self.end_s - self.start_s)


class Trace:
    """A thread-safe sink of finished spans.

    One trace collects spans from any number of threads; each span
    carries its thread ident so exporters can lay them out on separate
    tracks.  Ids are handed out deterministically from ``seed`` (the id
    sequence is a pure function of the allocation order), which keeps
    single-threaded exports reproducible run to run.
    """

    def __init__(self, name: str = "trace", seed: int = 0) -> None:
        self.name = name
        self.seed = seed
        #: stable run identifier derived from the seed
        self.trace_id = f"{(seed * 0x9E3779B1) & 0xFFFFFFFF:08x}"
        self.t0_s = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 1
        self.spans: List[Span] = []
        #: instants recorded outside any open span of their context
        self.orphan_instants: List[Instant] = []

    def next_span_id(self) -> int:
        """Allocate the next deterministic span id."""
        with self._lock:
            sid = self._next_id
            self._next_id += 1
            return sid

    def add_span(self, finished: Span) -> None:
        """Record one finished span (called by the ``span`` guard)."""
        with self._lock:
            self.spans.append(finished)

    def add_orphan(self, instant: Instant) -> None:
        """Record an instant that fired with no span open."""
        with self._lock:
            self.orphan_instants.append(instant)

    # -- reading --------------------------------------------------------

    def roots(self) -> List[Span]:
        """Finished spans with no parent, in completion order."""
        with self._lock:
            return [s for s in self.spans if s.parent_id is None]

    def children(self, parent: Span) -> List[Span]:
        """Finished direct children of ``parent``."""
        with self._lock:
            return [s for s in self.spans if s.parent_id == parent.span_id]

    def by_name(self, prefix: str) -> List[Span]:
        """Finished spans whose name starts with ``prefix``."""
        with self._lock:
            return [s for s in self.spans if s.name.startswith(prefix)]

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)

    def __repr__(self) -> str:
        return (f"Trace({self.name!r}, id={self.trace_id}, "
                f"spans={len(self)})")


#: Context-local sink (``tracing``) — never inherited by new threads.
_trace_var: ContextVar[Optional[Trace]] = ContextVar(
    "repro_trace_sink", default=None)
#: Process-global sink (``global_tracing``) — seen by every thread.
_global_trace: Optional[Trace] = None
#: The current context's open-span stack (outermost first).
_span_stack: ContextVar[Tuple[Span, ...]] = ContextVar(
    "repro_span_stack", default=())


def active_trace() -> Optional[Trace]:
    """The sink in effect for this context (context-local wins)."""
    trace = _trace_var.get()
    return trace if trace is not None else _global_trace


def tracing_active() -> bool:
    """Whether any sink (context-local or global) is installed."""
    return _trace_var.get() is not None or _global_trace is not None


def current_span() -> Optional[Span]:
    """The innermost open span of this context, or None."""
    stack = _span_stack.get()
    return stack[-1] if stack else None


@contextmanager
def tracing(trace: Optional[Trace] = None, name: str = "trace",
            seed: int = 0) -> Iterator[Trace]:
    """Install a :class:`Trace` sink for the current context only."""
    trace = trace if trace is not None else Trace(name=name, seed=seed)
    token = _trace_var.set(trace)
    try:
        yield trace
    finally:
        _trace_var.reset(token)


@contextmanager
def global_tracing(trace: Optional[Trace] = None, name: str = "trace",
                   seed: int = 0) -> Iterator[Trace]:
    """Install a sink process-wide (server worker threads report into
    it).  Not reentrant: nesting a second global sink raises."""
    global _global_trace
    if _global_trace is not None:
        raise RuntimeError("a global trace sink is already installed")
    trace = trace if trace is not None else Trace(name=name, seed=seed)
    _global_trace = trace
    try:
        yield trace
    finally:
        _global_trace = None


class _SpanGuard:
    """Context manager for one span; ``None``-like when tracing is off.

    A dedicated class (rather than ``@contextmanager``) keeps the
    disabled path allocation-free after the factory call and lets the
    enabled path stamp the clock as late/early as possible.
    """

    __slots__ = ("_span", "_trace", "_token")

    def __init__(self, span_obj: Optional[Span], trace: Optional[Trace]):
        self._span = span_obj
        self._trace = trace
        self._token = None

    def __enter__(self) -> Optional[Span]:
        span_obj = self._span
        if span_obj is None:
            return None
        self._token = _span_stack.set(_span_stack.get() + (span_obj,))
        span_obj.start_s = time.perf_counter()
        return span_obj

    def __exit__(self, exc_type, exc, tb) -> None:
        span_obj = self._span
        if span_obj is None:
            return
        span_obj.end_s = time.perf_counter()
        if exc_type is not None:
            span_obj.error = exc_type.__name__
        _span_stack.reset(self._token)
        self._trace.add_span(span_obj)


_NULL_GUARD = _SpanGuard(None, None)


def span(name: str, cat: str = "", **args) -> _SpanGuard:
    """Open a hierarchical span: ``with span("pass:fuse", cat="compile")``.

    No sink installed -> returns a shared null guard (no allocation, no
    clock read).  With a sink, the span nests under the context's
    current innermost span and is recorded on exit (clean or raising —
    an unwinding exception stamps ``Span.error`` with its type name).
    """
    trace = _trace_var.get()
    if trace is None:
        trace = _global_trace
        if trace is None:
            return _NULL_GUARD
    parent = current_span()
    ident = threading.get_ident()
    thread = threading.current_thread().name
    span_obj = Span(name=name, cat=cat, span_id=trace.next_span_id(),
                    parent_id=None if parent is None else parent.span_id,
                    tid=ident, thread_name=thread,
                    start_s=0.0, args=dict(args) if args else {})
    return _SpanGuard(span_obj, trace)


def add_instant(name: str, **args) -> None:
    """Attach a zero-duration event to the innermost open span.

    This is the bridge the profiler uses to pin ``KernelEvent`` /
    ``AllocEvent`` records onto the span timeline.  Without a sink it
    returns after the sink check; with a sink but no open span in this
    context the instant lands on the trace's orphan list.
    """
    trace = _trace_var.get()
    if trace is None:
        trace = _global_trace
        if trace is None:
            return
    instant = Instant(name=name, t_s=time.perf_counter(),
                      args=dict(args) if args else {})
    parent = current_span()
    if parent is None:
        trace.add_orphan(instant)
    else:
        parent.instants.append(instant)


@contextmanager
def null_instrumentation() -> Iterator[None]:
    """Bypass every ``span``/``add_instant`` call site in-process.

    The overhead microbench (``tools/trace --overhead-check``) uses
    this as its baseline: call sites resolve ``span`` through the
    module at call time, so swapping the module attributes measures the
    true cost of the *disabled* instrumentation against no
    instrumentation at all.
    """
    global span, add_instant, tracing_active
    saved = (span, add_instant, tracing_active)

    def _no_span(name: str, cat: str = "", **args) -> _SpanGuard:
        return _NULL_GUARD

    def _no_instant(name: str, **args) -> None:
        return None

    span, add_instant, tracing_active = _no_span, _no_instant, \
        (lambda: False)
    try:
        yield
    finally:
        span, add_instant, tracing_active = saved
