"""Graceful degradation: circuit breakers, bounded retries, fallback
ladder.

The ordered fallback chain is the spine: when a pipeline rung fails,
execution descends to a strictly simpler one —

    tensorssa -> tensorssa_noplan -> ts_nnc -> eager

each step trading optimization (memory planning, holistic
functionalization, compilation itself) for reliability, until eager
mode — plain Python over the runtime, no compiler in the loop — is the
floor.  All rungs are bit-exact against eager on identical inputs (the
differential-fuzzing contract), so degradation changes *cost*, never
*answers*.

Per-(workload, pipeline) :class:`CircuitBreaker` objects stop a failing
rung from eating every request's retry budget: past a failure-rate
threshold the breaker opens (requests skip the rung instantly), and
after a cooldown one half-open probe decides whether to close it again.
:class:`RetryPolicy` bounds in-rung retries with jittered exponential
backoff (seeded RNG — deterministic in tests).

Used by ``eval/harness.run_workload_resilient`` (single runs) and
``serve/executor.BatchExecutor`` (batched serving).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_LADDER", "fallback_chain",
    "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN",
    "CircuitBreaker", "BreakerRegistry", "RetryPolicy",
]

#: The full degradation ladder, most- to least-optimized.
DEFAULT_LADDER: Tuple[str, ...] = (
    "tensorssa", "tensorssa_noplan", "ts_nnc", "eager")


def fallback_chain(pipeline: str,
                   ladder: Optional[Tuple[str, ...]] = None
                   ) -> Tuple[str, ...]:
    """The ordered rungs a request for ``pipeline`` may be served by.

    A pipeline on the ladder gets the ladder from its own rung down; a
    pipeline off the ladder (e.g. ``dynamo_inductor``) gets itself plus
    the eager floor.  The chain always ends in ``eager``.
    """
    rungs = tuple(ladder) if ladder is not None else DEFAULT_LADDER
    if pipeline in rungs:
        chain = rungs[rungs.index(pipeline):]
    else:
        chain = (pipeline,) + tuple(r for r in rungs if r == "eager")
    if "eager" not in chain:
        chain = chain + ("eager",)
    return chain


#: Breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-rate circuit breaker with a timed half-open probe.

    Closed: calls flow; outcomes land in a sliding window, and once the
    window holds ``min_calls`` outcomes with a failure fraction at or
    above ``failure_rate``, the breaker opens.  Open: :meth:`allow`
    refuses until ``reset_timeout_s`` has elapsed, then transitions to
    half-open and admits exactly one probe.  The probe's outcome closes
    the breaker (success, window cleared) or re-opens it (failure).

    ``clock`` is injectable so tests drive time explicitly.
    """

    def __init__(self, failure_rate: float = 0.5, window: int = 8,
                 min_calls: int = 4, reset_timeout_s: float = 0.05,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.failure_rate = failure_rate
        self.window = window
        self.min_calls = min_calls
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self.state = BREAKER_CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self._opened_at = 0.0
        self._probe_out = False
        #: transition counts, e.g. {"closed->open": 2}
        self.transitions: Dict[str, int] = {}

    def _transition(self, to: str) -> None:
        key = f"{self.state}->{to}"
        self.transitions[key] = self.transitions.get(key, 0) + 1
        self.state = to

    def allow(self) -> bool:
        """May a call go through right now?  (Half-open admits one.)"""
        with self._lock:
            if self.state == BREAKER_CLOSED:
                return True
            if self.state == BREAKER_OPEN:
                if self._clock() - self._opened_at < self.reset_timeout_s:
                    return False
                self._transition(BREAKER_HALF_OPEN)
                self._probe_out = True
                return True
            # half-open: one outstanding probe at a time
            if self._probe_out:
                return False
            self._probe_out = True
            return True

    def record_success(self) -> None:
        with self._lock:
            if self.state == BREAKER_HALF_OPEN:
                self._transition(BREAKER_CLOSED)
                self._outcomes.clear()
                self._probe_out = False
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        with self._lock:
            if self.state == BREAKER_HALF_OPEN:
                self._transition(BREAKER_OPEN)
                self._opened_at = self._clock()
                self._probe_out = False
                return
            self._outcomes.append(False)
            if self.state != BREAKER_CLOSED:
                return
            total = len(self._outcomes)
            failures = sum(1 for ok in self._outcomes if not ok)
            if total >= self.min_calls \
                    and failures / total >= self.failure_rate:
                self._transition(BREAKER_OPEN)
                self._opened_at = self._clock()

    def __repr__(self) -> str:
        return f"CircuitBreaker(state={self.state})"


class BreakerRegistry:
    """Per-(workload, pipeline) breakers, created on first use."""

    def __init__(self, failure_rate: float = 0.5, window: int = 8,
                 min_calls: int = 4, reset_timeout_s: float = 0.05,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._kwargs = dict(failure_rate=failure_rate, window=window,
                            min_calls=min_calls,
                            reset_timeout_s=reset_timeout_s, clock=clock)
        self._lock = threading.Lock()
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}

    def breaker(self, workload: str, pipeline: str) -> CircuitBreaker:
        key = (workload, pipeline)
        with self._lock:
            b = self._breakers.get(key)
            if b is None:
                b = CircuitBreaker(**self._kwargs)
                self._breakers[key] = b
            return b

    def transitions(self) -> Dict[str, int]:
        """Transition counts summed across every breaker."""
        out: Dict[str, int] = {}
        with self._lock:
            breakers = list(self._breakers.values())
        for b in breakers:
            for key, n in b.transitions.items():
                out[key] = out.get(key, 0) + n
        return out

    def states(self) -> Dict[str, str]:
        with self._lock:
            return {f"{wl}/{pipe}": b.state
                    for (wl, pipe), b in self._breakers.items()}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with jittered exponential backoff.

    Attempt ``k`` (0-based retry index) sleeps ``base_delay_s * 2**k``,
    capped at ``max_delay_s``, then stretched by a jitter factor drawn
    uniformly from ``[1, 1 + jitter]`` — so the delay for retry ``k``
    always lies in ``[d_k, d_k * (1 + jitter)]`` with
    ``d_k = min(base * 2**k, max)``, the bound the tests pin.
    """

    max_retries: int = 1
    base_delay_s: float = 0.001
    max_delay_s: float = 0.05
    jitter: float = 0.5

    def delay_s(self, retry_index: int, rng) -> float:
        base = min(self.base_delay_s * (2 ** retry_index), self.max_delay_s)
        return base * (1.0 + self.jitter * rng.random())


#: The harness's shared breaker registry (reset by tests).
_default_registry = BreakerRegistry()
_default_registry_lock = threading.Lock()


def default_breakers() -> BreakerRegistry:
    """The process-wide registry ``run_workload_resilient`` uses when
    the caller does not inject one."""
    return _default_registry


def reset_breakers() -> None:
    """Replace the process-wide registry (test isolation)."""
    global _default_registry
    with _default_registry_lock:
        _default_registry = BreakerRegistry()


__all__ += ["default_breakers", "reset_breakers"]
