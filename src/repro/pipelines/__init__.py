"""repro.pipelines — the five compared compiler pipelines."""

from .base import Compiled, Pipeline, count_graph_stats
from .dynamo_inductor import DynamoInductorPipeline
from .eager import EagerPipeline
from .registry import default_pipelines, get_pipeline, pipelines_by_name
from .tensorssa_pipeline import TensorSSAPipeline
from .torchscript import TorchScriptNNCPipeline, TorchScriptNvFuserPipeline

__all__ = ["Pipeline", "Compiled", "count_graph_stats", "EagerPipeline",
           "TorchScriptNNCPipeline", "TorchScriptNvFuserPipeline",
           "DynamoInductorPipeline", "TensorSSAPipeline",
           "default_pipelines", "pipelines_by_name", "get_pipeline"]
