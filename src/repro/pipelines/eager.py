"""PyTorch-eager-style execution: the speedup baseline of Figure 5."""

from __future__ import annotations

from typing import Callable

from .base import Compiled, Pipeline


class EagerPipeline(Pipeline):
    """No compilation: the Python function runs op by op on the
    imperative runtime, one kernel launch per compute op plus framework
    dispatch overhead on every call."""

    name = "eager"
    label = "PyTorch Eager"
    host_profile = "eager"

    def compile(self, model_fn: Callable, example_args=None) -> Compiled:
        return Compiled(pipeline=self.name, fn=model_fn, graph=None,
                        stats={"note": "uncompiled"})
