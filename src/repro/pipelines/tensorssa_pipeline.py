"""The TensorSSA pipeline — the paper's system.

script -> TensorSSA conversion (Algorithm 1, holistic: crosses control
flow) -> cleanup -> horizontal parallelization (§4.2.2) -> vertical
fusion (§4.2.1) -> cleanup.

Ablation switches let the benchmarks quantify each technique:
``horizontal=False`` disables loop parallelization; ``vertical=False``
disables fusion; ``intra_block_only=True`` degrades the conversion to
data-flow-only functionalization (what tracing compilers achieve).
"""

from __future__ import annotations

from typing import Callable

from ..backend.interpreter import run_graph
from ..frontend import script
from ..ir import verify
from ..ir.clone import clone_graph
from ..memplan import get_or_build_plan
from ..obs import trace as obs_trace
from ..passes import (FuserConfig, PassManager, canonicalize, constant_fold,
                      cse, dce, fuse, parallelize_loops)
from ..passes.revert import revert_carried_assigns, revert_unfused_assigns
from ..symshape.family import active_family
from ..symshape.propagate import annotate_symbolic_shapes
from ..tensorssa import convert_to_tensorssa
from .base import Compiled, Pipeline, count_graph_stats


class TensorSSAPipeline(Pipeline):
    """The paper's pipeline: holistic functionalization, horizontal parallelization, vertical fusion (each ablatable)."""
    name = "tensorssa"
    label = "TensorSSA (ours)"
    host_profile = "interpreter"

    def __init__(self, vertical: bool = True, horizontal: bool = True,
                 intra_block_only: bool = False, revert_unfused: bool = True,
                 plan_memory: bool = True, name: str = None) -> None:
        self.vertical = vertical
        self.horizontal = horizontal
        self.intra_block_only = intra_block_only
        self.revert_unfused = revert_unfused
        self.plan_memory = plan_memory
        if name is not None:
            self.name = name

    supports_grad = True

    def compile(self, model_fn: Callable, example_args=None) -> Compiled:
        with obs_trace.span("pipeline:compile", cat="compile",
                            pipeline=self.name):
            return self._compile(model_fn, example_args)

    def compile_grad(self, model_fn: Callable, example_args=None,
                     wrt=None, out=None) -> Compiled:
        """Compile the backward of ``model_fn``.

        Functionalize, run the cleanup passes, differentiate
        (``grad()`` — a plain graph-to-graph pass, timed as
        ``pass:grad``), then push the backward graph through the *same*
        optimization pipeline and memory planner as any forward graph.
        The returned artifact's ``stats["grad_reference"]`` is a
        callable interpreting the raw (pre-optimization) backward
        clone — the harness's correctness oracle for the optimized
        backward.
        """
        from ..grad import grad

        with obs_trace.span("pipeline:compile", cat="compile",
                            pipeline=self.name, grad=True):
            scripted = script(model_fn)
            graph = clone_graph(scripted.graph, name=f"{self.name}_fwd")
            with obs_trace.span("tensorssa:convert", cat="compile"):
                report = convert_to_tensorssa(
                    graph, intra_block_only=self.intra_block_only)
            (PassManager()
             .add("dce", dce)
             .add("cse", cse)
             .add("constant_fold", constant_fold)
             .add("canonicalize", canonicalize)
             .run(graph))
            with obs_trace.span("pass:grad", cat="compile",
                                graph=graph.name):
                bwd = grad(graph, wrt=wrt, out=out)
                verify(bwd)
            reference = clone_graph(bwd, name=f"{self.name}_grad_ref")
            stats, plan = self._optimize(bwd)
            stats["functionalized"] = report.num_rewritten
            stats["skipped_mutations"] = len(report.skipped)
            stats["skip_reasons"] = report.skipped

            def run_reference(*args):
                outs = run_graph(reference, args)
                return outs[0] if len(outs) == 1 else tuple(outs)

            stats["grad_reference"] = run_reference

            def run(*args):
                outs = run_graph(bwd, args, plan=plan)
                return outs[0] if len(outs) == 1 else tuple(outs)

            return Compiled(pipeline=self.name, fn=run, graph=bwd,
                            stats=stats)

    def _compile(self, model_fn: Callable, example_args=None) -> Compiled:
        scripted = script(model_fn)
        graph = clone_graph(scripted.graph, name=self.name)
        with obs_trace.span("tensorssa:convert", cat="compile"):
            report = convert_to_tensorssa(
                graph, intra_block_only=self.intra_block_only)
        stats, plan = self._optimize(graph)
        stats["functionalized"] = report.num_rewritten
        stats["skipped_mutations"] = len(report.skipped)
        stats["skip_reasons"] = report.skipped

        def run(*args):
            outs = run_graph(graph, args, plan=plan)
            return outs[0] if len(outs) == 1 else tuple(outs)

        return Compiled(pipeline=self.name, fn=run, graph=graph,
                        stats=stats)

    def _optimize(self, graph):
        """The shared optimize-and-plan tail: cleanup passes,
        parallelization/fusion/revert per the ablation switches, then
        (symbolic) memory planning.  Returns ``(stats, plan)``."""
        pm = (PassManager()
              .add("dce", dce)
              .add("cse", cse)
              .add("constant_fold", constant_fold)
              .add("canonicalize", canonicalize))
        if self.horizontal:
            pm.add("parallelize", parallelize_loops)
        if self.revert_unfused:
            # before fusion: an in-place carried write must be a fusion
            # barrier, not a clone absorbed into a kernel (paper S3.2's
            # "either fused or converted back" — loops pick the latter)
            pm.add("revert_carried", revert_carried_assigns)
        if self.vertical:
            pm.add("fuse", lambda g: fuse(
                g, FuserConfig(name="tensorssa", fuse_views=True)))
        if self.revert_unfused:
            # paper S3.2: unfused Assigns may be converted back to the
            # original mutable operators (in-place buffer reuse)
            pm.add("revert", revert_unfused_assigns)
        pm.add("dce2", dce)
        results = pm.run(graph)
        verify(graph)
        stats = count_graph_stats(graph)
        stats["pass_results"] = {k: v for k, v in results.items()
                                 if isinstance(v, (int, bool))}
        if "__pass_metrics__" in results:
            stats["pass_metrics"] = results["__pass_metrics__"]

        plan = None
        if self.plan_memory:
            # under a shape-family compile, plan sizes symbolically:
            # propagate the family's duck-shaped input dims and price
            # best-fit hints at the family's max observed extents
            family = active_family()
            size_env = None
            if family is not None:
                annotate_symbolic_shapes(graph, family.input_symshapes())
                size_env = family.extent_bounds()
            plan = get_or_build_plan(graph, size_env=size_env)
            stats.update(plan.summary())
        return stats, plan
