"""The TensorSSA pipeline — the paper's system.

script -> TensorSSA conversion (Algorithm 1, holistic: crosses control
flow) -> cleanup -> horizontal parallelization (§4.2.2) -> vertical
fusion (§4.2.1) -> cleanup.

Ablation switches let the benchmarks quantify each technique:
``horizontal=False`` disables loop parallelization; ``vertical=False``
disables fusion; ``intra_block_only=True`` degrades the conversion to
data-flow-only functionalization (what tracing compilers achieve).
"""

from __future__ import annotations

from typing import Callable

from ..backend.interpreter import run_graph
from ..frontend import script
from ..ir import verify
from ..ir.clone import clone_graph
from ..memplan import get_or_build_plan
from ..obs import trace as obs_trace
from ..passes import (FuserConfig, PassManager, canonicalize, constant_fold,
                      cse, dce, fuse, parallelize_loops)
from ..passes.revert import revert_unfused_assigns
from ..symshape.family import active_family
from ..symshape.propagate import annotate_symbolic_shapes
from ..tensorssa import convert_to_tensorssa
from .base import Compiled, Pipeline, count_graph_stats


class TensorSSAPipeline(Pipeline):
    """The paper's pipeline: holistic functionalization, horizontal parallelization, vertical fusion (each ablatable)."""
    name = "tensorssa"
    label = "TensorSSA (ours)"
    host_profile = "interpreter"

    def __init__(self, vertical: bool = True, horizontal: bool = True,
                 intra_block_only: bool = False, revert_unfused: bool = True,
                 plan_memory: bool = True, name: str = None) -> None:
        self.vertical = vertical
        self.horizontal = horizontal
        self.intra_block_only = intra_block_only
        self.revert_unfused = revert_unfused
        self.plan_memory = plan_memory
        if name is not None:
            self.name = name

    def compile(self, model_fn: Callable, example_args=None) -> Compiled:
        with obs_trace.span("pipeline:compile", cat="compile",
                            pipeline=self.name):
            return self._compile(model_fn, example_args)

    def _compile(self, model_fn: Callable, example_args=None) -> Compiled:
        scripted = script(model_fn)
        graph = clone_graph(scripted.graph, name=self.name)
        with obs_trace.span("tensorssa:convert", cat="compile"):
            report = convert_to_tensorssa(
                graph, intra_block_only=self.intra_block_only)
        pm = (PassManager()
              .add("dce", dce)
              .add("cse", cse)
              .add("constant_fold", constant_fold)
              .add("canonicalize", canonicalize))
        if self.horizontal:
            pm.add("parallelize", parallelize_loops)
        if self.vertical:
            pm.add("fuse", lambda g: fuse(
                g, FuserConfig(name="tensorssa", fuse_views=True)))
        if self.revert_unfused:
            # paper S3.2: unfused Assigns may be converted back to the
            # original mutable operators (in-place buffer reuse)
            pm.add("revert", revert_unfused_assigns)
        pm.add("dce2", dce)
        results = pm.run(graph)
        verify(graph)
        stats = count_graph_stats(graph)
        stats["functionalized"] = report.num_rewritten
        stats["skipped_mutations"] = len(report.skipped)
        stats["skip_reasons"] = report.skipped
        stats["pass_results"] = {k: v for k, v in results.items()
                                 if isinstance(v, (int, bool))}
        if "__pass_metrics__" in results:
            stats["pass_metrics"] = results["__pass_metrics__"]

        plan = None
        if self.plan_memory:
            # under a shape-family compile, plan sizes symbolically:
            # propagate the family's duck-shaped input dims and price
            # best-fit hints at the family's max observed extents
            family = active_family()
            size_env = None
            if family is not None:
                annotate_symbolic_shapes(graph, family.input_symshapes())
                size_env = family.extent_bounds()
            plan = get_or_build_plan(graph, size_env=size_env)
            stats.update(plan.summary())

        def run(*args):
            outs = run_graph(graph, args, plan=plan)
            return outs[0] if len(outs) == 1 else tuple(outs)

        return Compiled(pipeline=self.name, fn=run, graph=graph,
                        stats=stats)
