"""Compiler pipeline interface.

A pipeline takes a Python model function and produces a ``Compiled``
callable.  All pipelines execute on the same simulated device runtime,
so kernel-launch counts (Figure 6) and modeled latencies (Figures 5/7/8)
are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..ir.graph import Graph


@dataclass
class Compiled:
    """A model function compiled by one pipeline."""

    pipeline: str
    fn: Callable
    graph: Optional[Graph] = None
    stats: Dict[str, object] = field(default_factory=dict)

    def __call__(self, *args):
        return self.fn(*args)


class Pipeline:
    """Base class: subclasses implement :meth:`compile`."""

    #: short identifier used in figures ("eager", "tensorssa", ...)
    name: str = "base"
    #: display label matching the paper's legend
    label: str = "base"
    #: host-overhead class used by the analytical cost model:
    #: per-launch dispatch cost and per-control-flow-step cost keys
    host_profile: str = "interpreter"
    #: tracing pipelines specialize on example input shapes and must be
    #: recompiled when shapes change
    needs_example_inputs: bool = False
    #: multiplier on per-kernel device work time: >1 models less
    #: efficient generated kernels (strided/gather layouts); the paper
    #: credits functionalization with dense layouts (S5.3)
    device_penalty: float = 1.0

    #: can this pipeline build backward graphs (reverse-mode autodiff)?
    #: Only functionalizing pipelines can: the gradient pass requires
    #: the mutation-free TensorSSA form.
    supports_grad: bool = False

    def compile(self, model_fn: Callable, example_args=None) -> Compiled:
        raise NotImplementedError

    def compile_grad(self, model_fn: Callable, example_args=None,
                     wrt=None, out=None) -> Compiled:
        """Compile the *backward* of ``model_fn`` (gradients of the
        sum-of-outputs loss w.r.t. its tensor inputs).  Pipelines that
        cannot functionalize raise a typed GradError."""
        from ..errors import GradError
        raise GradError(f"pipeline {self.name!r} cannot build backward "
                        "graphs: reverse-mode differentiation requires "
                        "the functionalized TensorSSA form "
                        "(use the tensorssa pipeline)")

    def __repr__(self) -> str:
        return f"<Pipeline {self.name}>"


def count_graph_stats(graph: Graph) -> Dict[str, int]:
    """Node / fusion-group / horizontal-loop / mutation counts for a graph."""
    stats = {"nodes": 0, "fusion_groups": 0, "horizontal_loops": 0,
             "mutating_ops": 0}
    for node in graph.walk():
        stats["nodes"] += 1
        if node.op == "prim::FusionGroup":
            stats["fusion_groups"] += 1
        if node.op == "prim::Loop" and node.attrs.get("horizontal"):
            stats["horizontal_loops"] += 1
        if node.schema.is_mutating:
            stats["mutating_ops"] += 1
    return stats
