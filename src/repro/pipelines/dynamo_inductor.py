"""TorchDynamo + TorchInductor-style baseline.

Models the tracing pipeline of PyTorch 2.x as the paper characterizes
it (§5.1, §5.3):

* **shape specialization + loop unrolling** — Dynamo executes Python
  control flow at trace time, so loops with (specialized-)constant trip
  counts up to an inlining budget appear unrolled in the captured graph;
* **data-flow functionalization** — mutations are removed within
  straight-line code (functorch-style); a mutation whose effect crosses
  a *remaining* control-flow boundary stays imperative;
* **graph breaks** — loops that survive (dynamic or over-budget trip
  counts) execute in the Python interpreter, charged per iteration at
  the cost model's ``graph_break`` rate — the overhead the paper calls
  out in §5.3;
* within mutation-free regions the fuser may fuse views, so per-block
  fusion quality is high — the weakness is *scope*, not strength.

Because it specializes on shapes, this pipeline is recompiled whenever
input shapes change (``needs_example_inputs``).
"""

from __future__ import annotations

from typing import Callable

from ..backend.interpreter import run_graph
from ..frontend import script
from ..ir import verify
from ..ir.clone import clone_graph
from ..passes import (FuserConfig, PassManager, canonicalize, constant_fold,
                      cse, dce, fuse)
from ..passes.specialize import specialize_shapes
from ..passes.unroll import unroll_loops
from ..tensorssa import convert_to_tensorssa
from .base import Compiled, Pipeline, count_graph_stats

#: Dynamo-style loop inlining budget: beyond this many iterations the
#: loop is left to the Python interpreter (a graph break per iteration).
UNROLL_BUDGET = 64


class DynamoInductorPipeline(Pipeline):
    """Tracing baseline: specialize + unroll, data-flow functionalization, graph breaks for residual control flow."""
    name = "dynamo_inductor"
    label = "TorchDynamo + TorchInductor"
    host_profile = "python"  # graph breaks run in the Python interpreter
    device_penalty = 1.18     # strided/gather layouts in traced kernels
    needs_example_inputs = True

    def __init__(self, unroll_budget: int = UNROLL_BUDGET) -> None:
        self.unroll_budget = unroll_budget

    def compile(self, model_fn: Callable, example_args=None) -> Compiled:
        scripted = script(model_fn)
        graph = clone_graph(scripted.graph, name=self.name)
        if example_args is not None:
            specialize_shapes(graph, example_args)
        pm = (PassManager()
              .add("constant_fold", constant_fold)
              .add("cse", cse)
              .add("unroll", lambda g: unroll_loops(
                  g, max_trip=self.unroll_budget))
              .add("fold2", constant_fold)
              .add("canonicalize", canonicalize)
              .add("cse2", cse))
        pm.run(graph)
        report = convert_to_tensorssa(graph, intra_block_only=True)
        pm2 = (PassManager()
               .add("dce", dce)
               .add("cse", cse)
               .add("fuse", lambda g: fuse(
                   g, FuserConfig(name="inductor", fuse_views=True,
                               max_group_size=48)))
               .add("dce2", dce))
        pm2.run(graph)
        verify(graph)
        stats = count_graph_stats(graph)
        stats["functionalized"] = report.num_rewritten
        stats["skipped_mutations"] = len(report.skipped)

        def run(*args):
            from ..runtime import record_python
            record_python("guard_eval")  # shape/type guards, every call
            outs = run_graph(graph, args)
            return outs[0] if len(outs) == 1 else tuple(outs)

        return Compiled(pipeline=self.name, fn=run, graph=graph,
                        stats=stats)
