"""Pipeline registry: the five compared systems of the evaluation."""

from __future__ import annotations

from typing import Dict, List

from .base import Pipeline
from .dynamo_inductor import DynamoInductorPipeline
from .eager import EagerPipeline
from .tensorssa_pipeline import TensorSSAPipeline
from .torchscript import TorchScriptNNCPipeline, TorchScriptNvFuserPipeline


def default_pipelines() -> List[Pipeline]:
    """Figure 5's lineup, in legend order."""
    return [
        EagerPipeline(),
        DynamoInductorPipeline(),
        TorchScriptNvFuserPipeline(),
        TorchScriptNNCPipeline(),
        TensorSSAPipeline(),
    ]


def pipelines_by_name() -> Dict[str, Pipeline]:
    """The default pipelines keyed by their names."""
    return {p.name: p for p in default_pipelines()}


def get_pipeline(name: str) -> Pipeline:
    """Look up a pipeline by name."""
    table = pipelines_by_name()
    if name not in table:
        raise KeyError(f"unknown pipeline {name!r}; "
                       f"choose from {sorted(table)}")
    return table[name]
