"""Pipeline registry: the five compared systems of the evaluation."""

from __future__ import annotations

from typing import Dict, List

from .base import Pipeline
from .dynamo_inductor import DynamoInductorPipeline
from .eager import EagerPipeline
from .tensorssa_pipeline import TensorSSAPipeline
from .torchscript import TorchScriptNNCPipeline, TorchScriptNvFuserPipeline


def default_pipelines() -> List[Pipeline]:
    """Figure 5's lineup, in legend order."""
    return [
        EagerPipeline(),
        DynamoInductorPipeline(),
        TorchScriptNvFuserPipeline(),
        TorchScriptNNCPipeline(),
        TensorSSAPipeline(),
    ]


def extra_pipelines() -> List[Pipeline]:
    """Ablation variants resolvable by name but outside Figure 5's
    lineup — the memory-planner ablation used by the peak-memory
    report (``results/fig_mem.json``) and the fully-interpreted
    variant (no fusion, no parallelization, no revert, no planning)
    that ``tools/gradbench`` uses as the backward-pass baseline."""
    return [
        TensorSSAPipeline(plan_memory=False, name="tensorssa_noplan"),
        TensorSSAPipeline(vertical=False, horizontal=False,
                          revert_unfused=False, plan_memory=False,
                          name="tensorssa_interp"),
    ]


def pipelines_by_name() -> Dict[str, Pipeline]:
    """The default pipelines keyed by their names."""
    return {p.name: p for p in default_pipelines()}


def get_pipeline(name: str) -> Pipeline:
    """Look up a pipeline by name (default lineup plus ablations)."""
    table = pipelines_by_name()
    for p in extra_pipelines():
        table.setdefault(p.name, p)
    if name not in table:
        raise KeyError(f"unknown pipeline {name!r}; "
                       f"choose from {sorted(table)}")
    return table[name]
