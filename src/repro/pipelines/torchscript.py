"""TorchScript-style baselines: script + fuse, *without*
functionalization.

Both treat tensor mutation as a fusion barrier / graph-breaking point
(paper §1-2), which is the limitation TensorSSA removes:

* ``TorchScriptNNCPipeline`` — the stronger default fuser (elementwise
  + comparisons + where/clamp/clone).
* ``TorchScriptNvFuserPipeline`` — a narrower op coverage, modelling
  nvFuser's historically smaller fusable set on these workloads.
"""

from __future__ import annotations

from typing import Callable

from ..backend.interpreter import run_graph
from ..frontend import script
from ..ir import verify
from ..ir.clone import clone_graph
from ..passes import FuserConfig, PassManager, constant_fold, cse, dce, fuse
from .base import Compiled, Pipeline, count_graph_stats


def _compile_torchscript(model_fn: Callable, pipeline_name: str,
                         fuser: FuserConfig) -> Compiled:
    scripted = script(model_fn)
    graph = clone_graph(scripted.graph, name=f"{pipeline_name}")
    pm = (PassManager()
          .add("cse", cse)
          .add("constant_fold", constant_fold)
          .add("fuse", lambda g: fuse(g, fuser))
          .add("dce", dce))
    pm.run(graph)
    verify(graph)
    stats = count_graph_stats(graph)

    def run(*args):
        return _as_result(run_graph(graph, args))

    return Compiled(pipeline=pipeline_name, fn=run, graph=graph,
                    stats=stats)


def _as_result(outs):
    if len(outs) == 1:
        return outs[0]
    return tuple(outs)


class TorchScriptNNCPipeline(Pipeline):
    """Script + NNC-style fusion; mutation is a fusion barrier."""
    name = "ts_nnc"
    label = "TorchScript + NNC"
    host_profile = "interpreter"

    def compile(self, model_fn: Callable, example_args=None) -> Compiled:
        return _compile_torchscript(
            model_fn, self.name, FuserConfig(name="nnc", fuse_views=False, max_group_size=48))


class TorchScriptNvFuserPipeline(Pipeline):
    """Script + narrower nvFuser-style fusion; mutation is a fusion barrier."""
    name = "ts_nvfuser"
    label = "TorchScript + nvFuser"
    host_profile = "interpreter"

    def compile(self, model_fn: Callable, example_args=None) -> Compiled:
        config = FuserConfig(
            name="nvfuser", fuse_views=False, max_group_size=24,
            excluded_ops={"aten::where", "aten::masked_fill", "aten::to",
                          "aten::clamp", "aten::clone"})
        return _compile_torchscript(model_fn, self.name, config)
