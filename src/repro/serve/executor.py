"""Batch execution: compile-or-fetch, run, price, verify, scatter.

The executor is where a coalesced batch meets the existing pipelines:
it routes compilation through the server's injectable
:class:`~repro.eval.harness.CompileCache` (shape-specialized, in-flight
deduplicated), runs the compiled callable under a context-local
profiler, prices the run on the request's platform cost model, and
scatters outputs back per request.

Robustness ladder (policy-controlled):

1. deadline already expired at dequeue -> timeout response, no device
   time spent;
2. no cached artifact and the deadline is within ``deadline_slack_s``
   -> serve eagerly (skip the cold compile);
3. compilation raises -> serve the whole batch eagerly;
4. batch execution raises -> each request retries solo (eagerly), up to
   ``max_retries`` attempts, isolating poison requests;
5. verification (optional): "batch" demands bit-exact agreement with
   eager on the identical coalesced inputs; "solo" compares each
   response to a solo eager run (allclose, since batching may change
   GEMM reduction order; bit-exact when the request ran unbatched).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

import repro.runtime as rt
from ..eval.harness import CompileCache, clone_args, compile_key
from ..eval.platforms import Platform, get_platform
from ..pipelines import Pipeline, get_pipeline
from .batching import BatchPlan, coalesce, scatter
from .policy import VERIFY_BATCH, VERIFY_OFF, VERIFY_SOLO, ServePolicy
from .request import (Request, Response, STATUS_ERROR, STATUS_OK,
                      STATUS_TIMEOUT)
from .stats import ServerStats


def _bit_equal(got, expected) -> bool:
    ga = got.numpy() if isinstance(got, rt.Tensor) else np.asarray(got)
    ea = expected.numpy() if isinstance(expected, rt.Tensor) \
        else np.asarray(expected)
    return ga.shape == ea.shape and ga.dtype == ea.dtype \
        and np.array_equal(ga, ea, equal_nan=True)


def _close(got, expected, rtol: float = 1e-4, atol: float = 1e-5) -> bool:
    ga = got.numpy() if isinstance(got, rt.Tensor) else np.asarray(got)
    ea = expected.numpy() if isinstance(expected, rt.Tensor) \
        else np.asarray(expected)
    if ga.shape != ea.shape:
        return False
    return bool(np.allclose(ga.astype(np.float64), ea.astype(np.float64),
                            rtol=rtol, atol=atol, equal_nan=True))


def _tuple_outputs(outputs) -> tuple:
    return outputs if isinstance(outputs, tuple) else (outputs,)


class BatchExecutor:
    """Executes coalesced batches for one server."""

    def __init__(self, policy: ServePolicy, cache: CompileCache,
                 stats: ServerStats) -> None:
        self.policy = policy
        self.cache = cache
        self.stats = stats
        self._pipelines: Dict[str, Pipeline] = {}
        self._platforms: Dict[str, Platform] = {}

    # -- lookups (memoized: one pipeline/platform object per name) ------

    def pipeline(self, name: str) -> Pipeline:
        pipe = self._pipelines.get(name)
        if pipe is None:
            pipe = get_pipeline(name)
            self._pipelines[name] = pipe
        return pipe

    def platform(self, name: str) -> Platform:
        plat = self._platforms.get(name)
        if plat is None:
            plat = get_platform(name)
            self._platforms[name] = plat
        return plat

    # -- entry point ----------------------------------------------------

    def execute(self, requests: Sequence[Request]) -> None:
        """Serve a same-group batch: every request's future resolves."""
        now = time.monotonic()
        live: List[Request] = []
        for req in requests:
            if req.expired(now):
                self._finish(req, Response(
                    request_id=req.id, workload=req.workload.name,
                    pipeline=req.pipeline, platform=req.platform,
                    status=STATUS_TIMEOUT, queue_wait_s=now - req.enqueued_at,
                    error="deadline expired before execution"))
            else:
                live.append(req)
        if not live:
            return
        self.stats.on_batch(len(live))
        plan = coalesce(live)
        try:
            self._execute_plan(plan)
        except Exception as exc:  # batch path failed -> solo retries
            self._retry_solo(plan.requests, first_error=exc)
        self.stats.set_cache_snapshot(self.cache.snapshot())

    # -- main path ------------------------------------------------------

    def _execute_plan(self, plan: BatchPlan) -> None:
        req0 = plan.requests[0]
        pipe = self.pipeline(req0.pipeline)
        wl = req0.workload
        key = compile_key(pipe, wl, plan.args)

        if self._should_skip_cold_compile(plan, key):
            self._run_eager_each(plan.requests, reason="deadline near")
            return

        try:
            compiled, hit = self.cache.get_or_compile(
                key, lambda: pipe.compile(wl.model_fn,
                                          example_args=plan.args))
        except Exception as exc:
            if not self.policy.eager_fallback:
                raise
            self._run_eager_each(
                plan.requests, reason=f"compile failed: {exc}")
            return

        start = time.perf_counter()
        run_args = clone_args(plan.args)
        with rt.profile() as prof:
            outputs = compiled(*run_args)
        wall = time.perf_counter() - start

        plat = self.platform(req0.platform)
        latency_us = plat.latency_us(prof, pipe.host_profile,
                                     pipe.device_penalty)
        per_request = scatter(_tuple_outputs(outputs), plan)
        expected_per_request = self._batch_expected(plan)

        done = time.monotonic()
        for i, (req, outs) in enumerate(zip(plan.requests, per_request)):
            verified = self._verdict(req, outs, i, expected_per_request,
                                     n_batch=len(plan.requests))
            self._finish(req, Response(
                request_id=req.id, workload=wl.name, pipeline=req.pipeline,
                platform=req.platform, status=STATUS_OK,
                served_by=pipe.name, outputs=outs,
                batch_requests=len(plan.requests),
                batch_rows=plan.total_rows,
                batch_latency_us=latency_us,
                kernel_launches=prof.num_launches,
                queue_wait_s=done - req.enqueued_at - wall,
                exec_wall_s=wall, cache_hit=hit, verified=verified))

    def _should_skip_cold_compile(self, plan: BatchPlan, key: tuple) -> bool:
        """Deadline-near policy: don't start a cold compile when any
        member's remaining budget is inside the slack window."""
        if not self.policy.eager_fallback or key in self.cache:
            return False
        now = time.monotonic()
        return any(r.remaining(now) < self.policy.deadline_slack_s
                   for r in plan.requests)

    # -- oracles --------------------------------------------------------

    def _batch_expected(self, plan: BatchPlan) -> Optional[List[tuple]]:
        """Eager reference on the identical coalesced inputs, scattered
        per request (the bit-exactness oracle for batched serving)."""
        if self.policy.verify != VERIFY_BATCH:
            return None
        expected = plan.requests[0].workload.model_fn(
            *clone_args(plan.args))
        return scatter(_tuple_outputs(expected), plan)

    def _verdict(self, req: Request, outs: tuple, idx: int,
                 expected_per_request: Optional[List[tuple]],
                 n_batch: int) -> Optional[bool]:
        """Oracle verdict for one served request (None = verify off)."""
        if self.policy.verify == VERIFY_OFF:
            return None
        if self.policy.verify == VERIFY_BATCH:
            expected = expected_per_request[idx]
            return len(outs) == len(expected) and all(
                _bit_equal(g, e) for g, e in zip(outs, expected))
        # VERIFY_SOLO: eager on this request's own inputs.  Bit-exact
        # when the request ran unbatched; allclose otherwise (batching
        # may legally change BLAS reduction order).
        expected = _tuple_outputs(
            req.workload.model_fn(*clone_args(req.args)))
        if len(outs) != len(expected):
            return False
        if n_batch == 1:
            return all(_bit_equal(g, e) for g, e in zip(outs, expected))
        return all(_close(g, e) for g, e in zip(outs, expected))

    # -- fallback / retry ----------------------------------------------

    def _run_eager_each(self, requests: Sequence[Request],
                        reason: str) -> None:
        """Serve each request solo through the eager pipeline."""
        for req in requests:
            try:
                self._run_one_eager(req, retries=0, fallback=True)
            except Exception as exc:
                self._finish(req, Response(
                    request_id=req.id, workload=req.workload.name,
                    pipeline=req.pipeline, platform=req.platform,
                    status=STATUS_ERROR, served_by="eager",
                    error=f"{reason}; eager fallback failed: {exc}"),
                    fallback=True)

    def _run_one_eager(self, req: Request, retries: int,
                       fallback: bool) -> None:
        start = time.perf_counter()
        run_args = clone_args(req.args)
        with rt.profile() as prof:
            outputs = req.workload.model_fn(*run_args)
        wall = time.perf_counter() - start
        plat = self.platform(req.platform)
        outs = _tuple_outputs(outputs)
        verified: Optional[bool] = None
        if self.policy.verify != VERIFY_OFF:
            expected = _tuple_outputs(
                req.workload.model_fn(*clone_args(req.args)))
            verified = len(outs) == len(expected) and all(
                _bit_equal(g, e) for g, e in zip(outs, expected))
        self._finish(req, Response(
            request_id=req.id, workload=req.workload.name,
            pipeline=req.pipeline, platform=req.platform,
            status=STATUS_OK, served_by="eager", outputs=outs,
            batch_requests=1, batch_rows=req.batch_rows,
            batch_latency_us=plat.latency_us(prof, "eager", 1.0),
            kernel_launches=prof.num_launches,
            queue_wait_s=time.monotonic() - req.enqueued_at - wall,
            exec_wall_s=wall, verified=verified, retries=retries),
            fallback=fallback)

    def _retry_solo(self, requests: Sequence[Request],
                    first_error: Exception) -> None:
        """Batch execution failed: isolate requests and retry solo."""
        for req in requests:
            last: Exception = first_error
            for attempt in range(1, self.policy.max_retries + 1):
                try:
                    self._run_one_eager(req, retries=attempt, fallback=True)
                    break
                except Exception as exc:
                    last = exc
            else:
                self._finish(req, Response(
                    request_id=req.id, workload=req.workload.name,
                    pipeline=req.pipeline, platform=req.platform,
                    status=STATUS_ERROR, served_by="eager",
                    retries=self.policy.max_retries,
                    error=f"batch failed ({first_error}); "
                          f"solo retries exhausted: {last}"),
                    fallback=True)

    # -- delivery -------------------------------------------------------

    def _finish(self, req: Request, resp: Response,
                fallback: bool = False) -> None:
        self.stats.on_response(
            status=resp.status,
            latency_s=max(0.0, time.monotonic() - req.enqueued_at),
            queue_wait_s=max(0.0, resp.queue_wait_s),
            cache_hit=resp.cache_hit, fallback=fallback,
            retries=resp.retries, verified=resp.verified)
        if not req.future.done():
            req.future.set_result(resp)
