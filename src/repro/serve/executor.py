"""Batch execution: compile-or-fetch, run, price, verify, scatter.

The executor is where a coalesced batch meets the existing pipelines:
it routes compilation through the server's injectable
:class:`~repro.eval.harness.CompileCache` (shape-specialized, in-flight
deduplicated), runs the compiled callable under a context-local
profiler, prices the run on the request's platform cost model, and
scatters outputs back per request.

Robustness ladder (policy-controlled):

1. deadline already expired at dequeue -> timeout response, no device
   time spent;
2. no cached artifact and the deadline is within ``deadline_slack_s``
   -> serve eagerly (skip the cold compile);
3. compilation raises (a typed :class:`~repro.errors.CompileError`) ->
   with ``ladder_enabled``, descend the graceful-degradation chain
   (``repro.degrade``): each rung is guarded by a per-(workload, rung)
   circuit breaker, retryable faults get bounded jittered-backoff
   retries, and the eager floor serves solo; without the ladder, the
   whole batch falls back to eager directly;
4. batch execution raises -> same ladder descent (or, ladder off, each
   request retries solo eagerly up to ``max_retries``, isolating
   poison requests); :class:`~repro.errors.DeadlineExceeded` is never
   retried — it answers as a timeout immediately;
5. verification (optional): "batch" demands bit-exact agreement with
   eager on the identical coalesced inputs; "solo" compares each
   response to a solo eager run (allclose, since batching may change
   GEMM reduction order; bit-exact when the request ran unbatched).

Crash-consistency contract: every request handed to ``execute`` gets
its future resolved exactly once, whatever fails — the fault-injection
chaos harness (``repro.tools.chaos``) drives this with a
:class:`~repro.faults.StateAuditor` watching for torn state.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

import repro.runtime as rt
from ..degrade import BreakerRegistry, RetryPolicy, fallback_chain
from ..errors import (CompileError, DeadlineExceeded, classify,
                      is_retryable)
from ..eval.harness import (CompileCache, clone_args,
                            compile_cached_family, compile_key,
                            family_key)
from ..eval.platforms import Platform, get_platform
from ..faults import SITE_BATCH_EXEC, maybe_inject
from ..obs import trace as obs_trace
from ..pipelines import Pipeline, get_pipeline
from ..symshape.bucketing import get_pad_spec
from ..tune.db import shape_key_text, tuning_key
from ..tune.schedule import active_schedule, schedule_scope
from .batching import BatchPlan, coalesce, scatter
from .policy import VERIFY_BATCH, VERIFY_OFF, VERIFY_SOLO, ServePolicy
from .request import (Request, Response, STATUS_ERROR, STATUS_OK,
                      STATUS_TIMEOUT)
from .stats import ServerStats


def _bit_equal(got, expected) -> bool:
    ga = got.numpy() if isinstance(got, rt.Tensor) else np.asarray(got)
    ea = expected.numpy() if isinstance(expected, rt.Tensor) \
        else np.asarray(expected)
    return ga.shape == ea.shape and ga.dtype == ea.dtype \
        and np.array_equal(ga, ea, equal_nan=True)


def _close(got, expected, rtol: float = 1e-4, atol: float = 1e-5) -> bool:
    ga = got.numpy() if isinstance(got, rt.Tensor) else np.asarray(got)
    ea = expected.numpy() if isinstance(expected, rt.Tensor) \
        else np.asarray(expected)
    if ga.shape != ea.shape:
        return False
    return bool(np.allclose(ga.astype(np.float64), ea.astype(np.float64),
                            rtol=rtol, atol=atol, equal_nan=True))


def _tuple_outputs(outputs) -> tuple:
    return outputs if isinstance(outputs, tuple) else (outputs,)


class BatchExecutor:
    """Executes coalesced batches for one server."""

    def __init__(self, policy: ServePolicy, cache: CompileCache,
                 stats: ServerStats) -> None:
        self.policy = policy
        self.cache = cache
        self.stats = stats
        self._pipelines: Dict[str, Pipeline] = {}
        self._platforms: Dict[str, Platform] = {}
        self.breakers = BreakerRegistry(
            failure_rate=policy.breaker_failure_rate,
            window=policy.breaker_window,
            min_calls=policy.breaker_min_calls,
            reset_timeout_s=policy.breaker_reset_s)
        self._retry = RetryPolicy(
            max_retries=policy.max_retries,
            base_delay_s=policy.retry_base_delay_s,
            max_delay_s=policy.retry_max_delay_s,
            jitter=policy.retry_jitter)
        self._rng = random.Random(policy.retry_seed)

    # -- lookups (memoized: one pipeline/platform object per name) ------

    def pipeline(self, name: str) -> Pipeline:
        pipe = self._pipelines.get(name)
        if pipe is None:
            pipe = get_pipeline(name)
            self._pipelines[name] = pipe
        return pipe

    def platform(self, name: str) -> Platform:
        plat = self._platforms.get(name)
        if plat is None:
            plat = get_platform(name)
            self._platforms[name] = plat
        return plat

    # -- entry point ----------------------------------------------------

    def execute(self, requests: Sequence[Request]) -> None:
        """Serve a same-group batch: every request's future resolves."""
        live = self._drop_expired(requests)
        if not live:
            return
        self.stats.on_batch(len(live))
        try:
            if self.policy.ladder_enabled:
                self._execute_ladder(live)
            else:
                plan = self._coalesce(live)
                try:
                    self._execute_plan(plan)
                except DeadlineExceeded as exc:
                    self._finish_timeout(plan.requests, str(exc))
                except Exception as exc:  # batch path failed -> solo
                    # classify at the catch so the typed taxonomy
                    # (retryable? injected?) survives into solo retries
                    self._retry_solo(plan.requests,
                                     first_error=classify(exc))
        finally:
            self.stats.set_cache_snapshot(self.cache.snapshot())
            self.stats.set_breaker_transitions(self.breakers.transitions())
            db = getattr(self.cache, "tuning_db", None)
            if db is not None:
                self.stats.set_tuning_snapshot(db.snapshot())

    def _coalesce(self, requests: List[Request]) -> BatchPlan:
        """Coalesce under a ``serve:coalesce`` span, stamping each
        member's timeline with the batch it rode in.  Under dynamic
        shapes the plan pads to the group's bucket and the pad traffic
        (real vs padded sequence units) is recorded on the stats."""
        bucket_min = self.policy.bucket_min \
            if self.policy.dynamic_shapes else None
        with obs_trace.span("serve:coalesce", cat="serve",
                            requests=len(requests)):
            plan = coalesce(requests, bucket_min=bucket_min)
        if plan.padded_units:
            self.stats.on_bucket(plan.real_units, plan.padded_units)
        for req in requests:
            req.mark("coalesce", batch_requests=len(requests),
                     batch_rows=plan.total_rows,
                     pad_bucket=plan.pad_bucket)
        return plan

    def _drop_expired(self, requests: Sequence[Request]) -> List[Request]:
        """Answer already-expired members with a timeout; return the rest."""
        now = time.monotonic()
        live: List[Request] = []
        for req in requests:
            if req.expired(now):
                self._finish(req, Response(
                    request_id=req.id, workload=req.workload.name,
                    pipeline=req.pipeline, platform=req.platform,
                    status=STATUS_TIMEOUT,
                    queue_wait_s=now - req.enqueued_at,
                    error="deadline expired before execution"))
            else:
                live.append(req)
        return live

    def _finish_timeout(self, requests: Sequence[Request],
                        detail: str) -> None:
        now = time.monotonic()
        for req in requests:
            if req.future.done():
                continue
            self._finish(req, Response(
                request_id=req.id, workload=req.workload.name,
                pipeline=req.pipeline, platform=req.platform,
                status=STATUS_TIMEOUT, queue_wait_s=now - req.enqueued_at,
                error=f"deadline exceeded: {detail}"))

    # -- graceful-degradation ladder ------------------------------------

    def _execute_ladder(self, requests: List[Request]) -> None:
        """Walk the fallback chain until some rung serves the batch."""
        req0 = requests[0]
        wl = req0.workload
        chain = fallback_chain(req0.pipeline, self.policy.fallback_chain)
        live = list(requests)
        last_error: Optional[BaseException] = None
        for depth, rung in enumerate(chain):
            live = self._drop_expired(live)
            if not live:
                return
            breaker = self.breakers.breaker(wl.name, rung)
            if not breaker.allow():
                continue  # circuit-broken rung: descend without a call
            if rung == "eager":
                self._serve_eager_rung(live, depth, breaker, last_error)
                return
            for retry_index in range(self.policy.max_retries + 1):
                plan = self._coalesce(live)
                try:
                    with obs_trace.span(f"serve:rung:{rung}", cat="ladder",
                                        depth=depth, attempt=retry_index,
                                        requests=len(live)):
                        self._execute_plan(plan, pipeline_name=rung,
                                           depth=depth, ladder=True)
                except DeadlineExceeded as exc:
                    breaker.record_failure()
                    self._finish_timeout(live, str(exc))
                    return
                except Exception as exc:
                    err = classify(exc)
                    breaker.record_failure()
                    last_error = err
                    for req in live:
                        req.mark("rung_failed", rung=rung, depth=depth,
                                 attempt=retry_index,
                                 error=type(err).__name__)
                    if not is_retryable(err) \
                            or retry_index >= self.policy.max_retries:
                        break  # descend to the next rung
                    with obs_trace.span("serve:retry_wait", cat="ladder",
                                        rung=rung, attempt=retry_index):
                        time.sleep(
                            self._retry.delay_s(retry_index, self._rng))
                    continue
                breaker.record_success()
                return
        # every rung failed or was circuit-broken: typed error per request
        reason = "every ladder rung is circuit-broken" if last_error is None \
            else f"{type(last_error).__name__}: {last_error}"
        for req in live:
            self._finish(req, Response(
                request_id=req.id, workload=req.workload.name,
                pipeline=req.pipeline, platform=req.platform,
                status=STATUS_ERROR, served_by="",
                fallback_depth=len(chain) - 1, degraded=True,
                error=f"all ladder rungs {chain} failed: {reason}"),
                fallback=True)

    def _serve_eager_rung(self, requests: Sequence[Request], depth: int,
                          breaker, last_error: Optional[BaseException]
                          ) -> None:
        """The ladder floor: serve each request solo eagerly, with
        bounded jittered-backoff retries per request."""
        for req in requests:
            last = last_error
            served = False
            for retry_index in range(self.policy.max_retries + 1):
                try:
                    self._run_one_eager(req, retries=retry_index,
                                        fallback=depth > 0, depth=depth)
                    served = True
                    break
                except DeadlineExceeded as exc:
                    self._finish_timeout([req], str(exc))
                    served = True
                    break
                except Exception as exc:
                    last = classify(exc)
                    req.mark("rung_failed", rung="eager", depth=depth,
                             attempt=retry_index,
                             error=type(last).__name__)
                    if not is_retryable(last) \
                            or retry_index >= self.policy.max_retries:
                        break
                    with obs_trace.span("serve:retry_wait", cat="ladder",
                                        rung="eager", attempt=retry_index):
                        time.sleep(
                            self._retry.delay_s(retry_index, self._rng))
            if served:
                breaker.record_success()
                continue
            breaker.record_failure()
            self._finish(req, Response(
                request_id=req.id, workload=req.workload.name,
                pipeline=req.pipeline, platform=req.platform,
                status=STATUS_ERROR, served_by="eager",
                fallback_depth=depth, degraded=depth > 0,
                retries=self.policy.max_retries,
                error=f"eager floor failed: "
                      f"{type(last).__name__}: {last}"),
                fallback=True)

    # -- main path ------------------------------------------------------

    def _execute_plan(self, plan: BatchPlan,
                      pipeline_name: Optional[str] = None,
                      depth: int = 0, ladder: bool = False) -> None:
        req0 = plan.requests[0]
        pipe = self.pipeline(pipeline_name or req0.pipeline)
        wl = req0.workload
        dyn = self.policy.dynamic_shapes
        key = compile_key(pipe, wl, plan.args)
        if dyn:
            # family keying: an artifact is "cached" when some sealed
            # family admits this signature and its entry is resident
            fam = self.cache.families.peek((pipe.name, wl.name), key[2])
            cached = fam is not None and \
                family_key(pipe, wl, fam) in self.cache
        else:
            cached = key in self.cache

        if self._should_skip_cold_compile(plan, cached):
            self._run_eager_each(plan.requests, reason="deadline near")
            return

        try:
            if dyn:
                compiled, hit, family, _ = compile_cached_family(
                    pipe, wl, plan.args, cache=self.cache,
                    mod_hints=self._mod_hints(wl, plan))
            else:
                compiled, hit = self.cache.get_or_compile(
                    key, lambda: pipe.compile(wl.model_fn,
                                              example_args=plan.args))
        except Exception as exc:
            err = classify(exc)
            if not isinstance(err, CompileError):
                err = CompileError(f"{pipe.name} compilation failed: {exc}")
                err.__cause__ = exc
                err.injected = getattr(exc, "injected", False)
            if ladder:
                raise err from exc  # let the ladder descend a rung
            if not self.policy.eager_fallback:
                raise
            self._run_eager_each(
                plan.requests, reason=f"compile failed: {exc}")
            return

        # the "batch_exec" fault checkpoint: a scheduled batch-execution
        # failure raises here, after compilation but before device time
        maybe_inject(SITE_BATCH_EXEC, f"{wl.name}/{pipe.name}")

        # best-known schedule for this (workload, shape key, platform):
        # a pure DB read — the serve path never searches
        sched = None
        tuned = False
        schedule_id = active_schedule().schedule_id
        db = getattr(self.cache, "tuning_db", None)
        if db is not None and active_schedule().is_default:
            shape_key = shape_key_text(
                family.shape_key() if dyn else key[2])
            sched = db.best(
                tuning_key(wl.name, shape_key, req0.platform))
            if sched is not None:
                tuned = not sched.is_default
                schedule_id = sched.schedule_id

        for req in plan.requests:
            req.mark("execute", pipeline=pipe.name, cache_hit=hit,
                     schedule=schedule_id)
        start = time.perf_counter()
        run_args = clone_args(plan.args)
        with obs_trace.span("serve:execute", cat="serve", pipeline=pipe.name,
                            requests=len(plan.requests),
                            rows=plan.total_rows, cache_hit=hit,
                            schedule=schedule_id):
            with schedule_scope(sched), rt.profile() as prof:
                outputs = compiled(*run_args)
        wall = time.perf_counter() - start

        plat = self.platform(req0.platform)
        latency_us = plat.latency_us(prof, pipe.host_profile,
                                     pipe.device_penalty)
        with obs_trace.span("serve:scatter", cat="serve",
                            requests=len(plan.requests)):
            per_request = scatter(_tuple_outputs(outputs), plan)
        with obs_trace.span("serve:verify", cat="serve",
                            mode=self.policy.verify):
            expected_per_request = self._batch_expected(plan)

        done = time.monotonic()
        for i, (req, outs) in enumerate(zip(plan.requests, per_request)):
            verified = self._verdict(req, outs, i, expected_per_request,
                                     n_batch=len(plan.requests))
            req.mark("scatter", verified=verified)
            self._finish(req, Response(
                request_id=req.id, workload=wl.name, pipeline=req.pipeline,
                platform=req.platform, status=STATUS_OK,
                served_by=pipe.name, outputs=outs,
                fallback_depth=depth, degraded=depth > 0,
                batch_requests=len(plan.requests),
                batch_rows=plan.total_rows,
                batch_latency_us=latency_us,
                kernel_launches=prof.num_launches,
                queue_wait_s=done - req.enqueued_at - wall,
                exec_wall_s=wall, cache_hit=hit, tuned=tuned,
                schedule_id=schedule_id, verified=verified),
                fallback=depth > 0)

    def _should_skip_cold_compile(self, plan: BatchPlan,
                                  cached: bool) -> bool:
        """Deadline-near policy: don't start a cold compile when any
        member's remaining budget is inside the slack window."""
        if not self.policy.eager_fallback or cached:
            return False
        now = time.monotonic()
        return any(r.remaining(now) < self.policy.deadline_slack_s
                   for r in plan.requests)

    def _mod_hints(self, wl, plan: BatchPlan):
        """Divisibility hints for a padded plan: every padded axis is a
        multiple of ``bucket_min`` (buckets are ``bucket_min * 2^k``),
        so a freshly minted family may guard on it."""
        if plan.pad_bucket is None:
            return ()
        pad_spec = get_pad_spec(wl.name)
        if pad_spec is None:
            return ()
        return tuple((i, axis, self.policy.bucket_min)
                     for i, axis in enumerate(pad_spec.arg_axes)
                     if axis is not None)

    # -- oracles --------------------------------------------------------

    def _batch_expected(self, plan: BatchPlan) -> Optional[List[tuple]]:
        """Eager reference on the identical coalesced inputs, scattered
        per request (the bit-exactness oracle for batched serving)."""
        if self.policy.verify != VERIFY_BATCH:
            return None
        expected = plan.requests[0].workload.model_fn(
            *clone_args(plan.args))
        return scatter(_tuple_outputs(expected), plan)

    def _verdict(self, req: Request, outs: tuple, idx: int,
                 expected_per_request: Optional[List[tuple]],
                 n_batch: int) -> Optional[bool]:
        """Oracle verdict for one served request (None = verify off)."""
        if self.policy.verify == VERIFY_OFF:
            return None
        if self.policy.verify == VERIFY_BATCH:
            expected = expected_per_request[idx]
            return len(outs) == len(expected) and all(
                _bit_equal(g, e) for g, e in zip(outs, expected))
        # VERIFY_SOLO: eager on this request's own inputs.  Bit-exact
        # when the request ran unbatched; allclose otherwise (batching
        # may legally change BLAS reduction order).
        expected = _tuple_outputs(
            req.workload.model_fn(*clone_args(req.args)))
        if len(outs) != len(expected):
            return False
        if n_batch == 1:
            return all(_bit_equal(g, e) for g, e in zip(outs, expected))
        return all(_close(g, e) for g, e in zip(outs, expected))

    # -- fallback / retry ----------------------------------------------

    def _run_eager_each(self, requests: Sequence[Request],
                        reason: str) -> None:
        """Serve each request solo through the eager pipeline."""
        for req in requests:
            try:
                self._run_one_eager(req, retries=0, fallback=True)
            except Exception as exc:
                err = classify(exc)  # keep the typed taxonomy in the
                self._finish(req, Response(  # reported error
                    request_id=req.id, workload=req.workload.name,
                    pipeline=req.pipeline, platform=req.platform,
                    status=STATUS_ERROR, served_by="eager",
                    fallback_depth=1, degraded=True,
                    error=f"{reason}; eager fallback failed: "
                          f"{type(err).__name__}: {err}"),
                    fallback=True)

    def _run_one_eager(self, req: Request, retries: int,
                       fallback: bool, depth: Optional[int] = None) -> None:
        if depth is None:
            depth = 0 if req.pipeline == "eager" else 1
        req.mark("execute", pipeline="eager", depth=depth, retries=retries)
        start = time.perf_counter()
        run_args = clone_args(req.args)
        with obs_trace.span("serve:eager", cat="serve",
                            workload=req.workload.name, depth=depth,
                            attempt=retries):
            with rt.profile() as prof:
                outputs = req.workload.model_fn(*run_args)
        wall = time.perf_counter() - start
        plat = self.platform(req.platform)
        outs = _tuple_outputs(outputs)
        verified: Optional[bool] = None
        if self.policy.verify != VERIFY_OFF:
            expected = _tuple_outputs(
                req.workload.model_fn(*clone_args(req.args)))
            verified = len(outs) == len(expected) and all(
                _bit_equal(g, e) for g, e in zip(outs, expected))
        self._finish(req, Response(
            request_id=req.id, workload=req.workload.name,
            pipeline=req.pipeline, platform=req.platform,
            status=STATUS_OK, served_by="eager", outputs=outs,
            fallback_depth=depth, degraded=depth > 0,
            batch_requests=1, batch_rows=req.batch_rows,
            batch_latency_us=plat.latency_us(prof, "eager", 1.0),
            kernel_launches=prof.num_launches,
            queue_wait_s=time.monotonic() - req.enqueued_at - wall,
            exec_wall_s=wall, verified=verified, retries=retries),
            fallback=fallback)

    def _retry_solo(self, requests: Sequence[Request],
                    first_error: Exception) -> None:
        """Batch execution failed: isolate requests and retry solo.

        The batch error is classified into the typed taxonomy first:
        :class:`DeadlineExceeded` answers every member as a timeout
        (never retried), and a solo attempt that raises a
        *non-retryable* typed error stops that request's retry loop
        instead of hammering a fault retries cannot fix.
        """
        first = classify(first_error)
        if isinstance(first, DeadlineExceeded):
            self._finish_timeout(requests, str(first))
            return
        for req in requests:
            last: BaseException = first
            served = False
            for attempt in range(1, self.policy.max_retries + 1):
                try:
                    self._run_one_eager(req, retries=attempt, fallback=True)
                    served = True
                    break
                except DeadlineExceeded as exc:
                    self._finish_timeout([req], str(exc))
                    served = True
                    break
                except Exception as exc:
                    last = classify(exc)
                    if not is_retryable(last):
                        break
            if not served:
                self._finish(req, Response(
                    request_id=req.id, workload=req.workload.name,
                    pipeline=req.pipeline, platform=req.platform,
                    status=STATUS_ERROR, served_by="eager",
                    fallback_depth=1, degraded=True,
                    retries=self.policy.max_retries,
                    error=f"batch failed ({type(first).__name__}: "
                          f"{first}); solo retries exhausted: "
                          f"{type(last).__name__}: {last}"),
                    fallback=True)

    # -- delivery -------------------------------------------------------

    def _finish(self, req: Request, resp: Response,
                fallback: bool = False) -> None:
        # single delivery point: lane/tenant/admission metadata is
        # stamped here so every response path carries it
        resp.priority = req.priority
        resp.tenant = req.tenant
        resp.admitted = req.admitted
        self.stats.on_response(
            status=resp.status,
            latency_s=max(0.0, time.monotonic() - req.enqueued_at),
            queue_wait_s=max(0.0, resp.queue_wait_s),
            cache_hit=resp.cache_hit, fallback=fallback,
            retries=resp.retries, verified=resp.verified,
            fallback_depth=resp.fallback_depth, degraded=resp.degraded,
            priority=req.priority, tuned=resp.tuned,
            schedule_id=resp.schedule_id if resp.ok else "")
        req.mark("finish", status=resp.status,
                 served_by=resp.served_by or resp.pipeline)
        if req.timeline:
            resp.timeline = tuple(req.timeline)
        if not req.future.done():
            req.future.set_result(resp)
