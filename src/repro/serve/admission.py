"""Admission control for the serving layer: quotas, shedding, windows.

Three mechanisms, all consulted at intake (``Server._enqueue``) or
while a worker assembles a batch:

* :class:`TokenBucket` — per-tenant rate quotas.  A tenant named in
  ``ServePolicy.tenant_rates`` draws one token per request from a
  bucket refilled at ``rate`` tokens/s up to ``burst``; an empty
  bucket rejects the request before it can occupy queue space.
* :class:`AdmissionController` — percentile-driven load shedding.
  When the *recent* queue-wait percentile (``shed_percentile``, p99 by
  default, over a sliding window of responses) crosses the deadline
  budget, low-priority requests (``priority <= shed_priority_max``)
  are answered with a ``shed`` response instead of queueing — the
  overload response the paper-stack previously lacked (reject-on-full
  was the only lever).  Hysteresis (``shed_recover_fraction``) keeps
  the shedder from flapping: once shedding, it recovers only after
  the percentile falls below ``budget * fraction``.
* :class:`AdmissionWindow` — continuous batching.  A flushed-but-not-
  yet-executing batch stays open as an in-flight admission window
  until a deadline-aware cutoff (``min(oldest.flush_at, min-deadline
  − slack, execute-start)``); compatible same-key requests that arrive
  while the worker is still assembling/padding the batch ride along
  instead of waiting out a whole new ``batch_wait_s``.  This is safe
  precisely because every compiled graph is mutation-free TensorSSA:
  late-admitted requests are re-grouped, padded, and un-padded with no
  aliasing hazards.

Every clock is injectable so tests drive time explicitly (the same
discipline as :class:`repro.degrade.CircuitBreaker`).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .policy import ServePolicy
    from .request import Request
    from .stats import ServerStats


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/s, ``burst`` cap.

    ``try_take`` refills lazily from the injectable ``clock`` and
    either debits ``n`` tokens (True) or leaves the bucket untouched
    (False).  A bucket starts full so a tenant's first burst is never
    penalized for server start-up time.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate < 0 or burst <= 0:
            raise ValueError("rate must be >= 0 and burst > 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._last = clock()
        self._lock = threading.Lock()

    def try_take(self, n: float = 1.0) -> bool:
        """Debit ``n`` tokens if available; False leaves state as-is."""
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst,
                               self._tokens + (now - self._last) * self.rate)
            self._last = now
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled to the current clock)."""
        with self._lock:
            now = self._clock()
            return min(self.burst,
                       self._tokens + (now - self._last) * self.rate)


class AdmissionController:
    """Intake gatekeeper: per-tenant quotas + percentile load shedding.

    One controller per server.  ``admit_quota`` answers whether a
    tenant may enqueue one more request (tenants without a configured
    bucket are unlimited); ``should_shed`` answers whether a request of
    the given priority must be shed because the recent queue-wait
    percentile has crossed the deadline budget.
    """

    def __init__(self, policy: "ServePolicy", stats: "ServerStats",
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy
        self.stats = stats
        self._buckets: Dict[str, TokenBucket] = {
            tenant: TokenBucket(rate, burst, clock)
            for tenant, (rate, burst) in (policy.tenant_rates or {}).items()
        }
        #: work-conservation floor: below this many pending requests
        #: shedding never fires (None in the policy derives one
        #: in-flight wave, ``workers * max_batch_size``)
        self.keep_busy_floor = (
            policy.shed_min_pending if policy.shed_min_pending is not None
            else policy.workers * policy.max_batch_size)
        self._shedding = False
        self._lock = threading.Lock()

    def bucket(self, tenant: str) -> Optional[TokenBucket]:
        """The tenant's bucket, or None when the tenant is unlimited."""
        return self._buckets.get(tenant)

    def admit_quota(self, tenant: str) -> bool:
        """Debit one token from the tenant's bucket (True = admitted)."""
        bucket = self._buckets.get(tenant)
        return True if bucket is None else bucket.try_take(1.0)

    def shed_budget_s(self) -> Optional[float]:
        """The queue-wait budget the shedder compares against.

        Explicit ``shed_budget_s`` wins; otherwise the budget derives
        from the default deadline: ``request_timeout_s −
        deadline_slack_s`` (the point past which a queued request is
        all but guaranteed to blow its deadline).  None disables
        shedding (no deadline, nothing to protect).
        """
        if self.policy.shed_budget_s is not None:
            return self.policy.shed_budget_s
        timeout = self.policy.request_timeout_s
        if not timeout or timeout <= 0:
            return None
        return max(0.0, timeout - self.policy.deadline_slack_s)

    @property
    def shedding(self) -> bool:
        """True while the shedder is in its overloaded state."""
        with self._lock:
            return self._shedding

    def should_shed(self, priority: int,
                    pending: Optional[int] = None) -> bool:
        """Must a request of this priority be shed right now?

        High-priority requests (above ``shed_priority_max``) are never
        shed and never flip the hysteresis state; sheddable traffic
        trips the shedder when the recent queue-wait percentile
        exceeds the budget and recovers once it falls below
        ``budget * shed_recover_fraction``.  With ``pending`` given,
        shedding stays work-conserving: below ``keep_busy_floor``
        queued requests nothing is shed even while tripped — the
        percentile signal lags the live queue, and a near-empty queue
        already satisfies the wait bound shedding exists to protect.
        """
        if not self.policy.shed_enabled \
                or priority > self.policy.shed_priority_max:
            return False
        if pending is not None and pending < self.keep_busy_floor:
            return False
        budget = self.shed_budget_s()
        if budget is None or budget <= 0:
            return False
        p = self.stats.recent_queue_wait_percentile(
            self.policy.shed_percentile)
        with self._lock:
            if self._shedding:
                if p < budget * self.policy.shed_recover_fraction:
                    self._shedding = False
            elif p > budget:
                self._shedding = True
            return self._shedding


class AdmissionWindow:
    """A flushed batch held open for late same-key admissions.

    Created by the scheduler when a worker claims a *partial* group
    under continuous batching; lives in the server's window registry
    so ``_enqueue`` can route compatible arrivals straight into the
    batch.  All mutation happens under the server's condition lock —
    the window itself carries no lock.

    The cutoff is deadline-aware: it starts at ``min(oldest.flush_at,
    min-deadline − slack)`` and every admitted member with a tighter
    deadline pulls it earlier, so a late urgent request closes the
    window (and dispatches the batch) immediately.
    """

    def __init__(self, key: tuple, members: List["Request"],
                 cutoff: float, capacity: int, slack_s: float) -> None:
        self.key = key
        self.members = members
        self.cutoff = cutoff
        self.capacity = capacity
        self.slack_s = slack_s
        self.closed = False
        #: how many members were admitted after the flush (vs claimed
        #: from the queue) — surfaced on the serve:window span
        self.admitted = 0

    @property
    def full(self) -> bool:
        """No admission capacity left along the batch-request axis."""
        return len(self.members) >= self.capacity

    def admit(self, req: "Request", now: float) -> bool:
        """Append ``req`` if the window is still open (caller holds the
        server lock); tightens the cutoff to the member's urgency."""
        if self.closed or self.full or now >= self.cutoff:
            return False
        self.members.append(req)
        self.admitted += 1
        req.admitted = True
        if req.deadline is not None:
            self.cutoff = min(self.cutoff, req.deadline - self.slack_s)
        return True
