"""Thread-safe serving metrics (`ServerStats`).

Everything the load generator and the CI smoke gate read comes from
here: request counts by outcome, the batch-size histogram, latency
percentiles, queue-depth high-water, and the compile-cache snapshot
(hit rate *and* epoch, so readers can tell when the counters were
reset — see the counter-lifecycle note in ``eval/harness.py``).

Since the ``repro.obs`` refactor the counters live in a
:class:`~repro.obs.MetricsRegistry` instead of ad-hoc fields: every
outcome count is a :class:`~repro.obs.Counter`, the batch-size and
fallback-depth histograms are :class:`~repro.obs.LabeledCounter`
families, the queue-depth high-water is a :class:`~repro.obs.Gauge`
peak, and latency / queue-wait distributions are seeded
reservoir-sampled :class:`~repro.obs.Histogram` instruments (Algorithm
R), so percentiles keep tracking the *whole* run instead of freezing on
the first ``MAX_SAMPLES`` responses.  The legacy attribute API
(``stats.completed``, ``stats.batch_size_hist``, ...) is preserved as
read-only properties over the registry, and ``to_dict`` emits the same
keys as before the refactor.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional

from ..eval.harness import CacheStats
from ..obs import Histogram, MetricsRegistry, percentile_nearest_rank


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on no samples.

    True nearest-rank: the value at rank ``ceil(q/100 * n)``
    (1-indexed), so p50 of ``[1, 2, 3, 4]`` is 2.
    """
    return percentile_nearest_rank(samples, q)


class ServerStats:
    """Counters for one server, safe to update from many workers.

    Backed by a :class:`~repro.obs.MetricsRegistry`; the historical
    attribute surface (``completed``, ``fallback_depth_hist``,
    ``queue_depth_peak``, ...) is exposed as properties so existing
    readers and tests keep working unchanged.
    """

    #: cap on retained latency samples (reservoir replaces beyond it)
    MAX_SAMPLES = 100_000

    def __init__(self, seed: int = 0, recent_window: int = 256) -> None:
        self._lock = threading.Lock()
        self.registry = MetricsRegistry(seed=seed)
        reg = self.registry
        self._submitted = reg.counter("serve.submitted")
        self._completed = reg.counter("serve.completed")
        self._errors = reg.counter("serve.errors")
        self._timeouts = reg.counter("serve.timeouts")
        self._rejected = reg.counter("serve.rejected")
        self._cancelled = reg.counter("serve.cancelled")
        self._fallbacks = reg.counter("serve.fallbacks")
        self._retries = reg.counter("serve.retries")
        self._diverged = reg.counter("serve.diverged")
        self._verified = reg.counter("serve.verified")
        self._degraded = reg.counter("serve.degraded")
        self._batches = reg.counter("serve.batches_executed")
        self._bucket_real = reg.counter("serve.bucket_real_units")
        self._bucket_padded = reg.counter("serve.bucket_padded_units")
        self._cache_hits = reg.counter("serve.request_cache_hits")
        self._cache_misses = reg.counter("serve.request_cache_misses")
        #: requests served under a tuning-DB schedule (autotuning)
        self._tuned = reg.counter("serve.tuned")
        self._schedules = reg.labeled_counter("serve.schedule")
        self._queue_depth = reg.gauge("serve.queue_depth")
        self._batch_sizes = reg.labeled_counter("serve.batch_size")
        self._fallback_depths = reg.labeled_counter("serve.fallback_depth")
        self._latency = reg.histogram("serve.latency_s",
                                      max_samples=self.MAX_SAMPLES)
        self._queue_wait = reg.histogram("serve.queue_wait_s",
                                         max_samples=self.MAX_SAMPLES)
        # -- admission control + lanes (continuous batching) ----------
        self._admitted = reg.counter("serve.admitted")
        self._shed = reg.labeled_counter("serve.shed")
        self._quota_rejected = reg.labeled_counter("serve.quota_rejected")
        self._lane_submitted = reg.labeled_counter("serve.lane_submitted")
        self._lane_completed = reg.labeled_counter("serve.lane_completed")
        self._backpressure_waits = reg.counter("serve.backpressure_waits")
        self._drain_expired = reg.counter("serve.drain_expired")
        self._backpressure_wait = reg.histogram(
            "serve.backpressure_wait_s", max_samples=self.MAX_SAMPLES)
        #: per-lane latency reservoirs, created on first response of a
        #: lane (guarded by self._lock)
        self._lane_latency: Dict[int, Histogram] = {}
        #: sliding window of the most recent queue waits — the
        #: overload shedder's signal (the whole-run reservoir would
        #: recover far too slowly after a spike)
        self._recent_queue_wait: Deque[float] = deque(maxlen=recent_window)
        #: circuit-breaker transition counts ("closed->open": n), set
        #: by the executor at snapshot time
        self.breaker_transitions: Dict[str, int] = {}
        self.cache_snapshot: Optional[CacheStats] = None
        #: tuning-DB counter snapshot (hits/misses/searches...), set by
        #: the executor when a DB is attached; ``searches == 0`` is the
        #: proof that serving performed no tuning-time work
        self.tuning_snapshot: Optional[Dict[str, int]] = None

    # -- recording ------------------------------------------------------

    def on_submit(self, queue_depth: int, priority: int = 0) -> None:
        """One request entered the queue (at the given depth)."""
        self._submitted.inc()
        self._lane_submitted.inc(priority)
        self._queue_depth.set(queue_depth)

    def on_reject(self) -> None:
        """One request was rejected at intake (queue full)."""
        self._rejected.inc()

    def on_admit(self) -> None:
        """One request rode an in-flight admission window."""
        self._admitted.inc()

    def on_shed(self, priority: int = 0) -> None:
        """One request was shed at intake by the overload shedder."""
        self._shed.inc(priority)

    def on_quota_reject(self, tenant: str) -> None:
        """One request was rejected by its tenant's token bucket."""
        self._quota_rejected.inc(tenant)

    def on_backpressure(self, wait_s: float) -> None:
        """One submit spent ``wait_s`` blocked on a full queue."""
        self._backpressure_waits.inc()
        self._backpressure_wait.record(wait_s)

    def on_cancel(self, n: int = 1) -> None:
        """``n`` queued requests were cancelled at shutdown."""
        self._cancelled.inc(n)

    def on_drain_expired(self, flushed: int = 0) -> None:
        """One ``shutdown(drain=True)`` hit its drain deadline with a
        worker thread still alive; the ``flushed`` requests it answered
        with typed ``ServerShutdown`` cancellations are already counted
        by :meth:`on_cancel` — this records only the deadline event."""
        self._drain_expired.inc()

    def on_batch(self, n_requests: int) -> None:
        """One batch of ``n_requests`` was handed to the executor."""
        self._batches.inc()
        self._batch_sizes.inc(n_requests)

    def on_bucket(self, real_units: int, padded_units: int) -> None:
        """One bucketed plan executed: ``real_units`` requested
        sequence units ran as ``padded_units`` after power-of-two
        padding (their ratio is the pad efficiency)."""
        self._bucket_real.inc(real_units)
        self._bucket_padded.inc(padded_units)

    def on_response(self, status: str, latency_s: float,
                    queue_wait_s: float, cache_hit: bool,
                    fallback: bool, retries: int,
                    verified: Optional[bool],
                    fallback_depth: int = 0,
                    degraded: bool = False,
                    priority: int = 0,
                    tuned: bool = False,
                    schedule_id: str = "") -> None:
        """One request's future resolved; record its outcome."""
        if status == "ok":
            self._completed.inc()
            self._lane_completed.inc(priority)
            self._fallback_depths.inc(fallback_depth)
            with self._lock:
                hist = self._lane_latency.get(priority)
                if hist is None:
                    hist = self.registry.histogram(
                        f"serve.latency_s.lane{priority}",
                        max_samples=self.MAX_SAMPLES)
                    self._lane_latency[priority] = hist
            hist.record(latency_s)
        elif status == "timeout":
            self._timeouts.inc()
        else:
            self._errors.inc()
        if fallback:
            self._fallbacks.inc()
        if degraded:
            self._degraded.inc()
        if retries:
            self._retries.inc(retries)
        if cache_hit:
            self._cache_hits.inc()
        else:
            self._cache_misses.inc()
        if tuned:
            self._tuned.inc()
        if schedule_id:
            self._schedules.inc(schedule_id)
        if verified is not None:
            self._verified.inc()
            if not verified:
                self._diverged.inc()
        self._latency.record(latency_s)
        self._queue_wait.record(queue_wait_s)
        self._recent_queue_wait.append(queue_wait_s)

    def set_cache_snapshot(self, snap: CacheStats) -> None:
        """Attach the compile-cache counter snapshot (executor calls)."""
        with self._lock:
            self.cache_snapshot = snap

    def set_breaker_transitions(self, transitions: Dict[str, int]) -> None:
        """Attach circuit-breaker transition counts (executor calls)."""
        with self._lock:
            self.breaker_transitions = dict(transitions)

    def set_tuning_snapshot(self, snap: Dict[str, int]) -> None:
        """Attach the tuning-DB counter snapshot (executor calls)."""
        with self._lock:
            self.tuning_snapshot = dict(snap)

    # -- legacy attribute surface over the registry ---------------------

    @property
    def submitted(self) -> int:
        """Requests accepted into the queue."""
        return self._submitted.value

    @property
    def completed(self) -> int:
        """Requests answered with status ``ok``."""
        return self._completed.value

    @property
    def errors(self) -> int:
        """Requests answered with a non-ok, non-timeout status."""
        return self._errors.value

    @property
    def timeouts(self) -> int:
        """Requests answered with status ``timeout``."""
        return self._timeouts.value

    @property
    def rejected(self) -> int:
        """Requests rejected at intake."""
        return self._rejected.value

    @property
    def cancelled(self) -> int:
        """Requests cancelled at shutdown."""
        return self._cancelled.value

    @property
    def fallbacks(self) -> int:
        """Responses served through a fallback path."""
        return self._fallbacks.value

    @property
    def retries(self) -> int:
        """Total retry attempts across all responses."""
        return self._retries.value

    @property
    def diverged(self) -> int:
        """Verified responses whose oracle verdict was False."""
        return self._diverged.value

    @property
    def verified(self) -> int:
        """Responses that carried an oracle verdict (True or False)."""
        return self._verified.value

    @property
    def degraded(self) -> int:
        """Requests served by a rung below the one they asked for."""
        return self._degraded.value

    @property
    def batches_executed(self) -> int:
        """Batches handed to the executor."""
        return self._batches.value

    @property
    def cache_hits(self) -> int:
        """Requests whose compile artifact was a cache hit."""
        return self._cache_hits.value

    @property
    def cache_misses(self) -> int:
        """Requests whose compile artifact was a cache miss."""
        return self._cache_misses.value

    @property
    def tuned(self) -> int:
        """Requests served under a tuning-DB schedule."""
        return self._tuned.value

    @property
    def schedule_hist(self) -> Dict[str, int]:
        """schedule id -> ok-response count served under it."""
        return self._schedules.as_dict()

    @property
    def bucket_real_units(self) -> int:
        """Sequence units requested across all bucketed plans."""
        return self._bucket_real.value

    @property
    def bucket_padded_units(self) -> int:
        """Sequence units executed after padding (>= real units)."""
        return self._bucket_padded.value

    @property
    def bucket_pad_efficiency(self) -> float:
        """real / padded sequence units (1.0 = no padding waste; 0.0
        when no bucketed plan has executed)."""
        padded = self._bucket_padded.value
        return self._bucket_real.value / padded if padded else 0.0

    @property
    def admitted(self) -> int:
        """Requests late-admitted through an in-flight window."""
        return self._admitted.value

    @property
    def shed(self) -> int:
        """Requests shed at intake by the overload shedder."""
        return self._shed.total

    @property
    def shed_by_lane(self) -> Dict[int, int]:
        """priority lane -> shed-request count."""
        return self._shed.as_dict()

    @property
    def quota_rejected(self) -> int:
        """Requests rejected by a tenant token bucket."""
        return self._quota_rejected.total

    @property
    def quota_rejected_by_tenant(self) -> Dict[str, int]:
        """tenant -> quota-rejected request count."""
        return self._quota_rejected.as_dict()

    @property
    def lane_submitted(self) -> Dict[int, int]:
        """priority lane -> requests accepted into the queue."""
        return self._lane_submitted.as_dict()

    @property
    def lane_completed(self) -> Dict[int, int]:
        """priority lane -> requests answered ok."""
        return self._lane_completed.as_dict()

    @property
    def backpressure_waits(self) -> int:
        """Submits that spent time blocked on a full queue."""
        return self._backpressure_waits.value

    @property
    def drain_expired(self) -> int:
        """Shutdowns whose bounded drain hit its deadline with a
        worker thread still alive."""
        return self._drain_expired.value

    @property
    def queue_depth_peak(self) -> int:
        """Deepest the queue ever got (high-water mark)."""
        return int(self._queue_depth.peak)

    @property
    def batch_size_hist(self) -> Dict[int, int]:
        """batch size -> number of batches executed at that size."""
        return self._batch_sizes.as_dict()

    @property
    def fallback_depth_hist(self) -> Dict[int, int]:
        """fallback depth -> ok-response count (0 = requested rung)."""
        return self._fallback_depths.as_dict()

    # -- reading --------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        """Request-level compile-cache hit rate (0.0 when no requests)."""
        hits = self._cache_hits.value
        total = hits + self._cache_misses.value
        return hits / total if total else 0.0

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank latency percentile over the reservoir (s)."""
        return self._latency.percentile(q)

    def recent_queue_wait_percentile(self, q: float) -> float:
        """Nearest-rank percentile of the *recent* queue waits (s).

        Computed over the sliding window (``recent_window`` most recent
        responses), not the whole-run reservoir, so the overload
        shedder sees spikes quickly and recovers once they drain.
        Returns 0.0 before any response completes.
        """
        with self._lock:
            samples = list(self._recent_queue_wait)
        return percentile_nearest_rank(samples, q)

    def lane_latency_percentile(self, lane: int, q: float) -> float:
        """Nearest-rank latency percentile for one priority lane (s);
        0.0 when the lane has served nothing."""
        with self._lock:
            hist = self._lane_latency.get(lane)
        return hist.percentile(q) if hist is not None else 0.0

    def backpressure_wait_percentile(self, q: float) -> float:
        """Nearest-rank percentile of per-submit backpressure waits (s)."""
        return self._backpressure_wait.percentile(q)

    def to_dict(self) -> dict:
        """JSON-ready snapshot (what serve_bench writes to results/)."""
        with self._lock:
            snap = self.cache_snapshot
            transitions = dict(self.breaker_transitions)
            tuning = dict(self.tuning_snapshot) \
                if self.tuning_snapshot is not None else None
        out = {
            "submitted": self.submitted,
            "completed": self.completed,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "fallbacks": self.fallbacks,
            "retries": self.retries,
            "verified": self.verified,
            "diverged": self.diverged,
            "degraded": self.degraded,
            "fallback_depth_hist": {str(k): v for k, v in
                                    sorted(self.fallback_depth_hist.items())},
            "breaker_transitions": transitions,
            "batches_executed": self.batches_executed,
            "batch_size_hist": {str(k): v for k, v in
                                sorted(self.batch_size_hist.items())},
            "queue_depth_peak": self.queue_depth_peak,
            "request_cache_hits": self.cache_hits,
            "request_cache_misses": self.cache_misses,
            "bucket_real_units": self.bucket_real_units,
            "bucket_padded_units": self.bucket_padded_units,
            "bucket_pad_efficiency": self.bucket_pad_efficiency,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_by_lane": {str(k): v for k, v in
                             sorted(self.shed_by_lane.items())},
            "quota_rejected": self.quota_rejected,
            "quota_rejected_by_tenant": {
                str(k): v for k, v in
                sorted(self.quota_rejected_by_tenant.items())},
            "lane_submitted": {str(k): v for k, v in
                               sorted(self.lane_submitted.items())},
            "lane_completed": {str(k): v for k, v in
                               sorted(self.lane_completed.items())},
            "backpressure_waits": self.backpressure_waits,
            "drain_expired": self.drain_expired,
            "tuned": self.tuned,
            "schedule_hist": {str(k): v for k, v in
                              sorted(self.schedule_hist.items())},
        }
        out["cache_hit_rate"] = (
            out["request_cache_hits"] /
            max(1, out["request_cache_hits"] + out["request_cache_misses"]))
        out["latency_p50_ms"] = self._latency.percentile(50) * 1e3
        out["latency_p95_ms"] = self._latency.percentile(95) * 1e3
        out["queue_wait_p50_ms"] = self._queue_wait.percentile(50) * 1e3
        out["queue_wait_p95_ms"] = self._queue_wait.percentile(95) * 1e3
        out["queue_wait_p99_ms"] = self._queue_wait.percentile(99) * 1e3
        out["backpressure_wait_p95_ms"] = \
            self._backpressure_wait.percentile(95) * 1e3
        with self._lock:
            lanes = sorted(self._lane_latency)
        out["lane_latency_ms"] = {
            str(lane): {"p50": self.lane_latency_percentile(lane, 50) * 1e3,
                        "p99": self.lane_latency_percentile(lane, 99) * 1e3}
            for lane in lanes}
        if snap is not None:
            out["compile_cache"] = {
                "epoch": snap.epoch, "hits": snap.hits,
                "misses": snap.misses,
                "guard_misses": snap.guard_misses, "size": snap.size,
                "capacity": snap.capacity, "hit_rate": snap.hit_rate,
            }
        if tuning is not None:
            out["tune_db"] = tuning
        return out
