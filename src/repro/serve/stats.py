"""Thread-safe serving metrics (`ServerStats`).

Everything the load generator and the CI smoke gate read comes from
here: request counts by outcome, the batch-size histogram, latency
percentiles, queue-depth high-water, and the compile-cache snapshot
(hit rate *and* epoch, so readers can tell when the counters were
reset — see the counter-lifecycle note in ``eval/harness.py``).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from ..eval.harness import CacheStats


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on no samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class ServerStats:
    """Counters for one server, safe to update from many workers."""

    #: cap on retained latency samples (reservoir truncates beyond it)
    MAX_SAMPLES = 100_000

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.errors = 0
        self.timeouts = 0
        self.rejected = 0
        self.cancelled = 0
        self.fallbacks = 0
        self.retries = 0
        self.diverged = 0
        self.verified = 0
        #: requests served by a rung below the one they asked for
        self.degraded = 0
        #: fallback depth -> request count (0 = requested rung served)
        self.fallback_depth_hist: Dict[int, int] = {}
        #: circuit-breaker transition counts ("closed->open": n), set
        #: by the executor at snapshot time
        self.breaker_transitions: Dict[str, int] = {}
        self.batches_executed = 0
        self.batch_size_hist: Dict[int, int] = {}
        self.queue_depth_peak = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._latency_s: List[float] = []
        self._queue_wait_s: List[float] = []
        self.cache_snapshot: Optional[CacheStats] = None

    # -- recording ------------------------------------------------------

    def on_submit(self, queue_depth: int) -> None:
        with self._lock:
            self.submitted += 1
            self.queue_depth_peak = max(self.queue_depth_peak, queue_depth)

    def on_reject(self) -> None:
        with self._lock:
            self.rejected += 1

    def on_cancel(self, n: int = 1) -> None:
        with self._lock:
            self.cancelled += n

    def on_batch(self, n_requests: int) -> None:
        with self._lock:
            self.batches_executed += 1
            self.batch_size_hist[n_requests] = \
                self.batch_size_hist.get(n_requests, 0) + 1

    def on_response(self, status: str, latency_s: float,
                    queue_wait_s: float, cache_hit: bool,
                    fallback: bool, retries: int,
                    verified: Optional[bool],
                    fallback_depth: int = 0,
                    degraded: bool = False) -> None:
        with self._lock:
            if status == "ok":
                self.completed += 1
            elif status == "timeout":
                self.timeouts += 1
            else:
                self.errors += 1
            if fallback:
                self.fallbacks += 1
            if degraded:
                self.degraded += 1
            if status == "ok":
                self.fallback_depth_hist[fallback_depth] = \
                    self.fallback_depth_hist.get(fallback_depth, 0) + 1
            self.retries += retries
            if cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            if verified is not None:
                self.verified += 1
                if not verified:
                    self.diverged += 1
            if len(self._latency_s) < self.MAX_SAMPLES:
                self._latency_s.append(latency_s)
                self._queue_wait_s.append(queue_wait_s)

    def set_cache_snapshot(self, snap: CacheStats) -> None:
        with self._lock:
            self.cache_snapshot = snap

    def set_breaker_transitions(self, transitions: Dict[str, int]) -> None:
        with self._lock:
            self.breaker_transitions = dict(transitions)

    # -- reading --------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        with self._lock:
            total = self.cache_hits + self.cache_misses
            return self.cache_hits / total if total else 0.0

    def latency_percentile(self, q: float) -> float:
        with self._lock:
            return percentile(self._latency_s, q)

    def to_dict(self) -> dict:
        """JSON-ready snapshot (what serve_bench writes to results/)."""
        with self._lock:
            latencies = list(self._latency_s)
            waits = list(self._queue_wait_s)
            snap = self.cache_snapshot
            out = {
                "submitted": self.submitted,
                "completed": self.completed,
                "errors": self.errors,
                "timeouts": self.timeouts,
                "rejected": self.rejected,
                "cancelled": self.cancelled,
                "fallbacks": self.fallbacks,
                "retries": self.retries,
                "verified": self.verified,
                "diverged": self.diverged,
                "degraded": self.degraded,
                "fallback_depth_hist": {str(k): v for k, v in
                                        sorted(
                                            self.fallback_depth_hist.items())},
                "breaker_transitions": dict(self.breaker_transitions),
                "batches_executed": self.batches_executed,
                "batch_size_hist": {str(k): v for k, v in
                                    sorted(self.batch_size_hist.items())},
                "queue_depth_peak": self.queue_depth_peak,
                "request_cache_hits": self.cache_hits,
                "request_cache_misses": self.cache_misses,
            }
        out["cache_hit_rate"] = (
            out["request_cache_hits"] /
            max(1, out["request_cache_hits"] + out["request_cache_misses"]))
        out["latency_p50_ms"] = percentile(latencies, 50) * 1e3
        out["latency_p95_ms"] = percentile(latencies, 95) * 1e3
        out["queue_wait_p50_ms"] = percentile(waits, 50) * 1e3
        out["queue_wait_p95_ms"] = percentile(waits, 95) * 1e3
        if snap is not None:
            out["compile_cache"] = {
                "epoch": snap.epoch, "hits": snap.hits,
                "misses": snap.misses, "size": snap.size,
                "capacity": snap.capacity, "hit_rate": snap.hit_rate,
            }
        return out
