"""The serving facade: bounded queues, continuous batching, workers.

``Server`` accepts concurrent inference requests (``submit`` /
``submit_many``), parks them in per-(workload, pipeline, platform,
shape, shared-state) group queues, and lets a pool of worker threads
drain them.  Scheduling is **continuous batching with admission
control** (``ServePolicy(continuous_batching=True)``, the default):

* an idle worker claims the highest-priority non-empty group
  immediately (lane order: highest ``Request.priority`` first, then
  most urgent wake time) instead of sleeping out ``batch_wait_s``;
* a claimed *partial* batch stays open as an in-flight
  :class:`~repro.serve.admission.AdmissionWindow` until a
  deadline-aware cutoff — ``min(oldest.flush_at, min-deadline −
  slack, execute-start)`` — admitting compatible same-key arrivals
  while the worker is still assembling the batch (``serve:admit``
  spans mark each late admission);
* intake is gated by per-tenant token-bucket quotas and by the
  percentile-driven overload shedder (``serve:shed``) before the
  bounded-queue backpressure is ever consulted — reject-on-full is the
  last-resort backstop, not the only overload response.

With ``continuous_batching=False`` the classic flush-once scheduler
runs: a group flushes at ``max_batch_size``, when the oldest member
has waited ``batch_wait_s``, or when the *group's* earliest deadline
enters the slack window (tracked per group, not just ``queue[0]``, so
a tight-deadline member never starves behind a relaxed oldest one).

Each flushed batch is coalesced along the workload's batch axis and
executed as one kernel-launch-profiled run (see ``executor.py``), so
the device cost of a request shrinks roughly with the batch size — the
horizontal-parallelization argument of the paper, applied across users
instead of across loop iterations.

Usage::

    with Server(ServePolicy(workers=4, max_batch_size=8)) as srv:
        futs = [srv.submit("lstm", args=a, pipeline="tensorssa",
                           priority=1, tenant="gold")
                for a in request_args]
        responses = [f.result() for f in futs]

``shutdown(drain=True)`` (implicit at ``with`` exit) stops intake,
serves everything already queued, and joins the workers.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from typing import Callable, Deque, Dict, Iterable, List, Optional, Union

from ..errors import ServerShutdown
from ..eval.harness import CompileCache
from ..models import Workload, get_workload
from ..obs import trace as obs_trace
from .admission import AdmissionController, AdmissionWindow
from .batching import (get_batch_spec, group_key, group_lane,
                       group_min_deadline, request_rows)
from .executor import BatchExecutor
from .policy import ServePolicy
from .request import (Request, Response, STATUS_CANCELLED, STATUS_ERROR,
                      STATUS_REJECTED, STATUS_SHED)
from .stats import ServerStats


class QueueFullError(RuntimeError):
    """Raised by ``submit`` when the queue is full and the policy
    rejects instead of returning a rejected response."""


class Server:
    """Concurrent, dynamically-batched front door over the pipelines."""

    def __init__(self, policy: Optional[ServePolicy] = None,
                 cache: Optional[CompileCache] = None,
                 stats: Optional[ServerStats] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy or ServePolicy()
        #: private by default so server metrics don't interleave with
        #: figure sweeps; inject a cache to share compilations
        self.cache = cache if cache is not None \
            else CompileCache(capacity=self.policy.cache_capacity)
        if self.policy.tuning_db_path \
                and getattr(self.cache, "tuning_db", None) is None:
            # read-side attach: the serve path only ever looks up
            # best-known schedules; tools/tune writes the entries
            from ..tune.db import TuningDB
            self.cache.tuning_db = TuningDB(self.policy.tuning_db_path)
        self.stats = stats or ServerStats(
            recent_window=self.policy.shed_window)
        if getattr(self.cache, "tuning_db", None) is not None:
            # seed the snapshot so ``tune_db`` counters are reported
            # even before (or without) any batch executing
            self.stats.set_tuning_snapshot(self.cache.tuning_db.snapshot())
        self.executor = BatchExecutor(self.policy, self.cache, self.stats)
        #: injectable for deterministic scheduler/quota tests; the
        #: executor keeps real monotonic time, so only inject a fake
        #: clock when no request actually executes
        self._clock = clock
        self.admission = AdmissionController(self.policy, self.stats,
                                             clock=clock)
        self._cond = threading.Condition()
        #: insertion-ordered so equal-lane, equal-urgency groups drain
        #: oldest-first
        self._groups: "OrderedDict[tuple, Deque[Request]]" = OrderedDict()
        #: open continuous-batching admission windows, by group key
        self._windows: Dict[tuple, AdmissionWindow] = {}
        self._pending = 0
        self._closed = False
        self._workers: List[threading.Thread] = []
        for i in range(self.policy.workers):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"serve-worker-{i}", daemon=True)
            t.start()
            self._workers.append(t)

    # -- intake ---------------------------------------------------------

    def submit(self, workload: Union[str, Workload], args: tuple = None,
               *, pipeline: str = "tensorssa",
               platform: str = "datacenter", batch_size: int = 1,
               seq_len: int = 64, seed: int = 0,
               timeout_s: Optional[float] = None,
               priority: int = 0,
               tenant: str = "default") -> "Future[Response]":
        """Enqueue one request; returns a future for its Response.

        ``args`` are the request's input tensors; when omitted they are
        synthesized via the workload's ``make_inputs`` (handy for load
        generation).  ``timeout_s`` overrides the policy deadline
        (``None`` = policy default, ``0`` or negative = no deadline).
        ``priority`` picks the scheduling lane (higher drains first and
        is exempt from shedding above ``shed_priority_max``);
        ``tenant`` names the token-bucket quota the request draws from.
        """
        wl = get_workload(workload) if isinstance(workload, str) else workload
        if args is None:
            args = wl.make_inputs(batch_size=batch_size, seq_len=seq_len,
                                  seed=seed)
        budget = self.policy.request_timeout_s if timeout_s is None \
            else timeout_s
        now = self._clock()
        deadline = now + budget if budget and budget > 0 else None
        spec = get_batch_spec(wl.name)
        req = Request(workload=wl, pipeline=pipeline, platform=platform,
                      args=tuple(args),
                      batch_rows=request_rows(spec, args),
                      deadline=deadline, priority=priority, tenant=tenant,
                      enqueued_at=now)
        self._enqueue(req)
        return req.future

    def submit_many(self, submissions: Iterable[dict]
                    ) -> List["Future[Response]"]:
        """Enqueue a batch of ``submit`` keyword dicts at once."""
        return [self.submit(**kwargs) for kwargs in submissions]

    def _enqueue(self, req: Request) -> None:
        with self._cond:
            if self._closed:
                raise ServerShutdown("server is shut down")
            # admission control runs before backpressure: a quota- or
            # shed-rejected request never occupies queue space
            if not self.admission.admit_quota(req.tenant):
                self._quota_reject(req)
                return
            if self.admission.should_shed(req.priority,
                                          pending=self._pending):
                self._shed(req)
                return
            if self._pending >= self.policy.queue_capacity:
                if self.policy.reject_on_full:
                    self._reject(req)
                    return
                # req.enqueued_at was stamped at submit, so the time
                # spent blocked here stays visible in the queue-wait
                # percentiles the shedder reads; the wait itself is
                # additionally recorded as its own phase/metric below
                wait_start = self._clock()
                deadline = wait_start + self.policy.submit_timeout_s
                while self._pending >= self.policy.queue_capacity \
                        and not self._closed:
                    remaining = deadline - self._clock()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        self._reject(req)
                        return
                if self._closed:
                    raise ServerShutdown(
                        "server shut down while the submit was waiting "
                        "for queue space")
                waited = self._clock() - wait_start
                self.stats.on_backpressure(waited)
                req.mark("backpressure", wait_s=waited)
            key = group_key(req, bucket_min=(
                self.policy.bucket_min
                if self.policy.dynamic_shapes else None))
            now = self._clock()
            window = self._windows.get(key)
            if window is not None and window.admit(req, now):
                # continuous batching: ride the in-flight batch a
                # worker is still assembling instead of queueing
                self.stats.on_submit(self._pending, priority=req.priority)
                self.stats.on_admit()
                with obs_trace.span("serve:admit", cat="serve",
                                    lane=req.priority, tenant=req.tenant,
                                    window=len(window.members)):
                    req.mark("admit", window=len(window.members),
                             lane=req.priority)
                self._cond.notify_all()
                return
            queue = self._groups.get(key)
            if queue is None:
                queue = deque()
                self._groups[key] = queue
            queue.append(req)
            self._pending += 1
            self.stats.on_submit(self._pending, priority=req.priority)
            req.mark("enqueue", queue_depth=self._pending,
                     group=f"{req.workload.name}/{req.pipeline}",
                     lane=req.priority)
            self._cond.notify_all()

    def _reject(self, req: Request) -> None:
        self.stats.on_reject()
        req.future.set_result(Response(
            request_id=req.id, workload=req.workload.name,
            pipeline=req.pipeline, platform=req.platform,
            status=STATUS_REJECTED, priority=req.priority,
            tenant=req.tenant, error="queue full"))

    def _quota_reject(self, req: Request) -> None:
        self.stats.on_quota_reject(req.tenant)
        req.mark("quota_reject", tenant=req.tenant)
        req.future.set_result(Response(
            request_id=req.id, workload=req.workload.name,
            pipeline=req.pipeline, platform=req.platform,
            status=STATUS_REJECTED, priority=req.priority,
            tenant=req.tenant,
            error=f"tenant quota exceeded: {req.tenant!r}"))

    def _shed(self, req: Request) -> None:
        self.stats.on_shed(req.priority)
        with obs_trace.span("serve:shed", cat="serve", lane=req.priority,
                            tenant=req.tenant):
            req.mark("shed", lane=req.priority)
        req.future.set_result(Response(
            request_id=req.id, workload=req.workload.name,
            pipeline=req.pipeline, platform=req.platform,
            status=STATUS_SHED, priority=req.priority, tenant=req.tenant,
            error=f"shed: recent queue-wait "
                  f"p{self.policy.shed_percentile:g} over the deadline "
                  f"budget"))

    # -- scheduling -----------------------------------------------------

    def _group_wake_at(self, queue: "Deque[Request]") -> float:
        """When the scheduler must next act on a group: the oldest
        member's flush point or the *group's* earliest deadline minus
        slack, whichever lands first.  Using the group minimum (not
        just ``queue[0]``) fixes two scheduler bugs: a later member
        with a tighter deadline now triggers the urgent flush, and the
        condition-wait timeout wakes in time to serve it."""
        flush_at = queue[0].enqueued_at + self.policy.batch_wait_s
        min_deadline = group_min_deadline(queue)
        if min_deadline is None:
            return flush_at
        return min(flush_at, min_deadline - self.policy.deadline_slack_s)

    def _take_batch(self) -> Optional[List[Request]]:
        """Block until a group is ready to flush; None = shut down and
        drained.

        Classic mode readiness: full batch, past the group's wake
        point (oldest member's flush time or group-min deadline inside
        the slack window), or draining.  Continuous mode: any
        non-empty group is claimable immediately — the batch wait
        moves into the admission-window linger, where late arrivals
        are admitted instead of shut out.  Among claimable groups the
        highest lane (max member priority) wins; ties break to the
        most urgent wake point.
        """
        with self._cond:
            while True:
                now = self._clock()
                next_wake: Optional[float] = None
                best_key: Optional[tuple] = None
                best_rank = None
                for key, queue in self._groups.items():
                    if not queue:
                        continue
                    wake_at = self._group_wake_at(queue)
                    ready = (self.policy.continuous_batching
                             or len(queue) >= self.policy.max_batch_size
                             or now >= wake_at or self._closed)
                    if not ready:
                        next_wake = wake_at if next_wake is None \
                            else min(next_wake, wake_at)
                        continue
                    rank = (group_lane(queue), -wake_at)
                    if best_rank is None or rank > best_rank:
                        best_rank, best_key = rank, key
                if best_key is not None:
                    queue = self._groups[best_key]
                    batch = [queue.popleft() for _ in range(
                        min(len(queue), self.policy.max_batch_size))]
                    if not queue:
                        del self._groups[best_key]
                    self._pending -= len(batch)
                    self._cond.notify_all()
                    for member in batch:
                        member.mark("dequeue", batch=len(batch))
                    if (self.policy.continuous_batching
                            and len(batch) < self.policy.max_batch_size
                            and not self._closed):
                        self._linger(best_key, batch, now)
                    return batch
                if self._closed and self._pending == 0:
                    return None
                timeout = None if next_wake is None \
                    else max(0.0, next_wake - now)
                self._cond.wait(timeout)

    def _linger(self, key: tuple, batch: List[Request],
                now: float) -> None:
        """Hold a partial batch open as an admission window (caller
        holds the lock).  The window closes at the deadline-aware
        cutoff ``min(oldest.flush_at, min-deadline − slack)``, when it
        fills, or at shutdown — whichever comes first; closing is the
        batch's execute-start."""
        flush_at = batch[0].enqueued_at + self.policy.batch_wait_s
        min_deadline = group_min_deadline(batch)
        cutoff = flush_at if min_deadline is None else min(
            flush_at, min_deadline - self.policy.deadline_slack_s)
        if cutoff <= now:
            return
        window = AdmissionWindow(key=key, members=batch, cutoff=cutoff,
                                 capacity=self.policy.max_batch_size,
                                 slack_s=self.policy.deadline_slack_s)
        self._windows[key] = window
        try:
            with obs_trace.span("serve:window", cat="serve",
                                workload=batch[0].workload.name,
                                claimed=len(batch)):
                while not window.full and not self._closed:
                    remaining = window.cutoff - self._clock()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
        finally:
            window.closed = True
            if self._windows.get(key) is window:
                del self._windows[key]

    def _worker_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            try:
                with obs_trace.span("serve:batch", cat="serve",
                                    requests=len(batch),
                                    workload=batch[0].workload.name,
                                    pipeline=batch[0].pipeline):
                    self.executor.execute(batch)
            except Exception as exc:
                # A worker must never die holding unresolved futures:
                # whatever slipped past the executor's own handling is
                # scattered to the batch as typed error responses, and
                # the worker survives to drain the next batch.
                self._scatter_failure(batch, exc)

    def _scatter_failure(self, batch: List[Request], exc: Exception) -> None:
        for req in batch:
            if req.future.done():
                continue
            req.future.set_result(Response(
                request_id=req.id, workload=req.workload.name,
                pipeline=req.pipeline, platform=req.platform,
                status=STATUS_ERROR, priority=req.priority,
                tenant=req.tenant, admitted=req.admitted,
                error=f"executor crashed: {type(exc).__name__}: {exc}"))

    # -- lifecycle ------------------------------------------------------

    def queue_depth(self) -> int:
        with self._cond:
            return self._pending

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop intake; serve (``drain=True``) or reject what is queued,
        then join the workers.

        The drain is *bounded*: the whole worker join shares one
        deadline — ``timeout`` when given, else the policy's
        ``drain_timeout_s`` — so a wedged worker thread can never make
        shutdown wait indefinitely.  Guarantee: no waiter blocks on a
        future that never resolves.  After the workers are joined (or
        the deadline expires), anything still queued — requests a
        dead/stuck worker would have served — is answered with a typed
        :class:`~repro.errors.ServerShutdown` rejection instead of
        being left pending forever; deadline-expired drains are counted
        in ``stats.drain_expired``.
        """
        with self._cond:
            if not drain:
                self._flush_queued(STATUS_CANCELLED, "server shut down")
            self._closed = True
            self._cond.notify_all()
        budget = self.policy.drain_timeout_s if timeout is None else timeout
        deadline = None if budget is None else time.monotonic() + budget
        for t in self._workers:
            if deadline is None:
                t.join()
            else:
                t.join(max(0.0, deadline - time.monotonic()))
        expired = any(t.is_alive() for t in self._workers)
        with self._cond:
            # drain=True normally leaves nothing here; a worker that
            # died or outlived the drain deadline does
            flushed = self._flush_queued(
                STATUS_CANCELLED,
                str(ServerShutdown("server shut down before the request "
                                   "was served")))
        if expired:
            self.stats.on_drain_expired(flushed)
        self.stats.set_cache_snapshot(self.cache.snapshot())
        self.stats.set_breaker_transitions(
            self.executor.breakers.transitions())

    def _flush_queued(self, status: str, error: str) -> int:
        """Resolve every queued request's future (caller holds the
        lock); returns how many were flushed."""
        cancelled = 0
        for queue in self._groups.values():
            while queue:
                req = queue.popleft()
                cancelled += 1
                req.future.set_result(Response(
                    request_id=req.id, workload=req.workload.name,
                    pipeline=req.pipeline, platform=req.platform,
                    status=status, priority=req.priority,
                    tenant=req.tenant, error=error))
        self._groups.clear()
        self._pending = 0
        if cancelled:
            self.stats.on_cancel(cancelled)
            self._cond.notify_all()
        return cancelled

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)
