"""The serving facade: bounded queues, dynamic batching, worker pool.

``Server`` accepts concurrent inference requests (``submit`` /
``submit_many``), parks them in per-(workload, pipeline, platform,
shape, shared-state) group queues, and lets a pool of worker threads
drain them: a worker flushes a group as soon as it holds
``max_batch_size`` requests, or once the group's oldest request has
waited ``batch_wait_s``, whichever comes first — classic dynamic
batching.  Each flushed batch is coalesced along the workload's batch
axis and executed as one kernel-launch-profiled run (see
``executor.py``), so the device cost of a request shrinks roughly with
the batch size — the horizontal-parallelization argument of the paper,
applied across users instead of across loop iterations.

Usage::

    with Server(ServePolicy(workers=4, max_batch_size=8)) as srv:
        futs = [srv.submit("lstm", args=a, pipeline="tensorssa")
                for a in request_args]
        responses = [f.result() for f in futs]

``shutdown(drain=True)`` (implicit at ``with`` exit) stops intake,
serves everything already queued, and joins the workers.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from typing import Deque, Dict, Iterable, List, Optional, Union

from ..errors import ServerShutdown
from ..eval.harness import CompileCache
from ..models import Workload, get_workload
from ..obs import trace as obs_trace
from .batching import get_batch_spec, group_key, request_rows
from .executor import BatchExecutor
from .policy import ServePolicy
from .request import (Request, Response, STATUS_CANCELLED, STATUS_ERROR,
                      STATUS_REJECTED)
from .stats import ServerStats


class QueueFullError(RuntimeError):
    """Raised by ``submit`` when the queue is full and the policy
    rejects instead of returning a rejected response."""


class Server:
    """Concurrent, dynamically-batched front door over the pipelines."""

    def __init__(self, policy: Optional[ServePolicy] = None,
                 cache: Optional[CompileCache] = None,
                 stats: Optional[ServerStats] = None) -> None:
        self.policy = policy or ServePolicy()
        #: private by default so server metrics don't interleave with
        #: figure sweeps; inject a cache to share compilations
        self.cache = cache if cache is not None \
            else CompileCache(capacity=self.policy.cache_capacity)
        self.stats = stats or ServerStats()
        self.executor = BatchExecutor(self.policy, self.cache, self.stats)
        self._cond = threading.Condition()
        #: insertion-ordered so the scheduler scans oldest groups first
        self._groups: "OrderedDict[tuple, Deque[Request]]" = OrderedDict()
        self._pending = 0
        self._closed = False
        self._workers: List[threading.Thread] = []
        for i in range(self.policy.workers):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"serve-worker-{i}", daemon=True)
            t.start()
            self._workers.append(t)

    # -- intake ---------------------------------------------------------

    def submit(self, workload: Union[str, Workload], args: tuple = None,
               *, pipeline: str = "tensorssa",
               platform: str = "datacenter", batch_size: int = 1,
               seq_len: int = 64, seed: int = 0,
               timeout_s: Optional[float] = None) -> "Future[Response]":
        """Enqueue one request; returns a future for its Response.

        ``args`` are the request's input tensors; when omitted they are
        synthesized via the workload's ``make_inputs`` (handy for load
        generation).  ``timeout_s`` overrides the policy deadline
        (``None`` = policy default, ``0`` or negative = no deadline).
        """
        wl = get_workload(workload) if isinstance(workload, str) else workload
        if args is None:
            args = wl.make_inputs(batch_size=batch_size, seq_len=seq_len,
                                  seed=seed)
        budget = self.policy.request_timeout_s if timeout_s is None \
            else timeout_s
        deadline = time.monotonic() + budget \
            if budget and budget > 0 else None
        spec = get_batch_spec(wl.name)
        req = Request(workload=wl, pipeline=pipeline, platform=platform,
                      args=tuple(args),
                      batch_rows=request_rows(spec, args),
                      deadline=deadline)
        self._enqueue(req)
        return req.future

    def submit_many(self, submissions: Iterable[dict]
                    ) -> List["Future[Response]"]:
        """Enqueue a batch of ``submit`` keyword dicts at once."""
        return [self.submit(**kwargs) for kwargs in submissions]

    def _enqueue(self, req: Request) -> None:
        with self._cond:
            if self._closed:
                raise ServerShutdown("server is shut down")
            if self._pending >= self.policy.queue_capacity:
                if self.policy.reject_on_full:
                    self._reject(req)
                    return
                deadline = time.monotonic() + self.policy.submit_timeout_s
                while self._pending >= self.policy.queue_capacity \
                        and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        self._reject(req)
                        return
                if self._closed:
                    raise ServerShutdown(
                        "server shut down while the submit was waiting "
                        "for queue space")
            key = group_key(req, bucket_min=(
                self.policy.bucket_min
                if self.policy.dynamic_shapes else None))
            queue = self._groups.get(key)
            if queue is None:
                queue = deque()
                self._groups[key] = queue
            queue.append(req)
            req.enqueued_at = time.monotonic()
            self._pending += 1
            self.stats.on_submit(self._pending)
            req.mark("enqueue", queue_depth=self._pending,
                     group=f"{req.workload.name}/{req.pipeline}")
            self._cond.notify_all()

    def _reject(self, req: Request) -> None:
        self.stats.on_reject()
        req.future.set_result(Response(
            request_id=req.id, workload=req.workload.name,
            pipeline=req.pipeline, platform=req.platform,
            status=STATUS_REJECTED, error="queue full"))

    # -- scheduling -----------------------------------------------------

    def _take_batch(self) -> Optional[List[Request]]:
        """Block until a group is ready to flush; None = shut down and
        drained.  Readiness: full batch, oldest member past its batch
        wait, a member's deadline inside the slack window, or draining.
        """
        with self._cond:
            while True:
                now = time.monotonic()
                next_flush: Optional[float] = None
                for key, queue in self._groups.items():
                    if not queue:
                        continue
                    oldest = queue[0]
                    flush_at = oldest.enqueued_at + self.policy.batch_wait_s
                    urgent = (oldest.remaining(now)
                              <= self.policy.deadline_slack_s)
                    if (len(queue) >= self.policy.max_batch_size
                            or flush_at <= now or urgent or self._closed):
                        batch = [queue.popleft() for _ in range(
                            min(len(queue), self.policy.max_batch_size))]
                        if not queue:
                            del self._groups[key]
                        self._pending -= len(batch)
                        self._cond.notify_all()
                        for member in batch:
                            member.mark("dequeue", batch=len(batch))
                        return batch
                    next_flush = flush_at if next_flush is None \
                        else min(next_flush, flush_at)
                if self._closed and self._pending == 0:
                    return None
                timeout = None if next_flush is None \
                    else max(0.0, next_flush - now)
                self._cond.wait(timeout)

    def _worker_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            try:
                with obs_trace.span("serve:batch", cat="serve",
                                    requests=len(batch),
                                    workload=batch[0].workload.name,
                                    pipeline=batch[0].pipeline):
                    self.executor.execute(batch)
            except Exception as exc:
                # A worker must never die holding unresolved futures:
                # whatever slipped past the executor's own handling is
                # scattered to the batch as typed error responses, and
                # the worker survives to drain the next batch.
                self._scatter_failure(batch, exc)

    def _scatter_failure(self, batch: List[Request], exc: Exception) -> None:
        for req in batch:
            if req.future.done():
                continue
            req.future.set_result(Response(
                request_id=req.id, workload=req.workload.name,
                pipeline=req.pipeline, platform=req.platform,
                status=STATUS_ERROR,
                error=f"executor crashed: {type(exc).__name__}: {exc}"))

    # -- lifecycle ------------------------------------------------------

    def queue_depth(self) -> int:
        with self._cond:
            return self._pending

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop intake; serve (``drain=True``) or reject what is queued,
        then join the workers.

        Guarantee: no waiter blocks on a future that never resolves.
        After the workers are joined (or the join times out), anything
        still queued — requests a dead/stuck worker would have served —
        is answered with a typed :class:`~repro.errors.ServerShutdown`
        rejection instead of being left pending forever.
        """
        with self._cond:
            if not drain:
                self._flush_queued(STATUS_CANCELLED, "server shut down")
            self._closed = True
            self._cond.notify_all()
        for t in self._workers:
            t.join(timeout)
        with self._cond:
            # drain=True normally leaves nothing here; a worker that
            # died or outlived the join timeout does
            self._flush_queued(
                STATUS_CANCELLED,
                str(ServerShutdown("server shut down before the request "
                                   "was served")))
        self.stats.set_cache_snapshot(self.cache.snapshot())
        self.stats.set_breaker_transitions(
            self.executor.breakers.transitions())

    def _flush_queued(self, status: str, error: str) -> None:
        """Resolve every queued request's future (caller holds the lock)."""
        cancelled = 0
        for queue in self._groups.values():
            while queue:
                req = queue.popleft()
                cancelled += 1
                req.future.set_result(Response(
                    request_id=req.id, workload=req.workload.name,
                    pipeline=req.pipeline, platform=req.platform,
                    status=status, error=error))
        self._groups.clear()
        self._pending = 0
        if cancelled:
            self.stats.on_cancel(cancelled)
            self._cond.notify_all()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)
