"""Request/response types for the serving layer.

A :class:`Request` is one inference call: a workload, the pipeline and
platform to serve it on, and its input tensors.  The server answers
with a :class:`Response` carrying the outputs plus per-request
observability (queue wait, the batch it rode in, cache hit status,
which executor actually served it).

Responses are delivered through ``concurrent.futures.Future`` objects,
so callers can block (``future.result()``), poll, or attach callbacks.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..models import Workload
from ..obs import trace as obs_trace

#: Response status values.
STATUS_OK = "ok"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"
STATUS_REJECTED = "rejected"
STATUS_CANCELLED = "cancelled"
#: answered at intake by the overload shedder (low-priority work shed
#: while the recent queue-wait percentile exceeds the deadline budget)
STATUS_SHED = "shed"

_request_ids = itertools.count()


@dataclass(eq=False)  # identity semantics: args hold tensors
class Request:
    """One queued inference request (internal to the server)."""

    workload: Workload
    pipeline: str
    platform: str
    args: tuple
    #: rows this request contributes along its workload's batch axis
    batch_rows: int = 1
    #: absolute monotonic deadline; None = no deadline
    deadline: Optional[float] = None
    #: scheduling lane: higher priorities drain first and are exempt
    #: from load shedding above ``ServePolicy.shed_priority_max``
    priority: int = 0
    #: tenant label for token-bucket quotas and lane-labeled metrics
    tenant: str = "default"
    #: True when the request rode into a batch through an in-flight
    #: admission window (continuous batching) instead of the queue
    admitted: bool = False
    id: int = field(default_factory=lambda: next(_request_ids))
    #: stamped at *submit* (construction), before any backpressure
    #: wait, so queue-wait percentiles include time blocked on a full
    #: queue — the very signal the overload shedder reads
    enqueued_at: float = field(default_factory=time.monotonic)
    future: "Future[Response]" = field(default_factory=Future)
    #: lifecycle timeline (only populated while a trace sink is
    #: installed — see :meth:`mark`); attached to the Response
    timeline: List[Dict[str, object]] = field(default_factory=list,
                                              repr=False)

    def mark(self, event: str, **attrs) -> None:
        """Stamp one lifecycle event (enqueue, dequeue, execute, ...)
        onto the request's timeline.  A no-op unless a trace sink is
        installed, so the serving hot path stays unchanged when
        observability is off."""
        if obs_trace.tracing_active():
            entry: Dict[str, object] = {"event": event,
                                        "t_s": time.perf_counter()}
            if attrs:
                entry.update(attrs)
            self.timeline.append(entry)

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline

    def remaining(self, now: Optional[float] = None) -> float:
        """Seconds until the deadline (inf when none is set)."""
        if self.deadline is None:
            return float("inf")
        return self.deadline - (now if now is not None else time.monotonic())


@dataclass
class Response:
    """The server's answer to one request."""

    request_id: int
    workload: str
    pipeline: str
    platform: str
    status: str
    #: pipeline that actually produced the outputs: the requested one,
    #: or a lower ladder rung when the fallback policy kicked in
    served_by: str = ""
    #: how far down the degradation ladder the serving rung sat
    #: (0 = the requested pipeline served it)
    fallback_depth: int = 0
    #: True when a rung below the requested pipeline served the request
    degraded: bool = False
    #: scheduling lane and tenant the request carried (echoed back so
    #: load generators can slice latency by lane without bookkeeping)
    priority: int = 0
    tenant: str = "default"
    #: True when the request was late-admitted into an in-flight batch
    #: through a continuous-batching admission window
    admitted: bool = False
    outputs: Tuple = field(default=(), repr=False)
    #: how many requests / total batch rows rode in the same executed batch
    batch_requests: int = 0
    batch_rows: int = 0
    #: modeled device+host latency of the whole executed batch (µs)
    batch_latency_us: float = 0.0
    kernel_launches: int = 0
    queue_wait_s: float = 0.0
    exec_wall_s: float = 0.0
    cache_hit: bool = False
    #: True when the batch executed under a tuning-DB schedule instead
    #: of the default lowering; ``schedule_id`` names it either way
    tuned: bool = False
    schedule_id: str = "default"
    #: None = verification off; True/False = oracle verdict
    verified: Optional[bool] = None
    retries: int = 0
    error: str = ""
    #: sharded serving (repro.shard): the worker process that produced
    #: the outputs ("" when served in-process)
    worker: str = ""
    #: how many times the request was redelivered after a worker crash
    #: before this answer (0 = first delivery succeeded)
    redelivered: int = 0
    #: per-request lifecycle timeline (enqueue -> batch -> execute ->
    #: scatter, including ladder rungs and retries); populated only
    #: when the request was served under an installed trace sink
    timeline: Tuple = field(default=(), repr=False)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK
