"""Dynamic batching: coalesce compatible requests into one device run.

The paper's pitch is that functionalization makes horizontal
parallelization legal (§4.2.2, §5); the serving-layer corollary is that
*requests* parallelize the same way: inputs from many users concatenate
along the workload's batch axis, the compiled graph runs once, and the
outputs scatter back per request.

A :class:`BatchSpec` names, per workload, which arguments carry the
batch axis (and where it sits) and which are shared model state
(weights, priors, grids).  Two requests coalesce only when

* they target the same (workload, pipeline, platform) triple,
* their *shared* arguments are the same tensors (object identity —
  the server contract is that model state is loaded once and reused),
* their batched arguments agree on every non-batch dimension and dtype
  (the same shape-specialization rule the compile cache keys on), and
* their non-tensor arguments are equal.

Workloads without a spec still serve — each request just executes
unbatched.

Numerics contract: batching changes GEMM shapes, and BLAS may pick a
different (equally correct) reduction order per shape, so a batched
result can differ from the same request served alone in the last float
bits.  What *is* guaranteed — and what the executor's ``verify="batch"``
oracle checks — is bit-exactness between the compiled pipeline and
eager on the identical coalesced inputs.  Unbatched requests are
bit-exact with solo eager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.runtime as rt

from ..symshape.bucketing import (PadSpec, bucket_extent, get_pad_spec,
                                  pad_args, request_extent, unpad_outputs)
from .request import Request


@dataclass(frozen=True)
class BatchSpec:
    """Where the batch axis lives in a workload's args and outputs.

    ``arg_axes[i]`` is the batch axis of argument ``i``, or None when
    the argument is shared model state (or a non-tensor scalar).
    ``out_axes`` likewise for the model's outputs.
    """

    arg_axes: Tuple[Optional[int], ...]
    out_axes: Tuple[Optional[int], ...]

    def batched_args(self) -> List[int]:
        return [i for i, ax in enumerate(self.arg_axes) if ax is not None]


#: Per-workload batch-axis metadata for the registry models.  RNN-style
#: workloads carry time-major activations (T, B, D) — batch axis 1 —
#: with batch-major state (B, H); CV heads and attention are
#: batch-major throughout.  Shared entries (None) are weights/priors.
BATCH_SPECS: Dict[str, BatchSpec] = {
    # lstm(x, wx, wh, bias, h0, c0) -> (out, h, c)
    "lstm": BatchSpec(arg_axes=(1, None, None, None, 0, 0),
                      out_axes=(1, 0, 0)),
    # nasrnn(x, wx, wh, h0) -> (out, h)
    "nasrnn": BatchSpec(arg_axes=(1, None, None, 0),
                        out_axes=(1, 0)),
    # seq2seq(src, enc_wx, enc_wh, enc_b, dec_wx, dec_wh, dec_b,
    #         embed, w_out, h0, c0, dec_steps) -> (tokens, logits_sum, h)
    "seq2seq": BatchSpec(
        arg_axes=(1, None, None, None, None, None, None, None, None,
                  0, 0, None),
        out_axes=(1, 0, 0)),
    # attention(q, k, v) -> (ctx, probs)
    "attention": BatchSpec(arg_axes=(0, 0, 0), out_axes=(0, 0)),
    # ssd(loc, conf, priors) -> (boxes, filtered, best_scores)
    "ssd": BatchSpec(arg_axes=(0, 0, None), out_axes=(0, 0, 0)),
    # yolov3(p0, p1, p2, g0, g1, g2, a0, a1, a2) -> (boxes, scores)
    "yolov3": BatchSpec(
        arg_axes=(0, 0, 0, None, None, None, None, None, None),
        out_axes=(0, 0)),
}


def get_batch_spec(workload_name: str) -> Optional[BatchSpec]:
    """Batch axes for a workload, or None when it cannot be batched."""
    return BATCH_SPECS.get(workload_name)


def group_lane(requests: Sequence[Request]) -> int:
    """The scheduling lane of a group: its highest member priority.

    One urgent member lifts the whole group (standard priority
    inheritance — coalescing it with lower-priority peers is free, so
    the peers ride along rather than splitting the batch).
    """
    return max((r.priority for r in requests), default=0)


def group_min_deadline(requests: Sequence[Request]) -> Optional[float]:
    """The earliest absolute deadline across ``requests`` (None when no
    member carries one).  The scheduler's urgency and wake timing key
    on this — not just on the oldest member — so a late-submitted
    tight-deadline request cannot starve behind a relaxed one."""
    deadlines = [r.deadline for r in requests if r.deadline is not None]
    return min(deadlines) if deadlines else None


def request_rows(spec: Optional[BatchSpec], args: Sequence) -> int:
    """Rows this request occupies along the batch axis (1 if unknown)."""
    if spec is None:
        return 1
    for i, axis in enumerate(spec.arg_axes):
        if axis is not None and isinstance(args[i], rt.Tensor):
            return int(args[i].shape[axis])
    return 1


def group_key(req: Request, bucket_min: Optional[int] = None) -> tuple:
    """Coalescing key: requests with equal keys may share one batch.

    Built from the same ingredients as the compile cache's
    shape-specialization key, minus the batch extent itself (which the
    coalesced run sums), plus the identity of shared model state.
    Requests without a spec get a key unique to themselves.

    With ``bucket_min`` set (dynamic-shape serving), each argument's
    padded sequence extent is replaced by its power-of-two bucket, so
    near-miss lengths (12, 13, 16 -> bucket 16) land in one group and
    ``coalesce`` pads them to a common extent.
    """
    spec = get_batch_spec(req.workload.name)
    if spec is None:
        return (req.workload.name, req.pipeline, req.platform,
                "solo", req.id)
    pad_spec = get_pad_spec(req.workload.name) if bucket_min else None
    parts: List[object] = [req.workload.name, req.pipeline, req.platform]
    for i, axis in enumerate(spec.arg_axes):
        arg = req.args[i] if i < len(req.args) else None
        if axis is None:
            # shared state: same tensor object, or equal scalar
            parts.append(("shared", id(arg)) if isinstance(arg, rt.Tensor)
                         else ("scalar", arg))
        else:
            if not isinstance(arg, rt.Tensor):
                return (req.workload.name, req.pipeline, req.platform,
                        "solo", req.id)
            shape = list(arg.shape)
            shape[axis] = -1  # batch extent is free
            if pad_spec is not None and i < len(pad_spec.arg_axes):
                pad_axis = pad_spec.arg_axes[i]
                if pad_axis is not None and pad_axis != axis:
                    shape[pad_axis] = -bucket_extent(shape[pad_axis],
                                                     bucket_min)
            parts.append(("batched", axis, tuple(shape), str(arg.dtype)))
    return tuple(parts)


@dataclass
class BatchPlan:
    """One coalesced execution: composed args plus the scatter map."""

    requests: List[Request]
    args: tuple
    spec: Optional[BatchSpec]
    #: per-request (row_start, row_end) along the batch axis
    segments: List[Tuple[int, int]]
    #: bucketed-padding bookkeeping (dynamic-shape serving only):
    #: the pad spec, the common bucket extent the args were padded to,
    #: and each request's real (pre-pad) extent for un-padding
    pad_spec: Optional[PadSpec] = None
    pad_bucket: Optional[int] = None
    pad_extents: Optional[List[int]] = None

    @property
    def total_rows(self) -> int:
        return self.segments[-1][1] if self.segments else 0

    @property
    def padded_units(self) -> int:
        """Sequence units executed after padding (0 when not padded)."""
        if self.pad_bucket is None or self.pad_extents is None:
            return 0
        return self.pad_bucket * len(self.pad_extents)

    @property
    def real_units(self) -> int:
        """Sequence units the requests actually asked for."""
        return sum(self.pad_extents) if self.pad_extents else 0


def coalesce(requests: Sequence[Request],
             bucket_min: Optional[int] = None) -> BatchPlan:
    """Compose one batch from same-group requests (order preserved).

    A single request passes through without concatenation, so solo
    execution costs nothing extra and stays bitwise identical to an
    unserved ``run_workload`` call.

    With ``bucket_min`` set, every request's sequence axis is
    zero-padded up to the group's power-of-two bucket before
    composition (host-side) and the plan records each request's real
    extent so :func:`scatter` can un-pad; solo requests are padded too,
    keeping the compiled shape stream bucketed.
    """
    reqs = list(requests)
    spec = get_batch_spec(reqs[0].workload.name)
    segments: List[Tuple[int, int]] = []
    row = 0
    for r in reqs:
        rows = request_rows(spec, r.args)
        segments.append((row, row + rows))
        row += rows

    pad_spec = None
    pad_bucket = None
    pad_extents = None
    req_args: List[tuple] = [r.args for r in reqs]
    if bucket_min and spec is not None:
        pspec = get_pad_spec(reqs[0].workload.name)
        if pspec is not None:
            extents = [request_extent(pspec, r.args) for r in reqs]
            if all(e is not None for e in extents):
                pad_spec = pspec
                pad_extents = [int(e) for e in extents]
                pad_bucket = max(bucket_extent(e, bucket_min)
                                 for e in pad_extents)
                req_args = [pad_args(a, pspec, pad_bucket)
                            for a in req_args]

    if len(reqs) == 1 or spec is None:
        return BatchPlan(requests=reqs, args=req_args[0], spec=spec,
                         segments=segments[:1], pad_spec=pad_spec,
                         pad_bucket=pad_bucket, pad_extents=pad_extents)
    composed: List[object] = []
    for i, axis in enumerate(spec.arg_axes):
        if axis is None:
            composed.append(req_args[0][i])
        else:
            composed.append(rt.cat([a[i] for a in req_args], axis))
    return BatchPlan(requests=reqs, args=tuple(composed), spec=spec,
                     segments=segments, pad_spec=pad_spec,
                     pad_bucket=pad_bucket, pad_extents=pad_extents)


def _slice_rows(t: rt.Tensor, axis: int, start: int, end: int) -> rt.Tensor:
    """A fresh tensor holding rows [start, end) of ``t`` along ``axis``
    (host-side scatter: no device launch is recorded)."""
    arr = t.numpy()
    index = [slice(None)] * arr.ndim
    index[axis] = slice(start, end)
    return rt.Tensor.from_array(np.ascontiguousarray(arr[tuple(index)]),
                                copy=False)


def scatter(outputs, plan: BatchPlan) -> List[tuple]:
    """Split batched outputs back into per-request output tuples,
    un-padding each back to its real sequence extent when the plan
    was bucketed."""
    outs = outputs if isinstance(outputs, tuple) else (outputs,)
    if plan.spec is None or len(plan.requests) == 1:
        per_request = [outs]
    else:
        per_request = []
        for start, end in plan.segments:
            sliced = []
            for k, out in enumerate(outs):
                axis = plan.spec.out_axes[k] \
                    if k < len(plan.spec.out_axes) else None
                if axis is None or not isinstance(out, rt.Tensor):
                    sliced.append(out)
                else:
                    sliced.append(_slice_rows(out, axis, start, end))
            per_request.append(tuple(sliced))
    if plan.pad_spec is not None and plan.pad_extents:
        per_request = [
            unpad_outputs(outs_i, plan.pad_spec, extent)
            for outs_i, extent in zip(per_request, plan.pad_extents)]
    return per_request
