"""Serving policy knobs: batching, queueing, deadlines, fallback.

One :class:`ServePolicy` object configures a :class:`~repro.serve.
server.Server`.  The defaults favor throughput (coalesce up to 8
requests, wait a few milliseconds for peers) while staying safe: a
bounded queue exerts backpressure on submitters, expired requests are
answered with a timeout instead of occupying device time, and requests
that cannot be compiled (or whose deadline is too close for a cold
compile) fall back to the eager pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Verification modes (see executor.py for the oracle semantics).
VERIFY_OFF = "off"
VERIFY_BATCH = "batch"
VERIFY_SOLO = "solo"


@dataclass(frozen=True)
class ServePolicy:
    """All tunables of the serving layer, in one immutable object."""

    #: worker threads draining the queues
    workers: int = 4
    #: most requests one executed batch may coalesce (1 = no batching)
    max_batch_size: int = 8
    #: how long the oldest queued request waits for peers before a
    #: partial batch is flushed anyway (seconds)
    batch_wait_s: float = 0.002
    #: total requests the server will hold queued; submit() blocks
    #: (or rejects, see ``reject_on_full``) beyond this
    queue_capacity: int = 256
    #: how long a blocked submit() waits for queue space before the
    #: request is rejected (seconds)
    submit_timeout_s: float = 5.0
    #: when True a full queue rejects immediately instead of blocking
    reject_on_full: bool = False
    #: default per-request deadline; None = requests never expire
    request_timeout_s: float = 30.0
    #: fall back to eager when compilation fails, or when a request's
    #: remaining deadline is below ``deadline_slack_s`` and no compiled
    #: artifact is cached for its shape (a cold compile would blow it)
    eager_fallback: bool = True
    deadline_slack_s: float = 0.25
    #: per-request executions after the first attempt (batch fails ->
    #: requests retried solo; a poison request fails alone)
    max_retries: int = 1
    #: result oracle: "off", "batch" (bit-exact vs eager on the same
    #: coalesced batch), or "solo" (allclose vs eager per request;
    #: bit-exact when the request ran unbatched)
    verify: str = VERIFY_OFF
    #: capacity of the server's private compile cache
    cache_capacity: int = 128
    #: graceful-degradation ladder (repro.degrade): when enabled, a
    #: failed batch descends the ordered fallback chain rung by rung
    #: (with per-(workload, rung) circuit breakers and jittered retry
    #: backoff) instead of dropping straight to solo eager retries
    ladder_enabled: bool = False
    #: the chain to walk; None = repro.degrade.DEFAULT_LADDER sliced
    #: from the requested pipeline down
    fallback_chain: Optional[Tuple[str, ...]] = None
    #: circuit-breaker tuning (see repro.degrade.CircuitBreaker)
    breaker_failure_rate: float = 0.5
    breaker_window: int = 8
    breaker_min_calls: int = 4
    breaker_reset_s: float = 0.25
    #: retry backoff tuning (see repro.degrade.RetryPolicy); the number
    #: of in-rung retries reuses ``max_retries`` above
    retry_base_delay_s: float = 0.001
    retry_max_delay_s: float = 0.05
    retry_jitter: float = 0.5
    #: seed of the executor's jitter RNG (deterministic backoff in tests)
    retry_seed: int = 0
    #: key compiles on shape *families* (repro.symshape) instead of
    #: concrete signatures, and bucket variable sequence lengths into
    #: power-of-two pads so near-miss lengths share one batch and one
    #: artifact.  Requires ``verify`` "off" or "batch": the batch
    #: oracle runs eager on the identical padded inputs, whereas
    #: "solo" would compare against the unpadded request and flag
    #: legitimate padded-state differences (e.g. an LSTM's final
    #: h/c reflect the padded-length run) as divergence.
    dynamic_shapes: bool = False
    #: smallest padding bucket; buckets are ``bucket_min * 2^k``
    bucket_min: int = 8
    #: continuous batching: an idle worker claims a group immediately
    #: and holds the flushed batch open as an in-flight admission
    #: window (``serve.admission.AdmissionWindow``) until a
    #: deadline-aware cutoff — late same-key arrivals ride along
    #: instead of waiting out a fresh ``batch_wait_s``.  Off restores
    #: the classic flush-once scheduler.
    continuous_batching: bool = True
    #: per-tenant token-bucket quotas: tenant name -> (tokens/s, burst).
    #: Tenants not listed are unlimited; a drained bucket rejects at
    #: intake with a "tenant quota exceeded" response.
    tenant_rates: Optional[Dict[str, Tuple[float, float]]] = None
    #: percentile-driven load shedding: when the recent queue-wait
    #: percentile crosses the deadline budget, requests with
    #: ``priority <= shed_priority_max`` are answered ``shed`` at
    #: intake instead of queueing (the overload response; reject-on-
    #: full remains only as the last-resort capacity backstop)
    shed_enabled: bool = True
    #: which queue-wait percentile drives the shedder
    shed_percentile: float = 99.0
    #: queue-wait budget (s) the percentile is compared against; None
    #: derives ``request_timeout_s - deadline_slack_s``
    shed_budget_s: Optional[float] = None
    #: only requests at or below this priority are sheddable (lanes
    #: above it ride through overload untouched)
    shed_priority_max: int = 0
    #: hysteresis: once shedding, recover only after the percentile
    #: falls below ``budget * shed_recover_fraction``
    shed_recover_fraction: float = 0.5
    #: work-conservation floor: never shed while fewer than this many
    #: requests are pending (the percentile signal lags the live queue,
    #: and shedding into a near-empty server trades goodput for
    #: nothing — a short queue already satisfies the wait bound).
    #: None derives ``workers * max_batch_size``, one in-flight wave.
    shed_min_pending: Optional[int] = None
    #: sliding-window size (responses) for the recent-percentile signal
    shed_window: int = 256
    #: root directory of a persistent :class:`repro.tune.db.TuningDB`;
    #: when set, the server's compile cache consults it per batch and
    #: executes under the best-known schedule for (workload, shape key,
    #: platform).  The serve path only *reads* the DB — tuning happens
    #: offline via ``tools/tune`` — so warm traffic pays zero searches.
    tuning_db_path: Optional[str] = None
    #: drain deadline for ``shutdown(drain=True)``: how long the whole
    #: worker join may take before requests still queued are answered
    #: with a typed ``ServerShutdown`` cancellation (a wedged worker
    #: thread must never make shutdown wait forever).  None = wait
    #: indefinitely (the pre-deadline behaviour, for tests that want it)
    drain_timeout_s: Optional[float] = 10.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.verify not in (VERIFY_OFF, VERIFY_BATCH, VERIFY_SOLO):
            raise ValueError(f"unknown verify mode {self.verify!r}")
        if self.bucket_min < 1:
            raise ValueError("bucket_min must be >= 1")
        if self.dynamic_shapes and self.verify == VERIFY_SOLO:
            raise ValueError(
                "dynamic_shapes requires verify='batch' or 'off': the "
                "solo oracle compares against unpadded inputs and would "
                "flag padded recurrent state as divergence")
        if not 0.0 < self.shed_percentile <= 100.0:
            raise ValueError("shed_percentile must be in (0, 100]")
        if not 0.0 < self.shed_recover_fraction <= 1.0:
            raise ValueError("shed_recover_fraction must be in (0, 1]")
        if self.shed_window < 1:
            raise ValueError("shed_window must be >= 1")
        if self.shed_min_pending is not None and self.shed_min_pending < 0:
            raise ValueError("shed_min_pending must be >= 0")
        if self.drain_timeout_s is not None and self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be > 0 (or None)")
        for tenant, (rate, burst) in (self.tenant_rates or {}).items():
            if rate < 0 or burst <= 0:
                raise ValueError(
                    f"tenant_rates[{tenant!r}]: rate must be >= 0 and "
                    f"burst > 0, got ({rate}, {burst})")
