"""Serving policy knobs: batching, queueing, deadlines, fallback.

One :class:`ServePolicy` object configures a :class:`~repro.serve.
server.Server`.  The defaults favor throughput (coalesce up to 8
requests, wait a few milliseconds for peers) while staying safe: a
bounded queue exerts backpressure on submitters, expired requests are
answered with a timeout instead of occupying device time, and requests
that cannot be compiled (or whose deadline is too close for a cold
compile) fall back to the eager pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Verification modes (see executor.py for the oracle semantics).
VERIFY_OFF = "off"
VERIFY_BATCH = "batch"
VERIFY_SOLO = "solo"


@dataclass(frozen=True)
class ServePolicy:
    """All tunables of the serving layer, in one immutable object."""

    #: worker threads draining the queues
    workers: int = 4
    #: most requests one executed batch may coalesce (1 = no batching)
    max_batch_size: int = 8
    #: how long the oldest queued request waits for peers before a
    #: partial batch is flushed anyway (seconds)
    batch_wait_s: float = 0.002
    #: total requests the server will hold queued; submit() blocks
    #: (or rejects, see ``reject_on_full``) beyond this
    queue_capacity: int = 256
    #: how long a blocked submit() waits for queue space before the
    #: request is rejected (seconds)
    submit_timeout_s: float = 5.0
    #: when True a full queue rejects immediately instead of blocking
    reject_on_full: bool = False
    #: default per-request deadline; None = requests never expire
    request_timeout_s: float = 30.0
    #: fall back to eager when compilation fails, or when a request's
    #: remaining deadline is below ``deadline_slack_s`` and no compiled
    #: artifact is cached for its shape (a cold compile would blow it)
    eager_fallback: bool = True
    deadline_slack_s: float = 0.25
    #: per-request executions after the first attempt (batch fails ->
    #: requests retried solo; a poison request fails alone)
    max_retries: int = 1
    #: result oracle: "off", "batch" (bit-exact vs eager on the same
    #: coalesced batch), or "solo" (allclose vs eager per request;
    #: bit-exact when the request ran unbatched)
    verify: str = VERIFY_OFF
    #: capacity of the server's private compile cache
    cache_capacity: int = 128
    #: graceful-degradation ladder (repro.degrade): when enabled, a
    #: failed batch descends the ordered fallback chain rung by rung
    #: (with per-(workload, rung) circuit breakers and jittered retry
    #: backoff) instead of dropping straight to solo eager retries
    ladder_enabled: bool = False
    #: the chain to walk; None = repro.degrade.DEFAULT_LADDER sliced
    #: from the requested pipeline down
    fallback_chain: Optional[Tuple[str, ...]] = None
    #: circuit-breaker tuning (see repro.degrade.CircuitBreaker)
    breaker_failure_rate: float = 0.5
    breaker_window: int = 8
    breaker_min_calls: int = 4
    breaker_reset_s: float = 0.25
    #: retry backoff tuning (see repro.degrade.RetryPolicy); the number
    #: of in-rung retries reuses ``max_retries`` above
    retry_base_delay_s: float = 0.001
    retry_max_delay_s: float = 0.05
    retry_jitter: float = 0.5
    #: seed of the executor's jitter RNG (deterministic backoff in tests)
    retry_seed: int = 0
    #: key compiles on shape *families* (repro.symshape) instead of
    #: concrete signatures, and bucket variable sequence lengths into
    #: power-of-two pads so near-miss lengths share one batch and one
    #: artifact.  Requires ``verify`` "off" or "batch": the batch
    #: oracle runs eager on the identical padded inputs, whereas
    #: "solo" would compare against the unpadded request and flag
    #: legitimate padded-state differences (e.g. an LSTM's final
    #: h/c reflect the padded-length run) as divergence.
    dynamic_shapes: bool = False
    #: smallest padding bucket; buckets are ``bucket_min * 2^k``
    bucket_min: int = 8

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.verify not in (VERIFY_OFF, VERIFY_BATCH, VERIFY_SOLO):
            raise ValueError(f"unknown verify mode {self.verify!r}")
        if self.bucket_min < 1:
            raise ValueError("bucket_min must be >= 1")
        if self.dynamic_shapes and self.verify == VERIFY_SOLO:
            raise ValueError(
                "dynamic_shapes requires verify='batch' or 'off': the "
                "solo oracle compares against unpadded inputs and would "
                "flag padded recurrent state as divergence")
