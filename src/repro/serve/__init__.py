"""``repro.serve`` — concurrent, dynamically-batched model serving.

The production-facing layer over the compilation pipelines: a
:class:`Server` accepts many concurrent requests, coalesces compatible
ones along each workload's batch axis (``batching.BatchSpec``),
executes them as single kernel-launch-profiled runs through the shared
compile cache, and answers with per-request :class:`Response` objects.
Policies (deadlines, backpressure, eager fallback, bounded retry) live
in :class:`ServePolicy`; observability in :class:`ServerStats`.

Scheduling is *continuous* by default: a worker claims a partial group
immediately and holds an in-flight :class:`AdmissionWindow` open until
a deadline-aware cutoff, admitting compatible late arrivals straight
into the assembling batch.  Requests carry a ``priority`` lane and a
``tenant`` label; :class:`AdmissionController` enforces per-tenant
token-bucket quotas and sheds low-priority work while the recent
queue-wait percentile exceeds the deadline budget (see
``serve.admission``).

Quick start::

    from repro.serve import Server, ServePolicy

    with Server(ServePolicy(workers=4, max_batch_size=8)) as srv:
        fut = srv.submit("attention", pipeline="tensorssa", seq_len=32)
        resp = fut.result()
        assert resp.ok

Load-test it with ``python -m repro.tools.serve_bench``.
"""

from ..degrade import (CircuitBreaker, DEFAULT_LADDER, RetryPolicy,
                       fallback_chain)
from ..errors import (CompileError, DeadlineExceeded, KernelError,
                      OOMError, ServerShutdown)
from .admission import AdmissionController, AdmissionWindow, TokenBucket
from .batching import (BATCH_SPECS, BatchPlan, BatchSpec, coalesce,
                       get_batch_spec, group_key, group_lane,
                       group_min_deadline, scatter)
from .executor import BatchExecutor
from .policy import (ServePolicy, VERIFY_BATCH, VERIFY_OFF, VERIFY_SOLO)
from .request import (Request, Response, STATUS_CANCELLED, STATUS_ERROR,
                      STATUS_OK, STATUS_REJECTED, STATUS_SHED,
                      STATUS_TIMEOUT)
from .server import QueueFullError, Server
from .stats import ServerStats, percentile

__all__ = [
    "Server", "ServePolicy", "ServerStats", "QueueFullError",
    "Request", "Response", "BatchExecutor",
    "AdmissionController", "AdmissionWindow", "TokenBucket",
    "BatchSpec", "BatchPlan", "BATCH_SPECS", "get_batch_spec",
    "group_key", "group_lane", "group_min_deadline",
    "coalesce", "scatter", "percentile",
    "STATUS_OK", "STATUS_TIMEOUT", "STATUS_ERROR", "STATUS_REJECTED",
    "STATUS_CANCELLED", "STATUS_SHED",
    "VERIFY_OFF", "VERIFY_BATCH", "VERIFY_SOLO",
    "CircuitBreaker", "DEFAULT_LADDER", "RetryPolicy", "fallback_chain",
    "CompileError", "DeadlineExceeded", "KernelError", "OOMError",
    "ServerShutdown",
]
