"""Compilation introspection: what did each pipeline do to a model?

``python -m repro.tools.inspect lstm`` prints, per pipeline: an op
histogram before/after, fusion-group sizes, horizontal loops, launch
counts, per-pass wall time / node deltas, memory-pool traffic, and
modeled latency — the report you reach for when a workload doesn't
speed up as expected.  ``--plan`` additionally prints the TensorSSA
memory plan (slot table, reuse edges, rotating loop slots, peak).
"""

from __future__ import annotations

import sys
from collections import Counter
from typing import Dict, List, Optional

import repro.runtime as rt
from ..eval.harness import (clone_args, compile_cache_stats,
                            compile_cached_status)
from ..eval.platforms import get_platform
from ..frontend import script
from ..ir.graph import Graph
from ..models import get_workload
from ..pipelines import default_pipelines


def op_histogram(graph: Graph) -> Dict[str, int]:
    """Op-name -> occurrence count over the whole graph."""
    return dict(Counter(n.op for n in graph.walk()))


def group_sizes(graph: Graph) -> List[int]:
    """Member counts of each fusion group, largest first."""
    return sorted((n.attrs.get("num_member_ops", 0)
                   for n in graph.walk()
                   if n.op == "prim::FusionGroup"), reverse=True)


def inspect_workload(name: str, platform: str = "datacenter",
                     batch_size: int = 1, seq_len: int = 32,
                     pipelines=None) -> Dict[str, dict]:
    """Structured compile/run report for every pipeline."""
    wl = get_workload(name)
    plat = get_platform(platform)
    args = wl.make_inputs(batch_size=batch_size, seq_len=seq_len)
    source_graph = script(wl.model_fn).graph
    report: Dict[str, dict] = {
        "__source__": {"ops": op_histogram(source_graph)},
    }
    for pipe in (pipelines or default_pipelines()):
        # go through the shared compile cache so the report's cache
        # section uses the same epoch/counters the serving layer reports
        compiled, cache_hit = compile_cached_status(pipe, wl, args)
        with rt.profile() as prof:
            compiled(*clone_args(args))
        entry = {
            "cache_hit": cache_hit,
            "launches": prof.num_launches,
            "latency_us": plat.latency_us(prof, pipe.host_profile,
                                          pipe.device_penalty),
            "host_us": plat.host_time_us(prof, pipe.host_profile),
            "device_us": plat.device_time_us(prof, pipe.device_penalty),
            "peak_bytes": prof.peak_bytes,
            "bytes_reused": prof.bytes_reused,
            "stats": {k: v for k, v in compiled.stats.items()
                      if isinstance(v, (int, bool))},
            "pass_metrics": compiled.stats.get("pass_metrics", []),
        }
        if compiled.graph is not None:
            entry["ops"] = op_histogram(compiled.graph)
            entry["group_sizes"] = group_sizes(compiled.graph)
            plan = getattr(compiled.graph, "_memplan", None)
            if plan is not None:
                entry["plan"] = plan
        report[pipe.name] = entry
    snap = compile_cache_stats()
    report["__cache__"] = {
        "epoch": snap.epoch, "hits": snap.hits, "misses": snap.misses,
        "size": snap.size, "capacity": snap.capacity,
        "hit_rate": snap.hit_rate,
    }
    return report


def _fmt_hist(hist: Dict[str, int], top: int = 8) -> str:
    items = sorted(hist.items(), key=lambda kv: -kv[1])[:top]
    return ", ".join(f"{op.split('::')[-1]}x{n}" for op, n in items)


def print_report(name: str, report: Dict[str, dict],
                 show_plan: bool = False) -> None:
    """Pretty-print an :func:`inspect_workload` report."""
    print(f"=== {name} ===")
    print(f"source ops: {_fmt_hist(report['__source__']['ops'])}")
    cache = report.get("__cache__")
    if cache:
        print(f"compile cache: epoch={cache['epoch']} "
              f"hits={cache['hits']} misses={cache['misses']} "
              f"size={cache['size']}/{cache['capacity']}")
    for pipe, entry in report.items():
        if pipe.startswith("__"):
            continue
        print(f"\n[{pipe}] launches={entry['launches']} "
              f"latency={entry['latency_us']:.1f}us "
              f"(host {entry['host_us']:.1f} / "
              f"device {entry['device_us']:.1f})")
        print(f"  memory: peak={entry['peak_bytes']:,}B "
              f"reused={entry['bytes_reused']:,}B")
        if "group_sizes" in entry and entry["group_sizes"]:
            print(f"  fusion groups: {entry['group_sizes']}")
        if "ops" in entry:
            print(f"  compiled ops: {_fmt_hist(entry['ops'])}")
        if entry.get("pass_metrics"):
            print("  passes:")
            for m in entry["pass_metrics"]:
                sign = "+" if m.node_delta >= 0 else ""
                print(f"    {m.name:<16} {m.wall_ms:7.2f}ms  "
                      f"{m.nodes_before:>4} -> {m.nodes_after:<4} nodes "
                      f"({sign}{m.node_delta})")
        interesting = {k: v for k, v in entry["stats"].items()
                       if k in ("functionalized", "skipped_mutations",
                                "horizontal_loops", "mutating_ops",
                                "mem_slots", "mem_planned_classes",
                                "mem_reuse_edges", "mem_rotating_loops")}
        if interesting:
            print(f"  {interesting}")
        if show_plan and "plan" in entry:
            from ..memplan import format_plan
            print("  " + format_plan(entry["plan"]).replace("\n", "\n  "))


def main(argv: Optional[List[str]] = None) -> None:
    """CLI entry point."""
    argv = argv if argv is not None else sys.argv[1:]
    show_plan = "--plan" in argv
    names = [a for a in argv if not a.startswith("-")] or ["lstm"]
    for name in names:
        print_report(name, inspect_workload(name), show_plan=show_plan)
        print()


if __name__ == "__main__":
    main()
