"""Compilation introspection: what did each pipeline do to a model?

``python -m repro.tools.inspect lstm`` prints, per pipeline: an op
histogram before/after, fusion-group sizes, horizontal loops, launch
counts, per-pass wall time / node deltas, memory-pool traffic, and
modeled latency — the report you reach for when a workload doesn't
speed up as expected.  ``--plan`` additionally prints the TensorSSA
memory plan (slot table, reuse edges, rotating loop slots, peak).
"""

from __future__ import annotations

import sys
from collections import Counter
from typing import Dict, List, Optional

import repro.runtime as rt
from ..eval.harness import (clone_args, compile_cache_stats,
                            compile_cached_status)
from ..eval.platforms import get_platform
from ..frontend import script
from ..ir.graph import Graph
from ..models import get_workload
from ..pipelines import default_pipelines


def op_histogram(graph: Graph) -> Dict[str, int]:
    """Op-name -> occurrence count over the whole graph."""
    return dict(Counter(n.op for n in graph.walk()))


def group_sizes(graph: Graph) -> List[int]:
    """Member counts of each fusion group, largest first."""
    return sorted((n.attrs.get("num_member_ops", 0)
                   for n in graph.walk()
                   if n.op == "prim::FusionGroup"), reverse=True)


def inspect_workload(name: str, platform: str = "datacenter",
                     batch_size: int = 1, seq_len: int = 32,
                     pipelines=None) -> Dict[str, dict]:
    """Structured compile/run report for every pipeline."""
    wl = get_workload(name)
    plat = get_platform(platform)
    args = wl.make_inputs(batch_size=batch_size, seq_len=seq_len)
    source_graph = script(wl.model_fn).graph
    report: Dict[str, dict] = {
        "__source__": {"ops": op_histogram(source_graph)},
    }
    for pipe in (pipelines or default_pipelines()):
        # go through the shared compile cache so the report's cache
        # section uses the same epoch/counters the serving layer reports
        compiled, cache_hit = compile_cached_status(pipe, wl, args)
        with rt.profile() as prof:
            compiled(*clone_args(args))
        entry = {
            "cache_hit": cache_hit,
            "launches": prof.num_launches,
            "latency_us": plat.latency_us(prof, pipe.host_profile,
                                          pipe.device_penalty),
            "host_us": plat.host_time_us(prof, pipe.host_profile),
            "device_us": plat.device_time_us(prof, pipe.device_penalty),
            "peak_bytes": prof.peak_bytes,
            "bytes_reused": prof.bytes_reused,
            "stats": {k: v for k, v in compiled.stats.items()
                      if isinstance(v, (int, bool))},
            "pass_metrics": compiled.stats.get("pass_metrics", []),
        }
        if compiled.graph is not None:
            entry["ops"] = op_histogram(compiled.graph)
            entry["group_sizes"] = group_sizes(compiled.graph)
            plan = getattr(compiled.graph, "_memplan", None)
            if plan is not None:
                entry["plan"] = plan
        report[pipe.name] = entry
    snap = compile_cache_stats()
    report["__cache__"] = {
        "epoch": snap.epoch, "hits": snap.hits, "misses": snap.misses,
        "guard_misses": snap.guard_misses,
        "size": snap.size, "capacity": snap.capacity,
        "hit_rate": snap.hit_rate,
    }
    return report


def inspect_dynamic(name: str, seq_lens=(16, 24), batch_size: int = 2,
                    pipeline: str = "tensorssa") -> Dict[str, object]:
    """Warm-family walkthrough: serve several lengths off one compile.

    Compiles ``name`` through the family-keyed cache path at the first
    sequence length, then looks up each subsequent length; for every
    step the report records the family id, the resolve outcome
    (``new`` / ``hit`` / ``guard_miss``), how many compiles and memory
    plans the step added, and whether the output matched eager
    bit-exactly.  On the family pipeline a warm step should add **zero**
    of both — that is the "second length in the family is free" claim
    of the symbolic-shape design, made observable.
    """
    import numpy as np
    from ..eval.harness import CompileCache, compile_cached_family
    from ..memplan.planner import plans_built

    wl = get_workload(name)
    pipe = next(p for p in default_pipelines() if p.name == pipeline)
    cache = CompileCache()
    steps: List[dict] = []
    for seq_len in seq_lens:
        args = wl.make_inputs(batch_size=batch_size, seq_len=seq_len)
        compiles0 = cache.snapshot()
        plans0 = plans_built()
        compiled, hit, family, outcome = compile_cached_family(
            pipe, wl, args, cache=cache)
        snap = cache.snapshot()
        got = compiled(*clone_args(args))
        want = wl.model_fn(*clone_args(args))
        got = got if isinstance(got, tuple) else (got,)
        want = want if isinstance(want, tuple) else (want,)
        steps.append({
            "seq_len": seq_len,
            "family": family.family_id,
            "outcome": outcome,
            "compiles_added": (snap.misses + snap.guard_misses
                               - compiles0.misses - compiles0.guard_misses),
            "plans_added": plans_built() - plans0,
            "bit_exact": all(np.array_equal(g, w)
                             for g, w in zip(got, want)),
        })
    families = {f.family_id: f.describe()
                for f in cache.families.all_families()}
    return {"workload": name, "pipeline": pipeline, "steps": steps,
            "families": families}


def print_dynamic_report(report: Dict[str, object]) -> int:
    """Pretty-print an :func:`inspect_dynamic` report.

    Returns the number of violations: every step must be bit-exact,
    and every warm step (after the first) must be a family ``hit``
    that added 0 compiles and 0 memory plans — which makes this
    directly usable as a CI gate.
    """
    print(f"=== {report['workload']} ({report['pipeline']}, "
          f"dynamic shapes) ===")
    violations = 0
    for i, step in enumerate(report["steps"]):
        warm_ok = (i == 0 or (step["outcome"] == "hit"
                              and step["compiles_added"] == 0
                              and step["plans_added"] == 0))
        ok = warm_ok and step["bit_exact"]
        violations += 0 if ok else 1
        print(f"  seq_len={step['seq_len']:<4} family={step['family']} "
              f"outcome={step['outcome']:<10} "
              f"compiles+{step['compiles_added']} "
              f"plans+{step['plans_added']} "
              f"bit_exact={step['bit_exact']}"
              + ("" if ok else "  <-- VIOLATION"))
    for fid, desc in report["families"].items():
        print(f"  {desc}")
    return violations


def _fmt_hist(hist: Dict[str, int], top: int = 8) -> str:
    items = sorted(hist.items(), key=lambda kv: -kv[1])[:top]
    return ", ".join(f"{op.split('::')[-1]}x{n}" for op, n in items)


def print_report(name: str, report: Dict[str, dict],
                 show_plan: bool = False) -> None:
    """Pretty-print an :func:`inspect_workload` report."""
    print(f"=== {name} ===")
    print(f"source ops: {_fmt_hist(report['__source__']['ops'])}")
    cache = report.get("__cache__")
    if cache:
        print(f"compile cache: epoch={cache['epoch']} "
              f"hits={cache['hits']} misses={cache['misses']} "
              f"guard_misses={cache.get('guard_misses', 0)} "
              f"size={cache['size']}/{cache['capacity']}")
    for pipe, entry in report.items():
        if pipe.startswith("__"):
            continue
        print(f"\n[{pipe}] launches={entry['launches']} "
              f"latency={entry['latency_us']:.1f}us "
              f"(host {entry['host_us']:.1f} / "
              f"device {entry['device_us']:.1f})")
        print(f"  memory: peak={entry['peak_bytes']:,}B "
              f"reused={entry['bytes_reused']:,}B")
        if "group_sizes" in entry and entry["group_sizes"]:
            print(f"  fusion groups: {entry['group_sizes']}")
        if "ops" in entry:
            print(f"  compiled ops: {_fmt_hist(entry['ops'])}")
        if entry.get("pass_metrics"):
            print("  passes:")
            for m in entry["pass_metrics"]:
                sign = "+" if m.node_delta >= 0 else ""
                print(f"    {m.name:<16} {m.wall_ms:7.2f}ms  "
                      f"{m.nodes_before:>4} -> {m.nodes_after:<4} nodes "
                      f"({sign}{m.node_delta})")
        interesting = {k: v for k, v in entry["stats"].items()
                       if k in ("functionalized", "skipped_mutations",
                                "horizontal_loops", "mutating_ops",
                                "mem_slots", "mem_planned_classes",
                                "mem_reuse_edges", "mem_rotating_loops")}
        if interesting:
            print(f"  {interesting}")
        if show_plan and "plan" in entry:
            from ..memplan import format_plan
            print("  " + format_plan(entry["plan"]).replace("\n", "\n  "))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; with ``--dynamic`` the exit status counts
    warm-family violations (non-hit / extra compile / extra plan /
    divergent steps), otherwise it is 0."""
    argv = argv if argv is not None else sys.argv[1:]
    show_plan = "--plan" in argv
    dynamic = "--dynamic" in argv
    names = [a for a in argv if not a.startswith("-")] or ["lstm"]
    violations = 0
    for name in names:
        if dynamic:
            violations += print_dynamic_report(inspect_dynamic(name))
        else:
            print_report(name, inspect_workload(name), show_plan=show_plan)
        print()
    return violations


if __name__ == "__main__":
    sys.exit(main())
