"""Overload drill: continuous batching + admission control at 2x load.

``python -m repro.tools.overload --seed 0`` measures the server's
saturation throughput with a short closed-loop probe, then drives an
*open-loop* paced campaign at ``--overload-factor`` (default 2x) that
rate against two server configurations:

* **baseline** — the pre-admission-control world: classic flush-once
  scheduling, no priority lanes (every request submits at priority 0),
  no shedding, reject-on-full as the only overload response.
* **qos** — continuous batching with admission windows, priority lanes
  (25% of traffic is high-priority "gold", the rest low-priority
  "free"), per-tenant token-bucket quotas, and percentile-driven load
  shedding.

Both campaigns serve the identical seeded request sequence with
``verify="batch"`` (every executed batch checked bit-exact against
eager), optionally under a deterministic latency-only
:class:`~repro.faults.FaultPlan` (``--chaos latency``, the default) so
the drill exercises the degradation machinery too, and run under
``global_tracing`` — the qos trace is exported to Chrome format and
schema-validated, with ``serve:admit`` / ``serve:shed`` /
``serve:window`` span counts reported.

The queue capacity is sized *from the probe* at ``2 x saturation x
deadline``, so in the baseline a full queue takes twice the deadline
budget to drain and steady-state FIFO waits blow every deadline, while
the qos shedder keeps recent queue waits inside the budget and the
high-priority lane keeps draining.  The drill gates on:

* zero unresolved futures (hangs) and zero untyped errors,
* zero batch-oracle divergences,
* qos high-priority client-observed p99 latency within the deadline
  budget,
* qos goodput (ok responses / campaign wall) strictly above baseline.

Results land in ``results/overload.json``; the exit status is the
number of failed gates (CI-friendly, like the other drills).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..faults import (Fault, FaultPlan, FaultRule, KIND_LATENCY,
                      SITE_BATCH_EXEC, SITE_KERNEL_LAUNCH,
                      global_fault_scope)
from ..models import get_workload
from ..obs import (chrome_trace, global_tracing, validate_chrome_trace,
                   write_chrome_trace)
from ..serve import ServePolicy, Server, percentile
from .serve_bench import build_request_args, run_load

#: the two traffic classes the drill mixes
KIND_HIGH = "high"
KIND_LOW = "low"


def build_chaos_plan(seed: int) -> FaultPlan:
    """A latency-only fault plan: jitter, never corruption.

    Probabilistic latency injections on kernel launches and batch
    executions stress the deadline/shedding machinery without ever
    producing wrong results, so the drill's correctness gates stay
    meaningful under chaos.
    """
    rules = [
        FaultRule(site=SITE_KERNEL_LAUNCH, probability=0.05, times=None,
                  fault=Fault(kind=KIND_LATENCY, latency_s=0.001)),
        FaultRule(site=SITE_BATCH_EXEC, probability=0.10, times=None,
                  fault=Fault(kind=KIND_LATENCY, latency_s=0.002)),
    ]
    return FaultPlan(rules, seed=seed)


def probe_saturation(args: argparse.Namespace) -> float:
    """Closed-loop saturation throughput (req/s) of the qos-free server.

    Short and warmup-primed: it only needs to be the right order of
    magnitude, since the campaign's queue capacity and pacing both
    derive from it (keeping the drill's overload geometry
    machine-independent).
    """
    wl = get_workload(args.workload)
    pool = build_request_args(wl, args.low_seq_len, args.distinct_inputs)
    policy = ServePolicy(
        workers=args.workers, max_batch_size=args.max_batch,
        batch_wait_s=args.batch_wait_ms / 1e3, queue_capacity=4096,
        request_timeout_s=60.0, shed_enabled=False,
        verify=("off" if args.no_verify else "batch"))
    run = run_load(wl, pool, policy, args.probe_requests,
                   args.concurrency, args.pipeline, args.platform,
                   warmup=args.warmup)
    return float(run["throughput_rps"])


def _draw_kinds(seed: int, n: int, high_fraction: float) -> List[str]:
    """The seeded per-request traffic-class sequence (shared by both
    campaign modes so they serve identical workload mixes)."""
    rng = random.Random(seed ^ 0xC0FFEE)
    return [KIND_HIGH if rng.random() < high_fraction else KIND_LOW
            for _ in range(n)]


def _campaign_policy(mode: str, args: argparse.Namespace,
                     queue_capacity: int,
                     free_rate: float) -> ServePolicy:
    """The server policy for one campaign mode."""
    common = dict(
        workers=args.workers, max_batch_size=args.max_batch,
        batch_wait_s=args.batch_wait_ms / 1e3,
        queue_capacity=queue_capacity, reject_on_full=True,
        request_timeout_s=args.timeout_s,
        verify=("off" if args.no_verify else "batch"))
    if mode == "baseline":
        return ServePolicy(continuous_batching=False, shed_enabled=False,
                           **common)
    return ServePolicy(
        continuous_batching=True, shed_enabled=True,
        shed_window=args.shed_window,
        tenant_rates={"free": (free_rate, max(8.0, free_rate))},
        **common)


def run_campaign(mode: str, args: argparse.Namespace, rate_rps: float,
                 queue_capacity: int, kinds: List[str],
                 plan: Optional[FaultPlan]
                 ) -> Tuple[Dict[str, object], object]:
    """One open-loop paced campaign; returns (report, trace object).

    Requests are submitted on a fixed schedule (``i / rate_rps`` after
    start) regardless of how the server is coping — the open-loop shape
    that actually produces overload, unlike closed-loop clients that
    politely slow down.  ``reject_on_full`` keeps the pacer from ever
    blocking in ``submit``.
    """
    wl = get_workload(args.workload)
    high_pool = build_request_args(wl, args.high_seq_len,
                                   args.distinct_inputs)
    low_pool = build_request_args(wl, args.low_seq_len,
                                  args.distinct_inputs)
    free_rate = rate_rps * (1.0 - args.high_fraction) * args.free_quota
    policy = _campaign_policy(mode, args, queue_capacity, free_rate)
    n = len(kinds)
    results: List[Optional[object]] = [None] * n
    done_at: List[Optional[float]] = [None] * n
    sent_at: List[float] = [0.0] * n
    scope = global_fault_scope(plan) if plan is not None else None
    if scope is not None:
        scope.__enter__()
    hangs = untyped = 0
    try:
        with global_tracing(name=f"overload:{mode}",
                            seed=args.seed) as trace_obj:
            server = Server(policy)
            try:
                futs = []
                interval = 1.0 / rate_rps if rate_rps > 0 else 0.0
                start = time.perf_counter()
                for i, kind in enumerate(kinds):
                    target = start + i * interval
                    delay = target - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    pool = high_pool if kind == KIND_HIGH else low_pool
                    priority = (args.high_priority
                                if mode == "qos" and kind == KIND_HIGH
                                else 0)
                    tenant = ("gold" if kind == KIND_HIGH else "free") \
                        if mode == "qos" else "default"
                    sent_at[i] = time.perf_counter()

                    def _record(fut, i=i):
                        done_at[i] = time.perf_counter()

                    fut = server.submit(
                        wl, args=pool[i % len(pool)],
                        pipeline=args.pipeline, platform=args.platform,
                        priority=priority, tenant=tenant)
                    fut.add_done_callback(_record)
                    futs.append(fut)
                for i, fut in enumerate(futs):
                    try:
                        results[i] = fut.result(
                            timeout=args.hang_timeout_s)
                    except FutureTimeout:
                        hangs += 1
                    except Exception:
                        untyped += 1
                wall = time.perf_counter() - start
                server.shutdown(drain=True, timeout=args.hang_timeout_s)
            finally:
                server.shutdown(drain=False, timeout=1.0)
    finally:
        if scope is not None:
            scope.__exit__(None, None, None)

    by_status: Dict[str, int] = {}
    by_kind = {KIND_HIGH: {"sent": 0, "ok": 0, "latencies": []},
               KIND_LOW: {"sent": 0, "ok": 0, "latencies": []}}
    diverged = 0
    for i, kind in enumerate(kinds):
        slot = by_kind[kind]
        slot["sent"] += 1
        resp = results[i]
        if resp is None:
            continue
        by_status[resp.status] = by_status.get(resp.status, 0) + 1
        if resp.status == "error" and not resp.error:
            untyped += 1
        if resp.verified is False:
            diverged += 1
        if resp.ok:
            slot["ok"] += 1
            if done_at[i] is not None:
                slot["latencies"].append(done_at[i] - sent_at[i])
    ok = sum(k["ok"] for k in by_kind.values())
    stats = server.stats.to_dict()
    report: Dict[str, object] = {
        "mode": mode,
        "requests": n,
        "wall_s": wall,
        "ok": ok,
        "goodput_rps": ok / wall if wall > 0 else 0.0,
        "hangs": hangs,
        "untyped_errors": untyped,
        "diverged": diverged,
        "by_status": dict(sorted(by_status.items())),
        "admitted": stats["admitted"],
        "shed": stats["shed"],
        "quota_rejected": stats["quota_rejected"],
        "rejected": stats["rejected"],
        "server": stats,
    }
    for kind, slot in by_kind.items():
        lat = slot.pop("latencies")
        slot["p50_ms"] = percentile(lat, 50) * 1e3
        slot["p99_ms"] = percentile(lat, 99) * 1e3
        report[kind] = slot
    return report, trace_obj


def _count_spans(trace_obj, names: Tuple[str, ...]) -> Dict[str, int]:
    """How many spans of each given name the trace recorded."""
    counts = {name: 0 for name in names}
    for span in trace_obj.spans:
        if span.name in counts:
            counts[span.name] += 1
    return counts


def run_drill(args: argparse.Namespace) -> Tuple[Dict[str, object], int]:
    """The full drill: probe, both campaigns, gates.  Returns
    (report, failed-gate count)."""
    failures = 0
    plan = build_chaos_plan(args.seed) if args.chaos == "latency" else None

    sat_rps = probe_saturation(args)
    rate = sat_rps * args.overload_factor
    queue_capacity = max(32, int(sat_rps * args.timeout_s
                                 * args.overload_factor))
    print(f"probe: saturation {sat_rps:.0f} req/s -> pacing "
          f"{rate:.0f} req/s ({args.overload_factor:g}x), queue "
          f"capacity {queue_capacity}, deadline {args.timeout_s:g}s, "
          f"chaos={args.chaos}")

    kinds = _draw_kinds(args.seed, args.requests, args.high_fraction)
    report: Dict[str, object] = {
        "config": {k: v for k, v in vars(args).items() if k != "out"},
        "saturation_rps": sat_rps,
        "paced_rps": rate,
        "queue_capacity": queue_capacity,
        "high_requests": kinds.count(KIND_HIGH),
        "low_requests": kinds.count(KIND_LOW),
    }

    campaigns: Dict[str, Dict[str, object]] = {}
    qos_trace = None
    for mode in ("baseline", "qos"):
        entry, trace_obj = run_campaign(mode, args, rate, queue_capacity,
                                        kinds, plan)
        campaigns[mode] = entry
        if mode == "qos":
            qos_trace = trace_obj
        print(f"  {mode:<9} goodput {entry['goodput_rps']:7.1f} req/s  "
              f"ok {entry['ok']:4d}/{entry['requests']}  "
              f"high p99 {entry['high']['p99_ms']:7.1f}ms  "
              f"shed {entry['shed']:4d}  rejected {entry['rejected']:4d} "
              f" admitted {entry['admitted']:4d}  "
              f"hangs {entry['hangs']}  untyped "
              f"{entry['untyped_errors']}  diverged {entry['diverged']}")
    report["campaigns"] = campaigns

    # -- trace export (qos campaign) ------------------------------------
    doc = chrome_trace(qos_trace)
    problems = validate_chrome_trace(doc)
    for p in problems:
        print(f"  SCHEMA: {p}")
    failures += len(problems)
    spans = _count_spans(qos_trace, ("serve:admit", "serve:shed",
                                     "serve:window", "serve:batch"))
    report["qos_spans"] = spans
    trace_out = Path(args.out).with_name("overload_trace.json")
    path = write_chrome_trace(qos_trace, trace_out)
    report["trace_path"] = str(path)
    print(f"  qos trace: {spans} -> {path}")

    # -- gates ----------------------------------------------------------
    gates: List[Dict[str, object]] = []

    def gate(name: str, passed: bool, detail: str) -> None:
        gates.append({"name": name, "passed": bool(passed),
                      "detail": detail})
        if not passed:
            print(f"  FAIL [{name}]: {detail}")

    for mode, entry in campaigns.items():
        gate(f"{mode}:no_hangs", entry["hangs"] == 0,
             f"{entry['hangs']} unresolved future(s)")
        gate(f"{mode}:no_untyped_errors", entry["untyped_errors"] == 0,
             f"{entry['untyped_errors']} untyped error(s)")
        gate(f"{mode}:no_divergence", entry["diverged"] == 0,
             f"{entry['diverged']} batch-oracle divergence(s)")
    qos, base = campaigns["qos"], campaigns["baseline"]
    budget_ms = args.timeout_s * 1e3
    gate("qos:high_p99_within_deadline",
         qos["high"]["ok"] > 0 and qos["high"]["p99_ms"] <= budget_ms,
         f"high-priority p99 {qos['high']['p99_ms']:.1f}ms vs budget "
         f"{budget_ms:.0f}ms ({qos['high']['ok']} ok)")
    gate("qos:goodput_beats_baseline",
         qos["goodput_rps"] > base["goodput_rps"],
         f"qos {qos['goodput_rps']:.1f} req/s vs baseline "
         f"{base['goodput_rps']:.1f} req/s")
    failures += sum(1 for g in gates if not g["passed"])
    report["gates"] = gates
    report["failures"] = failures
    return report, failures


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the number of failed gates."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.overload",
        description="2x-saturation overload drill: continuous batching "
                    "+ admission control vs the reject-on-full baseline")
    parser.add_argument("--workload", type=str, default="lstm")
    parser.add_argument("--requests", type=int, default=1000,
                        help="paced requests per campaign mode (long "
                             "enough that steady-state overload, not "
                             "the fill transient, dominates)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the traffic mix and chaos plan")
    parser.add_argument("--overload-factor", type=float, default=2.0,
                        help="paced rate as a multiple of saturation")
    parser.add_argument("--high-fraction", type=float, default=0.25,
                        help="fraction of traffic that is high priority")
    parser.add_argument("--high-priority", type=int, default=2,
                        help="lane of the gold tenant's requests")
    parser.add_argument("--free-quota", type=float, default=1.0,
                        help="free tenant's token rate as a multiple of "
                             "its paced arrival rate")
    parser.add_argument("--timeout-s", type=float, default=0.8,
                        help="per-request deadline (the budget every "
                             "gate measures against)")
    parser.add_argument("--hang-timeout-s", type=float, default=30.0,
                        help="seconds before an unresolved future "
                             "counts as a hang")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=4)
    parser.add_argument("--batch-wait-ms", type=float, default=2.0)
    parser.add_argument("--concurrency", type=int, default=8,
                        help="closed-loop clients in the probe")
    parser.add_argument("--probe-requests", type=int, default=96)
    parser.add_argument("--warmup", type=int, default=16)
    parser.add_argument("--high-seq-len", type=int, default=8,
                        help="sequence length of high-priority requests "
                             "(its own batch group = its own lane)")
    parser.add_argument("--low-seq-len", type=int, default=16,
                        help="sequence length of low-priority requests")
    parser.add_argument("--distinct-inputs", type=int, default=16)
    parser.add_argument("--shed-window", type=int, default=32,
                        help="sliding-window size of the shed signal")
    parser.add_argument("--pipeline", type=str, default="tensorssa")
    parser.add_argument("--platform", type=str, default="datacenter")
    parser.add_argument("--chaos", choices=("off", "latency"),
                        default="latency",
                        help="latency-only fault plan under both "
                             "campaigns (off to disable)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the batch bit-exactness oracle")
    parser.add_argument("--out", type=str, default="results/overload.json")
    args = parser.parse_args(argv)

    report, failures = run_drill(args)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{failures} failed gate(s); wrote {out}")
    return failures


if __name__ == "__main__":
    sys.exit(main())
