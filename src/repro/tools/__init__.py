"""repro.tools — developer introspection utilities."""

from .inspect import (inspect_dynamic, inspect_workload, op_histogram,
                      print_dynamic_report, print_report)

__all__ = ["inspect_dynamic", "inspect_workload", "op_histogram",
           "print_dynamic_report", "print_report"]
