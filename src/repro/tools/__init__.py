"""repro.tools — developer introspection utilities."""

from .inspect import inspect_workload, op_histogram, print_report

__all__ = ["inspect_workload", "op_histogram", "print_report"]
