"""Chaos harness: seeded fault campaigns against the whole stack.

``python -m repro.tools.chaos --seed 0 --campaigns 25`` derives a
deterministic :class:`~repro.faults.FaultPlan` per campaign (primary
injection site cycling through all seven sites, plus extra random
rules — errors and latency, one-shot and persistent) and drives it
through three paths:

* **harness campaigns** — ``run_workload_resilient`` calls under a
  context-local ``fault_scope``, each result checked *bit-exact*
  against a fault-free eager reference;
* **serve campaigns** — a live :class:`~repro.serve.Server` (ladder
  enabled, ``verify="batch"``) under a ``global_fault_scope`` so the
  worker threads see the plan, every future awaited with a hang
  timeout;
* **shard campaigns** — when the primary site is ``process_kill`` or
  ``heartbeat_stall``, a live multi-process
  :class:`~repro.shard.ShardRouter` fleet whose *workers* run the plan
  (shipped as a spec across the spawn boundary); firings are observed
  in the parent as supervisor-detected deaths.

The contract each campaign enforces is the paper-stack's availability
discipline: every request either returns bit-exact-correct output
(possibly served by a lower ladder rung) or a clean *typed* error —
never a hang, a wrong answer, an untyped crash, or torn process state
(a :class:`~repro.faults.StateAuditor` checks profiler/pool stacks and
compile-cache in-flight slots after every campaign).  The first two
campaigns run fault-free as controls and additionally demand fallback
depth 0 and 100% availability.

Writes ``results/chaos.json`` (availability %, fallback-depth
histogram, per-site fault counts, breaker transitions).  Exit status is
``hangs + torn audits + wrong answers + untyped errors + uncovered
sites``, so CI gates on it directly.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from concurrent.futures import TimeoutError as FutureTimeout
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..degrade import BreakerRegistry, RetryPolicy
from ..errors import ReproError
from ..eval.harness import CompileCache, run_workload, \
    run_workload_resilient
from ..faults import (ALL_SITES, Fault, FaultPlan, FaultRule,
                      KIND_LATENCY, SITE_ALLOC, SITE_BATCH_EXEC,
                      SITE_FUSION_COMPILE, SITE_HEARTBEAT_STALL,
                      SITE_KERNEL_LAUNCH, SITE_PASS, SITE_PROCESS_KILL,
                      StateAuditor, fault_scope, global_fault_scope)
from ..models import get_workload
from ..serve import ServePolicy, Server
from ..shard import ShardPolicy, ShardRouter

#: per-request data seeds start here (campaign c, request j -> BASE+17c+j)
DATA_SEED0 = 50_000

#: plausible hit-count ceilings per site for nth-based scheduling (a
#: seq_len-8 lstm run performs dozens of launches/allocs but only a
#: handful of passes/fusion compiles/batches)
_MAX_NTH = {
    SITE_KERNEL_LAUNCH: 60,
    SITE_ALLOC: 40,
    SITE_FUSION_COMPILE: 4,
    SITE_PASS: 6,
    SITE_BATCH_EXEC: 3,
    # shard-worker checkpoints: boot + one per submit receipt/reply
    SITE_PROCESS_KILL: 3,
    # heartbeat beats accrue fast; fire within the first few
    SITE_HEARTBEAT_STALL: 2,
}

#: sites whose checkpoints live inside spawned shard workers — a
#: campaign with one of these as primary runs in shard mode, and the
#: parent observes firings through supervisor death detection (the
#: child's fault log dies with the child)
_SHARD_SITES = (SITE_PROCESS_KILL, SITE_HEARTBEAT_STALL)

#: sites where a *persistent* fault still leaves the eager floor
#: reachable (eager runs no passes, no fusion compiles, no batch step,
#: and allocates outside any MemoryPool)
_PERSISTABLE = (SITE_ALLOC, SITE_FUSION_COMPILE, SITE_PASS,
                SITE_BATCH_EXEC)


def _make_rule(site: str, rng: random.Random) -> FaultRule:
    """One deterministic rule for ``site`` drawn from ``rng``."""
    if site in _SHARD_SITES:
        # a latency fault at a kill/stall checkpoint is a no-op; these
        # sites only mean anything as hard errors
        return FaultRule(site=site, nth=rng.randint(0, _MAX_NTH[site]),
                         times=1, fault=Fault())
    if rng.random() < 0.15:
        fault = Fault(kind=KIND_LATENCY,
                      latency_s=rng.uniform(0.0005, 0.003))
    else:
        fault = Fault()
    if site in _PERSISTABLE and rng.random() < 0.3:
        # persistent probabilistic fault: the ladder must route around
        # the rung for the campaign's whole lifetime
        return FaultRule(site=site, probability=rng.uniform(0.3, 1.0),
                         times=None, fault=fault)
    # one-shot (or few-shot) fault: retries and fallbacks absorb it
    return FaultRule(site=site, nth=rng.randint(0, _MAX_NTH[site]),
                     times=rng.choice([1, 1, 1, 2]), fault=fault)


def build_plan(seed: int, index: int, primary_site: str) -> FaultPlan:
    """The campaign's deterministic fault schedule."""
    rng = random.Random((seed << 20) ^ (index * 0x9E3779B1))
    rules = [_make_rule(primary_site, rng)]
    for _ in range(rng.randint(0, 2)):
        rules.append(_make_rule(rng.choice(ALL_SITES), rng))
    return FaultPlan(rules, seed=(seed << 8) ^ index)


def _bit_exact(got, expected) -> bool:
    got = got if isinstance(got, tuple) else (got,)
    expected = expected if isinstance(expected, tuple) else (expected,)
    if len(got) != len(expected):
        return False
    for g, e in zip(got, expected):
        ga = g.numpy() if hasattr(g, "numpy") else np.asarray(g)
        ea = e.numpy() if hasattr(e, "numpy") else np.asarray(e)
        if ga.shape != ea.shape or not np.array_equal(ga, ea,
                                                      equal_nan=True):
            return False
    return True


def run_harness_campaign(workload: str, plan: Optional[FaultPlan],
                         index: int, requests: int, seq_len: int,
                         ladder: bool) -> Dict[str, object]:
    """``requests`` resilient runs under a context-local plan, each
    checked bit-exact against a fault-free eager reference."""
    cache = CompileCache()
    breakers = BreakerRegistry(reset_timeout_s=0.01)
    retry = RetryPolicy(max_retries=1, base_delay_s=0.0005,
                        max_delay_s=0.005)
    seeds = [DATA_SEED0 + index * 17 + j for j in range(requests)]
    # references computed before the plan installs: faults must never
    # touch the oracle
    refs = {s: run_workload(workload, "eager", seq_len=seq_len,
                            seed=s, cache=CompileCache()).outputs
            for s in seeds}
    out = {"mode": "harness", "requests": requests, "ok": 0,
           "degraded": 0, "wrong": 0, "typed_errors": 0,
           "untyped_errors": 0, "hangs": 0,
           "fallback_depth_hist": {}, "torn": 0}
    auditor = StateAuditor(cache=cache)
    scope = fault_scope(plan) if plan is not None else None
    if scope is not None:
        scope.__enter__()
    try:
        for s in seeds:
            try:
                if ladder:
                    r = run_workload_resilient(
                        workload, "tensorssa", seq_len=seq_len, seed=s,
                        cache=cache, breakers=breakers, retry=retry)
                else:
                    r = run_workload(workload, "tensorssa",
                                     seq_len=seq_len, seed=s, cache=cache)
            except ReproError:
                out["typed_errors"] += 1
                continue
            except Exception:
                out["untyped_errors"] += 1
                continue
            if not _bit_exact(r.outputs, refs[s]):
                out["wrong"] += 1
                continue
            out["ok"] += 1
            if r.degraded:
                out["degraded"] += 1
            hist = out["fallback_depth_hist"]
            hist[r.fallback_depth] = hist.get(r.fallback_depth, 0) + 1
    finally:
        if scope is not None:
            scope.__exit__(None, None, None)
    out["torn"] = len(auditor.audit())
    out["audit"] = auditor.audit()
    out["breaker_transitions"] = breakers.transitions()
    return out


def run_serve_campaign(workload: str, plan: Optional[FaultPlan],
                       index: int, requests: int, seq_len: int,
                       ladder: bool,
                       hang_timeout_s: float) -> Dict[str, object]:
    """``requests`` through a live server under a global plan; every
    future must resolve within the hang timeout."""
    policy = ServePolicy(
        workers=2, max_batch_size=4, batch_wait_s=0.001,
        verify="batch", ladder_enabled=ladder, max_retries=1,
        retry_base_delay_s=0.0005, retry_max_delay_s=0.005,
        breaker_reset_s=0.02, request_timeout_s=hang_timeout_s,
        retry_seed=index)
    out = {"mode": "serve", "requests": requests, "ok": 0, "degraded": 0,
           "wrong": 0, "typed_errors": 0, "untyped_errors": 0,
           "hangs": 0, "fallback_depth_hist": {}, "torn": 0}
    server = Server(policy)
    auditor = StateAuditor(cache=server.cache)
    scope = global_fault_scope(plan) if plan is not None else None
    if scope is not None:
        scope.__enter__()
    try:
        futs = [server.submit(workload, seq_len=seq_len,
                              seed=DATA_SEED0 + index * 17 + j)
                for j in range(requests)]
        for fut in futs:
            try:
                resp = fut.result(timeout=hang_timeout_s)
            except FutureTimeout:
                out["hangs"] += 1
                continue
            except Exception:
                out["untyped_errors"] += 1
                continue
            if resp.ok:
                if resp.verified is False:
                    out["wrong"] += 1
                    continue
                out["ok"] += 1
                if resp.degraded:
                    out["degraded"] += 1
                hist = out["fallback_depth_hist"]
                hist[resp.fallback_depth] = \
                    hist.get(resp.fallback_depth, 0) + 1
            elif resp.error:
                out["typed_errors"] += 1  # clean rejection/timeout/error
            else:
                out["untyped_errors"] += 1  # failure without a reason
        server.shutdown(drain=True, timeout=hang_timeout_s)
    finally:
        if scope is not None:
            scope.__exit__(None, None, None)
        server.shutdown(drain=False, timeout=1.0)
    out["torn"] = len(auditor.audit())
    out["audit"] = auditor.audit()
    out["breaker_transitions"] = server.executor.breakers.transitions()
    return out


def run_shard_campaign(workload: str, plan: Optional[FaultPlan],
                       index: int, requests: int, seq_len: int,
                       ladder: bool,
                       hang_timeout_s: float) -> Dict[str, object]:
    """``requests`` through a live multi-process shard fleet whose
    workers run the plan (shipped as a spec across the spawn
    boundary); the parent checks every answer bit-exact against its
    own eager oracle and observes fault firings as supervisor-detected
    deaths."""
    out = {"mode": "shard", "requests": requests, "ok": 0,
           "degraded": 0, "wrong": 0, "typed_errors": 0,
           "untyped_errors": 0, "hangs": 0, "fallback_depth_hist": {},
           "torn": 0}
    seeds = [DATA_SEED0 + index * 17 + j for j in range(requests)]
    wl = get_workload(workload)
    refs = {}
    for s in seeds:
        r = wl.model_fn(*wl.make_inputs(batch_size=1, seq_len=seq_len,
                                        seed=s))
        refs[s] = r if isinstance(r, tuple) else (r,)
    policy = ShardPolicy(
        num_workers=2, fault_spec=plan.to_spec() if plan else None,
        heartbeat_interval_s=0.05, heartbeat_timeout_s=0.6,
        max_respawns=2, redeliver_max=3,
        request_timeout_s=hang_timeout_s,
        worker_policy={"workers": 2, "max_batch_size": 1,
                       "ladder_enabled": ladder, "max_retries": 1,
                       "retry_base_delay_s": 0.0005,
                       "retry_max_delay_s": 0.005,
                       "breaker_reset_s": 0.02, "retry_seed": index})
    auditor = StateAuditor()
    with ShardRouter(policy) as router:
        router.wait_ready(2, timeout=60)
        futs = [router.submit(workload, seq_len=seq_len, seed=s,
                              timeout_s=hang_timeout_s) for s in seeds]
        for s, fut in zip(seeds, futs):
            try:
                resp = fut.result(timeout=hang_timeout_s * 2)
            except FutureTimeout:
                out["hangs"] += 1
                continue
            except Exception:
                out["untyped_errors"] += 1
                continue
            if resp.ok:
                if not _bit_exact(resp.outputs, refs[s]):
                    out["wrong"] += 1
                    continue
                out["ok"] += 1
                if resp.degraded:
                    out["degraded"] += 1
                hist = out["fallback_depth_hist"]
                hist[resp.fallback_depth] = \
                    hist.get(resp.fallback_depth, 0) + 1
            elif resp.error:
                out["typed_errors"] += 1
            else:
                out["untyped_errors"] += 1
        if plan is not None and any(rule.site in _SHARD_SITES
                                    for rule in plan.rules):
            # death detection is asynchronous (a stalled beacon only
            # shows after the heartbeat deadline): hold the fleet open
            # one detection window so the supervisor can witness it
            wait_until = time.monotonic() \
                + policy.heartbeat_timeout_s + 1.0
            while time.monotonic() < wait_until \
                    and router.supervisor.deaths == 0:
                time.sleep(0.05)
        report = router.report()
    # supervisor-detected deaths are the parent-side witness for
    # faults that fired inside the children
    reasons = report["death_reasons"]
    fired: Dict[str, int] = {}
    kills = reasons.get("crash", 0) + reasons.get("boot", 0)
    if kills:
        fired[SITE_PROCESS_KILL] = kills
    if reasons.get("hang"):
        fired[SITE_HEARTBEAT_STALL] = reasons["hang"]
    out["fired_by_site"] = fired
    out["shard"] = {k: report[k] for k in
                    ("deaths", "respawned", "redelivered",
                     "duplicates_dropped", "replayed", "eager_floor")}
    out["torn"] = len(auditor.audit())
    out["audit"] = auditor.audit()
    out["breaker_transitions"] = {}
    return out


def _merge_hist(total: Dict[str, int], part: Dict) -> None:
    for k, v in part.items():
        total[str(k)] = total.get(str(k), 0) + v


def run_campaigns(args: argparse.Namespace) -> Dict[str, object]:
    """Run every campaign of the configured sweep and aggregate the
    report: the primary fault site cycles through all five sites
    (guaranteeing coverage), campaigns alternate harness/serve mode
    (serve whenever the primary is the serving-only ``batch_exec``
    site), and the first two run fault-free as controls."""
    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    ladder = not args.no_ladder
    campaigns: List[Dict[str, object]] = []
    fired_by_site: Dict[str, int] = {}
    fallback_hist: Dict[str, int] = {}
    breaker_transitions: Dict[str, int] = {}
    totals = {"requests": 0, "ok": 0, "degraded": 0, "wrong": 0,
              "typed_errors": 0, "untyped_errors": 0, "hangs": 0,
              "torn_audits": 0, "control_violations": 0}

    for i in range(args.campaigns):
        control = i < min(2, args.campaigns)  # first two run fault-free
        workload = workloads[i % len(workloads)]
        if control:
            plan, primary = None, "none"
            mode = "harness" if i % 2 == 0 else "serve"
        else:
            primary = ALL_SITES[(i - 2) % len(ALL_SITES)]
            plan = build_plan(args.seed, i, primary)
            if primary in _SHARD_SITES:
                mode = "shard"
            else:
                mode = "serve" if primary == SITE_BATCH_EXEC \
                    or i % 2 == 0 else "harness"
        start = time.perf_counter()
        if mode == "harness":
            result = run_harness_campaign(workload, plan, i,
                                          args.requests, args.seq_len,
                                          ladder)
        elif mode == "serve":
            result = run_serve_campaign(workload, plan, i,
                                        args.requests, args.seq_len,
                                        ladder, args.hang_timeout_s)
        else:
            result = run_shard_campaign(workload, plan, i,
                                        args.requests, args.seq_len,
                                        ladder, args.hang_timeout_s)
        result.update(index=i, workload=workload, control=control,
                      primary_site=primary,
                      wall_s=time.perf_counter() - start)
        if plan is not None:
            # shard campaigns report detection-based firings already;
            # in-process campaigns read the plan's own log
            result.setdefault("fired_by_site", plan.fired_by_site())
            _merge_hist(fired_by_site, result["fired_by_site"])
        if control:
            # the fault-free control must be perfect: full availability
            # at fallback depth 0
            depths = set(result["fallback_depth_hist"])
            if result["ok"] != result["requests"] or depths - {0}:
                result["control_violation"] = True
                totals["control_violations"] += 1
        campaigns.append(result)
        totals["requests"] += result["requests"]
        for k in ("ok", "degraded", "wrong", "typed_errors",
                  "untyped_errors", "hangs"):
            totals[k] += result[k]
        totals["torn_audits"] += result["torn"]
        _merge_hist(fallback_hist, result["fallback_depth_hist"])
        _merge_hist(breaker_transitions, result["breaker_transitions"])

    site_gaps = [s for s in ALL_SITES if not fired_by_site.get(s)]
    availability = 100.0 * totals["ok"] / max(1, totals["requests"])
    return {
        "config": {"seed": args.seed, "campaigns": args.campaigns,
                   "workloads": workloads, "requests": args.requests,
                   "seq_len": args.seq_len, "ladder": ladder},
        "campaigns": campaigns,
        "totals": {**totals,
                   "availability_pct": availability,
                   "fallback_depth_hist": fallback_hist,
                   "fired_by_site": fired_by_site,
                   "site_gaps": site_gaps,
                   "breaker_transitions": breaker_transitions},
    }


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry; exit = hangs + torn + wrong + untyped + site gaps
    (+ control violations), i.e. zero only when chaos stayed clean."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.chaos",
        description="seeded fault-injection campaigns across the "
                    "harness and serving stack")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--campaigns", type=int, default=25)
    parser.add_argument("--workloads", type=str, default="lstm,attention")
    parser.add_argument("--requests", type=int, default=6,
                        help="requests per campaign")
    parser.add_argument("--seq-len", type=int, default=8)
    parser.add_argument("--no-ladder", action="store_true",
                        help="disable the degradation ladder (ablation: "
                             "availability under faults collapses)")
    parser.add_argument("--hang-timeout-s", type=float, default=30.0,
                        help="a future unresolved past this counts as "
                             "a hang")
    parser.add_argument("--min-availability", type=float, default=95.0,
                        help="fail below this availability %% "
                             "(ladder mode only)")
    parser.add_argument("--out", type=str, default="results/chaos.json")
    args = parser.parse_args(argv)

    report = run_campaigns(args)
    t = report["totals"]
    print(f"chaos: {args.campaigns} campaigns, {t['requests']} requests "
          f"(seed {args.seed}, ladder "
          f"{'on' if report['config']['ladder'] else 'off'})")
    print(f"  availability {t['availability_pct']:.1f}%  "
          f"degraded {t['degraded']}  typed errors {t['typed_errors']}")
    print(f"  hangs {t['hangs']}  torn audits {t['torn_audits']}  "
          f"wrong answers {t['wrong']}  untyped {t['untyped_errors']}")
    print(f"  faults fired by site: {t['fired_by_site']}")
    print(f"  fallback depths: {t['fallback_depth_hist']}  "
          f"breakers: {t['breaker_transitions']}")
    if t["site_gaps"]:
        print(f"  UNCOVERED SITES: {t['site_gaps']}")

    failures = (t["hangs"] + t["torn_audits"] + t["wrong"]
                + t["untyped_errors"] + len(t["site_gaps"])
                + t["control_violations"])
    if not args.no_ladder \
            and t["availability_pct"] < args.min_availability:
        print(f"FAIL: availability {t['availability_pct']:.1f}% < "
              f"{args.min_availability:.1f}%")
        failures += 1
    report["failures"] = failures

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"{failures} failure(s); wrote {out}")
    return failures


if __name__ == "__main__":
    sys.exit(main())
