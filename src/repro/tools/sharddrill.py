"""Kill-the-worker chaos drill for the sharded serving layer.

``python -m repro.tools.sharddrill --seed 0 --campaigns 10`` runs
seeded campaigns against a live :class:`~repro.shard.ShardRouter`
fleet, cycling through the failure modes the supervisor must survive:

* ``kill_submit`` — SIGKILL semantics (``os._exit(137)``) the moment a
  worker accepts a request: the cleanest redelivery case;
* ``kill_reply`` — the worker dies *after* executing but before the
  answer leaves: redelivery must still produce exactly one answer;
* ``stall`` — the heartbeat beacon goes permanently silent while the
  process keeps running: only deadline detection catches it;
* ``kill_boot`` — the worker dies mid warm-start, before HELLO: the
  respawned incarnation must warm-start cleanly.

Every campaign runs two phases against one shared artifact store:
a fault-free *populate* pass that compiles and publishes every
(workload, shape) the drill will serve, then the *drill* pass whose
workers all warm-start — so the drill also pins the headline artifact
property: **a worker restart pays zero cold compiles** (gated on the
compile counters every worker reports in-band).

The contract gated per campaign (exit status = violations, so CI gates
directly):

* zero hangs — every future resolves within the hang timeout;
* zero wrong answers — responses match an in-parent eager oracle
  bit-exact;
* zero untyped errors — anything non-OK carries a typed error string;
* 100% availability — redelivery plus the eager floor answer
  everything OK despite the kills;
* zero warm-restart compiles — no drill-phase worker ever cold
  compiles.

Writes ``results/sharddrill.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
import time
from concurrent.futures import TimeoutError as FutureTimeout
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..faults import (Fault, FaultPlan, FaultRule, SITE_HEARTBEAT_STALL,
                      SITE_PROCESS_KILL)
from ..models import get_workload
from ..shard import ShardPolicy, ShardRouter

#: per-request data seeds start here (campaign c, request j -> BASE+13c+j)
DATA_SEED0 = 80_000

#: drill rotation; index 0 is always the fault-free control
KINDS = ("control", "kill_submit", "kill_reply", "stall", "kill_boot")

#: error strings must start with one of these to count as *typed*
_TYPED_PREFIXES = ("WorkerCrashed", "ServerShutdown", "ReproError",
                   "CompileError", "ExecutorError", "DeadlineExceeded",
                   "VerificationError", "AllocError", "KernelLaunchError",
                   "BatchExecError", "PassError", "FusionCompileError")


def build_spec(kind: str, seed: int, index: int) -> Optional[dict]:
    """The campaign's deterministic worker-side fault schedule, as a
    :meth:`~repro.faults.FaultPlan.to_spec` dict (live plans cannot
    cross the spawn boundary)."""
    rng = random.Random((seed << 16) ^ (index * 0x9E3779B1))
    if kind == "control":
        return None
    if kind == "kill_submit":
        rule = FaultRule(site=SITE_PROCESS_KILL, match="submit",
                         nth=rng.randint(1, 3), fault=Fault())
    elif kind == "kill_reply":
        rule = FaultRule(site=SITE_PROCESS_KILL, match="reply",
                         nth=rng.randint(0, 2), fault=Fault())
    elif kind == "kill_boot":
        rule = FaultRule(site=SITE_PROCESS_KILL, match="boot", nth=0,
                         fault=Fault())
    elif kind == "stall":
        rule = FaultRule(site=SITE_HEARTBEAT_STALL,
                         nth=rng.randint(0, 2), fault=Fault())
    else:
        raise ValueError(f"unknown drill kind {kind!r}")
    return FaultPlan([rule], seed=(seed << 8) ^ index).to_spec()


def _policy(store: str, spec: Optional[dict],
            hang_timeout_s: float) -> ShardPolicy:
    """Drill fleet policy.  ``max_batch_size=1`` keeps compile keys
    identical across phases (coalesced-batch shapes depend on crash
    timing, and the zero-warm-compiles gate needs the drill phase to
    serve exactly the keys the populate phase published)."""
    return ShardPolicy(
        num_workers=2, store_root=store, fault_spec=spec,
        heartbeat_interval_s=0.05, heartbeat_timeout_s=0.6,
        max_respawns=2, redeliver_max=3,
        request_timeout_s=hang_timeout_s,
        worker_policy={"workers": 2, "max_batch_size": 1})


def _bit_exact(outputs, expected) -> bool:
    outputs = outputs if isinstance(outputs, tuple) else (outputs,)
    expected = expected if isinstance(expected, tuple) else (expected,)
    if len(outputs) != len(expected):
        return False
    for g, e in zip(outputs, expected):
        ga = g.numpy() if hasattr(g, "numpy") else np.asarray(g)
        ea = e.numpy() if hasattr(e, "numpy") else np.asarray(e)
        if ga.shape != ea.shape or not np.array_equal(ga, ea,
                                                      equal_nan=True):
            return False
    return True


def _drive(router: ShardRouter, workload: str, seeds: List[int],
           seq_len: int, hang_timeout_s: float,
           refs: Dict[int, tuple]) -> Dict[str, int]:
    """Submit one request per seed and score every response."""
    out = {"requests": len(seeds), "ok": 0, "wrong": 0,
           "typed_errors": 0, "untyped_errors": 0, "hangs": 0,
           "redelivered_answered": 0, "floor_answered": 0}
    futs = [router.submit(workload, seq_len=seq_len, seed=s,
                          timeout_s=hang_timeout_s) for s in seeds]
    for seed, fut in zip(seeds, futs):
        try:
            resp = fut.result(timeout=hang_timeout_s * 2)
        except FutureTimeout:
            out["hangs"] += 1
            continue
        except Exception:
            out["untyped_errors"] += 1
            continue
        if resp.ok:
            if not _bit_exact(resp.outputs, refs[seed]):
                out["wrong"] += 1
                continue
            out["ok"] += 1
            if resp.redelivered:
                out["redelivered_answered"] += 1
            if resp.served_by == "eager" and not resp.worker:
                out["floor_answered"] += 1
        elif resp.error and resp.error.startswith(_TYPED_PREFIXES):
            out["typed_errors"] += 1
        else:
            out["untyped_errors"] += 1
    return out


def run_campaign(kind: str, workload: str, index: int,
                 args: argparse.Namespace) -> Dict[str, object]:
    """One two-phase drill campaign (populate fault-free, then drill
    under the fault schedule with warm-started workers)."""
    seeds = [DATA_SEED0 + index * 13 + j for j in range(args.requests)]
    wl = get_workload(workload)
    # the oracle: in-parent eager on the identical synthesized inputs,
    # computed before any fleet exists
    refs = {}
    for s in seeds:
        inputs = wl.make_inputs(batch_size=1, seq_len=args.seq_len,
                                seed=s)
        r = wl.model_fn(*inputs)
        refs[s] = r if isinstance(r, tuple) else (r,)

    store = tempfile.mkdtemp(prefix="sharddrill-store-")
    start = time.perf_counter()
    try:
        # phase 1: populate the artifact store (no faults)
        with ShardRouter(_policy(store, None,
                                 args.hang_timeout_s)) as router:
            router.wait_ready(2, timeout=60)
            populate = _drive(router, workload, seeds, args.seq_len,
                              args.hang_timeout_s, refs)
            populate_report = router.report()

        # phase 2: the drill — every worker warm-starts, then the
        # fault schedule kills/stalls first incarnations
        spec = build_spec(kind, args.seed, index)
        with ShardRouter(_policy(store, spec,
                                 args.hang_timeout_s)) as router:
            router.wait_ready(2, timeout=60)
            drill = _drive(router, workload, seeds, args.seq_len,
                           args.hang_timeout_s, refs)
            report = router.report()
    finally:
        shutil.rmtree(store, ignore_errors=True)

    warm_compiles = max(report["worker_compiles"].values(), default=0)
    result: Dict[str, object] = {
        "index": index, "kind": kind, "workload": workload,
        "control": kind == "control",
        "populate": populate, "drill": drill,
        "deaths": report["deaths"],
        "death_reasons": report["death_reasons"],
        "respawned": report["respawned"],
        "redelivered": report["redelivered"],
        "duplicates_dropped": report["duplicates_dropped"],
        "replayed": report["replayed"],
        "eager_floor": report["eager_floor"],
        "warm_compiles": warm_compiles,
        "populate_compiles": max(
            populate_report["worker_compiles"].values(), default=0),
        "wall_s": time.perf_counter() - start,
    }
    violations = (drill["hangs"] + drill["wrong"]
                  + drill["untyped_errors"]
                  + (drill["requests"] - drill["ok"])  # availability
                  + populate["requests"] - populate["ok"]
                  + warm_compiles)
    if kind != "control" and kind != "stall" and report["deaths"] == 0:
        # a kill campaign where nothing died never drilled anything
        violations += 1
        result["no_fault_fired"] = True
    result["violations"] = violations
    return result


def run_campaigns(args: argparse.Namespace) -> Dict[str, object]:
    """Run the rotation and aggregate the report."""
    workloads = [w.strip() for w in args.workloads.split(",")
                 if w.strip()]
    campaigns = []
    totals = {"requests": 0, "ok": 0, "hangs": 0, "wrong": 0,
              "untyped_errors": 0, "deaths": 0, "respawned": 0,
              "redelivered": 0, "duplicates_dropped": 0, "replayed": 0,
              "eager_floor": 0, "warm_compiles": 0, "violations": 0}
    for i in range(args.campaigns):
        kind = KINDS[0] if i == 0 else KINDS[1 + (i - 1) % (len(KINDS)
                                                           - 1)]
        workload = workloads[i % len(workloads)]
        result = run_campaign(kind, workload, i, args)
        campaigns.append(result)
        drill = result["drill"]
        totals["requests"] += drill["requests"]
        totals["ok"] += drill["ok"]
        totals["hangs"] += drill["hangs"]
        totals["wrong"] += drill["wrong"]
        totals["untyped_errors"] += drill["untyped_errors"]
        for k in ("deaths", "respawned", "redelivered",
                  "duplicates_dropped", "replayed", "eager_floor",
                  "warm_compiles", "violations"):
            totals[k] += result[k]
    totals["availability_pct"] = \
        100.0 * totals["ok"] / max(1, totals["requests"])
    return {
        "config": {"seed": args.seed, "campaigns": args.campaigns,
                   "workloads": workloads, "requests": args.requests,
                   "seq_len": args.seq_len},
        "campaigns": campaigns,
        "totals": totals,
    }


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry; exit status = total gate violations."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.sharddrill",
        description="seeded kill-the-worker campaigns against the "
                    "sharded serving fleet")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--campaigns", type=int, default=10)
    parser.add_argument("--workloads", type=str, default="lstm,attention")
    parser.add_argument("--requests", type=int, default=6,
                        help="requests per campaign phase")
    parser.add_argument("--seq-len", type=int, default=8)
    parser.add_argument("--hang-timeout-s", type=float, default=60.0)
    parser.add_argument("--out", type=str,
                        default="results/sharddrill.json")
    args = parser.parse_args(argv)

    report = run_campaigns(args)
    t = report["totals"]
    print(f"sharddrill: {args.campaigns} campaigns, {t['requests']} "
          f"drill requests (seed {args.seed})")
    print(f"  availability {t['availability_pct']:.1f}%  hangs "
          f"{t['hangs']}  wrong {t['wrong']}  untyped "
          f"{t['untyped_errors']}")
    print(f"  deaths {t['deaths']}  respawned {t['respawned']}  "
          f"redelivered {t['redelivered']}  duplicates dropped "
          f"{t['duplicates_dropped']}  replayed {t['replayed']}")
    print(f"  eager-floor answers {t['eager_floor']}  warm-restart "
          f"compiles {t['warm_compiles']}")

    failures = t["violations"]
    report["failures"] = failures
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"{failures} violation(s); wrote {out}")
    return failures


if __name__ == "__main__":
    sys.exit(main())
