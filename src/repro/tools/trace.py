"""Trace CLI: run a workload under the obs layer, export Chrome trace.

``python -m repro.tools.trace --workload lstm`` compiles and runs one
workload under a context-local trace sink, writes
``results/trace_<workload>_<pipeline>.json`` in the
``chrome://tracing`` / Perfetto object format, validates it against the
schema checker, and gates on root-span coverage: the top-level spans
must account for at least ``--min-coverage`` (default 95%) of the
measured wall window.

Modes:

* default — one ``run_workload`` call under :func:`repro.obs.tracing`;
  prints a per-stage time breakdown (span durations grouped by name).
* ``--serve N`` — replay a serving campaign: a live
  :class:`~repro.serve.Server` under :func:`repro.obs.global_tracing`
  (worker threads report into one trace), ``N`` requests submitted and
  awaited; every response carries its per-request lifecycle timeline.
* ``--overhead-check`` — the disabled-mode overhead gate: times the
  instrumented-but-disabled stack (no sink installed) against a
  :func:`repro.obs.null_instrumentation` bypass baseline and fails if
  the overhead exceeds ``--max-overhead`` (default 5%).

Exit status is the number of failed gates, so CI can run it directly
(the ``trace-smoke`` job does).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..eval.harness import CompileCache, run_workload
from ..obs import (chrome_trace, coverage_fraction, global_tracing,
                   null_instrumentation, tracing, validate_chrome_trace,
                   write_chrome_trace)
from ..obs import trace as obs_trace
from ..serve import ServePolicy, Server


def _stage_breakdown(trace_obj) -> Dict[str, float]:
    """Total seconds per span name (summed over occurrences)."""
    totals: Dict[str, float] = {}
    for s in trace_obj.spans:
        totals[s.name] = totals.get(s.name, 0.0) + s.duration_s
    return totals


def _print_breakdown(trace_obj, wall_s: float, top: int = 18) -> None:
    """Print the largest span-name totals as a stage-time table."""
    totals = _stage_breakdown(trace_obj)
    print(f"  stage breakdown ({len(trace_obj.spans)} spans, "
          f"wall {wall_s * 1e3:.1f} ms):")
    for name, total in sorted(totals.items(), key=lambda kv: -kv[1])[:top]:
        print(f"    {name:<28s} {total * 1e3:9.3f} ms "
              f"({100.0 * total / wall_s:5.1f}% of wall)")


def _trace_workload(args: argparse.Namespace) -> int:
    """Default mode: one traced run_workload call; returns failures."""
    failures = 0
    with tracing(name=f"{args.workload}/{args.pipeline}",
                 seed=args.seed) as trace_obj:
        t0 = time.perf_counter()
        # check=True raises on divergence from eager, aborting the gate
        result = run_workload(args.workload, args.pipeline,
                              batch_size=args.batch_size,
                              seq_len=args.seq_len, seed=args.seed,
                              check=True, cache=CompileCache())
        t1 = time.perf_counter()
    wall = t1 - t0
    doc = chrome_trace(trace_obj)
    problems = validate_chrome_trace(doc)
    for p in problems:
        print(f"  SCHEMA: {p}")
    failures += len(problems)
    cover = coverage_fraction(trace_obj, (t0, t1))
    print(f"trace: {args.workload}/{args.pipeline} "
          f"(seed {args.seed}, trace_id {trace_obj.trace_id})")
    print(f"  spans {len(trace_obj.spans)}  roots {len(trace_obj.roots())}"
          f"  coverage {cover * 100:.1f}%  "
          f"latency {result.latency_ms:.2f} ms (modeled)")
    if cover < args.min_coverage:
        print(f"  FAIL: root-span coverage {cover * 100:.1f}% < "
              f"{args.min_coverage * 100:.0f}%")
        failures += 1
    _print_breakdown(trace_obj, wall)
    out = args.out or f"results/trace_{args.workload}_{args.pipeline}.json"
    path = write_chrome_trace(trace_obj, out)
    print(f"  wrote {path} ({path.stat().st_size} bytes)")
    return failures


def _trace_serve(args: argparse.Namespace) -> int:
    """``--serve N`` mode: traced serving campaign; returns failures."""
    failures = 0
    n = args.serve
    with global_tracing(name=f"serve:{args.workload}",
                        seed=args.seed) as trace_obj:
        policy = ServePolicy(workers=2, max_batch_size=4,
                             batch_wait_s=0.002)
        with Server(policy) as srv:
            futs = [srv.submit(args.workload, pipeline=args.pipeline,
                               batch_size=args.batch_size,
                               seq_len=args.seq_len, seed=args.seed + i)
                    for i in range(n)]
            responses = [f.result(timeout=60.0) for f in futs]
        stats = srv.stats.to_dict()
    ok = sum(1 for r in responses if r.ok)
    with_timeline = sum(1 for r in responses if r.timeline)
    events = sorted({e["event"] for r in responses for e in r.timeline})
    doc = chrome_trace(trace_obj)
    problems = validate_chrome_trace(doc)
    for p in problems:
        print(f"  SCHEMA: {p}")
    failures += len(problems)
    print(f"serve replay: {n} requests, {ok} ok, "
          f"{stats['batches_executed']} batches, "
          f"{len(trace_obj.spans)} spans")
    print(f"  request timelines: {with_timeline}/{n} populated, "
          f"events {events}")
    if ok != n:
        print(f"  FAIL: {n - ok} request(s) not served ok")
        failures += 1
    if with_timeline != n:
        print(f"  FAIL: {n - with_timeline} response(s) missing a "
              f"lifecycle timeline")
        failures += 1
    for required in ("enqueue", "dequeue", "execute", "finish"):
        if required not in events:
            print(f"  FAIL: no response timeline recorded {required!r}")
            failures += 1
    out = args.out or f"results/trace_serve_{args.workload}.json"
    path = write_chrome_trace(trace_obj, out)
    print(f"  wrote {path} ({path.stat().st_size} bytes)")
    return failures


def _time_one(args: argparse.Namespace) -> float:
    """Wall time of one uncached workload run."""
    t0 = time.perf_counter()
    run_workload(args.workload, args.pipeline,
                 batch_size=args.batch_size, seq_len=args.seq_len,
                 seed=args.seed, cache=CompileCache())
    return time.perf_counter() - t0


def _overhead_check(args: argparse.Namespace) -> int:
    """Gate disabled-mode instrumentation overhead; returns failures."""
    assert not obs_trace.tracing_active(), \
        "overhead check must run with no sink installed"
    _time_one(args)  # warmup (imports, op registry, numpy pools)
    # interleave the two modes pairwise so machine drift (thermal, CI
    # noisy neighbors) hits both equally; best-of damps outliers
    baseline = disabled = float("inf")
    for _ in range(args.overhead_repeats):
        with null_instrumentation():
            baseline = min(baseline, _time_one(args))
        disabled = min(disabled, _time_one(args))
    overhead = (disabled - baseline) / baseline if baseline > 0 else 0.0
    print(f"overhead: baseline {baseline * 1e3:.2f} ms, "
          f"disabled-instrumentation {disabled * 1e3:.2f} ms "
          f"-> {overhead * 100:+.2f}% (gate {args.max_overhead * 100:.0f}%)")
    if overhead > args.max_overhead:
        print(f"  FAIL: disabled-mode overhead {overhead * 100:.2f}% "
              f"exceeds {args.max_overhead * 100:.0f}%")
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry; returns the number of failed gates."""
    ap = argparse.ArgumentParser(
        prog="repro.tools.trace",
        description="run a workload under structured tracing and export "
                    "Chrome-trace JSON")
    ap.add_argument("--workload", default="lstm")
    ap.add_argument("--pipeline", default="tensorssa")
    ap.add_argument("--batch-size", type=int, default=1)
    ap.add_argument("--seq-len", type=int, default=16)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default=None,
                    help="output path (default results/trace_*.json)")
    ap.add_argument("--min-coverage", type=float, default=0.95,
                    help="root-span coverage gate (fraction of wall)")
    ap.add_argument("--serve", type=int, default=0, metavar="N",
                    help="replay a serve campaign of N requests instead "
                         "of a single harness run")
    ap.add_argument("--overhead-check", action="store_true",
                    help="gate disabled-mode instrumentation overhead")
    ap.add_argument("--max-overhead", type=float, default=0.05,
                    help="overhead gate as a fraction (default 0.05)")
    ap.add_argument("--overhead-repeats", type=int, default=5,
                    help="best-of repeats per mode for the overhead gate")
    args = ap.parse_args(argv)

    if args.overhead_check:
        return _overhead_check(args)
    if args.serve > 0:
        return _trace_serve(args)
    return _trace_workload(args)


if __name__ == "__main__":
    sys.exit(main())
