"""Differential fuzzing CLI.

``python -m repro.tools.fuzz --seed 0 --count 100`` generates 100
random imperative programs and runs each through eager plus every
registered pipeline, demanding bit-exact agreement and intact graph /
profiler invariants.  Any divergence is automatically delta-debugged to
a minimal repro, printed as frontend source + compiled IR, and (with
``--save-corpus DIR``) written out as a JSON corpus entry ready to be
checked into ``tests/corpus/``.

Exit status is the number of failing seeds (0 = clean run), so the CI
smoke job can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from ..frontend import script
from ..ir import print_graph
from ..fuzz import (FuzzFailure, OracleConfig, failure_predicate,
                    generate_program, materialize, run_oracle,
                    scripted_node_count, shrink)
from ..fuzz.oracle import all_pipeline_names


def save_corpus_entry(directory: Path, failure: FuzzFailure,
                      found_by: str = "repro.tools.fuzz") -> Path:
    """Write one minimized failure as a JSON corpus entry."""
    directory.mkdir(parents=True, exist_ok=True)
    program = failure.program
    try:
        ir = print_graph(script(materialize(program.source,
                                            program.name)).graph)
    except Exception as exc:  # keep the repro even if scripting broke
        ir = f"<unscriptable: {exc}>"
    entry = {
        "name": f"seed{program.seed}-{failure.kind}",
        "seed": program.seed,
        "pipeline": failure.pipeline,
        "kind": failure.kind,
        "found_by": found_by,
        "source": program.source,
        "ir": ir,
    }
    path = directory / f"{entry['name']}.json"
    path.write_text(json.dumps(entry, indent=2) + "\n")
    return path


def fuzz_one(seed: int, config: OracleConfig, max_nodes: int,
             do_shrink: bool = True) -> Optional[FuzzFailure]:
    """Generate, test, and (on failure) minimize one seed."""
    program = generate_program(seed, max_nodes=max_nodes)
    failure = run_oracle(program, config)
    if failure is None or not do_shrink:
        return failure
    predicate = failure_predicate(failure, config)
    small = shrink(program, predicate)
    shrunk_failure = run_oracle(small, config)
    return shrunk_failure if shrunk_failure is not None else failure


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the number of failing seeds."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.fuzz",
        description="differential fuzzing of all compilation pipelines")
    parser.add_argument("--seed", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--count", type=int, default=100,
                        help="number of seeds to fuzz (default 100)")
    parser.add_argument("--max-nodes", type=int, default=96,
                        help="scripted-IR size budget per program")
    parser.add_argument("--pipelines", type=str, default=None,
                        help="comma-separated pipeline names "
                             "(default: all registered)")
    parser.add_argument("--save-corpus", type=str, default=None,
                        metavar="DIR",
                        help="write minimized failures as JSON entries")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report raw failures without minimizing")
    parser.add_argument("--no-family-check", action="store_true",
                        help="skip the multi-extent shape-family replay "
                             "(oracle check 6)")
    parser.add_argument("--family-extents", type=str, default="4,6,8",
                        help="comma-separated row extents for the "
                             "family replay (first seeds the family)")
    parser.add_argument("--no-grad-check", action="store_true",
                        help="skip backward-graph construction and the "
                             "FD grad-check (oracle check 7)")
    parser.add_argument("--grad-samples", type=int, default=4,
                        help="elements sampled per input by the check-7 "
                             "FD grad-check")
    parser.add_argument("--max-failures", type=int, default=5,
                        help="stop after this many failing seeds")
    args = parser.parse_args(argv)

    pipelines = args.pipelines.split(",") if args.pipelines else None
    config = OracleConfig(
        pipelines=pipelines,
        check_families=not args.no_family_check,
        family_extents=tuple(int(e) for e in
                             args.family_extents.split(",") if e.strip()),
        check_grad=not args.no_grad_check,
        grad_samples=args.grad_samples)
    shown = pipelines or all_pipeline_names()
    print(f"fuzzing seeds {args.seed}..{args.seed + args.count - 1} "
          f"against: {', '.join(shown)}")

    failures: List[FuzzFailure] = []
    nodes_total = 0
    start = time.time()
    for seed in range(args.seed, args.seed + args.count):
        program = generate_program(seed, max_nodes=args.max_nodes)
        nodes_total += scripted_node_count(program)
        failure = run_oracle(program, config)
        if failure is None:
            done = seed - args.seed + 1
            if done % 10 == 0 or done == args.count:
                print(f"  {done}/{args.count} ok "
                      f"({time.time() - start:.1f}s)")
            continue
        print(f"\nseed {seed}: FAILURE ({failure.kind} on "
              f"{failure.pipeline}), shrinking...")
        if not args.no_shrink:
            small = shrink(program, failure_predicate(failure, config))
            failure = run_oracle(small, config) or failure
        failures.append(failure)
        print(failure.describe())
        if args.save_corpus:
            path = save_corpus_entry(Path(args.save_corpus), failure)
            print(f"saved corpus entry: {path}")
        if len(failures) >= args.max_failures:
            print(f"stopping after {len(failures)} failures")
            break

    elapsed = time.time() - start
    print(f"\n{args.count} programs, {nodes_total} scripted IR nodes, "
          f"{len(failures)} divergence(s), {elapsed:.1f}s")
    return len(failures)


if __name__ == "__main__":
    sys.exit(main())
