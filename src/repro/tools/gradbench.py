"""Backward-pass benchmark CLI: fused vs interpreted gradients.

``python -m repro.tools.gradbench`` compiles the backward graph of
each training-relevant workload twice — through the full TensorSSA
pipeline (parallelize + fuse + revert + memory plan) and through the
``tensorssa_interp`` ablation (no optimization at all) — then compares
modeled latency (the analytical cost model priced from the profiler)
and measured wall-clock.  With ``--check`` it additionally runs the
finite-difference grad-check harness and enforces the accuracy gate.

Results land in ``results/gradbench.json`` (``--out``) backing the
EXPERIMENTS.md backward table.  Exit status is the number of
workloads where the fused backward fails to beat the interpreted one
on *both* metrics, plus any grad-check failures — so CI can gate on
it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from ..eval.harness import clear_compile_cache, run_workload
from ..grad.check import check_workload_grad

#: workloads with meaningful training loops (the paper's module-level
#: benchmarks; the CV detectors are inference-only post-processing)
DEFAULT_WORKLOADS = ["lstm", "attention"]

#: grad-check accuracy gate (max relative error vs central FD)
CHECK_GATE = 1e-4


def bench_one(workload: str, batch_size: int, seq_len: int,
              repeats: int, check: bool,
              samples_per_input: int = 8) -> dict:
    """Benchmark fused vs interpreted backward for one workload."""
    row = {"workload": workload, "batch_size": batch_size,
           "seq_len": seq_len}
    for label, pipeline in (("fused", "tensorssa"),
                            ("interpreted", "tensorssa_interp")):
        r = run_workload(workload, pipeline, batch_size=batch_size,
                         seq_len=seq_len, grad=True, check=True,
                         measure_wallclock=True, repeats=repeats)
        row[label] = {
            "pipeline": pipeline,
            "latency_us": r.latency_us,
            "wallclock_s": r.wallclock_s,
            "kernel_launches": r.kernel_launches,
            "fused_ops": r.fused_ops,
            "peak_bytes": r.peak_bytes,
        }
    row["speedup_modeled"] = (row["interpreted"]["latency_us"]
                              / row["fused"]["latency_us"])
    row["speedup_wallclock"] = (row["interpreted"]["wallclock_s"]
                                / row["fused"]["wallclock_s"])
    row["fused_wins"] = (row["speedup_modeled"] > 1.0
                         and row["speedup_wallclock"] > 1.0)
    if check:
        res = check_workload_grad(workload, batch_size=batch_size,
                                  seq_len=min(seq_len, 8),
                                  samples_per_input=samples_per_input)
        row["gradcheck"] = {
            "ok": bool(res.ok and res.max_rel_err < CHECK_GATE),
            "max_rel_err": res.max_rel_err,
            "checked": res.checked,
            "skipped": res.skipped,
        }
    return row


def main(argv: List[str] = None) -> int:
    """CLI entry point; returns the number of losing/failing rows."""
    ap = argparse.ArgumentParser(
        description="fused vs interpreted backward-pass benchmark")
    ap.add_argument("--workloads", default=",".join(DEFAULT_WORKLOADS),
                    help="comma-separated workload names")
    ap.add_argument("--batch-size", type=int, default=8)
    ap.add_argument("--seq-len", type=int, default=32)
    ap.add_argument("--repeats", type=int, default=5,
                    help="wall-clock repetitions (best-of)")
    ap.add_argument("--check", action="store_true",
                    help="also run the FD grad-check accuracy gate")
    ap.add_argument("--samples-per-input", type=int, default=8)
    ap.add_argument("--out", default=None,
                    help="write the JSON report here "
                         "(e.g. results/gradbench.json)")
    args = ap.parse_args(argv)

    clear_compile_cache()
    rows = []
    bad = 0
    for name in args.workloads.split(","):
        name = name.strip()
        if not name:
            continue
        row = bench_one(name, args.batch_size, args.seq_len,
                        args.repeats, args.check,
                        args.samples_per_input)
        rows.append(row)
        verdict = "fused wins" if row["fused_wins"] else "FUSED LOSES"
        print(f"{name:12s} modeled {row['speedup_modeled']:.2f}x  "
              f"wallclock {row['speedup_wallclock']:.2f}x  "
              f"launches {row['fused']['kernel_launches']} vs "
              f"{row['interpreted']['kernel_launches']}  [{verdict}]")
        if not row["fused_wins"]:
            bad += 1
        if args.check:
            gc = row["gradcheck"]
            print(f"{'':12s} gradcheck max_rel_err "
                  f"{gc['max_rel_err']:.3g} "
                  f"({gc['checked']} checked, {gc['skipped']} kinks "
                  f"skipped) [{'ok' if gc['ok'] else 'FAIL'}]")
            if not gc["ok"]:
                bad += 1

    report = {"batch_size": args.batch_size, "seq_len": args.seq_len,
              "repeats": args.repeats, "rows": rows}
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")
    return bad


if __name__ == "__main__":
    sys.exit(main())
