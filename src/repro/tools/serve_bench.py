"""Serving throughput benchmark: batched vs one-at-a-time.

``python -m repro.tools.serve_bench --workloads lstm,attention
--requests 200 --concurrency 8`` drives a closed-loop load generator
(N client threads, each keeping one request in flight) against a
:class:`repro.serve.Server` twice per workload: once with dynamic
batching enabled and once with ``max_batch_size=1`` (the serving
baseline — same queues, same workers, no coalescing).  Every response
is verified bit-exact against the eager pipeline on the identical
executed inputs (``verify="batch"``), and the run fails if any request
is dropped, errors, times out, or diverges.

Results (throughput, latency percentiles, batch histogram, cache hit
rates, speedup) are printed and written to ``results/serve_bench.json``.
Exit status is the number of dropped/diverging requests across all
runs, so CI can gate on it directly.

``--dynamic-shapes`` switches the benchmark into the symbolic-shape
comparison instead: every request draws a *seeded random* sequence
length from ``[--dyn-seq-min, --dyn-seq-max]`` and each workload is
served twice — once with family-keyed compilation plus power-of-two
bucketing (``ServePolicy(dynamic_shapes=True)``) and once with plain
concrete shape keying.  The report then carries compiles-per-1k-
requests (compile-cache misses + guard misses, normalized) and batch
occupancy (mean batch size / max batch) for both modes, and
``--min-compile-ratio`` (default 5.0) gates that the family path
compiles at least that many times less often *and* achieves strictly
higher occupancy.  All responses stay verified bit-exact against eager
on the padded batch inputs (``verify="batch"``).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..models import Workload, get_workload
from ..serve import (Response, ServePolicy, Server, get_batch_spec)
from ..shard import ShardPolicy, ShardRouter

#: seed of the shared model state; per-request data seeds start above it
STATE_SEED = 0
DATA_SEED0 = 10_000


def build_request_args(wl: Workload, seq_len: int, count: int
                       ) -> List[tuple]:
    """``count`` distinct request-input tuples that share model state.

    Shared (non-batched) arguments — weights, priors, grids — come from
    one ``make_inputs`` call and are reused by every request, mirroring
    a server that loads a model once; batched arguments are freshly
    synthesized per request so every user sends different data.
    """
    base = wl.make_inputs(batch_size=1, seq_len=seq_len, seed=STATE_SEED)
    spec = get_batch_spec(wl.name)
    if spec is None:
        return [wl.make_inputs(batch_size=1, seq_len=seq_len,
                               seed=DATA_SEED0 + i) for i in range(count)]
    out: List[tuple] = []
    for i in range(count):
        fresh = wl.make_inputs(batch_size=1, seq_len=seq_len,
                               seed=DATA_SEED0 + i)
        out.append(tuple(
            fresh[k] if axis is not None else base[k]
            for k, axis in enumerate(spec.arg_axes)))
    return out


def build_dynamic_pool(wl: Workload, lengths: List[int]) -> List[tuple]:
    """One request-input tuple per entry of ``lengths``, sharing state.

    Same sharing rule as :func:`build_request_args` — weights and other
    non-batched arguments come from a single ``make_inputs`` call (they
    do not depend on the sequence length), while each request's batched
    arguments are synthesized at its own drawn length.
    """
    base = wl.make_inputs(batch_size=1, seq_len=max(lengths),
                          seed=STATE_SEED)
    spec = get_batch_spec(wl.name)
    pool: List[tuple] = []
    for i, length in enumerate(lengths):
        fresh = wl.make_inputs(batch_size=1, seq_len=length,
                               seed=DATA_SEED0 + i)
        if spec is None:
            pool.append(tuple(fresh))
        else:
            pool.append(tuple(
                fresh[k] if axis is not None else base[k]
                for k, axis in enumerate(spec.arg_axes)))
    return pool


def run_load(wl: Workload, args_pool: List[tuple], policy: ServePolicy,
             requests: int, concurrency: int, pipeline: str,
             platform: str, warmup: int) -> Dict[str, object]:
    """One closed-loop run; returns stats + throughput."""
    server = Server(policy)
    responses: List[Optional[Response]] = [None] * requests
    counter = {"next": 0}
    lock = threading.Lock()

    try:
        # warmup: populate the compile cache for the shapes the steady
        # state will see, so throughput is not dominated by cold compiles
        warm = [server.submit(wl, args=args_pool[i % len(args_pool)],
                              pipeline=pipeline, platform=platform)
                for i in range(warmup)]
        for f in warm:
            f.result()

        def client() -> None:
            while True:
                with lock:
                    i = counter["next"]
                    if i >= requests:
                        return
                    counter["next"] = i + 1
                fut = server.submit(wl, args=args_pool[i % len(args_pool)],
                                    pipeline=pipeline, platform=platform)
                responses[i] = fut.result()

        threads = [threading.Thread(target=client, name=f"client-{i}")
                   for i in range(concurrency)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - start
    finally:
        server.shutdown(drain=True)

    stats = server.stats.to_dict()
    ok = sum(1 for r in responses if r is not None and r.ok)
    dropped = requests - ok
    diverged = sum(1 for r in responses
                   if r is not None and r.verified is False)
    mean_batch = (sum(int(k) * v for k, v in
                      stats["batch_size_hist"].items())
                  / max(1, stats["batches_executed"]))
    return {
        "requests": requests,
        "wall_s": wall,
        "throughput_rps": requests / wall if wall > 0 else 0.0,
        "ok": ok,
        "dropped": dropped,
        "diverged": diverged,
        "mean_batch_requests": mean_batch,
        "server": stats,
    }


def _compile_events(run: Dict[str, object]) -> int:
    """Compilations a run paid for: cache misses + guard-miss recompiles."""
    cache = run["server"].get("compile_cache") or {}
    return int(cache.get("misses", 0)) + int(cache.get("guard_misses", 0))


def _tune_searches(run: Dict[str, object]) -> int:
    """Tuning-time searches a serve run performed (must stay 0: the
    server only ever *reads* the tuning DB; searching is offline work
    for ``tools/tune``)."""
    tdb = run["server"].get("tune_db") or {}
    return int(tdb.get("searches", 0))


def bench_workload_dynamic(name: str, args: argparse.Namespace,
                           lengths: List[int]) -> Dict[str, object]:
    """One workload under mixed sequence lengths: family vs concrete keys.

    Both modes serve the identical randomized-length request pool with
    the same worker/batching policy; only the compile keying differs —
    ``family`` buckets lengths to powers of two and keys the cache on
    shape families, ``concrete`` keys on exact shapes (so every novel
    length is a fresh compile and its own batch group).
    """
    wl = get_workload(name)
    pool = build_dynamic_pool(wl, lengths)
    common = dict(workers=args.workers, max_batch_size=args.max_batch,
                  batch_wait_s=args.batch_wait_ms / 1e3,
                  queue_capacity=args.queue_capacity,
                  request_timeout_s=args.timeout_s,
                  verify=("off" if args.no_verify else "batch"),
                  tuning_db_path=args.tune_db)
    family_policy = ServePolicy(dynamic_shapes=True,
                                bucket_min=args.bucket_min, **common)
    concrete_policy = ServePolicy(dynamic_shapes=False, **common)

    runs: Dict[str, Dict[str, object]] = {}
    for mode, policy in (("family", family_policy),
                         ("concrete", concrete_policy)):
        run = run_load(wl, pool, policy, args.requests, args.concurrency,
                       args.pipeline, args.platform, warmup=args.warmup)
        run["compiles"] = _compile_events(run)
        run["compiles_per_1k_requests"] = (
            run["compiles"] / max(1, args.requests) * 1000.0)
        run["batch_occupancy"] = (
            run["mean_batch_requests"] / max(1, args.max_batch))
        runs[mode] = run

    fam, conc = runs["family"], runs["concrete"]
    ratio = (conc["compiles"] / fam["compiles"] if fam["compiles"]
             else float("inf"))
    return {
        "workload": name,
        "family": fam,
        "concrete": conc,
        "compile_ratio": ratio,
        "occupancy_gain": (fam["batch_occupancy"]
                           - conc["batch_occupancy"]),
    }


def run_shard_load(wl: Workload, pool: List[tuple], num_workers: int,
                   args: argparse.Namespace,
                   store_root: str) -> Dict[str, object]:
    """One closed-loop run against a :class:`~repro.shard.ShardRouter`
    fleet of ``num_workers`` worker processes sharing one artifact
    store.  The inner servers run ``max_batch_size=1`` so the compile-
    key population is exactly the distinct request shapes — the
    property that makes the warm-restart zero-compiles gate
    deterministic (coalesced-batch shapes depend on thread timing)."""
    policy = ShardPolicy(
        num_workers=num_workers, store_root=store_root,
        request_timeout_s=args.timeout_s,
        worker_policy={"workers": 2, "max_batch_size": 1,
                       "request_timeout_s": args.timeout_s})
    requests = args.requests
    responses: List[Optional[Response]] = [None] * requests
    counter = {"next": 0}
    lock = threading.Lock()
    router = ShardRouter(policy)
    try:
        ready = router.wait_ready(num_workers, timeout=120)
        if ready < num_workers:
            raise RuntimeError(
                f"only {ready}/{num_workers} shard workers came up")
        # warmup: compile (or warm-load) every distinct shape once
        warm = [router.submit(wl, args=p, pipeline=args.pipeline,
                              platform=args.platform) for p in pool]
        for f in warm:
            f.result(timeout=args.timeout_s)

        def client() -> None:
            while True:
                with lock:
                    i = counter["next"]
                    if i >= requests:
                        return
                    counter["next"] = i + 1
                fut = router.submit(wl, args=pool[i % len(pool)],
                                    pipeline=args.pipeline,
                                    platform=args.platform)
                responses[i] = fut.result(timeout=args.timeout_s)

        threads = [threading.Thread(target=client,
                                    name=f"shard-client-{i}")
                   for i in range(args.concurrency)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - start
        report = router.report()
    finally:
        router.shutdown(drain=True)
    ok = sum(1 for r in responses if r is not None and r.ok)
    return {
        "workers": num_workers,
        "requests": requests,
        "wall_s": wall,
        "throughput_rps": requests / wall if wall > 0 else 0.0,
        "ok": ok,
        "dropped": requests - ok,
        "compiles": max(report["worker_compiles"].values(), default=0),
        "router": report,
    }


def bench_workload_sharded(name: str, args: argparse.Namespace
                           ) -> Dict[str, object]:
    """One workload through the multi-process shard fleet, at
    ``--workers`` processes and again at one process (same artifact
    store, so the second fleet warm-starts and must pay **zero**
    compiles — the crash-restart property measured as a benchmark).

    The request pool spans ``--shard-keys`` distinct sequence lengths:
    the hash ring places requests by shape-specialization key, so a
    single-shape pool would land on one worker and measure nothing.
    """
    wl = get_workload(name)
    lengths = [args.seq_len + 4 * k for k in range(args.shard_keys)]
    pool = [wl.make_inputs(batch_size=1, seq_len=lengths[i],
                           seed=DATA_SEED0 + i)
            for i in range(len(lengths))]
    store = tempfile.mkdtemp(prefix="shard-bench-store-")
    try:
        sharded = run_shard_load(wl, pool, args.workers, args, store)
        baseline = run_shard_load(wl, pool, 1, args, store)
    finally:
        shutil.rmtree(store, ignore_errors=True)
    scaling = (sharded["throughput_rps"] / baseline["throughput_rps"]
               if baseline["throughput_rps"] else float("inf"))
    return {"workload": name, "sharded": sharded, "baseline": baseline,
            "scaling": scaling,
            "warm_restart_compiles": baseline["compiles"]}


def bench_workload(name: str, args: argparse.Namespace
                   ) -> Dict[str, object]:
    """Benchmark one workload: batched policy vs max_batch_size=1."""
    wl = get_workload(name)
    pool = build_request_args(wl, args.seq_len, args.distinct_inputs)
    common = dict(workers=args.workers, batch_wait_s=args.batch_wait_ms / 1e3,
                  queue_capacity=args.queue_capacity,
                  request_timeout_s=args.timeout_s,
                  verify=("off" if args.no_verify else "batch"),
                  tuning_db_path=args.tune_db)
    batched_policy = ServePolicy(max_batch_size=args.max_batch, **common)
    baseline_policy = ServePolicy(max_batch_size=1, **common)

    batched = run_load(wl, pool, batched_policy, args.requests,
                       args.concurrency, args.pipeline, args.platform,
                       warmup=args.warmup)
    baseline = run_load(wl, pool, baseline_policy, args.requests,
                        args.concurrency, args.pipeline, args.platform,
                        warmup=min(args.warmup, args.max_batch))
    speedup = (batched["throughput_rps"] / baseline["throughput_rps"]
               if baseline["throughput_rps"] else float("inf"))
    return {"workload": name, "batched": batched, "baseline": baseline,
            "throughput_speedup": speedup}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns dropped + diverging request count."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.serve_bench",
        description="closed-loop serving benchmark: dynamic batching "
                    "vs batch-size-1 serving")
    parser.add_argument("--workloads", type=str, default="lstm,attention")
    parser.add_argument("--requests", type=int, default=200,
                        help="requests per workload per mode")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="closed-loop client threads")
    parser.add_argument("--workers", type=int, default=4,
                        help="server worker threads")
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--batch-wait-ms", type=float, default=4.0)
    parser.add_argument("--seq-len", type=int, default=16)
    parser.add_argument("--pipeline", type=str, default="tensorssa")
    parser.add_argument("--platform", type=str, default="datacenter")
    parser.add_argument("--distinct-inputs", type=int, default=32,
                        help="distinct request payloads cycled through")
    parser.add_argument("--warmup", type=int, default=16,
                        help="untimed warmup requests per mode")
    parser.add_argument("--queue-capacity", type=int, default=512)
    parser.add_argument("--timeout-s", type=float, default=120.0,
                        help="per-request deadline")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the eager bit-exactness oracle")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless some workload's batched "
                             "throughput beats baseline by this factor")
    parser.add_argument("--overload", action="store_true",
                        help="run the 2x-saturation overload drill "
                             "(repro.tools.overload) instead: "
                             "continuous batching + admission control "
                             "vs the reject-on-full baseline")
    parser.add_argument("--sharded", action="store_true",
                        help="benchmark the multi-process shard fleet "
                             "(repro.shard): --workers worker "
                             "processes vs one, sharing an artifact "
                             "store so the second fleet warm-starts "
                             "with zero compiles")
    parser.add_argument("--shard-keys", type=int, default=12,
                        help="distinct sequence lengths in the sharded "
                             "request pool (= hash-ring keys)")
    parser.add_argument("--min-scaling", type=float, default=None,
                        help="sharded mode: fail unless some "
                             "workload's N-worker throughput beats "
                             "1-worker by this factor")
    parser.add_argument("--dynamic-shapes", action="store_true",
                        help="serve seeded randomized sequence lengths "
                             "and compare family-keyed (bucketed) "
                             "compilation against concrete shape keys")
    parser.add_argument("--dyn-seq-min", type=int, default=8,
                        help="shortest randomized sequence length")
    parser.add_argument("--dyn-seq-max", type=int, default=48,
                        help="longest randomized sequence length")
    parser.add_argument("--shape-seed", type=int, default=0,
                        help="seed for the random length draws")
    parser.add_argument("--bucket-min", type=int, default=8,
                        help="smallest padding bucket in family mode")
    parser.add_argument("--min-compile-ratio", type=float, default=5.0,
                        help="dynamic mode: fail a workload whose "
                             "concrete/family compile ratio is below "
                             "this (and require strictly higher family "
                             "batch occupancy)")
    parser.add_argument("--tune-db", type=str, default=None,
                        help="read-only tuning database root "
                             "(tools/tune output): serve runs pick up "
                             "best-known schedules, and the run FAILS "
                             "if any tuning-time search happens on the "
                             "hot path (warm-serve gate)")
    parser.add_argument("--out", type=str,
                        default="results/serve_bench.json")
    args = parser.parse_args(argv)

    names = [w.strip() for w in args.workloads.split(",") if w.strip()]

    if args.overload:
        # delegate to the overload drill; only knobs the caller set
        # explicitly are forwarded — the drill's own defaults form the
        # tuned 2x-saturation geometry its gates were calibrated on
        from .overload import main as overload_main
        argv_out = args.out if args.out != "results/serve_bench.json" \
            else "results/overload.json"
        forwarded = ["--workload", names[0], "--out", argv_out]
        for flag, name in (("--workers", "workers"),
                           ("--max-batch", "max_batch"),
                           ("--batch-wait-ms", "batch_wait_ms"),
                           ("--concurrency", "concurrency"),
                           ("--warmup", "warmup")):
            value = getattr(args, name)
            if value != parser.get_default(name):
                forwarded.extend([flag, str(value)])
        if args.no_verify:
            forwarded.append("--no-verify")
        return overload_main(forwarded)

    report = {
        "config": {k: v for k, v in vars(args).items() if k != "out"},
        "workloads": [],
    }
    failures = 0

    if args.sharded:
        if args.out == "results/serve_bench.json":
            args.out = "results/shard_bench.json"
        for name in names:
            print(f"[{name}] sharded: {args.requests} requests x "
                  f"{args.concurrency} clients, {args.workers} worker "
                  f"processes vs 1, {args.shard_keys} ring keys")
            entry = bench_workload_sharded(name, args)
            report["workloads"].append(entry)
            for mode in ("sharded", "baseline"):
                e = entry[mode]
                failures += e["dropped"]
                print(f"  {mode:<9} workers={e['workers']}  "
                      f"{e['throughput_rps']:8.1f} req/s  "
                      f"compiles {e['compiles']:3d}  "
                      f"dropped {e['dropped']}")
            print(f"  scaling   {entry['scaling']:.2f}x  "
                  f"warm-restart compiles "
                  f"{entry['warm_restart_compiles']}")
            # the crash-restart property, gated as a benchmark: the
            # warm-started 1-worker fleet must never cold compile
            failures += entry["warm_restart_compiles"]
        best = max((e["scaling"] for e in report["workloads"]),
                   default=0.0)
        report["best_scaling"] = best
        cores = os.cpu_count() or 1
        report["cpu_count"] = cores
        if cores < args.workers:
            print(f"note: {cores} CPU core(s) < {args.workers} workers "
                  f"— throughput scaling is not expressible on this "
                  f"machine; the availability and warm-restart gates "
                  f"still hold")
        if args.min_scaling is not None and best < args.min_scaling:
            print(f"FAIL: best scaling {best:.2f}x < required "
                  f"{args.min_scaling:.2f}x")
            failures += 1
        report["failures"] = failures
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nbest scaling {best:.2f}x, {failures} failure(s); "
              f"wrote {out}")
        return failures

    if args.dynamic_shapes:
        rng = random.Random(args.shape_seed)
        lengths = [rng.randint(args.dyn_seq_min, args.dyn_seq_max)
                   for _ in range(args.distinct_inputs)]
        report["config"]["lengths"] = lengths
        for name in names:
            print(f"[{name}] {args.requests} requests x "
                  f"{args.concurrency} clients, lengths in "
                  f"[{args.dyn_seq_min}, {args.dyn_seq_max}] "
                  f"(seed {args.shape_seed}), max_batch={args.max_batch}")
            entry = bench_workload_dynamic(name, args, lengths)
            report["workloads"].append(entry)
            for mode in ("family", "concrete"):
                e = entry[mode]
                failures += e["dropped"] + e["diverged"]
                if args.tune_db is not None:
                    failures += _tune_searches(e)
                print(f"  {mode:<9} {e['throughput_rps']:8.1f} req/s  "
                      f"compiles {e['compiles']:3d} "
                      f"({e['compiles_per_1k_requests']:6.1f}/1k)  "
                      f"occupancy {e['batch_occupancy']:.2f}  "
                      f"dropped {e['dropped']}  diverged {e['diverged']}")
            print(f"  compile ratio {entry['compile_ratio']:.1f}x, "
                  f"occupancy gain {entry['occupancy_gain']:+.2f}")
            if entry["compile_ratio"] < args.min_compile_ratio:
                print(f"  FAIL: compile ratio {entry['compile_ratio']:.1f}x"
                      f" < required {args.min_compile_ratio:.1f}x")
                failures += 1
            if entry["occupancy_gain"] <= 0:
                print("  FAIL: family occupancy not strictly above "
                      "concrete")
                failures += 1
        report["failures"] = failures
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\n{failures} failure(s); wrote {out}")
        return failures

    for name in names:
        print(f"[{name}] {args.requests} requests x {args.concurrency} "
              f"clients, max_batch={args.max_batch} "
              f"(pipeline={args.pipeline})")
        entry = bench_workload(name, args)
        report["workloads"].append(entry)
        for mode in ("batched", "baseline"):
            e = entry[mode]
            failures += e["dropped"] + e["diverged"]
            print(f"  {mode:<9} {e['throughput_rps']:8.1f} req/s  "
                  f"p50 {e['server']['latency_p50_ms']:7.1f}ms  "
                  f"p95 {e['server']['latency_p95_ms']:7.1f}ms  "
                  f"mean batch {e['mean_batch_requests']:.2f}  "
                  f"cache hit {e['server']['cache_hit_rate']:.0%}  "
                  f"dropped {e['dropped']}  diverged {e['diverged']}")
            if args.tune_db is not None:
                searches = _tune_searches(e)
                failures += searches
                print(f"            tuned {e['server'].get('tuned', 0)}"
                      f"  schedules "
                      f"{e['server'].get('schedule_hist', {})}  "
                      f"tuning-time searches {searches}"
                      + ("  FAIL: hot path searched" if searches else ""))
        print(f"  speedup   {entry['throughput_speedup']:.2f}x")

    best = max((e["throughput_speedup"] for e in report["workloads"]),
               default=0.0)
    report["best_speedup"] = best
    report["failures"] = failures
    if args.min_speedup is not None and best < args.min_speedup:
        print(f"FAIL: best speedup {best:.2f}x < required "
              f"{args.min_speedup:.2f}x")
        failures += 1
        report["failures"] = failures

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nbest speedup {best:.2f}x, {failures} failure(s); "
          f"wrote {out}")
    return failures


if __name__ == "__main__":
    sys.exit(main())
