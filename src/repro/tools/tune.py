"""Offline schedule tuning CLI.

``python -m repro.tools.tune --workloads lstm,attention --seed 0``
searches the kernel-schedule space (:mod:`repro.tune`) for each
workload, proves every measured candidate bit-exact against the
default schedule, persists the winners into a :class:`~repro.tune.db.
TuningDB`, and writes the full report to ``results/tune.json``.

After each workload the DB is *round-tripped*: a fresh ``TuningDB``
instance re-opens the same root and must return exactly the schedule
that was just recorded — the cross-process persistence property the
serve layer depends on.

Exit status is ``oracle divergences + round-trip failures`` (0 on a
healthy run), so CI gates on it directly.  ``--budget-small`` shrinks
the search for smoke jobs.  Point a server at the same root via
``ServePolicy(tuning_db_path=...)`` (or ``serve_bench --tune-db``) and
warm traffic runs the winners with zero tuning-time searches.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from ..tune.db import TuningDB
from ..tune.search import tune_workload

#: search sizes: (n_random, n_mutation, top_k, best_of)
BUDGET_FULL = (8, 6, 3, 5)
BUDGET_SMALL = (4, 3, 2, 3)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns divergences + round-trip failures."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.tune",
        description="offline kernel-schedule search with a persistent "
                    "tuning database")
    parser.add_argument("--workloads", type=str,
                        default="lstm,attention,nasrnn,seq2seq")
    parser.add_argument("--pipeline", type=str, default="tensorssa")
    parser.add_argument("--platform", type=str, default="datacenter")
    parser.add_argument("--batch-size", type=int, default=4)
    parser.add_argument("--seq-len", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0,
                        help="search RNG + input seed")
    parser.add_argument("--budget-small", action="store_true",
                        help="smoke-sized search (CI)")
    parser.add_argument("--n-random", type=int, default=None,
                        help="random candidates (overrides budget)")
    parser.add_argument("--n-mutation", type=int, default=None,
                        help="greedy-mutation rounds (overrides budget)")
    parser.add_argument("--top-k", type=int, default=None,
                        help="finalists re-measured best-of-n")
    parser.add_argument("--best-of", type=int, default=None,
                        help="wall-clock repeats per finalist")
    parser.add_argument("--dynamic-shapes", action="store_true",
                        help="key the DB on the duck-shaped family "
                             "structure instead of concrete shapes")
    parser.add_argument("--db", type=str, default="results/tune_db",
                        help="tuning-database root directory")
    parser.add_argument("--out", type=str, default="results/tune.json")
    args = parser.parse_args(argv)

    budget = BUDGET_SMALL if args.budget_small else BUDGET_FULL
    n_random = args.n_random if args.n_random is not None else budget[0]
    n_mutation = args.n_mutation if args.n_mutation is not None \
        else budget[1]
    top_k = args.top_k if args.top_k is not None else budget[2]
    best_of = args.best_of if args.best_of is not None else budget[3]

    names = [w.strip() for w in args.workloads.split(",") if w.strip()]
    db = TuningDB(args.db)
    report = {
        "config": {k: v for k, v in vars(args).items() if k != "out"},
        "budget": {"n_random": n_random, "n_mutation": n_mutation,
                   "top_k": top_k, "best_of": best_of},
        "workloads": [],
    }

    divergences = 0
    roundtrip_failures = 0
    improved = 0
    for name in names:
        start = time.perf_counter()
        result = tune_workload(
            name, pipeline=args.pipeline, platform=args.platform,
            batch_size=args.batch_size, seq_len=args.seq_len,
            seed=args.seed, n_random=n_random, n_mutation=n_mutation,
            top_k=top_k, best_of=best_of, db=db,
            dynamic_shapes=args.dynamic_shapes)
        elapsed = time.perf_counter() - start

        # cross-process persistence gate: a *fresh* instance over the
        # same root must return exactly what was just recorded
        reread = TuningDB(args.db).best(result.key)
        roundtrip_ok = reread == result.best_schedule
        if not roundtrip_ok:
            roundtrip_failures += 1
        divergences += result.divergences
        improved += int(result.improved)

        entry = result.to_dict()
        entry["tune_wall_s"] = elapsed
        entry["roundtrip_ok"] = roundtrip_ok
        report["workloads"].append(entry)
        print(f"[{name}] default {result.default_wall_us:9.1f}us  "
              f"best {result.best_wall_us:9.1f}us  "
              f"speedup {result.speedup:5.3f}x  "
              f"schedule {result.best_schedule_id:<22}  "
              f"candidates {len(result.candidates):2d}  "
              f"divergences {result.divergences}  "
              f"roundtrip {'ok' if roundtrip_ok else 'FAIL'}  "
              f"({elapsed:.1f}s)")

    failures = divergences + roundtrip_failures
    report["db"] = db.snapshot()
    report["improved"] = improved
    report["divergences"] = divergences
    report["roundtrip_failures"] = roundtrip_failures
    report["failures"] = failures

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{improved}/{len(names)} workloads improved over the "
          f"default schedule, {divergences} divergence(s), "
          f"{roundtrip_failures} round-trip failure(s); wrote {out} "
          f"(db at {args.db})")
    return failures


if __name__ == "__main__":
    sys.exit(main())
