"""Python AST -> graph-level IR lowering (the "scripting" frontend).

Supported subset (documented in README):

* positional tensor/scalar/list arguments with annotations
* assignments, tuple unpacking, augmented assignment
* subscript loads (views) and subscript stores (mutations!)
* tensor method calls and ``repro.runtime`` free-function calls
* ``for i in range(...)``, ``while``, ``if``/``else``
* inlining of plain Python helper functions
* a single ``return`` as the final statement

Whole-variable rebinding is resolved to SSA here (the paper notes this
is the classic scalar-SSA part); *partial* mutation through views is
deliberately left in the IR as ``aten::copy_`` / ``aten::add_`` / ...
nodes on view chains — removing it is TensorSSA's job.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import textwrap
import types as pytypes
from typing import Dict, List, Optional, Sequence, Union

from ..ir import types as T
from ..ir.graph import Block, Graph, Node, Value
from ..ops import registry
from .errors import ScriptError, unsupported

MAX_WHILE_TRIP = 2 ** 31 - 1
_MAX_INLINE_DEPTH = 8

# Reverse map: runtime function object -> op name (the registry holds the
# very same function objects, so identity lookup is exact).
_OP_BY_FN = {}
for _schema in registry.all_ops():
    if _schema.fn is not None:
        _OP_BY_FN.setdefault(id(_schema.fn), _schema.name)


def assigned_names(stmts: Sequence[ast.stmt]) -> set:
    """Names (re)bound anywhere in ``stmts`` (excludes subscript stores,
    which are mutations, not bindings)."""
    names = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                raise ScriptError("nested function definitions are not "
                                  "scriptable", node)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
    return names


def _annotation_to_type(annotation: Optional[ast.expr]) -> T.Type:
    if annotation is None:
        return T.TensorType()
    if isinstance(annotation, ast.Name):
        return {
            "Tensor": T.TensorType(), "int": T.IntType(),
            "float": T.FloatType(), "bool": T.BoolType(),
            "list": T.ListType(),
        }.get(annotation.id, T.TensorType())
    if isinstance(annotation, ast.Subscript) and \
            isinstance(annotation.value, ast.Name) and \
            annotation.value.id == "List":
        return T.ListType(_annotation_to_type(annotation.slice))
    if isinstance(annotation, ast.Attribute):
        return _annotation_to_type(ast.Name(id=annotation.attr,
                                            ctx=ast.Load()))
    return T.TensorType()


def _scalar_result(values: Sequence[Value]) -> T.Type:
    if any(isinstance(v.type, T.FloatType) for v in values):
        return T.FloatType()
    if all(isinstance(v.type, T.BoolType) for v in values):
        return T.BoolType()
    return T.IntType()


class Lowerer:
    """Lowers one Python function into a Graph."""

    def __init__(self, fn, name: Optional[str] = None) -> None:
        self.fn = fn
        self.graph = Graph(name or fn.__name__)
        self.block: Block = self.graph.block
        self.env: Dict[str, Value] = {}
        self.source_name = getattr(fn, "__name__", "<scripted>")
        self._context_stack: List[Dict[str, object]] = []
        self._const_cache: Dict[tuple, Value] = {}
        self._inline_depth = 0
        self._push_fn_context(fn)

    # -- context (globals/closure of the function being lowered) ---------

    def _push_fn_context(self, fn) -> None:
        scope: Dict[str, object] = dict(fn.__globals__)
        if fn.__closure__:
            scope.update(zip(fn.__code__.co_freevars,
                             (c.cell_contents for c in fn.__closure__)))
        self._context_stack.append(scope)

    def _pop_fn_context(self) -> None:
        self._context_stack.pop()

    def _lookup_static(self, name: str):
        scope = self._context_stack[-1]
        if name in scope:
            return True, scope[name]
        if hasattr(builtins, name):
            return True, getattr(builtins, name)
        return False, None

    def _resolve_static(self, expr: ast.expr):
        """Resolve an expression to a Python object without emitting IR
        (modules, module functions, dtypes, numeric globals)."""
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return False, None  # shadowed by a scripted local
            return self._lookup_static(expr.id)
        if isinstance(expr, ast.Attribute):
            found, base = self._resolve_static(expr.value)
            if found and hasattr(base, expr.attr):
                return True, getattr(base, expr.attr)
        return False, None

    # -- IR emission helpers ----------------------------------------------

    def emit(self, op: str, inputs: Sequence[Value],
             out_types: Sequence[T.Type] = (),
             out_name: str = "v") -> Node:
        node = self.graph.create(op, inputs)
        for typ in out_types:
            node.add_output(out_name, typ)
        self.block.append(node)
        return node

    def const(self, value, name: str = "c") -> Value:
        from ..runtime.tensor import Tensor
        if not isinstance(value, Tensor):
            try:
                key = (id(self.block), type(value).__name__, value)
                cached = self._const_cache.get(key)
                if cached is not None:
                    return cached
            except TypeError:
                key = None
        else:
            key = None
        node = self.graph.constant(value, name)
        self.block.append(node)
        if key is not None:
            self._const_cache[key] = node.output()
        return node.output()

    def as_value(self, x) -> Value:
        return x if isinstance(x, Value) else self.const(x)

    def _result_types(self, op: str, operands: Sequence[Value]) -> list:
        schema = registry.get(op)
        out = []
        for template in schema.result_types[:max(schema.num_outputs, 1)]:
            if template == "Tensor":
                out.append(T.TensorType())
            elif template == "int":
                out.append(T.IntType())
            elif template == "float":
                out.append(T.FloatType())
            elif template == "bool":
                out.append(T.BoolType())
            elif template == "Scalar":
                out.append(_scalar_result(
                    [v for v in operands if v.type.is_scalar] or operands))
            elif template == "List":
                elem = operands[0].type if operands else T.AnyType()
                out.append(T.ListType(elem))
            elif template == "Tuple":
                out.append(T.TupleType([v.type for v in operands]))
            else:
                out.append(T.AnyType())
        return out

    def emit_op(self, op: str, operands: Sequence[Value],
                out_name: str = "v"):
        """Emit op; returns its single output Value, or a list for
        multi-output ops."""
        schema = registry.get(op)
        types_ = self._result_types(op, operands)
        node = self.emit(op, operands, types_[:schema.num_outputs] or types_,
                         out_name)
        if schema.num_outputs == 1:
            return node.output()
        return list(node.outputs)

    def bind_call(self, op: str, args: list, kwargs: dict,
                  out_name: str = "v"):
        """Bind python-style args/kwargs against the runtime kernel's
        signature, producing the flat positional operand list."""
        schema = registry.get(op)
        if schema.fn is None:
            raise ScriptError(f"{op} is not directly callable")
        sig = inspect.signature(schema.fn)
        try:
            bound = sig.bind(*args, **kwargs)
        except TypeError as exc:
            raise ScriptError(f"bad arguments for {op}: {exc}") from None
        bound.apply_defaults()
        operands: List[Value] = []
        for name, param in sig.parameters.items():
            arg = bound.arguments[name]
            if param.kind is inspect.Parameter.VAR_POSITIONAL:
                operands.extend(self.as_value(a) for a in arg)
            elif param.kind is inspect.Parameter.VAR_KEYWORD:
                raise ScriptError(f"{op} has **kwargs; not scriptable")
            else:
                operands.append(self.as_value(arg))
        return self.emit_op(op, operands, out_name)

    # -- entry point ------------------------------------------------------

    def run(self) -> Graph:
        source = textwrap.dedent(inspect.getsource(self.fn))
        tree = ast.parse(source)
        fndef = tree.body[0]
        if not isinstance(fndef, ast.FunctionDef):
            raise ScriptError("script() expects a plain function")
        for arg in fndef.args.args:
            self.env[arg.arg] = self.graph.add_input(
                arg.arg, _annotation_to_type(arg.annotation))
        if fndef.args.vararg or fndef.args.kwarg or fndef.args.kwonlyargs:
            raise ScriptError("*args/**kwargs are not scriptable")
        returned = self.lower_body(fndef.body, allow_return=True)
        if returned is not None:
            for v in returned:
                self.graph.add_output(v)
        return self.graph

    # -- statements -------------------------------------------------------

    def lower_body(self, stmts: Sequence[ast.stmt],
                   allow_return: bool = False) -> Optional[List[Value]]:
        """Lower statements; a Return may appear only as the final
        statement of a function body (never inside control flow).
        Returns the returned values (or None)."""
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, ast.Return):
                if not allow_return or i != len(stmts) - 1:
                    raise ScriptError("return must be the final statement "
                                      "of the function", stmt,
                                      self.source_name)
                return self.lower_return(stmt)
            self.lower_stmt(stmt)
        return None

    def lower_return(self, stmt: ast.Return) -> List[Value]:
        if stmt.value is None:
            return []
        if isinstance(stmt.value, ast.Tuple):
            return [self.lower_expr(e) for e in stmt.value.elts]
        result = self.lower_expr(stmt.value, multi_ok=True)
        return result if isinstance(result, list) else [result]

    def lower_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self.lower_assign(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                raise ScriptError("annotation without value", stmt)
            self.bind_target(stmt.target, self.lower_expr(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self.lower_aug_assign(stmt)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.Expr):
            self.lower_expr(stmt.value, multi_ok=True)
        elif isinstance(stmt, ast.Pass):
            pass
        elif isinstance(stmt, ast.Return):
            raise ScriptError("early return (inside control flow) is not "
                              "scriptable", stmt, self.source_name)
        else:
            raise unsupported(type(stmt).__name__, stmt, self.source_name)

    # -- assignment ------------------------------------------------------

    def lower_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            raise ScriptError("chained assignment is not scriptable", stmt)
        target = stmt.targets[0]
        if isinstance(target, ast.Tuple):
            values = self.lower_expr(stmt.value, multi_ok=True)
            values = self._as_value_list(values, len(target.elts))
            for t, v in zip(target.elts, values):
                self.bind_target(t, v)
        else:
            self.bind_target(target, self.lower_expr(stmt.value))

    def _as_value_list(self, values, n: int) -> List[Value]:
        if isinstance(values, list):
            if len(values) != n:
                raise ScriptError(f"cannot unpack {len(values)} values "
                                  f"into {n} targets")
            return values
        value = values
        if value.node is not None and \
                value.node.op == "prim::TupleConstruct":
            return list(value.node.inputs)
        node = self.graph.create("prim::TupleUnpack", [value])
        for _ in range(n):
            node.add_output("u", T.AnyType())
        self.block.append(node)
        return list(node.outputs)

    def bind_target(self, target: ast.expr, value: Value) -> None:
        if isinstance(target, ast.Name):
            renamed = self.graph.fresh_name(target.id)
            _ = renamed  # naming handled at creation; env rebinding is SSA
            self.env[target.id] = value
        elif isinstance(target, ast.Subscript):
            self.lower_subscript_store(target, value)
        else:
            raise unsupported(f"assignment target {type(target).__name__}",
                              target, self.source_name)

    def lower_aug_assign(self, stmt: ast.AugAssign) -> None:
        rhs = self.lower_expr(stmt.value)
        if isinstance(stmt.target, ast.Name):
            cur = self.lookup(stmt.target.id, stmt)
            if cur.type.is_tensor:
                op = {"Add": "aten::add_", "Sub": "aten::sub_",
                      "Mult": "aten::mul_", "Div": "aten::div_",
                      "Pow": "aten::pow_"}.get(type(stmt.op).__name__)
                if op is None:
                    raise unsupported(
                        f"augmented {type(stmt.op).__name__} on tensor",
                        stmt, self.source_name)
                out = self.emit_op(op, [cur, rhs],
                                   out_name=stmt.target.id)
                self.env[stmt.target.id] = out
            else:
                op = self._scalar_binop(type(stmt.op).__name__, stmt)
                self.env[stmt.target.id] = self.emit_op(
                    op, [cur, rhs], out_name=stmt.target.id)
        elif isinstance(stmt.target, ast.Subscript):
            view = self.lower_expr(stmt.target)  # the view chain
            op = {"Add": "aten::add_", "Sub": "aten::sub_",
                  "Mult": "aten::mul_", "Div": "aten::div_"}.get(
                      type(stmt.op).__name__)
            if op is None:
                raise unsupported(
                    f"augmented {type(stmt.op).__name__} on subscript",
                    stmt, self.source_name)
            self.emit_op(op, [view, rhs])
        else:
            raise unsupported("augmented assignment target", stmt,
                              self.source_name)

    # -- subscripts ------------------------------------------------------

    def _key_elements(self, key: ast.expr) -> List[ast.expr]:
        if isinstance(key, ast.Tuple):
            return list(key.elts)
        return [key]

    def lower_view_chain(self, obj: Value, key: ast.expr) -> Value:
        """Apply a subscript key as a chain of view ops."""
        cur = obj
        dim = 0
        for part in self._key_elements(key):
            if isinstance(part, ast.Slice):
                start = (self.lower_expr(part.lower)
                         if part.lower is not None else self.const(0))
                end = (self.lower_expr(part.upper)
                       if part.upper is not None else self.const(None))
                step = (self.lower_expr(part.step)
                        if part.step is not None else self.const(1))
                cur = self.emit_op("aten::slice",
                                   [cur, self.const(dim), start, end, step])
                dim += 1
            elif isinstance(part, ast.Constant) and part.value is None:
                cur = self.emit_op("aten::unsqueeze",
                                   [cur, self.const(dim)])
                dim += 1
            else:
                idx = self.lower_expr(part)
                if idx.type.is_tensor:
                    raise ScriptError("tensor subscripts are only allowed "
                                      "as the sole key", part,
                                      self.source_name)
                cur = self.emit_op("aten::select",
                                   [cur, self.const(dim), idx])
        return cur

    def lower_subscript_load(self, expr: ast.Subscript) -> Value:
        # `t.shape[i]` sugar
        if isinstance(expr.value, ast.Attribute) and \
                expr.value.attr == "shape":
            obj = self.lower_expr(expr.value.value)
            return self.emit_op("aten::size",
                                [obj, self.lower_expr(expr.slice)])
        obj = self.lower_expr(expr.value)
        if isinstance(obj.type, (T.ListType, T.TupleType)):
            idx = self.lower_expr(expr.slice)
            node = self.emit("prim::ListIndex", [obj, idx],
                             [obj.type.elem if isinstance(obj.type,
                                                          T.ListType)
                              else T.AnyType()])
            return node.output()
        # single tensor key?
        parts = self._key_elements(expr.slice)
        if len(parts) == 1 and not isinstance(parts[0], (ast.Slice,)):
            maybe = parts[0]
            if not isinstance(maybe, ast.Constant):
                v = self.lower_expr(maybe)
                if v.type.is_tensor:
                    return self.emit_op("aten::masked_select", [obj, v]) \
                        if self._is_bool_tensor(v) else \
                        self.emit_op("aten::index_select",
                                     [obj, self.const(0), v])
                return self.emit_op("aten::select",
                                    [obj, self.const(0), v])
        return self.lower_view_chain(obj, expr.slice)

    @staticmethod
    def _is_bool_tensor(v: Value) -> bool:
        return isinstance(v.type, T.TensorType) and v.type.dtype == "bool"

    def lower_subscript_store(self, target: ast.Subscript,
                              value: Value) -> None:
        obj = self.lower_expr(target.value)
        if isinstance(obj.type, (T.ListType, T.TupleType)):
            raise ScriptError("list item assignment is not scriptable",
                              target, self.source_name)
        parts = self._key_elements(target.slice)
        if len(parts) == 1 and not isinstance(parts[0], ast.Slice) and \
                not isinstance(parts[0], ast.Constant):
            key = self.lower_expr(parts[0])
            if key.type.is_tensor:
                if self._is_bool_tensor(key):
                    if value.type.is_tensor:
                        self.emit_op("aten::masked_scatter_",
                                     [obj, key, value])
                    else:
                        self.emit_op("aten::masked_fill_",
                                     [obj, key, value])
                else:
                    self.emit_op("aten::index_put_", [obj, key, value])
                return
            view = self.emit_op("aten::select", [obj, self.const(0), key])
            self._emit_store(view, value)
            return
        view = self.lower_view_chain(obj, target.slice)
        self._emit_store(view, value)

    def _emit_store(self, view: Value, value: Value) -> None:
        if value.type.is_tensor:
            self.emit_op("aten::copy_", [view, value])
        else:
            self.emit_op("aten::fill_", [view, value])

    # -- control flow ------------------------------------------------------

    def _to_bool(self, v: Value, where: ast.AST) -> Value:
        if isinstance(v.type, T.BoolType):
            return v
        if v.type.is_tensor:
            return self.emit_op("aten::Bool", [v])
        if v.type.is_scalar:
            return self.emit_op("prim::ne", [v, self.const(0)])
        raise ScriptError("condition must be bool/scalar/0-d tensor",
                          where, self.source_name)

    def lower_if(self, stmt: ast.If) -> None:
        cond = self._to_bool(self.lower_expr(stmt.test), stmt)
        then_assigned = assigned_names(stmt.body)
        else_assigned = assigned_names(stmt.orelse)
        candidates = sorted(then_assigned | else_assigned)
        carried = [n for n in candidates
                   if n in self.env or (n in then_assigned
                                        and n in else_assigned)]
        dropped = [n for n in candidates if n not in carried]

        node = self.graph.create("prim::If", [cond])
        self.block.append(node)
        branch_envs = []
        for body in (stmt.body, stmt.orelse):
            block = node.add_block()
            saved_env, saved_block = self.env, self.block
            self.env, self.block = dict(saved_env), block
            self.lower_body(body)
            branch_envs.append(self.env)
            self.env, self.block = saved_env, saved_block

        for name in carried:
            then_v = branch_envs[0].get(name) or self.env[name]
            else_v = branch_envs[1].get(name) or self.env[name]
            node.blocks[0].add_return(then_v)
            node.blocks[1].add_return(else_v)
            out = node.add_output(name, then_v.type)
            self.env[name] = out
        for name in dropped:
            self.env.pop(name, None)

    def lower_for(self, stmt: ast.For) -> None:
        if stmt.orelse:
            raise ScriptError("for/else is not scriptable", stmt)
        if not (isinstance(stmt.iter, ast.Call)
                and isinstance(stmt.iter.func, ast.Name)
                and stmt.iter.func.id == "range"):
            raise ScriptError("only `for i in range(...)` loops are "
                              "scriptable", stmt, self.source_name)
        if not isinstance(stmt.target, ast.Name):
            raise ScriptError("loop target must be a name", stmt)
        range_args = [self.lower_expr(a) for a in stmt.iter.args]
        start: Optional[Value] = None
        if len(range_args) == 1:
            trip = range_args[0]
        elif len(range_args) == 2:
            start = range_args[0]
            trip = self.emit_op("prim::sub", [range_args[1], range_args[0]],
                                out_name="trip")
        else:
            raise ScriptError("range() with step is not scriptable", stmt)
        self._lower_loop(trip_count=trip, cond_expr=None,
                         induction_name=stmt.target.id,
                         induction_offset=start, body=stmt.body)

    def lower_while(self, stmt: ast.While) -> None:
        if stmt.orelse:
            raise ScriptError("while/else is not scriptable", stmt)
        self._lower_loop(trip_count=self.const(MAX_WHILE_TRIP),
                         cond_expr=stmt.test, induction_name=None,
                         induction_offset=None, body=stmt.body)

    def _lower_loop(self, trip_count: Value, cond_expr: Optional[ast.expr],
                    induction_name: Optional[str],
                    induction_offset: Optional[Value],
                    body: Sequence[ast.stmt]) -> None:
        carried = sorted(assigned_names(body) & set(self.env))
        if induction_name in carried:
            carried.remove(induction_name)

        if cond_expr is not None:
            init_cond = self._to_bool(self.lower_expr(cond_expr), cond_expr)
        else:
            init_cond = self.const(True)

        node = self.graph.create(
            "prim::Loop",
            [trip_count, init_cond] + [self.env[n] for n in carried])
        self.block.append(node)
        block = node.add_block()
        iter_param = block.add_param("i", T.IntType())

        saved_env, saved_block = self.env, self.block
        self.env, self.block = dict(saved_env), block
        for name in carried:
            self.env[name] = block.add_param(name, saved_env[name].type)
        if induction_name is not None:
            if induction_offset is not None:
                self.env[induction_name] = self.emit_op(
                    "prim::add", [iter_param, induction_offset],
                    out_name=induction_name)
            else:
                self.env[induction_name] = iter_param
        self.lower_body(body)
        if cond_expr is not None:
            next_cond = self._to_bool(self.lower_expr(cond_expr), cond_expr)
        else:
            next_cond = init_cond
        block.add_return(next_cond)
        body_env = self.env
        self.env, self.block = saved_env, saved_block

        for name in carried:
            block.add_return(body_env[name])
            out = node.add_output(name, self.env[name].type)
            self.env[name] = out

    # -- expressions -------------------------------------------------------

    def lookup(self, name: str, where: ast.AST) -> Value:
        if name in self.env:
            return self.env[name]
        found, value = self._lookup_static(name)
        if found and isinstance(value, (int, float, bool)):
            return self.const(value, name)
        from ..runtime.tensor import Tensor
        if found and isinstance(value, Tensor):
            return self.const(value, name)
        raise ScriptError(f"name {name!r} is not defined in scripted scope",
                          where, self.source_name)

    def lower_expr(self, expr: ast.expr, multi_ok: bool = False):
        result = self._lower_expr_inner(expr, multi_ok)
        if isinstance(result, list) and not multi_ok:
            node = self.emit("prim::TupleConstruct", result,
                             [T.TupleType([v.type for v in result])])
            return node.output()
        return result

    def _lower_expr_inner(self, expr: ast.expr, multi_ok: bool):
        if isinstance(expr, ast.Constant):
            return self.const(expr.value)
        if isinstance(expr, ast.Name):
            return self.lookup(expr.id, expr)
        if isinstance(expr, ast.BinOp):
            return self.lower_binop(expr)
        if isinstance(expr, ast.UnaryOp):
            return self.lower_unaryop(expr)
        if isinstance(expr, ast.BoolOp):
            op = "prim::and" if isinstance(expr.op, ast.And) else "prim::or"
            values = [self._to_bool(self.lower_expr(v), expr)
                      for v in expr.values]
            acc = values[0]
            for v in values[1:]:
                acc = self.emit_op(op, [acc, v])
            return acc
        if isinstance(expr, ast.Compare):
            return self.lower_compare(expr)
        if isinstance(expr, ast.Call):
            return self.lower_call(expr, multi_ok)
        if isinstance(expr, ast.Subscript):
            return self.lower_subscript_load(expr)
        if isinstance(expr, ast.List):
            elems = [self.lower_expr(e) for e in expr.elts]
            elem_t = elems[0].type if elems else T.AnyType()
            return self.emit("prim::ListConstruct", elems,
                             [T.ListType(elem_t)]).output()
        if isinstance(expr, ast.Tuple):
            elems = [self.lower_expr(e) for e in expr.elts]
            if multi_ok:
                return elems
            return self.emit("prim::TupleConstruct", elems,
                             [T.TupleType([v.type for v in elems])]).output()
        if isinstance(expr, ast.Attribute):
            found, value = self._resolve_static(expr)
            if found:
                from ..runtime.dtype import DType
                if isinstance(value, (int, float, bool, DType)):
                    return self.const(value)
            if expr.attr == "T" or expr.attr == "shape":
                raise unsupported(f".{expr.attr} outside supported sugar",
                                  expr, self.source_name)
            raise unsupported(f"attribute {expr.attr!r}", expr,
                              self.source_name)
        if isinstance(expr, ast.IfExp):
            # Ternary on scalars/tensors -> lower as prim::If
            cond = self._to_bool(self.lower_expr(expr.test), expr)
            node = self.graph.create("prim::If", [cond])
            self.block.append(node)
            results = []
            for sub in (expr.body, expr.orelse):
                block = node.add_block()
                saved = self.block
                self.block = block
                v = self.lower_expr(sub)
                block.add_return(v)
                results.append(v)
                self.block = saved
            out = node.add_output("v", results[0].type)
            return out
        raise unsupported(type(expr).__name__, expr, self.source_name)

    def _scalar_binop(self, op_name: str, where: ast.AST) -> str:
        table = {"Add": "prim::add", "Sub": "prim::sub",
                 "Mult": "prim::mul", "Div": "prim::truediv",
                 "FloorDiv": "prim::floordiv", "Mod": "prim::mod",
                 "Pow": "prim::pow"}
        if op_name not in table:
            raise unsupported(f"scalar operator {op_name}", where,
                              self.source_name)
        return table[op_name]

    def lower_binop(self, expr: ast.BinOp) -> Value:
        lhs = self.lower_expr(expr.left)
        rhs = self.lower_expr(expr.right)
        op_name = type(expr.op).__name__
        if lhs.type.is_tensor or rhs.type.is_tensor:
            table = {"Add": "aten::add", "Sub": "aten::sub",
                     "Mult": "aten::mul", "Div": "aten::div",
                     "Pow": "aten::pow", "MatMult": "aten::matmul"}
            if op_name not in table:
                raise unsupported(f"tensor operator {op_name}", expr,
                                  self.source_name)
            return self.emit_op(table[op_name], [lhs, rhs])
        return self.emit_op(self._scalar_binop(op_name, expr), [lhs, rhs])

    def lower_unaryop(self, expr: ast.UnaryOp) -> Value:
        # fold negative numeric literals straight into constants
        if isinstance(expr.op, ast.USub) and \
                isinstance(expr.operand, ast.Constant) and \
                isinstance(expr.operand.value, (int, float)) and \
                not isinstance(expr.operand.value, bool):
            return self.const(-expr.operand.value)
        operand = self.lower_expr(expr.operand)
        if isinstance(expr.op, ast.USub):
            op = "aten::neg" if operand.type.is_tensor else "prim::neg"
            return self.emit_op(op, [operand])
        if isinstance(expr.op, ast.Not):
            if operand.type.is_tensor:
                return self.emit_op("aten::logical_not", [operand])
            return self.emit_op("prim::not",
                                [self._to_bool(operand, expr)])
        if isinstance(expr.op, ast.UAdd):
            return operand
        raise unsupported(f"unary {type(expr.op).__name__}", expr,
                          self.source_name)

    def lower_compare(self, expr: ast.Compare) -> Value:
        if len(expr.ops) != 1:
            raise ScriptError("chained comparisons are not scriptable",
                              expr, self.source_name)
        lhs = self.lower_expr(expr.left)
        rhs = self.lower_expr(expr.comparators[0])
        name = type(expr.ops[0]).__name__
        table = {"Gt": "gt", "Lt": "lt", "GtE": "ge", "LtE": "le",
                 "Eq": "eq", "NotEq": "ne"}
        if name not in table:
            raise unsupported(f"comparison {name}", expr, self.source_name)
        ns = "aten" if (lhs.type.is_tensor or rhs.type.is_tensor) else "prim"
        return self.emit_op(f"{ns}::{table[name]}", [lhs, rhs])

    # -- calls -------------------------------------------------------------

    _METHOD_ALIASES = {"slice": "aten::slice"}

    def lower_call(self, expr: ast.Call, multi_ok: bool):
        kwargs = {}
        for kw in expr.keywords:
            if kw.arg is None:
                raise ScriptError("**kwargs in call is not scriptable",
                                  expr, self.source_name)
            kwargs[kw.arg] = self.lower_expr(kw.value)

        # 1) statically resolvable callee (module fn, helper, builtin)
        found, target = self._resolve_static(expr.func)
        if found:
            from ..runtime.tensor import Tensor
            if inspect.ismethod(target) and \
                    isinstance(target.__self__, Tensor):
                # method on a closure/global tensor: embed the tensor as
                # a constant and lower as an ordinary method call
                obj = self.const(target.__self__)
                args = [self.lower_expr(a) for a in expr.args]
                return self.lower_method_call(
                    expr, obj, expr.func.attr, args, kwargs, multi_ok)
            return self.lower_static_call(expr, target, kwargs, multi_ok)

        # 2) method call on a lowered value
        if isinstance(expr.func, ast.Attribute):
            obj = self.lower_expr(expr.func.value)
            args = [self.lower_expr(a) for a in expr.args]
            return self.lower_method_call(expr, obj, expr.func.attr, args,
                                          kwargs, multi_ok)
        raise unsupported("call form", expr, self.source_name)

    def lower_method_call(self, expr: ast.Call, obj: Value, method: str,
                          args: list, kwargs: dict, multi_ok: bool):
        if isinstance(obj.type, T.ListType):
            if method == "append":
                return self.emit_op("aten::append", [obj] + args)
            raise unsupported(f"list method {method}", expr,
                              self.source_name)
        op = self._METHOD_ALIASES.get(method, f"aten::{method}")
        if not registry.has(op):
            raise ScriptError(f"unknown tensor method {method!r}", expr,
                              self.source_name)
        result = self.bind_call(op, [obj] + args, kwargs)
        if method == "item":
            # refine the scalar type from the tensor dtype when known
            if isinstance(obj.type, T.TensorType) and obj.type.dtype and \
                    ("int" in obj.type.dtype or obj.type.dtype == "bool"):
                result.type = T.IntType()
            else:
                result.type = T.FloatType()
        return result

    def lower_static_call(self, expr: ast.Call, target, kwargs: dict,
                          multi_ok: bool):
        args = [self.lower_expr(a) for a in expr.args]

        # runtime functions registered as ops (builtins min/max double
        # as prim:: kernels — route them to the builtin handling below,
        # which supports variadic forms and tensor overloads)
        op = _OP_BY_FN.get(id(target))
        if op is not None and target not in (builtins.min, builtins.max,
                                             builtins.len, builtins.abs):
            return self.bind_call(op, args, kwargs)

        # builtins with scripted meanings
        if target is builtins.len:
            (arg,) = args
            if isinstance(arg.type, (T.ListType, T.TupleType)):
                return self.emit_op("aten::len", [arg])
            return self.emit_op("aten::size", [arg, self.const(0)])
        if target is builtins.int:
            return self.emit_op("aten::Int", args)
        if target is builtins.float:
            return self.emit_op("aten::Float", args)
        if target is builtins.bool:
            return self._to_bool(args[0], expr)
        if target in (builtins.min, builtins.max):
            name = "min" if target is builtins.min else "max"
            if len(args) == 1:
                return self.emit_op(f"aten::{name}", args)
            if any(a.type.is_tensor for a in args):
                return self.emit_op(
                    "aten::minimum" if name == "min" else "aten::maximum",
                    args)
            acc = args[0]
            for a in args[1:]:
                acc = self.emit_op(f"prim::{name}", [acc, a])
            return acc
        if target is builtins.abs:
            (arg,) = args
            if arg.type.is_tensor:
                return self.emit_op("aten::abs", [arg])
            zero = self.const(0)
            neg = self.emit_op("prim::neg", [arg])
            lt = self.emit_op("prim::lt", [arg, zero])
            node = self.graph.create("prim::If", [lt])
            self.block.append(node)
            b0, b1 = node.add_block(), node.add_block()
            b0.add_return(neg)
            b1.add_return(arg)
            return node.add_output("abs", arg.type)
        if target is builtins.range:
            raise ScriptError("range() only supported as a for-loop "
                              "iterator", expr, self.source_name)

        # user helper function -> inline
        if isinstance(target, pytypes.FunctionType):
            return self.inline_call(expr, target, args, kwargs)
        from .script import ScriptedFunction
        if isinstance(target, ScriptedFunction):
            return self.inline_call(expr, target.fn, args, kwargs)
        raise ScriptError(f"cannot script call to {target!r}", expr,
                          self.source_name)

    def inline_call(self, expr: ast.Call, pyfn, args: list, kwargs: dict):
        if self._inline_depth >= _MAX_INLINE_DEPTH:
            raise ScriptError("helper inlining too deep (recursion?)",
                              expr, self.source_name)
        try:
            source = textwrap.dedent(inspect.getsource(pyfn))
        except (OSError, TypeError):
            raise ScriptError(f"cannot fetch source of {pyfn!r} for "
                              f"inlining", expr, self.source_name) from None
        fndef = ast.parse(source).body[0]
        if not isinstance(fndef, ast.FunctionDef):
            raise ScriptError("inlined helper must be a plain function",
                              expr, self.source_name)
        sig = inspect.signature(pyfn)
        try:
            bound = sig.bind(*args, **kwargs)
        except TypeError as exc:
            raise ScriptError(f"bad arguments for {pyfn.__name__}: {exc}",
                              expr, self.source_name) from None
        bound.apply_defaults()

        saved_env = self.env
        self.env = {name: self.as_value(v)
                    for name, v in bound.arguments.items()}
        self._push_fn_context(pyfn)
        self._inline_depth += 1
        try:
            returned = self.lower_body(fndef.body, allow_return=True)
        finally:
            self._inline_depth -= 1
            self._pop_fn_context()
            self.env = saved_env
        if returned is None:
            return self.const(None)
        if len(returned) == 1:
            return returned[0]
        return returned
