"""``script()``: capture a Python function as graph-level IR."""

from __future__ import annotations

import functools
from typing import Callable, Optional

from ..ir import verify
from ..ir.graph import Graph
from ..obs import trace as obs_trace
from .lowering import Lowerer


class ScriptedFunction:
    """A captured imperative tensor program.

    Holds the original Python callable plus its graph-level IR.  Calling
    it executes the IR with the reference interpreter, which must agree
    with eager execution of ``fn`` — tests rely on that equivalence.
    """

    def __init__(self, fn: Callable, graph: Graph) -> None:
        self.fn = fn
        self.graph = graph
        functools.update_wrapper(self, fn)

    def __call__(self, *args):
        from ..backend.interpreter import run_graph
        outs = run_graph(self.graph, args)
        if len(outs) == 1:
            return outs[0]
        return tuple(outs)

    def __repr__(self) -> str:
        from ..ir import print_graph
        return print_graph(self.graph)


def script(fn: Optional[Callable] = None, *, name: Optional[str] = None):
    """Decorator/function: lower ``fn`` to graph-level IR.

    Usage::

        @script
        def post(x: Tensor, n: int):
            ...

        scripted = script(post)  # equivalent
    """
    def build(f: Callable) -> ScriptedFunction:
        with obs_trace.span("frontend:script", cat="compile",
                            fn=getattr(f, "__name__", repr(f))):
            graph = Lowerer(f, name=name).run()
            verify(graph)
        return ScriptedFunction(f, graph)

    if fn is None:
        return build
    return build(fn)
