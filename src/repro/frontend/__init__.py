"""repro.frontend — scripting: Python AST -> graph-level IR."""

from .errors import ScriptError
from .script import ScriptedFunction, script

__all__ = ["script", "ScriptedFunction", "ScriptError"]
