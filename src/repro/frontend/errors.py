"""Frontend diagnostics with source locations."""

from __future__ import annotations

import ast
from typing import Optional


class ScriptError(Exception):
    """Raised when a Python construct is outside the scriptable subset."""

    def __init__(self, message: str, node: Optional[ast.AST] = None,
                 source_name: str = "<scripted>") -> None:
        loc = ""
        if node is not None and hasattr(node, "lineno"):
            loc = f" ({source_name}:{node.lineno})"
        super().__init__(message + loc)
        self.node = node


def unsupported(what: str, node: ast.AST, source_name: str) -> ScriptError:
    """Build a ScriptError for a construct outside the scripted subset."""
    return ScriptError(f"unsupported in scripted code: {what}", node,
                       source_name)
