"""The schedule record and its knob space.

A :class:`Schedule` pins every choice the backend makes when it builds
and launches a kernel that the default lowering leaves implicit:

``loop_order``
    Statement order inside a generated kernel body.  ``"program"``
    emits nodes as the fusion pass left them; ``"consumer"`` emits a
    depth-first producer->consumer order (each value is computed as
    late as possible, immediately before its first use), shortening
    live ranges.  Pure reordering of independent statements — bit-exact
    by construction.

``tile_elems``
    Runtime row-tiling of *elementwise-safe* fusion groups: the group
    kernel is applied to blocks of ~``tile_elems`` elements along axis
    0 and the per-tile outputs concatenated, trading Python call
    overhead for cache locality.  ``0`` disables tiling.  Groups that
    are not elementwise-safe (views, matmuls, reductions, captured
    array constants, mismatched operand shapes) ignore the knob — the
    guard is checked per launch, so the knob can never change results.

``hloop_unroll``
    How many iterations of a ``horizontal`` ``prim::Loop`` one compiled
    kernel call executes (the body is emitted ``u`` times with carried
    state threaded through, early-exiting when the loop condition goes
    false).  Cuts per-iteration Python dispatch on real wall-clock.

``pmap_chunk``
    Horizontal-batch granularity of ``prim::ParallelMap``: iterations
    per compiled kernel call (the map body is emitted ``c`` times on
    consecutive indices).

Schedules are *values*: hashable, normalizable, with a stable
``schedule_id`` used as the kernel-variant cache key and the tuning-DB
record id.  This module is a leaf — it must not import the backend,
the harness, or anything else that could cycle back into kernel code.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import asdict, dataclass, replace
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "Schedule", "DEFAULT_SCHEDULE", "SCHEDULE_SPACE",
    "active_schedule", "schedule_scope",
    "random_schedule", "mutate_schedule", "validate_schedule",
]

#: the legal value set of every knob (the search space)
SCHEDULE_SPACE: Dict[str, Tuple] = {
    "loop_order": ("program", "consumer"),
    "tile_elems": (0, 4096, 16384, 65536, 262144),
    "hloop_unroll": (1, 2, 4, 8),
    "pmap_chunk": (1, 2, 4, 8),
}


@dataclass(frozen=True)
class Schedule:
    """One point in the schedule space (all knobs at defaults = the
    fixed lowering every compile used before tuning existed)."""

    loop_order: str = "program"
    tile_elems: int = 0
    hloop_unroll: int = 1
    pmap_chunk: int = 1

    @property
    def schedule_id(self) -> str:
        """Stable, human-readable identity ("default" for the default
        schedule; knob-derived otherwise)."""
        if self == DEFAULT_SCHEDULE:
            return "default"
        return (f"o{self.loop_order[0]}-t{self.tile_elems}"
                f"-u{self.hloop_unroll}-c{self.pmap_chunk}")

    @property
    def is_default(self) -> bool:
        return self == DEFAULT_SCHEDULE

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(spec: dict) -> "Schedule":
        """Rebuild from a JSON dict; raises ``ValueError`` on unknown
        keys or out-of-space values (the DB's stale-entry guard)."""
        known = {"loop_order", "tile_elems", "hloop_unroll", "pmap_chunk"}
        extra = set(spec) - known
        if extra:
            raise ValueError(f"unknown schedule knobs: {sorted(extra)}")
        sched = Schedule(**{k: spec[k] for k in known if k in spec})
        validate_schedule(sched)
        return sched


DEFAULT_SCHEDULE = Schedule()


def validate_schedule(sched: Schedule) -> None:
    """Raise ``ValueError`` unless every knob is inside the space."""
    for knob, allowed in SCHEDULE_SPACE.items():
        value = getattr(sched, knob)
        if value not in allowed:
            raise ValueError(
                f"schedule knob {knob}={value!r} outside the space "
                f"{allowed}")


def random_schedule(rng: random.Random) -> Schedule:
    """A uniformly random point of the space."""
    return Schedule(**{knob: rng.choice(allowed)
                       for knob, allowed in SCHEDULE_SPACE.items()})


def mutate_schedule(sched: Schedule, rng: random.Random) -> Schedule:
    """Greedy-mutation move: re-draw exactly one knob (to a different
    value when the knob has any alternative)."""
    knob = rng.choice(sorted(SCHEDULE_SPACE))
    allowed = [v for v in SCHEDULE_SPACE[knob] if v != getattr(sched, knob)]
    if not allowed:
        return sched
    return replace(sched, **{knob: rng.choice(allowed)})


#: The ambient schedule consulted by the fusion runtime at kernel-build
#: and launch time.  Context-local for the same reason the profiler
#: stack is: concurrent serving workers may execute the same compiled
#: graph under different schedules.
_active: ContextVar[Schedule] = ContextVar("repro_active_schedule",
                                           default=DEFAULT_SCHEDULE)


def active_schedule() -> Schedule:
    """The schedule the current context executes kernels under."""
    return _active.get()


@contextmanager
def schedule_scope(sched: Optional[Schedule]) -> Iterator[Schedule]:
    """Run the body under ``sched`` (None = leave the ambient schedule
    untouched — callers can pass a DB lookup result straight in)."""
    if sched is None:
        yield _active.get()
        return
    token = _active.set(sched)
    try:
        yield sched
    finally:
        _active.reset(token)
