"""Seeded schedule search: random exploration + greedy mutation.

AutoTVM-shaped, scaled to this stack: candidates are points of
:data:`~repro.tune.schedule.SCHEDULE_SPACE`, ranked in stage one by a
blend of the analytical cost model (the platform pricing of a profiled
run) and a single wall-clock sample, then the survivors are re-measured
best-of-``n`` in stage two.  Every candidate that gets measured is also
checked *bit-exact* against the default schedule's outputs — a
divergent candidate is disqualified on the spot (and counted), so a
tuning bug can cost speed but never correctness.

The winner (or the default schedule, when nothing beat it — recording
the default too is what lets warm serve traffic *hit* instead of miss)
is persisted in the :class:`~repro.tune.db.TuningDB` under
``(workload, shape key, platform)``.  ``db.searches`` is bumped here
and only here: a serving process whose DB snapshot shows
``searches == 0`` provably spent zero time tuning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..eval.harness import CompileCache, _shape_signature, run_workload
from ..models import get_workload
from ..obs import trace as obs_trace
from .db import TuningDB, shape_key_text, tuning_key
from .schedule import (DEFAULT_SCHEDULE, Schedule, mutate_schedule,
                       random_schedule, schedule_scope)

__all__ = ["Candidate", "TuneResult", "tune_workload"]


@dataclass
class Candidate:
    """One measured point of the schedule space."""

    schedule: Schedule
    modeled_us: float
    wall_us: float
    #: stage-one rank: blended ratio vs the default (lower is better)
    score: float
    #: bit-exact against the default schedule's outputs
    exact: bool
    #: best-of-n wall-clock from stage two (NaN if not a finalist)
    best_wall_us: float = float("nan")
    measured: bool = False

    @property
    def schedule_id(self) -> str:
        return self.schedule.schedule_id

    def to_dict(self) -> dict:
        return {"schedule_id": self.schedule_id,
                "schedule": self.schedule.to_dict(),
                "modeled_us": self.modeled_us,
                "wall_us": self.wall_us,
                "score": self.score,
                "exact": self.exact,
                "measured": self.measured,
                "best_wall_us": None if self.best_wall_us
                != self.best_wall_us else self.best_wall_us}


@dataclass
class TuneResult:
    """Outcome of one :func:`tune_workload` call."""

    workload: str
    pipeline: str
    platform: str
    batch_size: int
    seq_len: int
    shape_key: str
    key: tuple
    default_modeled_us: float
    default_wall_us: float
    best_schedule: Schedule
    best_wall_us: float
    #: default best-of-n wall divided by winner best-of-n wall
    speedup: float
    #: True when a non-default schedule beat the default
    improved: bool
    #: measured candidates whose outputs diverged from the default
    #: (must be 0 — any divergence is a correctness bug)
    divergences: int
    candidates: List[Candidate] = field(default_factory=list)
    db_path: str = ""

    @property
    def best_schedule_id(self) -> str:
        return self.best_schedule.schedule_id

    def to_dict(self) -> dict:
        return {"workload": self.workload, "pipeline": self.pipeline,
                "platform": self.platform,
                "batch_size": self.batch_size, "seq_len": self.seq_len,
                "shape_key": self.shape_key, "key": list(self.key),
                "default_modeled_us": self.default_modeled_us,
                "default_wall_us": self.default_wall_us,
                "best_schedule_id": self.best_schedule_id,
                "best_schedule": self.best_schedule.to_dict(),
                "best_wall_us": self.best_wall_us,
                "speedup": self.speedup, "improved": self.improved,
                "divergences": self.divergences,
                "candidates": [c.to_dict() for c in self.candidates],
                "db_path": self.db_path}


def _bit_exact(got, expected) -> bool:
    if len(got) != len(expected):
        return False
    for g, e in zip(got, expected):
        ga = g.numpy() if hasattr(g, "numpy") else np.asarray(g)
        ea = e.numpy() if hasattr(e, "numpy") else np.asarray(e)
        if ga.shape != ea.shape or ga.dtype != ea.dtype \
                or not np.array_equal(ga, ea):
            return False
    return True


def tune_workload(workload: str, pipeline: str = "tensorssa",
                  platform: str = "datacenter", batch_size: int = 4,
                  seq_len: int = 64, seed: int = 0,
                  n_random: int = 8, n_mutation: int = 6,
                  top_k: int = 3, best_of: int = 3,
                  db: Optional[TuningDB] = None,
                  dynamic_shapes: bool = False) -> TuneResult:
    """Search the schedule space for one (workload, shapes, platform).

    Stage one (``tune:search`` span): the default schedule plus
    ``n_random`` random points plus ``n_mutation`` greedy mutations of
    the best-so-far each run once, scored
    ``0.5 * modeled/default_modeled + 0.5 * wall/default_wall`` and
    oracle-checked bit-exact against the default outputs.  Stage two
    (``tune:measure`` spans): the ``top_k`` exact survivors and the
    default re-measure best-of-``best_of``; lowest wall-clock wins.

    The result is recorded into ``db`` (when given) whether or not the
    search improved on the default — serve lookups should always hit.
    """
    rng = random.Random(seed)
    wl = get_workload(workload)
    args = wl.make_inputs(batch_size=batch_size, seq_len=seq_len,
                          seed=seed)
    if dynamic_shapes:
        # mirror how a dynamic-shape server keys this traffic: via the
        # duck-shaped family structure (ShapeFamily.shape_key), not
        # the concrete extents
        from ..symshape.family import symbolize_signature
        from ..symshape.symbols import SymInt
        sym_sig, _ = symbolize_signature(_shape_signature(args))

        def render(entry):
            if isinstance(entry, tuple):
                return tuple(render(e) for e in entry)
            if isinstance(entry, SymInt):
                return entry.value if entry.is_const else "*"
            return entry
        shape_key = shape_key_text(tuple(render(e) for e in sym_sig))
    else:
        shape_key = shape_key_text(_shape_signature(args))
    key = tuning_key(workload, shape_key, platform)

    # measurement runs use a private cache with NO tuning DB attached:
    # the candidate under test must be the only schedule in play (a DB
    # hit would silently override the default baseline)
    cache = CompileCache()

    def measure(sched: Schedule, repeats: int):
        with schedule_scope(sched):
            return run_workload(
                workload, pipeline, platform=platform,
                batch_size=batch_size, seq_len=seq_len, seed=seed,
                measure_wallclock=True, repeats=repeats, cache=cache,
                dynamic_shapes=dynamic_shapes)

    if db is not None:
        db.record_search()

    divergences = 0
    candidates: List[Candidate] = []
    seen = {DEFAULT_SCHEDULE}
    with obs_trace.span("tune:search", cat="tune", workload=workload,
                        platform=platform, seed=seed):
        base = measure(DEFAULT_SCHEDULE, repeats=1)
        default_modeled = base.latency_us
        default_wall = base.wallclock_s * 1e6
        default_cand = Candidate(DEFAULT_SCHEDULE, default_modeled,
                                 default_wall, score=1.0, exact=True)
        candidates.append(default_cand)

        def evaluate(sched: Schedule) -> Optional[Candidate]:
            nonlocal divergences
            if sched in seen:
                return None
            seen.add(sched)
            run = measure(sched, repeats=1)
            exact = _bit_exact(run.outputs, base.outputs)
            if not exact:
                divergences += 1
            wall = run.wallclock_s * 1e6
            cand = Candidate(
                sched, run.latency_us, wall,
                score=0.5 * run.latency_us / max(default_modeled, 1e-9)
                + 0.5 * wall / max(default_wall, 1e-9),
                exact=exact)
            candidates.append(cand)
            return cand

        for _ in range(n_random * 4):  # bounded draw for n uniques
            if len(candidates) > n_random:
                break
            evaluate(random_schedule(rng))
        for _ in range(n_mutation):
            exact_cands = [c for c in candidates if c.exact]
            parent = min(exact_cands, key=lambda c: c.score)
            mutant = mutate_schedule(parent.schedule, rng)
            for _ in range(8):  # re-draw around already-seen points
                if mutant not in seen:
                    break
                mutant = mutate_schedule(parent.schedule, rng)
            evaluate(mutant)

    finalists = sorted((c for c in candidates if c.exact
                        and not c.schedule.is_default),
                       key=lambda c: c.score)[:top_k]
    for cand in [default_cand] + finalists:
        with obs_trace.span("tune:measure", cat="tune",
                            workload=workload,
                            schedule=cand.schedule_id, n=best_of):
            run = measure(cand.schedule, repeats=best_of)
            if not cand.schedule.is_default \
                    and not _bit_exact(run.outputs, base.outputs):
                divergences += 1
                cand.exact = False
                continue
            cand.best_wall_us = run.wallclock_s * 1e6
            cand.measured = True

    measured = [c for c in finalists if c.measured]
    winner = min(measured, key=lambda c: c.best_wall_us,
                 default=default_cand)
    improved = winner.measured and not winner.schedule.is_default \
        and winner.best_wall_us < default_cand.best_wall_us
    best = winner if improved else default_cand

    result = TuneResult(
        workload=workload, pipeline=pipeline, platform=platform,
        batch_size=batch_size, seq_len=seq_len,
        shape_key=shape_key, key=key,
        default_modeled_us=default_modeled,
        default_wall_us=default_cand.best_wall_us,
        best_schedule=best.schedule,
        best_wall_us=best.best_wall_us,
        speedup=default_cand.best_wall_us / max(best.best_wall_us, 1e-9),
        improved=improved, divergences=divergences,
        candidates=candidates)
    if db is not None:
        result.db_path = db.put(key, best.schedule, meta={
            "workload": workload, "platform": platform,
            "pipeline": pipeline,
            "default_wall_us": default_cand.best_wall_us,
            "best_wall_us": best.best_wall_us,
            "speedup": result.speedup,
            "modeled_us": best.modeled_us,
            "divergences": divergences})
    return result
