"""Autotuned kernel schedules (AutoTVM-style, over the numpy backend).

The pipeline lowers every fusion group one fixed way; this package adds
the missing degree of freedom — a :class:`~repro.tune.schedule.Schedule`
describing *how* the lowered kernels execute (statement order, runtime
tiling of elementwise groups, horizontal-loop unrolling, parallel-map
chunking) — plus an offline seeded search
(:func:`~repro.tune.search.tune_workload`) that ranks candidates with
the analytical cost model, measures the survivors best-of-n, proves
each one bit-exact against the default schedule, and persists the
winner in a :class:`~repro.tune.db.TuningDB` keyed by
``(workload, shape key, platform)``.

The serve hot path only ever *reads* the database
(``CompileCache.tuning_db``): a warm request costs one per-key file
lookup (cached in memory), never a search.

Import discipline: this ``__init__`` must import nothing that reaches
back into :mod:`repro.backend` (``schedule``/``db`` are leaf modules) —
the backend consults :func:`active_schedule` at kernel-build time, so a
cycle here would break interpreter import.  :mod:`repro.tune.search`
(which imports the harness) is re-exported lazily.
"""

from .db import TuningDB, tuning_key, shape_key_text
from .schedule import (DEFAULT_SCHEDULE, SCHEDULE_SPACE, Schedule,
                       active_schedule, mutate_schedule, random_schedule,
                       schedule_scope, validate_schedule)

__all__ = [
    "Schedule", "DEFAULT_SCHEDULE", "SCHEDULE_SPACE",
    "active_schedule", "schedule_scope",
    "random_schedule", "mutate_schedule", "validate_schedule",
    "TuningDB", "tuning_key", "shape_key_text",
    "tune_workload", "TuneResult",
]


def __getattr__(name):  # lazy: search imports the harness (heavy, cyclic)
    if name in ("tune_workload", "TuneResult", "Candidate"):
        from . import search
        return getattr(search, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
