"""Persistent tuning database: per-key files, atomic replace.

Winners of an offline schedule search live on disk keyed by
``(workload, shape key, platform)``.  The layout deliberately repeats
the :class:`repro.shard.artifact.ArtifactStore` idiom — one tiny JSON
record per key under ``<root>/entries/<sha256(key)>.json``, written via
temp-file + ``os.replace`` — because a monolithic index file is a
cross-process read-modify-write that measurably *lost* concurrent puts
in the artifact store's history; per-key files make concurrent tuners
(and tuner-vs-server races) last-writer-wins per key instead of
lost-update across keys.

Read-path contract: :meth:`TuningDB.best` never raises.  A missing,
corrupt, stale (version-skewed), mismatched, or out-of-space record
counts in ``rejected``/``misses`` and returns ``None`` — the caller
runs the default schedule.  Records are memoized after the first disk
read, so warm serve traffic pays one ``open()`` per key per process
lifetime and zero searches (``searches`` is only ever incremented by
:func:`repro.tune.search.tune_workload`; the counters are the CI
witness that the hot path never tunes).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from typing import Dict, List, Optional, Tuple

from .schedule import Schedule

__all__ = ["TUNING_DB_VERSION", "TuningDB", "tuning_key",
           "shape_key_text"]

#: bump on any incompatible change to the record layout
TUNING_DB_VERSION = 1


def shape_key_text(signature) -> str:
    """Canonical text of a shape signature (concrete or symbolic).

    Accepts the harness's ``_shape_signature`` tuples; any non-JSON
    entry (a ``SymInt`` duck dimension, say) is rendered through
    ``str`` so family signatures with ``"*"`` placeholders and concrete
    signatures share one canonical form.
    """
    def render(entry):
        if isinstance(entry, (list, tuple)):
            return [render(e) for e in entry]
        if isinstance(entry, bool) or entry is None:
            return entry
        if isinstance(entry, (int, float, str)):
            return entry
        return str(entry)

    return json.dumps(render(signature), sort_keys=True,
                      separators=(",", ":"))


def tuning_key(workload: str, shape_key: str, platform: str) -> tuple:
    """The database key one tuned schedule lives under."""
    return (str(workload), str(shape_key), str(platform))


class TuningDB:
    """On-disk map ``(workload, shape key, platform) -> best Schedule``.

    Thread-safe; safe to share one root directory across processes
    (each key owns its own atomically-replaced file).  ``hits`` /
    ``misses`` / ``rejected`` / ``puts`` / ``searches`` counters make
    hot-path behaviour observable.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self._entries_dir = os.path.join(root, "entries")
        os.makedirs(self._entries_dir, exist_ok=True)
        self._lock = threading.Lock()
        #: key text -> (schedule or None) memo; None memoizes a
        #: confirmed miss so repeated cold lookups stay cheap
        self._memo: Dict[str, Optional[Schedule]] = {}
        self.hits = 0
        self.misses = 0
        self.rejected = 0
        self.puts = 0
        #: schedule searches run against this DB — incremented ONLY by
        #: the offline tuner, so a warm serve run proves "0 tuning cost
        #: on the hot path" by this staying 0
        self.searches = 0

    # -- internals -----------------------------------------------------

    @staticmethod
    def _key_text(key: tuple) -> str:
        return json.dumps(list(key), sort_keys=True, separators=(",", ":"))

    def _entry_path(self, key_text: str) -> str:
        digest = hashlib.sha256(key_text.encode("utf-8")).hexdigest()
        return os.path.join(self._entries_dir, digest + ".json")

    def _atomic_write(self, path: str, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _load_record(self, key_text: str) -> Optional[dict]:
        """Read + validate one record; None (and ``rejected`` when the
        file existed but was unusable) on any failure."""
        path = self._entry_path(key_text)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            with self._lock:
                self.rejected += 1
            return None
        if not isinstance(record, dict) \
                or record.get("version") != TUNING_DB_VERSION \
                or record.get("key") != key_text:
            with self._lock:
                self.rejected += 1
            return None
        try:
            Schedule.from_dict(record.get("schedule", {}))
        except (TypeError, ValueError):
            with self._lock:
                self.rejected += 1
            return None
        return record

    # -- API -----------------------------------------------------------

    def put(self, key: tuple, sched: Schedule,
            meta: Optional[dict] = None) -> str:
        """Persist ``sched`` as the best known schedule for ``key``;
        returns the entry path.  ``meta`` (modeled/wall numbers,
        speedup, ...) rides along for reports."""
        key_text = self._key_text(key)
        record = {
            "version": TUNING_DB_VERSION,
            "key": key_text,
            "schedule": sched.to_dict(),
            "schedule_id": sched.schedule_id,
        }
        if meta:
            record["meta"] = {k: v for k, v in meta.items()
                              if isinstance(v, (int, float, str, bool))
                              or v is None}
        path = self._entry_path(key_text)
        self._atomic_write(path, json.dumps(
            record, sort_keys=True, indent=1).encode("utf-8"))
        with self._lock:
            self.puts += 1
            self._memo[key_text] = sched
        return path

    def best(self, key: tuple) -> Optional[Schedule]:
        """The best known schedule for ``key``; None = run the default.

        Never raises; never searches.  Memoized after the first disk
        read (``put`` through the same instance refreshes the memo).
        """
        key_text = self._key_text(key)
        with self._lock:
            if key_text in self._memo:
                sched = self._memo[key_text]
                if sched is None:
                    self.misses += 1
                else:
                    self.hits += 1
                return sched
        record = self._load_record(key_text)
        sched = Schedule.from_dict(record["schedule"]) \
            if record is not None else None
        with self._lock:
            self._memo[key_text] = sched
            if sched is None:
                self.misses += 1
            else:
                self.hits += 1
        return sched

    def get_record(self, key: tuple) -> Optional[dict]:
        """The raw validated record (reports read ``meta`` through
        this); no memoization, no hit/miss accounting."""
        return self._load_record(self._key_text(key))

    def keys(self) -> List[tuple]:
        """Every key currently stored (scans the entry files)."""
        out = []
        try:
            names = os.listdir(self._entries_dir)
        except OSError:
            return out
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self._entries_dir, name), "r",
                          encoding="utf-8") as fh:
                    record = json.load(fh)
                key = json.loads(record["key"])
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if isinstance(key, list):
                out.append(tuple(key))
        return sorted(out)

    def record_search(self) -> None:
        """Count one offline schedule search (tuner-only)."""
        with self._lock:
            self.searches += 1

    def invalidate(self, key: tuple) -> None:
        """Drop the in-memory memo for ``key`` (tests use this to
        observe on-disk corruption through a live instance)."""
        with self._lock:
            self._memo.pop(self._key_text(key), None)

    def snapshot(self) -> Dict[str, int]:
        """Counters, read atomically (ServerStats attaches this)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "rejected": self.rejected, "puts": self.puts,
                    "searches": self.searches,
                    "size": len([1 for _ in self._iter_entry_names()])}

    def _iter_entry_names(self):
        try:
            for name in os.listdir(self._entries_dir):
                if name.endswith(".json"):
                    yield name
        except OSError:
            return
